// Finite-field Diffie-Hellman key agreement.
//
// The encryption characteristic's "QoS-to-QoS" communication (paper §3.2:
// "on the fly change of encryption keys") performs a real DH exchange over
// the plain GIOP path before switching the module to the derived key. The
// group is a fixed 61-bit safe prime — small by modern standards but a
// genuine modular-exponentiation handshake, which is what the experiment
// needs to measure.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace maqs::crypto {

/// Fixed group parameters (safe prime p, generator g).
struct DhGroup {
  std::uint64_t p;
  std::uint64_t g;
};

/// The default group used by the encryption characteristic.
const DhGroup& default_group() noexcept;

/// (g^exp) mod p via square-and-multiply with 128-bit intermediates.
std::uint64_t modpow(std::uint64_t base, std::uint64_t exp,
                     std::uint64_t mod) noexcept;

class DhParty {
 public:
  /// private_key must be in [2, p-2]; callers draw it from a seeded Rng.
  DhParty(const DhGroup& group, std::uint64_t private_key) noexcept;

  std::uint64_t public_value() const noexcept { return public_value_; }

  /// Shared secret from the peer's public value.
  std::uint64_t shared_secret(std::uint64_t peer_public) const noexcept;

  /// Shared secret serialized for key derivation.
  util::Bytes shared_secret_bytes(std::uint64_t peer_public) const;

 private:
  DhGroup group_;
  std::uint64_t private_key_;
  std::uint64_t public_value_;
};

}  // namespace maqs::crypto

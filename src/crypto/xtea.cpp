#include "crypto/xtea.hpp"

#include "util/bytes.hpp"

namespace maqs::crypto {

Key128 derive_key(util::BytesView secret) {
  // Stretch the FNV hash over four lanes with distinct tweaks.
  Key128 key{};
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (0x9E3779B9ULL * (lane + 1));
    for (std::uint8_t byte : secret) {
      h ^= byte;
      h *= 0x100000001b3ULL;
    }
    key[lane] = static_cast<std::uint32_t>(h ^ (h >> 32));
  }
  return key;
}

std::uint64_t XteaCtr::encrypt_block(std::uint64_t block,
                                     const Key128& key) noexcept {
  std::uint32_t v0 = static_cast<std::uint32_t>(block);
  std::uint32_t v1 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t sum = 0;
  constexpr std::uint32_t kDelta = 0x9E3779B9;
  for (int round = 0; round < 32; ++round) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  return static_cast<std::uint64_t>(v0) |
         (static_cast<std::uint64_t>(v1) << 32);
}

util::Bytes XteaCtr::apply(util::BytesView input) const {
  util::Bytes out(input.begin(), input.end());
  std::uint64_t counter = 0;
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t keystream =
        encrypt_block(nonce_ ^ counter, key_);
    ++counter;
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] ^= static_cast<std::uint8_t>(keystream >> (8 * b));
    }
  }
  return out;
}

}  // namespace maqs::crypto

#include "crypto/xtea.hpp"

#include <bit>
#include <cstring>

#include "util/bytes.hpp"

namespace maqs::crypto {

Key128 derive_key(util::BytesView secret) {
  // Stretch the FNV hash over four lanes with distinct tweaks.
  Key128 key{};
  for (std::uint32_t lane = 0; lane < 4; ++lane) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (0x9E3779B9ULL * (lane + 1));
    for (std::uint8_t byte : secret) {
      h ^= byte;
      h *= 0x100000001b3ULL;
    }
    key[lane] = static_cast<std::uint32_t>(h ^ (h >> 32));
  }
  return key;
}

std::uint64_t XteaCtr::encrypt_block(std::uint64_t block,
                                     const Key128& key) noexcept {
  std::uint32_t v0 = static_cast<std::uint32_t>(block);
  std::uint32_t v1 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t sum = 0;
  constexpr std::uint32_t kDelta = 0x9E3779B9;
  for (int round = 0; round < 32; ++round) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  return static_cast<std::uint64_t>(v0) |
         (static_cast<std::uint64_t>(v1) << 32);
}

util::Bytes XteaCtr::apply(util::BytesView input) const {
  util::Bytes out(input.begin(), input.end());
  apply_in_place(out);
  return out;
}

namespace {

constexpr std::uint32_t kDelta = 0x9E3779B9;

// 16 CTR blocks (128 bytes of keystream) per kernel call. The per-block
// round chain is strictly serial (~5-cycle latency per half-round), so a
// single vector of lanes leaves the ALU ports mostly idle; independent
// lane GROUPS interleave their chains and fill the gaps. Lane k produces
// exactly encrypt_block(in[k], key) — the keystream matches the scalar
// path bit for bit, so the wire format is unchanged.
//
// GCC/Clang vector extensions rather than intrinsics: the same source
// compiles to SSE2 (baseline x86-64), NEON, or scalar code elsewhere.
typedef std::uint32_t u32x4 __attribute__((vector_size(16)));

void block16_v128(const Key128& key, const std::uint64_t in[16],
                  std::uint64_t out[16]) noexcept {
  u32x4 g0[4];
  u32x4 g1[4];
  for (int g = 0; g < 4; ++g) {
    for (int l = 0; l < 4; ++l) {
      g0[g][l] = static_cast<std::uint32_t>(in[g * 4 + l]);
      g1[g][l] = static_cast<std::uint32_t>(in[g * 4 + l] >> 32);
    }
  }
  std::uint32_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    const std::uint32_t k0 = sum + key[sum & 3];
    for (int g = 0; g < 4; ++g) {
      g0[g] += (((g1[g] << 4) ^ (g1[g] >> 5)) + g1[g]) ^ k0;
    }
    sum += kDelta;
    const std::uint32_t k1 = sum + key[(sum >> 11) & 3];
    for (int g = 0; g < 4; ++g) {
      g1[g] += (((g0[g] << 4) ^ (g0[g] >> 5)) + g0[g]) ^ k1;
    }
  }
  for (int g = 0; g < 4; ++g) {
    for (int l = 0; l < 4; ++l) {
      out[g * 4 + l] = static_cast<std::uint64_t>(g0[g][l]) |
                       (static_cast<std::uint64_t>(g1[g][l]) << 32);
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
// Same kernel widened to 8-lane vectors, compiled for AVX2 regardless of
// the global -march (per-function target attribute) and selected at run
// time. Two groups of 8 lanes keep the interleaving factor.
typedef std::uint32_t u32x8 __attribute__((vector_size(32)));

__attribute__((target("avx2"))) void block16_avx2(
    const Key128& key, const std::uint64_t in[16],
    std::uint64_t out[16]) noexcept {
  u32x8 a0;
  u32x8 a1;
  u32x8 b0;
  u32x8 b1;
  for (int l = 0; l < 8; ++l) {
    a0[l] = static_cast<std::uint32_t>(in[l]);
    a1[l] = static_cast<std::uint32_t>(in[l] >> 32);
    b0[l] = static_cast<std::uint32_t>(in[8 + l]);
    b1[l] = static_cast<std::uint32_t>(in[8 + l] >> 32);
  }
  std::uint32_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    const std::uint32_t k0 = sum + key[sum & 3];
    a0 += (((a1 << 4) ^ (a1 >> 5)) + a1) ^ k0;
    b0 += (((b1 << 4) ^ (b1 >> 5)) + b1) ^ k0;
    sum += kDelta;
    const std::uint32_t k1 = sum + key[(sum >> 11) & 3];
    a1 += (((a0 << 4) ^ (a0 >> 5)) + a0) ^ k1;
    b1 += (((b0 << 4) ^ (b0 >> 5)) + b0) ^ k1;
  }
  for (int l = 0; l < 8; ++l) {
    out[l] = static_cast<std::uint64_t>(a0[l]) |
             (static_cast<std::uint64_t>(a1[l]) << 32);
    out[8 + l] = static_cast<std::uint64_t>(b0[l]) |
                 (static_cast<std::uint64_t>(b1[l]) << 32);
  }
}
#endif

using Block16Fn = void (*)(const Key128&, const std::uint64_t*,
                           std::uint64_t*);

Block16Fn pick_block16() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return block16_avx2;
#endif
  return block16_v128;
}

const Block16Fn g_block16 = pick_block16();

// ---- 32-block (256-byte) kernels ----
//
// The 16-block kernels above are latency-bound, not throughput-bound: the
// round chain has a ~4-cycle dependency per half-round, and 2 interleaved
// chains (AVX2) leave vector ports idle most cycles. Doubling the batch to
// 32 blocks adds independent chains — 4x8 on AVX2, 2x16 on AVX-512 — so
// the chains' latencies overlap and the same serial rounds finish in
// roughly half the wall time per byte. Lane k still produces exactly
// encrypt_block(in[k], key); the wire format is unchanged.

void block32_v128(const Key128& key, const std::uint64_t in[32],
                  std::uint64_t out[32]) noexcept {
  block16_v128(key, in, out);
  block16_v128(key, in + 16, out + 16);
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("avx2"))) void block32_avx2(
    const Key128& key, const std::uint64_t in[32],
    std::uint64_t out[32]) noexcept {
  u32x8 g0[4];
  u32x8 g1[4];
  for (int g = 0; g < 4; ++g) {
    for (int l = 0; l < 8; ++l) {
      g0[g][l] = static_cast<std::uint32_t>(in[g * 8 + l]);
      g1[g][l] = static_cast<std::uint32_t>(in[g * 8 + l] >> 32);
    }
  }
  std::uint32_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    const std::uint32_t k0 = sum + key[sum & 3];
    for (int g = 0; g < 4; ++g) {
      g0[g] += (((g1[g] << 4) ^ (g1[g] >> 5)) + g1[g]) ^ k0;
    }
    sum += kDelta;
    const std::uint32_t k1 = sum + key[(sum >> 11) & 3];
    for (int g = 0; g < 4; ++g) {
      g1[g] += (((g0[g] << 4) ^ (g0[g] >> 5)) + g0[g]) ^ k1;
    }
  }
  for (int g = 0; g < 4; ++g) {
    for (int l = 0; l < 8; ++l) {
      out[g * 8 + l] = static_cast<std::uint64_t>(g0[g][l]) |
                       (static_cast<std::uint64_t>(g1[g][l]) << 32);
    }
  }
}

typedef std::uint32_t u32x16 __attribute__((vector_size(64)));

__attribute__((target("avx512f"))) void block32_avx512(
    const Key128& key, const std::uint64_t in[32],
    std::uint64_t out[32]) noexcept {
  u32x16 a0;
  u32x16 a1;
  u32x16 b0;
  u32x16 b1;
  for (int l = 0; l < 16; ++l) {
    a0[l] = static_cast<std::uint32_t>(in[l]);
    a1[l] = static_cast<std::uint32_t>(in[l] >> 32);
    b0[l] = static_cast<std::uint32_t>(in[16 + l]);
    b1[l] = static_cast<std::uint32_t>(in[16 + l] >> 32);
  }
  std::uint32_t sum = 0;
  for (int round = 0; round < 32; ++round) {
    const std::uint32_t k0 = sum + key[sum & 3];
    a0 += (((a1 << 4) ^ (a1 >> 5)) + a1) ^ k0;
    b0 += (((b1 << 4) ^ (b1 >> 5)) + b1) ^ k0;
    sum += kDelta;
    const std::uint32_t k1 = sum + key[(sum >> 11) & 3];
    a1 += (((a0 << 4) ^ (a0 >> 5)) + a0) ^ k1;
    b1 += (((b0 << 4) ^ (b0 >> 5)) + b0) ^ k1;
  }
  for (int l = 0; l < 16; ++l) {
    out[l] = static_cast<std::uint64_t>(a0[l]) |
             (static_cast<std::uint64_t>(a1[l]) << 32);
    out[16 + l] = static_cast<std::uint64_t>(b0[l]) |
                  (static_cast<std::uint64_t>(b1[l]) << 32);
  }
}
#endif

using Block32Fn = void (*)(const Key128&, const std::uint64_t*,
                           std::uint64_t*);

Block32Fn pick_block32() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f")) return block32_avx512;
  if (__builtin_cpu_supports("avx2")) return block32_avx2;
#endif
  return block32_v128;
}

const Block32Fn g_block32 = pick_block32();

}  // namespace

void XteaCtr::apply_in_place(std::span<std::uint8_t> data) const noexcept {
  const Block16Fn kernel16 = g_block16;
  const Block32Fn kernel32 = g_block32;
  std::uint64_t counter = 0;
  std::size_t i = 0;
  std::uint64_t in[32];
  std::uint64_t ks[32];
  // Bulk path: 32 blocks (256 bytes) per kernel call, stepping down to a
  // 16-block call for a mid-size tail, whole-word XOR. Keystream words are
  // little-endian on the wire; on a big-endian host the byte-wise tail
  // loop below is the (slow but correct) route.
  if constexpr (std::endian::native == std::endian::little) {
    while (i + 256 <= data.size()) {
      for (int l = 0; l < 32; ++l) in[l] = nonce_ ^ (counter + l);
      kernel32(key_, in, ks);
      for (int l = 0; l < 32; ++l) {
        std::uint64_t word;
        std::memcpy(&word, data.data() + i + 8 * l, 8);
        word ^= ks[l];
        std::memcpy(data.data() + i + 8 * l, &word, 8);
      }
      counter += 32;
      i += 256;
    }
    while (i + 128 <= data.size()) {
      for (int l = 0; l < 16; ++l) in[l] = nonce_ ^ (counter + l);
      kernel16(key_, in, ks);
      for (int l = 0; l < 16; ++l) {
        std::uint64_t word;
        std::memcpy(&word, data.data() + i + 8 * l, 8);
        word ^= ks[l];
        std::memcpy(data.data() + i + 8 * l, &word, 8);
      }
      counter += 16;
      i += 128;
    }
    const std::size_t left = data.size() - i;
    if (left > 32) {
      // The tail is still several blocks: one more wide keystream chunk
      // beats falling back to serial scalar blocks (the surplus keystream
      // is simply discarded — CTR output is positional).
      for (int l = 0; l < 16; ++l) in[l] = nonce_ ^ (counter + l);
      kernel16(key_, in, ks);
      std::uint8_t tail[128];
      std::memcpy(tail, ks, 128);
      for (std::size_t b = 0; b < left; ++b) data[i + b] ^= tail[b];
      return;
    }
  }
  while (i < data.size()) {
    const std::uint64_t keystream = encrypt_block(nonce_ ^ counter, key_);
    ++counter;
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(keystream >> (8 * b));
    }
  }
}

}  // namespace maqs::crypto

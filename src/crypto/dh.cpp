#include "crypto/dh.hpp"

namespace maqs::crypto {

const DhGroup& default_group() noexcept {
  // p = 2305843009213693951 (2^61 - 1, a Mersenne prime), g = 3.
  static const DhGroup kGroup{2305843009213693951ULL, 3};
  return kGroup;
}

std::uint64_t modpow(std::uint64_t base, std::uint64_t exp,
                     std::uint64_t mod) noexcept {
  if (mod <= 1) return 0;
  unsigned __int128 result = 1;
  unsigned __int128 b = base % mod;
  while (exp > 0) {
    if (exp & 1) result = (result * b) % mod;
    b = (b * b) % mod;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

DhParty::DhParty(const DhGroup& group, std::uint64_t private_key) noexcept
    : group_(group),
      private_key_(private_key),
      public_value_(modpow(group.g, private_key, group.p)) {}

std::uint64_t DhParty::shared_secret(std::uint64_t peer_public) const
    noexcept {
  return modpow(peer_public, private_key_, group_.p);
}

util::Bytes DhParty::shared_secret_bytes(std::uint64_t peer_public) const {
  const std::uint64_t s = shared_secret(peer_public);
  util::Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(s >> (8 * i));
  }
  return out;
}

}  // namespace maqs::crypto

#include "crypto/mac.hpp"

#include <bit>
#include <cstring>

namespace maqs::crypto {

namespace {

constexpr std::uint64_t kP1 = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  if constexpr (std::endian::native == std::endian::big) {
    w = __builtin_bswap64(w);  // std::byteswap is C++23
  }
  return w;
}

}  // namespace

std::uint64_t mac64(std::uint64_t key, util::BytesView data) noexcept {
  // Two word-wide passes with key-dependent initial states, combined and
  // avalanched; this defeats accidental corruption and naive tampering
  // (good enough for the simulated adversary — see header). Each step is
  // injective in the input word per chain, so any single-word difference
  // is guaranteed to change that chain's state. The two multiply chains
  // are independent and overlap their latency, putting the cost near 0.6
  // cycles/byte where a byte-serial FNV loop pays ~5 per byte.
  std::uint64_t h1 = 0xcbf29ce484222325ULL ^ key;
  std::uint64_t h2 = 0x84222325cbf29ce4ULL ^ (key * kP1);
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint64_t w = load_le64(p);
    h1 = (h1 ^ w) * kP1;
    h2 = (h2 + w) * kP2 + 1;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint8_t tail[8] = {};
    std::memcpy(tail, p, n);
    const std::uint64_t w = load_le64(tail);
    h1 = (h1 ^ w) * kP1;
    h2 = (h2 + w) * kP2 + 1;
  }
  // Fold in the length (distinguishes trailing-zero payloads from shorter
  // ones) and avalanche so a high-bits-only difference spreads tag-wide.
  std::uint64_t x = h1 ^ std::rotr(h2, 29) ^ data.size();
  x *= kP1;
  x ^= x >> 32;
  x *= kP2;
  x ^= x >> 29;
  return x;
}

bool mac_verify(std::uint64_t key, util::BytesView data,
                std::uint64_t tag) noexcept {
  return mac64(key, data) == tag;
}

}  // namespace maqs::crypto

#include "crypto/mac.hpp"

namespace maqs::crypto {

std::uint64_t mac64(std::uint64_t key, util::BytesView data) noexcept {
  // Two passes with key-dependent initial states, combined; this defeats
  // accidental corruption and naive tampering (good enough for the
  // simulated adversary — see header).
  std::uint64_t h1 = 0xcbf29ce484222325ULL ^ key;
  std::uint64_t h2 = 0x84222325cbf29ce4ULL ^ (key * 0x9E3779B97F4A7C15ULL);
  for (std::uint8_t byte : data) {
    h1 = (h1 ^ byte) * 0x100000001b3ULL;
    h2 = (h2 + byte) * 0x100000001b3ULL + 1;
  }
  return h1 ^ (h2 << 1);
}

bool mac_verify(std::uint64_t key, util::BytesView data,
                std::uint64_t tag) noexcept {
  return mac64(key, data) == tag;
}

}  // namespace maqs::crypto

// Keyed message authentication (simulation-grade).
//
// A keyed FNV-based tag detects payload tampering/corruption in the
// encryption characteristic's integrity mode. It is not a cryptographic
// MAC; DESIGN.md §2 records the substitution.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace maqs::crypto {

/// 64-bit authentication tag over (key, data).
std::uint64_t mac64(std::uint64_t key, util::BytesView data) noexcept;

/// Constant-shape verification helper.
bool mac_verify(std::uint64_t key, util::BytesView data,
                std::uint64_t tag) noexcept;

}  // namespace maqs::crypto

// XTEA block cipher with a CTR-mode stream interface.
//
// Substrate for the privacy/encryption QoS characteristic. XTEA is a real
// 64-bit-block cipher (Needham/Wheeler, 1997) that is tiny enough to
// implement from scratch; CTR mode turns it into a stream cipher so
// payloads of any length encrypt without padding and encryption equals
// decryption. This is adequate to reproduce the paper's overhead shapes;
// it is NOT a modern AEAD and must not be used outside the simulation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace maqs::crypto {

/// 128-bit key.
using Key128 = std::array<std::uint32_t, 4>;

/// Derives a Key128 from arbitrary secret bytes (e.g. a DH shared secret).
Key128 derive_key(util::BytesView secret);

class XteaCtr {
 public:
  /// nonce distinguishes streams under the same key (e.g. request id).
  XteaCtr(const Key128& key, std::uint64_t nonce) noexcept
      : key_(key), nonce_(nonce) {}

  /// XORs the keystream into a copy of the input. Applying it twice with
  /// the same key/nonce restores the plaintext.
  util::Bytes apply(util::BytesView input) const;

  /// XORs the keystream into `data` in place (zero-copy transform path);
  /// byte-identical to apply() on the same input.
  void apply_in_place(std::span<std::uint8_t> data) const noexcept;

  /// Raw 64-bit block encryption (exposed for tests against the
  /// reference algorithm).
  static std::uint64_t encrypt_block(std::uint64_t block,
                                     const Key128& key) noexcept;

 private:
  Key128 key_;
  std::uint64_t nonce_;
};

}  // namespace maqs::crypto

#include "qidl/sema.hpp"

#include <set>

#include "qidl/parser.hpp"

namespace maqs::qidl {

namespace {

bool is_integral(TypeKind kind) {
  return kind == TypeKind::kOctet || kind == TypeKind::kShort ||
         kind == TypeKind::kLong || kind == TypeKind::kLongLong;
}

class Checker {
 public:
  CheckedUnit run(const Specification& spec) {
    collect(spec, "");
    resolve_and_check();
    return std::move(unit_);
  }

 private:
  [[noreturn]] void fail(const std::string& what, int line) const {
    throw QidlError(what, line, 1);
  }

  void collect(const ModuleDecl& module, const std::string& path) {
    for (const Declaration& declaration : module.declarations) {
      std::visit(
          [&](const auto& decl) { collect_one(decl, path); },
          declaration);
    }
  }

  void declare_name(const std::string& name, const char* kind, int line) {
    if (!declared_.insert(name).second) {
      fail(std::string("duplicate declaration of '") + name + "' (" + kind +
               ")",
           line);
    }
  }

  void collect_one(const StructDecl& decl, const std::string& path) {
    declare_name(decl.name, "struct", decl.line);
    unit_.structs.push_back({path, decl});
  }
  void collect_one(const EnumDecl& decl, const std::string& path) {
    declare_name(decl.name, "enum", decl.line);
    std::set<std::string> seen;
    for (const std::string& enumerator : decl.enumerators) {
      if (!seen.insert(enumerator).second) {
        fail("duplicate enumerator '" + enumerator + "' in enum " + decl.name,
             decl.line);
      }
    }
    unit_.enums.push_back({path, decl});
  }
  void collect_one(const ExceptionDecl& decl, const std::string& path) {
    declare_name(decl.name, "exception", decl.line);
    unit_.exceptions.push_back(
        {path, decl, repo_id_for(path, decl.name)});
  }
  void collect_one(const InterfaceDecl& decl, const std::string& path) {
    declare_name(decl.name, "interface", decl.line);
    unit_.interfaces.push_back(
        {path, decl, {}, repo_id_for(path, decl.name)});
  }
  void collect_one(const CharacteristicDecl& decl, const std::string& path) {
    declare_name(decl.name, "characteristic", decl.line);
    unit_.characteristics.push_back({path, decl});
  }
  void collect_one(const BindDecl& decl, const std::string& path) {
    (void)path;
    binds_.push_back(decl);
  }
  void collect_one(const std::shared_ptr<ModuleDecl>& module,
                   const std::string& path) {
    const std::string nested =
        path.empty() ? module->name : path + "::" + module->name;
    collect(*module, nested);
  }

  static std::string repo_id_for(const std::string& path,
                                 const std::string& name) {
    std::string p = path;
    for (auto& c : p) {
      if (c == ':') c = '/';
    }
    // "a::b" became "a//b"; compact.
    std::string compact;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] == '/' && i + 1 < p.size() && p[i + 1] == '/') continue;
      compact.push_back(p[i]);
    }
    if (!compact.empty()) compact += "/";
    return "IDL:" + compact + name + ":1.0";
  }

  void resolve_type(const TypePtr& type, int line) {
    if (type->kind == TypeKind::kSequence) {
      resolve_type(type->element, line);
      return;
    }
    if (type->kind != TypeKind::kNamed) return;
    if (unit_.find_struct(type->name) || unit_.find_enum(type->name)) {
      return;
    }
    if (unit_.find_exception(type->name)) {
      fail("exception '" + type->name + "' cannot be used as a data type",
           line);
    }
    fail("unknown type '" + type->name + "'", line);
  }

  void check_operation(const OperationDecl& op) {
    resolve_type(op.result, op.line);
    std::set<std::string> names;
    for (const ParamDecl& param : op.params) {
      resolve_type(param.type, op.line);
      if (!names.insert(param.name).second) {
        fail("duplicate parameter '" + param.name + "' in operation " +
                 op.name,
             op.line);
      }
    }
    for (const std::string& raised : op.raises) {
      if (unit_.find_exception(raised) == nullptr) {
        fail("operation " + op.name + " raises unknown exception '" +
                 raised + "'",
             op.line);
      }
    }
  }

  static bool literal_matches(const Literal& value, TypeKind kind) {
    return (std::holds_alternative<std::int64_t>(value) &&
            is_integral(kind)) ||
           (std::holds_alternative<double>(value) &&
            (kind == TypeKind::kFloat || kind == TypeKind::kDouble)) ||
           (std::holds_alternative<std::string>(value) &&
            kind == TypeKind::kString) ||
           (std::holds_alternative<bool>(value) &&
            kind == TypeKind::kBoolean);
  }

  void check_default_literal(const QosParamDecl& param) {
    const TypeKind kind = param.type->kind;
    const Literal& value = param.default_value;
    if (std::holds_alternative<std::monostate>(value)) return;  // synthesized
    if (!literal_matches(value, kind)) {
      fail("default value of QoS param '" + param.name +
               "' does not match its type " + type_to_string(*param.type),
           param.line);
    }
  }

  void check_characteristic(const CheckedCharacteristic& characteristic) {
    const CharacteristicDecl& decl = characteristic.decl;
    std::set<std::string> param_names;
    for (const QosParamDecl& param : decl.params) {
      if (param.type->kind == TypeKind::kSequence ||
          param.type->kind == TypeKind::kNamed) {
        fail("QoS param '" + param.name +
                 "' must have a basic type (negotiation marshals them as "
                 "Any scalars)",
             param.line);
      }
      if (!param_names.insert(param.name).second) {
        fail("duplicate QoS param '" + param.name + "'", param.line);
      }
      check_default_literal(param);
      if (param.range_min.has_value()) {
        if (!is_integral(param.type->kind)) {
          fail("range on non-integral QoS param '" + param.name + "'",
               param.line);
        }
        if (*param.range_min > *param.range_max) {
          fail("empty range on QoS param '" + param.name + "'", param.line);
        }
        if (const auto* v = std::get_if<std::int64_t>(&param.default_value)) {
          if (*v < *param.range_min || *v > *param.range_max) {
            fail("default of QoS param '" + param.name +
                     "' lies outside its range",
                 param.line);
          }
        }
      }
    }
    for (const QosDimensionDecl& dimension : decl.dimensions) {
      if (dimension.type->kind == TypeKind::kSequence ||
          dimension.type->kind == TypeKind::kNamed) {
        fail("QoS dimension '" + dimension.name +
                 "' must have a basic type (negotiation marshals ranked "
                 "values as Any scalars)",
             dimension.line);
      }
      // Dimensions share the flattened parameter namespace with params:
      // chosen points land in the same params map during negotiation.
      if (!param_names.insert(dimension.name).second) {
        fail("QoS dimension '" + dimension.name +
                 "' clashes with a param or dimension of the same name",
             dimension.line);
      }
      if (dimension.ranked.empty()) {
        fail("QoS dimension '" + dimension.name + "' has no ranked values",
             dimension.line);
      }
      for (const Literal& value : dimension.ranked) {
        if (!literal_matches(value, dimension.type->kind)) {
          fail("ranked value of QoS dimension '" + dimension.name +
                   "' does not match its type " +
                   type_to_string(*dimension.type),
               dimension.line);
        }
      }
    }
    std::set<std::string> op_names;
    for (const QosOperationDecl& op : decl.operations) {
      check_operation(op.op);
      if (!op_names.insert(op.op.name).second) {
        fail("duplicate QoS operation '" + op.op.name +
                 "' in characteristic " + decl.name,
             op.op.line);
      }
    }
  }

  void check_bind(const BindDecl& bind) {
    CheckedInterface* iface = nullptr;
    for (CheckedInterface& candidate : unit_.interfaces) {
      if (candidate.decl.name == bind.interface_name) {
        iface = &candidate;
        break;
      }
    }
    if (iface == nullptr) {
      fail("bind: unknown interface '" + bind.interface_name + "'",
           bind.line);
    }
    // Interface-granularity only; gather all QoS op names of all bound
    // characteristics and reject clashes (paper §3.2).
    std::set<std::string> qos_op_owner;
    for (const OperationDecl& op : iface->decl.operations) {
      qos_op_owner.insert(op.name);
    }
    std::set<std::string> bound(iface->bound_characteristics.begin(),
                                iface->bound_characteristics.end());
    for (const std::string& name : bind.characteristics) {
      const CheckedCharacteristic* characteristic =
          unit_.find_characteristic(name);
      if (characteristic == nullptr) {
        fail("bind: unknown characteristic '" + name + "'", bind.line);
      }
      if (!bound.insert(name).second) {
        fail("bind: characteristic '" + name + "' bound twice to " +
                 bind.interface_name,
             bind.line);
      }
      iface->bound_characteristics.push_back(name);
    }
    // Clash detection across the complete bound set.
    for (const std::string& name : iface->bound_characteristics) {
      const CheckedCharacteristic* characteristic =
          unit_.find_characteristic(name);
      for (const QosOperationDecl& op : characteristic->decl.operations) {
        if (!qos_op_owner.insert(op.op.name).second) {
          fail("bind: QoS operation '" + op.op.name + "' of '" + name +
                   "' clashes on interface " + bind.interface_name,
               bind.line);
        }
      }
    }
  }

  void resolve_and_check() {
    for (const CheckedStruct& s : unit_.structs) {
      std::set<std::string> field_names;
      for (const ParamDecl& field : s.decl.fields) {
        resolve_type(field.type, s.decl.line);
        if (field.type->kind == TypeKind::kNamed &&
            field.type->name == s.decl.name) {
          fail("struct '" + s.decl.name + "' contains itself", s.decl.line);
        }
        if (!field_names.insert(field.name).second) {
          fail("duplicate field '" + field.name + "' in struct " +
                   s.decl.name,
               s.decl.line);
        }
      }
    }
    for (const CheckedException& e : unit_.exceptions) {
      for (const ParamDecl& field : e.decl.fields) {
        resolve_type(field.type, e.decl.line);
      }
    }
    for (const CheckedInterface& iface : unit_.interfaces) {
      std::set<std::string> op_names;
      for (const OperationDecl& op : iface.decl.operations) {
        check_operation(op);
        if (!op_names.insert(op.name).second) {
          fail("duplicate operation '" + op.name + "' in interface " +
                   iface.decl.name,
               op.line);
        }
      }
    }
    for (const CheckedCharacteristic& characteristic :
         unit_.characteristics) {
      check_characteristic(characteristic);
    }
    for (const BindDecl& bind : binds_) {
      check_bind(bind);
    }
  }

  CheckedUnit unit_;
  std::vector<BindDecl> binds_;
  std::set<std::string> declared_;
};

}  // namespace

const CheckedStruct* CheckedUnit::find_struct(const std::string& name) const {
  for (const CheckedStruct& s : structs) {
    if (s.decl.name == name) return &s;
  }
  return nullptr;
}

const CheckedEnum* CheckedUnit::find_enum(const std::string& name) const {
  for (const CheckedEnum& e : enums) {
    if (e.decl.name == name) return &e;
  }
  return nullptr;
}

const CheckedException* CheckedUnit::find_exception(
    const std::string& name) const {
  for (const CheckedException& e : exceptions) {
    if (e.decl.name == name) return &e;
  }
  return nullptr;
}

const CheckedInterface* CheckedUnit::find_interface(
    const std::string& name) const {
  for (const CheckedInterface& i : interfaces) {
    if (i.decl.name == name) return &i;
  }
  return nullptr;
}

const CheckedCharacteristic* CheckedUnit::find_characteristic(
    const std::string& name) const {
  for (const CheckedCharacteristic& c : characteristics) {
    if (c.decl.name == name) return &c;
  }
  return nullptr;
}

CheckedUnit check(const Specification& spec) {
  return Checker().run(spec);
}

CheckedUnit analyze(std::string_view source) {
  return check(parse(source));
}

}  // namespace maqs::qidl

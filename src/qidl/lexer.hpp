// QIDL lexer.
//
// QIDL is OMG IDL plus the QoS extension keywords of the paper (§3.2):
// `qos characteristic`, the operation groups `mechanism` / `peer` /
// `aspect`, `param` declarations with defaults and ranges, `category`,
// and `bind` statements attaching characteristics to interfaces.
#pragma once

#include <string_view>
#include <vector>

#include "qidl/token.hpp"

namespace maqs::qidl {

/// True for QIDL keywords (IDL core + QoS extension).
bool is_qidl_keyword(std::string_view word);

/// Tokenizes a complete QIDL source. Throws QidlError on malformed input
/// (unterminated strings/comments, stray characters). The result always
/// ends with a kEnd token.
std::vector<Token> lex(std::string_view source);

}  // namespace maqs::qidl

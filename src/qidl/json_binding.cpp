#include "qidl/json_binding.hpp"

#include <string_view>

namespace maqs::qidl {

namespace {

/// Minimal JSON string escape; QIDL identifiers and type spellings are
/// ASCII, but repo ids may carry arbitrary prefixes.
void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_type(std::string& out, const TypeNode& type) {
  append_quoted(out, type_to_string(type));
}

}  // namespace

std::string emit_json_binding(const CheckedUnit& unit,
                              const JsonBindingOptions& options) {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"binding\": \"maqs-json/1\",\n  \"api_prefix\": ";
  append_quoted(out, options.api_prefix);
  out += ",\n";

  // ---- named types the routes may reference ----
  out += "  \"types\": {";
  bool first_type = true;
  for (const CheckedStruct& s : unit.structs) {
    out += first_type ? "\n" : ",\n";
    first_type = false;
    out += "    ";
    append_quoted(out, s.decl.name);
    out += ": {\"kind\": \"struct\", \"fields\": {";
    bool first_field = true;
    for (const ParamDecl& field : s.decl.fields) {
      if (!first_field) out += ", ";
      first_field = false;
      append_quoted(out, field.name);
      out += ": ";
      append_type(out, *field.type);
    }
    out += "}}";
  }
  for (const CheckedEnum& e : unit.enums) {
    out += first_type ? "\n" : ",\n";
    first_type = false;
    out += "    ";
    append_quoted(out, e.decl.name);
    out += ": {\"kind\": \"enum\", \"enumerators\": [";
    bool first_enum = true;
    for (const std::string& name : e.decl.enumerators) {
      if (!first_enum) out += ", ";
      first_enum = false;
      append_quoted(out, name);
    }
    out += "]}";
  }
  out += first_type ? "},\n" : "\n  },\n";

  // ---- interfaces and their routes ----
  out += "  \"interfaces\": [";
  bool first_iface = true;
  for (const CheckedInterface& iface : unit.interfaces) {
    out += first_iface ? "\n" : ",\n";
    first_iface = false;
    out += "    {\"name\": ";
    append_quoted(out, iface.decl.name);
    out += ", \"repo_id\": ";
    append_quoted(out, iface.repo_id);
    out += ", \"routes\": [";
    bool first_op = true;
    for (const OperationDecl& op : iface.decl.operations) {
      out += first_op ? "\n" : ",\n";
      first_op = false;
      out += "      {\"method\": \"POST\", \"path\": ";
      append_quoted(out,
                    options.api_prefix + "/" + iface.decl.name + "/" + op.name);
      out += ", \"operation\": ";
      append_quoted(out, op.name);
      out += ", \"request\": {";
      bool first_param = true;
      for (const ParamDecl& param : op.params) {
        if (!first_param) out += ", ";
        first_param = false;
        append_quoted(out, param.name);
        out += ": ";
        append_type(out, *param.type);
      }
      out += "}, \"response\": ";
      if (op.result->kind == TypeKind::kVoid) {
        out += "null";
      } else {
        append_type(out, *op.result);
      }
      if (!op.raises.empty()) {
        out += ", \"raises\": [";
        bool first_raise = true;
        for (const std::string& raise : op.raises) {
          if (!first_raise) out += ", ";
          first_raise = false;
          append_quoted(out, raise);
        }
        out += "]";
      }
      out += "}";
    }
    out += first_op ? "]}" : "\n    ]}";
  }
  out += first_iface ? "],\n" : "\n  ],\n";

  // ---- the conversion-rule table the gateway implements ----
  out += "  \"rules\": {\n"
         "    \"boolean\": \"true/false\",\n"
         "    \"octet\": \"integer 0..255\",\n"
         "    \"short\": \"integer -32768..32767\",\n"
         "    \"long\": \"integer -2^31..2^31-1\",\n"
         "    \"long long\": \"integer\",\n"
         "    \"float\": \"number\",\n"
         "    \"double\": \"number\",\n"
         "    \"string\": \"string\",\n"
         "    \"enum\": \"enumerator name (ordinal accepted)\",\n"
         "    \"sequence<T>\": \"array\",\n"
         "    \"sequence<octet>\": "
         "\"array of integers, or {\\\"$blob\\\": \\\"cid:<id>\\\"} "
         "referencing a multipart/related part\",\n"
         "    \"struct\": \"object keyed by field name; all fields "
         "required, unknown keys rejected\",\n"
         "    \"void\": \"null\"\n"
         "  }\n}\n";
  return out;
}

}  // namespace maqs::qidl

// The QIDL JSON-binding emitter (qidlc --json-binding).
//
// Alongside the C++ stub/skeleton header, the compiler can emit a
// machine-readable JSON description of how an HTTP/JSON client reaches
// each interface through the edge gateway (src/gateway). The document
// pins, per operation:
//
//   - the route: POST <prefix>/<Interface>/<operation>
//   - the request schema: an object keyed by parameter name, each value
//     spelled as its QIDL type
//   - the response schema: {"result": <type>} ({"result": null} for void)
//   - the raisable user exceptions
//
// plus the named struct/enum schemas the routes reference and the
// Any <-> JSON conversion-rule table (see src/gateway/json.hpp and
// docs/qidl.md "JSON binding"). Output is deterministic: same unit, same
// bytes — a repository test pins it against the route table the gateway
// actually builds, so the emitted contract cannot drift.
#pragma once

#include <string>

#include "qidl/sema.hpp"

namespace maqs::qidl {

struct JsonBindingOptions {
  /// Route prefix; must match gateway::GatewayConfig::api_prefix.
  std::string api_prefix = "/api";
};

/// Emits the JSON-binding document for a checked unit.
std::string emit_json_binding(const CheckedUnit& unit,
                              const JsonBindingOptions& options = {});

}  // namespace maqs::qidl

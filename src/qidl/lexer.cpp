#include "qidl/lexer.hpp"

#include <array>
#include <cctype>

namespace maqs::qidl {

namespace {
constexpr std::array kKeywords = {
    // IDL core
    "module", "interface", "struct", "enum", "exception", "void", "boolean",
    "octet", "short", "long", "float", "double", "string", "sequence", "in",
    "out", "inout", "raises",
    // QoS extension (paper §3.2)
    "qos", "characteristic", "param", "mechanism", "peer", "aspect",
    "category", "bind", "range", "dimension", "degrade",
};
}  // namespace

bool is_qidl_keyword(std::string_view word) {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int column = 1;

  const auto peek = [&](std::size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };
  const auto advance = [&]() -> char {
    const char c = source[i++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  };

  while (i < source.size()) {
    const char c = peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      const int start_column = column;
      advance();
      advance();
      while (true) {
        if (i >= source.size()) {
          throw QidlError("unterminated block comment", start_line,
                          start_column);
        }
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          break;
        }
        advance();
      }
      continue;
    }

    Token token;
    token.line = line;
    token.column = column;

    // Identifiers / keywords / bool literals.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        word.push_back(advance());
      }
      if (word == "true" || word == "false") {
        token.kind = TokenKind::kBoolLiteral;
        token.bool_value = (word == "true");
      } else if (is_qidl_keyword(word)) {
        token.kind = TokenKind::kKeyword;
      } else {
        token.kind = TokenKind::kIdentifier;
      }
      token.text = std::move(word);
      tokens.push_back(std::move(token));
      continue;
    }

    // Numbers (int or float; optional leading '-').
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string number;
      if (peek() == '-') number.push_back(advance());
      bool is_float = false;
      while (i < source.size()) {
        const char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          number.push_back(advance());
        } else if (d == '.' && peek(1) != '.') {
          // ".." is the range punctuator, not a decimal point.
          if (is_float) break;
          is_float = true;
          number.push_back(advance());
        } else {
          break;
        }
      }
      if (is_float) {
        token.kind = TokenKind::kFloatLiteral;
        token.float_value = std::stod(number);
      } else {
        token.kind = TokenKind::kIntLiteral;
        try {
          token.int_value = std::stoll(number);
        } catch (const std::out_of_range&) {
          throw QidlError("integer literal out of range", token.line,
                          token.column);
        }
      }
      token.text = std::move(number);
      tokens.push_back(std::move(token));
      continue;
    }

    // String literals.
    if (c == '"') {
      advance();
      std::string value;
      while (true) {
        if (i >= source.size() || peek() == '\n') {
          throw QidlError("unterminated string literal", token.line,
                          token.column);
        }
        const char d = advance();
        if (d == '"') break;
        if (d == '\\') {
          if (i >= source.size()) {
            throw QidlError("unterminated escape", token.line, token.column);
          }
          const char e = advance();
          switch (e) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case '"': value.push_back('"'); break;
            case '\\': value.push_back('\\'); break;
            default:
              throw QidlError(std::string("bad escape '\\") + e + "'",
                              token.line, token.column);
          }
          continue;
        }
        value.push_back(d);
      }
      token.kind = TokenKind::kStringLiteral;
      token.string_value = std::move(value);
      token.text = "\"...\"";
      tokens.push_back(std::move(token));
      continue;
    }

    // Punctuation (multi-char first).
    if (c == ':' && peek(1) == ':') {
      advance();
      advance();
      token.kind = TokenKind::kPunct;
      token.text = "::";
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '.' && peek(1) == '.') {
      advance();
      advance();
      token.kind = TokenKind::kPunct;
      token.text = "..";
      tokens.push_back(std::move(token));
      continue;
    }
    static constexpr std::string_view kSingle = "{}()<>,;:=";
    if (kSingle.find(c) != std::string_view::npos) {
      advance();
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      continue;
    }

    throw QidlError(std::string("stray character '") + c + "'", line,
                    column);
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace maqs::qidl

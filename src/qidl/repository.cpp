#include "qidl/repository.hpp"

namespace maqs::qidl {

const OperationSignature* InterfaceEntry::find_operation(
    const std::string& op_name) const {
  for (const OperationSignature& op : operations) {
    if (op.name == op_name) return &op;
  }
  return nullptr;
}

cdr::TypeCodePtr typecode_for(
    const TypeNode& type,
    const std::map<std::string, cdr::TypeCodePtr>& named) {
  switch (type.kind) {
    case TypeKind::kVoid: return cdr::TypeCode::void_tc();
    case TypeKind::kBoolean: return cdr::TypeCode::boolean_tc();
    case TypeKind::kOctet: return cdr::TypeCode::octet_tc();
    case TypeKind::kShort: return cdr::TypeCode::short_tc();
    case TypeKind::kLong: return cdr::TypeCode::long_tc();
    case TypeKind::kLongLong: return cdr::TypeCode::longlong_tc();
    case TypeKind::kFloat: return cdr::TypeCode::float_tc();
    case TypeKind::kDouble: return cdr::TypeCode::double_tc();
    case TypeKind::kString: return cdr::TypeCode::string_tc();
    case TypeKind::kSequence:
      return cdr::TypeCode::sequence_tc(typecode_for(*type.element, named));
    case TypeKind::kNamed: {
      auto it = named.find(type.name);
      if (it == named.end()) {
        throw QidlError("repository: unresolved type '" + type.name + "'",
                        0, 0);
      }
      return it->second;
    }
  }
  throw QidlError("repository: bad type kind", 0, 0);
}

core::QosCategory category_from_string(const std::string& category) {
  if (category == "fault_tolerance") return core::QosCategory::kFaultTolerance;
  if (category == "performance") return core::QosCategory::kPerformance;
  if (category == "bandwidth") return core::QosCategory::kBandwidth;
  if (category == "actuality") return core::QosCategory::kActuality;
  if (category == "privacy") return core::QosCategory::kPrivacy;
  return core::QosCategory::kOther;
}

namespace {

cdr::Any default_any_for(const QosParamDecl& param) {
  const TypeKind kind = param.type->kind;
  const Literal& literal = param.default_value;
  const auto int_default = [&]() -> std::int64_t {
    if (const auto* v = std::get_if<std::int64_t>(&literal)) return *v;
    return param.range_min.value_or(0);
  };
  switch (kind) {
    case TypeKind::kBoolean:
      return cdr::Any::from_bool(
          std::holds_alternative<bool>(literal) && std::get<bool>(literal));
    case TypeKind::kOctet:
      return cdr::Any::from_octet(static_cast<std::uint8_t>(int_default()));
    case TypeKind::kShort:
      return cdr::Any::from_short(static_cast<std::int16_t>(int_default()));
    case TypeKind::kLong:
      return cdr::Any::from_long(static_cast<std::int32_t>(int_default()));
    case TypeKind::kLongLong:
      return cdr::Any::from_longlong(int_default());
    case TypeKind::kFloat:
      return cdr::Any::from_float(
          std::holds_alternative<double>(literal)
              ? static_cast<float>(std::get<double>(literal))
              : 0.0f);
    case TypeKind::kDouble:
      return cdr::Any::from_double(std::holds_alternative<double>(literal)
                                       ? std::get<double>(literal)
                                       : 0.0);
    case TypeKind::kString:
      return cdr::Any::from_string(
          std::holds_alternative<std::string>(literal)
              ? std::get<std::string>(literal)
              : "");
    default:
      throw QidlError("QoS param '" + param.name + "' has no Any mapping",
                      param.line, 1);
  }
}

/// A ranked dimension value as a wire Any. Sema has already verified the
/// literal alternative matches the declared type, so std::get is safe.
cdr::Any any_for_literal(const Literal& literal, const QosDimensionDecl& dim) {
  const auto int_value = [&] { return std::get<std::int64_t>(literal); };
  switch (dim.type->kind) {
    case TypeKind::kBoolean:
      return cdr::Any::from_bool(std::get<bool>(literal));
    case TypeKind::kOctet:
      return cdr::Any::from_octet(static_cast<std::uint8_t>(int_value()));
    case TypeKind::kShort:
      return cdr::Any::from_short(static_cast<std::int16_t>(int_value()));
    case TypeKind::kLong:
      return cdr::Any::from_long(static_cast<std::int32_t>(int_value()));
    case TypeKind::kLongLong:
      return cdr::Any::from_longlong(int_value());
    case TypeKind::kFloat:
      return cdr::Any::from_float(
          static_cast<float>(std::get<double>(literal)));
    case TypeKind::kDouble:
      return cdr::Any::from_double(std::get<double>(literal));
    case TypeKind::kString:
      return cdr::Any::from_string(std::get<std::string>(literal));
    default:
      throw QidlError(
          "QoS dimension '" + dim.name + "' has no Any mapping", dim.line, 1);
  }
}

core::QosOpKind op_kind(QosOpGroup group) {
  switch (group) {
    case QosOpGroup::kMechanism: return core::QosOpKind::kMechanism;
    case QosOpGroup::kPeer: return core::QosOpKind::kPeer;
    case QosOpGroup::kAspect: return core::QosOpKind::kAspect;
  }
  return core::QosOpKind::kMechanism;
}

}  // namespace

core::CharacteristicDescriptor to_descriptor(const CharacteristicDecl& decl) {
  static const std::map<std::string, cdr::TypeCodePtr> kNoNamed;
  std::vector<core::ParamDesc> params;
  for (const QosParamDecl& param : decl.params) {
    core::ParamDesc desc;
    desc.name = param.name;
    desc.type = typecode_for(*param.type, kNoNamed);
    desc.default_value = default_any_for(param);
    desc.min = param.range_min;
    desc.max = param.range_max;
    params.push_back(std::move(desc));
  }
  std::vector<core::DimensionDesc> dimensions;
  for (const QosDimensionDecl& dimension : decl.dimensions) {
    core::DimensionDesc desc;
    desc.name = dimension.name;
    for (const Literal& value : dimension.ranked) {
      desc.ranked.push_back(any_for_literal(value, dimension));
    }
    desc.degrade_rank = static_cast<int>(dimension.degrade_rank);
    dimensions.push_back(std::move(desc));
  }
  std::vector<core::QosOpDesc> ops;
  for (const QosOperationDecl& op : decl.operations) {
    ops.push_back(core::QosOpDesc{op.op.name, op_kind(op.group)});
  }
  return core::CharacteristicDescriptor(
      decl.name, category_from_string(decl.category), std::move(params),
      std::move(dimensions), std::move(ops));
}

InterfaceRepository InterfaceRepository::build(const CheckedUnit& unit) {
  InterfaceRepository repo;
  // Enums first (no dependencies), then structs (may reference enums and
  // earlier structs; sema guarantees definition-before-use ordering is
  // resolvable because self-reference is rejected and forward references
  // across structs are rare — resolve iteratively).
  for (const CheckedEnum& e : unit.enums) {
    repo.named_types_[e.decl.name] =
        cdr::TypeCode::enum_tc(e.decl.name, e.decl.enumerators);
  }
  // Iterate until all structs resolve (handles any declaration order).
  std::vector<const CheckedStruct*> pending;
  for (const CheckedStruct& s : unit.structs) pending.push_back(&s);
  while (!pending.empty()) {
    const std::size_t before = pending.size();
    for (auto it = pending.begin(); it != pending.end();) {
      const CheckedStruct* s = *it;
      try {
        std::vector<std::pair<std::string, cdr::TypeCodePtr>> members;
        for (const ParamDecl& field : s->decl.fields) {
          members.emplace_back(
              field.name, typecode_for(*field.type, repo.named_types_));
        }
        repo.named_types_[s->decl.name] =
            cdr::TypeCode::struct_tc(s->decl.name, std::move(members));
        it = pending.erase(it);
      } catch (const QidlError&) {
        ++it;  // dependency not resolved yet
      }
    }
    if (pending.size() == before) {
      throw QidlError("repository: cyclic or unresolved struct '" +
                          pending.front()->decl.name + "'",
                      pending.front()->decl.line, 1);
    }
  }

  for (const CheckedInterface& iface : unit.interfaces) {
    InterfaceEntry entry;
    entry.name = iface.decl.name;
    entry.repo_id = iface.repo_id;
    entry.bound_characteristics = iface.bound_characteristics;
    for (const OperationDecl& op : iface.decl.operations) {
      OperationSignature signature;
      signature.name = op.name;
      signature.result = typecode_for(*op.result, repo.named_types_);
      for (const ParamDecl& param : op.params) {
        signature.params.emplace_back(
            param.name, typecode_for(*param.type, repo.named_types_));
      }
      for (const std::string& raised : op.raises) {
        signature.raises.push_back(
            unit.find_exception(raised)->repo_id);
      }
      entry.operations.push_back(std::move(signature));
    }
    repo.interfaces_.push_back(std::move(entry));
  }

  for (const CheckedCharacteristic& characteristic : unit.characteristics) {
    repo.catalog_.add(to_descriptor(characteristic.decl));
  }
  return repo;
}

const InterfaceEntry* InterfaceRepository::find_interface(
    const std::string& name) const {
  for (const InterfaceEntry& entry : interfaces_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const InterfaceEntry* InterfaceRepository::find_by_repo_id(
    const std::string& repo_id) const {
  for (const InterfaceEntry& entry : interfaces_) {
    if (entry.repo_id == repo_id) return &entry;
  }
  return nullptr;
}

const core::CharacteristicDescriptor& InterfaceRepository::characteristic(
    const std::string& name) const {
  return catalog_.get(name);
}

cdr::TypeCodePtr InterfaceRepository::named_type(
    const std::string& name) const {
  auto it = named_types_.find(name);
  return it != named_types_.end() ? it->second : nullptr;
}

std::vector<std::string> InterfaceRepository::interface_names() const {
  std::vector<std::string> out;
  out.reserve(interfaces_.size());
  for (const InterfaceEntry& entry : interfaces_) out.push_back(entry.name);
  return out;
}

}  // namespace maqs::qidl

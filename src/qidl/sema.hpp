// QIDL semantic analysis.
//
// Resolves names, enforces the QIDL rules and produces a flattened,
// checked unit that the interface repository and the emitter consume.
// Notable rules from the paper:
//   - QoS assignment (`bind`) targets interfaces only (§3.2); there is no
//     syntax for finer granularity, and sema additionally rejects
//     characteristics whose QoS operation names clash when bound to the
//     same interface, or clash with the interface's own operations —
//     "possible conflicts ... are hard to resolve and therefore
//     forbidden".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qidl/ast.hpp"
#include "qidl/token.hpp"

namespace maqs::qidl {

/// Fully-qualified, resolved view of one interface.
struct CheckedInterface {
  std::string module;  // "" = file scope
  InterfaceDecl decl;
  std::vector<std::string> bound_characteristics;  // names, checked
  /// CORBA-style repository id, e.g. "IDL:demo/Hello:1.0".
  std::string repo_id;
};

struct CheckedCharacteristic {
  std::string module;
  CharacteristicDecl decl;
};

struct CheckedStruct {
  std::string module;
  StructDecl decl;
};

struct CheckedEnum {
  std::string module;
  EnumDecl decl;
};

struct CheckedException {
  std::string module;
  ExceptionDecl decl;
  std::string repo_id;
};

/// The checked compilation unit. Declarations are flattened with their
/// module path; lookups are by simple name (QIDL modules are namespaces
/// for emitted code, not for name resolution, which keeps the language
/// small).
struct CheckedUnit {
  std::vector<CheckedStruct> structs;
  std::vector<CheckedEnum> enums;
  std::vector<CheckedException> exceptions;
  std::vector<CheckedInterface> interfaces;
  std::vector<CheckedCharacteristic> characteristics;

  const CheckedStruct* find_struct(const std::string& name) const;
  const CheckedEnum* find_enum(const std::string& name) const;
  const CheckedException* find_exception(const std::string& name) const;
  const CheckedInterface* find_interface(const std::string& name) const;
  const CheckedCharacteristic* find_characteristic(
      const std::string& name) const;
};

/// Runs all checks. Throws QidlError on the first violation.
CheckedUnit check(const Specification& spec);

/// Convenience: parse + check.
CheckedUnit analyze(std::string_view source);

}  // namespace maqs::qidl

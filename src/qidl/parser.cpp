#include "qidl/parser.hpp"

#include "qidl/lexer.hpp"

namespace maqs::qidl {

// ---- AST helpers ----

TypePtr make_basic_type(TypeKind kind) {
  auto t = std::make_shared<TypeNode>();
  t->kind = kind;
  return t;
}

TypePtr make_sequence_type(TypePtr element) {
  auto t = std::make_shared<TypeNode>();
  t->kind = TypeKind::kSequence;
  t->element = std::move(element);
  return t;
}

TypePtr make_named_type(std::string name) {
  auto t = std::make_shared<TypeNode>();
  t->kind = TypeKind::kNamed;
  t->name = std::move(name);
  return t;
}

std::string type_to_string(const TypeNode& type) {
  switch (type.kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "boolean";
    case TypeKind::kOctet: return "octet";
    case TypeKind::kShort: return "short";
    case TypeKind::kLong: return "long";
    case TypeKind::kLongLong: return "long long";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kString: return "string";
    case TypeKind::kSequence:
      return "sequence<" + type_to_string(*type.element) + ">";
    case TypeKind::kNamed: return type.name;
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Specification parse_specification() {
    Specification spec;
    while (!at_end()) {
      spec.declarations.push_back(parse_declaration());
    }
    return spec;
  }

 private:
  const Token& peek(std::size_t offset = 0) const {
    const std::size_t index = std::min(pos_ + offset, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool at_end() const { return peek().kind == TokenKind::kEnd; }

  [[noreturn]] void fail(const std::string& what) const {
    throw QidlError(what + " (found '" + peek().text + "')", peek().line,
                    peek().column);
  }

  const Token& expect_punct(const std::string& p) {
    if (!peek().is_punct(p)) fail("expected '" + p + "'");
    return advance();
  }
  const Token& expect_keyword(const std::string& kw) {
    if (!peek().is_keyword(kw)) fail("expected '" + kw + "'");
    return advance();
  }
  std::string expect_identifier(const std::string& what) {
    if (!peek().is_identifier()) fail("expected " + what);
    return advance().text;
  }
  bool accept_punct(const std::string& p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }

  Declaration parse_declaration() {
    const Token& token = peek();
    if (token.is_keyword("module")) return parse_module();
    if (token.is_keyword("interface")) return parse_interface();
    if (token.is_keyword("struct")) return parse_struct();
    if (token.is_keyword("enum")) return parse_enum();
    if (token.is_keyword("exception")) return parse_exception();
    if (token.is_keyword("qos")) return parse_characteristic();
    if (token.is_keyword("bind")) return parse_bind();
    fail("expected a declaration");
  }

  std::shared_ptr<ModuleDecl> parse_module() {
    auto module = std::make_shared<ModuleDecl>();
    module->line = peek().line;
    expect_keyword("module");
    module->name = expect_identifier("module name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated module");
      module->declarations.push_back(parse_declaration());
    }
    expect_punct("}");
    accept_punct(";");
    return module;
  }

  TypePtr parse_type() {
    const Token& token = peek();
    if (token.is_keyword("void")) {
      advance();
      return make_basic_type(TypeKind::kVoid);
    }
    if (token.is_keyword("boolean")) {
      advance();
      return make_basic_type(TypeKind::kBoolean);
    }
    if (token.is_keyword("octet")) {
      advance();
      return make_basic_type(TypeKind::kOctet);
    }
    if (token.is_keyword("short")) {
      advance();
      return make_basic_type(TypeKind::kShort);
    }
    if (token.is_keyword("long")) {
      advance();
      if (peek().is_keyword("long")) {
        advance();
        return make_basic_type(TypeKind::kLongLong);
      }
      return make_basic_type(TypeKind::kLong);
    }
    if (token.is_keyword("float")) {
      advance();
      return make_basic_type(TypeKind::kFloat);
    }
    if (token.is_keyword("double")) {
      advance();
      return make_basic_type(TypeKind::kDouble);
    }
    if (token.is_keyword("string")) {
      advance();
      return make_basic_type(TypeKind::kString);
    }
    if (token.is_keyword("sequence")) {
      advance();
      expect_punct("<");
      TypePtr element = parse_type();
      if (element->kind == TypeKind::kVoid) {
        fail("sequence of void is not a type");
      }
      expect_punct(">");
      return make_sequence_type(std::move(element));
    }
    if (token.is_identifier()) {
      return make_named_type(advance().text);
    }
    fail("expected a type");
  }

  OperationDecl parse_operation() {
    OperationDecl op;
    op.line = peek().line;
    op.result = parse_type();
    op.name = expect_identifier("operation name");
    expect_punct("(");
    if (!peek().is_punct(")")) {
      while (true) {
        ParamDecl param;
        if (peek().is_keyword("in")) {
          advance();
        } else if (peek().is_keyword("out") || peek().is_keyword("inout")) {
          fail("only 'in' parameters are supported by the QIDL mapping");
        }
        param.type = parse_type();
        if (param.type->kind == TypeKind::kVoid) {
          fail("void parameter");
        }
        param.name = expect_identifier("parameter name");
        op.params.push_back(std::move(param));
        if (!accept_punct(",")) break;
      }
    }
    expect_punct(")");
    if (peek().is_keyword("raises")) {
      advance();
      expect_punct("(");
      while (true) {
        op.raises.push_back(expect_identifier("exception name"));
        if (!accept_punct(",")) break;
      }
      expect_punct(")");
    }
    expect_punct(";");
    return op;
  }

  InterfaceDecl parse_interface() {
    InterfaceDecl decl;
    decl.line = peek().line;
    expect_keyword("interface");
    decl.name = expect_identifier("interface name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated interface");
      decl.operations.push_back(parse_operation());
    }
    expect_punct("}");
    expect_punct(";");
    return decl;
  }

  std::vector<ParamDecl> parse_field_block(const char* what) {
    std::vector<ParamDecl> fields;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail(std::string("unterminated ") + what);
      ParamDecl field;
      field.type = parse_type();
      if (field.type->kind == TypeKind::kVoid) fail("void field");
      field.name = expect_identifier("field name");
      expect_punct(";");
      fields.push_back(std::move(field));
    }
    expect_punct("}");
    expect_punct(";");
    return fields;
  }

  StructDecl parse_struct() {
    StructDecl decl;
    decl.line = peek().line;
    expect_keyword("struct");
    decl.name = expect_identifier("struct name");
    decl.fields = parse_field_block("struct");
    return decl;
  }

  ExceptionDecl parse_exception() {
    ExceptionDecl decl;
    decl.line = peek().line;
    expect_keyword("exception");
    decl.name = expect_identifier("exception name");
    decl.fields = parse_field_block("exception");
    return decl;
  }

  EnumDecl parse_enum() {
    EnumDecl decl;
    decl.line = peek().line;
    expect_keyword("enum");
    decl.name = expect_identifier("enum name");
    expect_punct("{");
    while (true) {
      decl.enumerators.push_back(expect_identifier("enumerator"));
      if (!accept_punct(",")) break;
    }
    expect_punct("}");
    expect_punct(";");
    return decl;
  }

  Literal parse_literal() {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::kIntLiteral:
        advance();
        return token.int_value;
      case TokenKind::kFloatLiteral:
        advance();
        return token.float_value;
      case TokenKind::kStringLiteral:
        advance();
        return token.string_value;
      case TokenKind::kBoolLiteral:
        advance();
        return token.bool_value;
      default:
        fail("expected a literal");
    }
  }

  CharacteristicDecl parse_characteristic() {
    CharacteristicDecl decl;
    decl.line = peek().line;
    expect_keyword("qos");
    expect_keyword("characteristic");
    decl.name = expect_identifier("characteristic name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (at_end()) fail("unterminated characteristic");
      if (peek().is_keyword("category")) {
        advance();
        decl.category = expect_identifier("category name");
        expect_punct(";");
        continue;
      }
      if (peek().is_keyword("param")) {
        advance();
        QosParamDecl param;
        param.line = peek().line;
        param.type = parse_type();
        if (param.type->kind == TypeKind::kVoid) fail("void QoS param");
        param.name = expect_identifier("QoS param name");
        if (accept_punct("=")) {
          param.default_value = parse_literal();
        }
        if (peek().is_keyword("range")) {
          advance();
          if (peek().kind != TokenKind::kIntLiteral) {
            fail("expected range lower bound");
          }
          param.range_min = advance().int_value;
          expect_punct("..");
          if (peek().kind != TokenKind::kIntLiteral) {
            fail("expected range upper bound");
          }
          param.range_max = advance().int_value;
        }
        expect_punct(";");
        decl.params.push_back(std::move(param));
        continue;
      }
      if (peek().is_keyword("dimension")) {
        advance();
        QosDimensionDecl dimension;
        dimension.line = peek().line;
        dimension.type = parse_type();
        if (dimension.type->kind == TypeKind::kVoid) {
          fail("void QoS dimension");
        }
        dimension.name = expect_identifier("QoS dimension name");
        expect_punct("=");
        expect_punct("{");
        while (true) {
          dimension.ranked.push_back(parse_literal());
          if (!accept_punct(",")) break;
        }
        expect_punct("}");
        if (peek().is_keyword("degrade")) {
          advance();
          if (peek().kind != TokenKind::kIntLiteral) {
            fail("expected degrade rank");
          }
          dimension.degrade_rank = advance().int_value;
        }
        expect_punct(";");
        decl.dimensions.push_back(std::move(dimension));
        continue;
      }
      QosOperationDecl op;
      if (peek().is_keyword("mechanism")) {
        advance();
        op.group = QosOpGroup::kMechanism;
      } else if (peek().is_keyword("peer")) {
        advance();
        op.group = QosOpGroup::kPeer;
      } else if (peek().is_keyword("aspect")) {
        advance();
        op.group = QosOpGroup::kAspect;
      } else {
        fail("expected 'category', 'param', 'dimension', 'mechanism', "
             "'peer' or 'aspect'");
      }
      op.op = parse_operation();
      decl.operations.push_back(std::move(op));
    }
    expect_punct("}");
    expect_punct(";");
    return decl;
  }

  BindDecl parse_bind() {
    BindDecl decl;
    decl.line = peek().line;
    expect_keyword("bind");
    decl.interface_name = expect_identifier("interface name");
    expect_punct(":");
    while (true) {
      decl.characteristics.push_back(
          expect_identifier("characteristic name"));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
    return decl;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Specification parse(std::string_view source) {
  return Parser(source).parse_specification();
}

}  // namespace maqs::qidl

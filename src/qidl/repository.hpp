// Interface repository: the checked QIDL unit exposed at runtime.
//
// Bridges the QIDL front-end to the DII and the QoS core: operation
// signatures as TypeCodes (so dynamic clients can build requests without
// generated stubs) and `qos characteristic` declarations as the
// CharacteristicDescriptor objects the negotiation layer consumes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cdr/typecode.hpp"
#include "core/characteristic.hpp"
#include "qidl/sema.hpp"

namespace maqs::qidl {

struct OperationSignature {
  std::string name;
  cdr::TypeCodePtr result;
  std::vector<std::pair<std::string, cdr::TypeCodePtr>> params;
  std::vector<std::string> raises;  // repository ids
};

struct InterfaceEntry {
  std::string name;
  std::string repo_id;
  std::vector<OperationSignature> operations;
  std::vector<std::string> bound_characteristics;

  const OperationSignature* find_operation(const std::string& name) const;
};

class InterfaceRepository {
 public:
  /// Builds the repository from a checked unit. Throws QidlError on
  /// constructs that have no runtime mapping.
  static InterfaceRepository build(const CheckedUnit& unit);

  const InterfaceEntry* find_interface(const std::string& name) const;
  const InterfaceEntry* find_by_repo_id(const std::string& repo_id) const;
  /// Throws QosError when unknown.
  const core::CharacteristicDescriptor& characteristic(
      const std::string& name) const;
  const core::CharacteristicCatalog& catalog() const noexcept {
    return catalog_;
  }
  /// TypeCode of a named struct/enum.
  cdr::TypeCodePtr named_type(const std::string& name) const;

  std::vector<std::string> interface_names() const;

 private:
  std::vector<InterfaceEntry> interfaces_;
  core::CharacteristicCatalog catalog_;
  std::map<std::string, cdr::TypeCodePtr> named_types_;
};

/// Maps a QIDL type to its runtime TypeCode. `named` resolves struct/enum
/// references; throws QidlError on unresolved names.
cdr::TypeCodePtr typecode_for(
    const TypeNode& type,
    const std::map<std::string, cdr::TypeCodePtr>& named);

/// Maps a QIDL category identifier ("fault_tolerance", "performance",
/// "bandwidth", "actuality", "privacy", anything else -> kOther).
core::QosCategory category_from_string(const std::string& category);

/// Converts a checked characteristic into the runtime descriptor
/// (synthesizing zero-value defaults for params without one).
core::CharacteristicDescriptor to_descriptor(
    const CharacteristicDecl& decl);

}  // namespace maqs::qidl

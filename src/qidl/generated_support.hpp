// Runtime support for qidlc-generated code.
//
// Generated marshaling is expressed as unqualified `write(enc, v)` /
// `read(dec, v)` calls after `using maqs::qidl::gen::write;` — basic types
// resolve here, generated structs/enums resolve via ADL in their own
// namespace, and the vector overloads recurse through both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::qidl::gen {

inline void write(cdr::Encoder& enc, bool v) { enc.write_bool(v); }
inline void write(cdr::Encoder& enc, std::uint8_t v) { enc.write_u8(v); }
inline void write(cdr::Encoder& enc, std::int16_t v) { enc.write_i16(v); }
inline void write(cdr::Encoder& enc, std::int32_t v) { enc.write_i32(v); }
inline void write(cdr::Encoder& enc, std::int64_t v) { enc.write_i64(v); }
inline void write(cdr::Encoder& enc, float v) { enc.write_f32(v); }
inline void write(cdr::Encoder& enc, double v) { enc.write_f64(v); }
inline void write(cdr::Encoder& enc, const std::string& v) {
  enc.write_string(v);
}

inline void read(cdr::Decoder& dec, bool& v) { v = dec.read_bool(); }
inline void read(cdr::Decoder& dec, std::uint8_t& v) { v = dec.read_u8(); }
inline void read(cdr::Decoder& dec, std::int16_t& v) { v = dec.read_i16(); }
inline void read(cdr::Decoder& dec, std::int32_t& v) { v = dec.read_i32(); }
inline void read(cdr::Decoder& dec, std::int64_t& v) { v = dec.read_i64(); }
inline void read(cdr::Decoder& dec, float& v) { v = dec.read_f32(); }
inline void read(cdr::Decoder& dec, double& v) { v = dec.read_f64(); }
inline void read(cdr::Decoder& dec, std::string& v) {
  v = dec.read_string();
}

template <typename T>
void write(cdr::Encoder& enc, const std::vector<T>& v) {
  enc.write_u32(static_cast<std::uint32_t>(v.size()));
  for (const T& item : v) write(enc, item);
}

template <typename T>
void read(cdr::Decoder& dec, std::vector<T>& v) {
  const std::uint32_t n = dec.read_u32();
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T item{};
    read(dec, item);
    v.push_back(std::move(item));
  }
}

}  // namespace maqs::qidl::gen

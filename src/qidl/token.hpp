// QIDL token model.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace maqs::qidl {

/// Raised by any front-end stage; carries line/column of the offence.
class QidlError : public Error {
 public:
  QidlError(const std::string& what, int line, int column)
      : Error("qidl:" + std::to_string(line) + ":" + std::to_string(column) +
              ": " + what),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

enum class TokenKind : std::uint8_t {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kBoolLiteral,
  kPunct,  // one of { } ( ) < > , ; : = .. ::
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/keyword/punct spelling
  std::int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;
  bool bool_value = false;
  int line = 1;
  int column = 1;

  bool is_keyword(const std::string& kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool is_punct(const std::string& p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool is_identifier() const { return kind == TokenKind::kIdentifier; }
};

}  // namespace maqs::qidl

// QIDL recursive-descent parser.
#pragma once

#include <string_view>

#include "qidl/ast.hpp"
#include "qidl/token.hpp"

namespace maqs::qidl {

/// Parses a QIDL source into its AST. Throws QidlError with position
/// information on syntax errors.
Specification parse(std::string_view source);

}  // namespace maqs::qidl

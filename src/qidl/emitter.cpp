#include "qidl/emitter.hpp"

#include <map>
#include <set>
#include <sstream>

#include "qidl/repository.hpp"

namespace maqs::qidl {

namespace {

// ---- type mapping ----

std::string cpp_type(const TypeNode& type) {
  switch (type.kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "bool";
    case TypeKind::kOctet: return "std::uint8_t";
    case TypeKind::kShort: return "std::int16_t";
    case TypeKind::kLong: return "std::int32_t";
    case TypeKind::kLongLong: return "std::int64_t";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kString: return "std::string";
    case TypeKind::kSequence:
      return "std::vector<" + cpp_type(*type.element) + ">";
    case TypeKind::kNamed: return type.name;
  }
  return "void";
}

bool pass_by_value(const TypeNode& type, const CheckedUnit& unit) {
  switch (type.kind) {
    case TypeKind::kString:
    case TypeKind::kSequence:
      return false;
    case TypeKind::kNamed:
      return unit.find_enum(type.name) != nullptr;  // enums by value
    default:
      return true;
  }
}

std::string cpp_param(const TypeNode& type, const CheckedUnit& unit) {
  const std::string base = cpp_type(type);
  return pass_by_value(type, unit) ? base : "const " + base + "&";
}

/// Any factory / accessor names for basic types (mediator dispatch).
const char* any_suffix(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBoolean: return "bool";
    case TypeKind::kOctet: return "octet";
    case TypeKind::kShort: return "short";
    case TypeKind::kLong: return "long";
    case TypeKind::kLongLong: return "longlong";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kString: return "string";
    default: return nullptr;
  }
}

std::string typecode_expr(const TypeNode& type) {
  switch (type.kind) {
    case TypeKind::kBoolean: return "maqs::cdr::TypeCode::boolean_tc()";
    case TypeKind::kOctet: return "maqs::cdr::TypeCode::octet_tc()";
    case TypeKind::kShort: return "maqs::cdr::TypeCode::short_tc()";
    case TypeKind::kLong: return "maqs::cdr::TypeCode::long_tc()";
    case TypeKind::kLongLong: return "maqs::cdr::TypeCode::longlong_tc()";
    case TypeKind::kFloat: return "maqs::cdr::TypeCode::float_tc()";
    case TypeKind::kDouble: return "maqs::cdr::TypeCode::double_tc()";
    case TypeKind::kString: return "maqs::cdr::TypeCode::string_tc()";
    default: return "maqs::cdr::TypeCode::void_tc()";
  }
}

std::string escape_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string default_any_expr(const QosParamDecl& param) {
  const auto int_value = [&]() -> std::int64_t {
    if (const auto* v = std::get_if<std::int64_t>(&param.default_value)) {
      return *v;
    }
    return param.range_min.value_or(0);
  };
  switch (param.type->kind) {
    case TypeKind::kBoolean: {
      const bool v = std::holds_alternative<bool>(param.default_value) &&
                     std::get<bool>(param.default_value);
      return std::string("maqs::cdr::Any::from_bool(") +
             (v ? "true" : "false") + ")";
    }
    case TypeKind::kOctet:
      return "maqs::cdr::Any::from_octet(" + std::to_string(int_value()) +
             ")";
    case TypeKind::kShort:
      return "maqs::cdr::Any::from_short(" + std::to_string(int_value()) +
             ")";
    case TypeKind::kLong:
      return "maqs::cdr::Any::from_long(" + std::to_string(int_value()) +
             ")";
    case TypeKind::kLongLong:
      return "maqs::cdr::Any::from_longlong(" + std::to_string(int_value()) +
             ")";
    case TypeKind::kFloat:
    case TypeKind::kDouble: {
      double v = 0;
      if (const auto* d = std::get_if<double>(&param.default_value)) v = *d;
      std::ostringstream out;
      out.precision(17);
      out << (param.type->kind == TypeKind::kFloat
                  ? "maqs::cdr::Any::from_float("
                  : "maqs::cdr::Any::from_double(")
          << v << ")";
      return out.str();
    }
    case TypeKind::kString: {
      std::string v;
      if (const auto* s = std::get_if<std::string>(&param.default_value)) {
        v = *s;
      }
      return "maqs::cdr::Any::from_string(" + escape_string(v) + ")";
    }
    default:
      return "maqs::cdr::Any::make_void()";
  }
}

std::string literal_any_expr(const Literal& literal, const TypeNode& type) {
  switch (type.kind) {
    case TypeKind::kBoolean:
      return std::string("maqs::cdr::Any::from_bool(") +
             (std::get<bool>(literal) ? "true" : "false") + ")";
    case TypeKind::kOctet:
      return "maqs::cdr::Any::from_octet(" +
             std::to_string(std::get<std::int64_t>(literal)) + ")";
    case TypeKind::kShort:
      return "maqs::cdr::Any::from_short(" +
             std::to_string(std::get<std::int64_t>(literal)) + ")";
    case TypeKind::kLong:
      return "maqs::cdr::Any::from_long(" +
             std::to_string(std::get<std::int64_t>(literal)) + ")";
    case TypeKind::kLongLong:
      return "maqs::cdr::Any::from_longlong(" +
             std::to_string(std::get<std::int64_t>(literal)) + ")";
    case TypeKind::kFloat:
    case TypeKind::kDouble: {
      std::ostringstream out;
      out.precision(17);
      out << (type.kind == TypeKind::kFloat ? "maqs::cdr::Any::from_float("
                                            : "maqs::cdr::Any::from_double(")
          << std::get<double>(literal) << ")";
      return out.str();
    }
    case TypeKind::kString:
      return "maqs::cdr::Any::from_string(" +
             escape_string(std::get<std::string>(literal)) + ")";
    default:
      return "maqs::cdr::Any::make_void()";
  }
}

// ---- emitter ----

class Emitter {
 public:
  Emitter(const CheckedUnit& unit, const EmitterOptions& options)
      : unit_(unit), options_(options) {}

  std::string run() {
    line("// " + options_.banner);
    line("#pragma once");
    line("");
    line("#include <cstdint>");
    line("#include <string>");
    line("#include <vector>");
    line("");
    line("#include \"cdr/decoder.hpp\"");
    line("#include \"cdr/encoder.hpp\"");
    line("#include \"core/characteristic.hpp\"");
    line("#include \"core/mediator.hpp\"");
    line("#include \"core/qos_skeleton.hpp\"");
    line("#include \"orb/exceptions.hpp\"");
    line("#include \"orb/servant.hpp\"");
    line("#include \"orb/stub.hpp\"");
    line("#include \"qidl/generated_support.hpp\"");
    line("");

    // Group declarations by module, preserving first-appearance order.
    std::vector<std::string> module_order;
    std::set<std::string> seen;
    auto note_module = [&](const std::string& module) {
      if (seen.insert(module).second) module_order.push_back(module);
    };
    for (const auto& d : unit_.enums) note_module(d.module);
    for (const auto& d : unit_.structs) note_module(d.module);
    for (const auto& d : unit_.exceptions) note_module(d.module);
    for (const auto& d : unit_.characteristics) note_module(d.module);
    for (const auto& d : unit_.interfaces) note_module(d.module);

    for (const std::string& module : module_order) {
      open_namespace(module);
      for (const auto& d : unit_.enums) {
        if (d.module == module) emit_enum(d.decl);
      }
      emit_structs_for(module);
      for (const auto& d : unit_.exceptions) {
        if (d.module == module) emit_exception(d);
      }
      for (const auto& d : unit_.characteristics) {
        if (d.module == module) emit_characteristic(d.decl);
      }
      for (const auto& d : unit_.interfaces) {
        if (d.module == module) emit_interface(d);
      }
      close_namespace(module);
    }
    return out_.str();
  }

 private:
  void line(const std::string& text) { out_ << text << '\n'; }

  void open_namespace(const std::string& module) {
    std::string ns = options_.root_namespace;
    if (!module.empty()) ns += "::" + module;
    line("namespace " + ns + " {");
    line("");
  }
  void close_namespace(const std::string& module) {
    std::string ns = options_.root_namespace;
    if (!module.empty()) ns += "::" + module;
    line("}  // namespace " + ns);
    line("");
  }

  void emit_enum(const EnumDecl& decl) {
    line("enum class " + decl.name + " : std::uint32_t {");
    for (std::size_t i = 0; i < decl.enumerators.size(); ++i) {
      line("  " + decl.enumerators[i] + " = " + std::to_string(i) + ",");
    }
    line("};");
    line("");
    line("inline void write(maqs::cdr::Encoder& enc, " + decl.name +
         " v) {");
    line("  enc.write_u32(static_cast<std::uint32_t>(v));");
    line("}");
    line("inline void read(maqs::cdr::Decoder& dec, " + decl.name +
         "& v) {");
    line("  const std::uint32_t raw = dec.read_u32();");
    line("  if (raw >= " + std::to_string(decl.enumerators.size()) + "u) {");
    line("    throw maqs::cdr::CdrError(\"" + decl.name +
         ": enum ordinal out of range\");");
    line("  }");
    line("  v = static_cast<" + decl.name + ">(raw);");
    line("}");
    line("");
  }

  /// Emits structs of a module in dependency order.
  void emit_structs_for(const std::string& module) {
    std::vector<const CheckedStruct*> pending;
    for (const auto& d : unit_.structs) {
      if (d.module == module) pending.push_back(&d);
    }
    std::set<std::string> emitted;
    while (!pending.empty()) {
      const std::size_t before = pending.size();
      for (auto it = pending.begin(); it != pending.end();) {
        bool ready = true;
        for (const ParamDecl& field : (*it)->decl.fields) {
          const TypeNode* t = field.type.get();
          while (t->kind == TypeKind::kSequence) t = t->element.get();
          if (t->kind == TypeKind::kNamed && unit_.find_struct(t->name) &&
              !emitted.contains(t->name)) {
            ready = false;
            break;
          }
        }
        if (ready) {
          emit_struct((*it)->decl);
          emitted.insert((*it)->decl.name);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
      if (pending.size() == before) {
        // Cycle (sema rejects direct self-reference; indirect cycles
        // land here). Emit in declaration order and let C++ diagnose.
        for (const CheckedStruct* s : pending) emit_struct(s->decl);
        return;
      }
    }
  }

  void emit_struct(const StructDecl& decl) {
    line("struct " + decl.name + " {");
    for (const ParamDecl& field : decl.fields) {
      line("  " + cpp_type(*field.type) + " " + field.name + "{};");
    }
    line("  bool operator==(const " + decl.name +
         "&) const = default;");
    line("};");
    line("");
    line("inline void write(maqs::cdr::Encoder& enc, const " + decl.name +
         "& v) {");
    line("  using maqs::qidl::gen::write;");
    for (const ParamDecl& field : decl.fields) {
      line("  write(enc, v." + field.name + ");");
    }
    line("  (void)enc; (void)v;");
    line("}");
    line("inline void read(maqs::cdr::Decoder& dec, " + decl.name +
         "& v) {");
    line("  using maqs::qidl::gen::read;");
    for (const ParamDecl& field : decl.fields) {
      line("  read(dec, v." + field.name + ");");
    }
    line("  (void)dec; (void)v;");
    line("}");
    line("");
  }

  void emit_exception(const CheckedException& checked) {
    const ExceptionDecl& decl = checked.decl;
    line("struct " + decl.name + " {");
    for (const ParamDecl& field : decl.fields) {
      line("  " + cpp_type(*field.type) + " " + field.name + "{};");
    }
    line("  static const char* repo_id() { return " +
         escape_string(checked.repo_id) + "; }");
    line("};");
    line("");
  }

  void emit_descriptor_factory(const CharacteristicDecl& decl) {
    line("inline maqs::core::CharacteristicDescriptor make_" + decl.name +
         "_descriptor() {");
    line("  return maqs::core::CharacteristicDescriptor(");
    line("      " + escape_string(decl.name) + ",");
    const std::string category = [&] {
      switch (category_from_string(decl.category)) {
        case core::QosCategory::kFaultTolerance:
          return "kFaultTolerance";
        case core::QosCategory::kPerformance: return "kPerformance";
        case core::QosCategory::kBandwidth: return "kBandwidth";
        case core::QosCategory::kActuality: return "kActuality";
        case core::QosCategory::kPrivacy: return "kPrivacy";
        case core::QosCategory::kOther: return "kOther";
      }
      return "kOther";
    }();
    line("      maqs::core::QosCategory::" + category + ",");
    line("      {");
    for (const QosParamDecl& param : decl.params) {
      const std::string min =
          param.range_min.has_value()
              ? "std::optional<std::int64_t>{" +
                    std::to_string(*param.range_min) + "}"
              : "std::optional<std::int64_t>{}";
      const std::string max =
          param.range_max.has_value()
              ? "std::optional<std::int64_t>{" +
                    std::to_string(*param.range_max) + "}"
              : "std::optional<std::int64_t>{}";
      line("          maqs::core::ParamDesc{" + escape_string(param.name) +
           ", " + typecode_expr(*param.type) + ", " +
           default_any_expr(param) + ", " + min + ", " + max + "},");
    }
    line("      },");
    line("      {");
    for (const QosDimensionDecl& dimension : decl.dimensions) {
      std::string ranked;
      for (const Literal& value : dimension.ranked) {
        if (!ranked.empty()) ranked += ", ";
        ranked += literal_any_expr(value, *dimension.type);
      }
      line("          maqs::core::DimensionDesc{" +
           escape_string(dimension.name) + ", {" + ranked + "}, " +
           std::to_string(dimension.degrade_rank) + "},");
    }
    line("      },");
    line("      {");
    for (const QosOperationDecl& op : decl.operations) {
      const char* kind = op.group == QosOpGroup::kMechanism ? "kMechanism"
                         : op.group == QosOpGroup::kPeer    ? "kPeer"
                                                            : "kAspect";
      line("          maqs::core::QosOpDesc{" +
           escape_string(op.op.name) + ", maqs::core::QosOpKind::" + kind +
           "},");
    }
    line("      });");
    line("}");
    line("");
  }

  std::string virtual_signature(const OperationDecl& op) {
    std::string sig = "virtual " + cpp_type(*op.result) + " " + op.name + "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i > 0) sig += ", ";
      sig += cpp_param(*op.params[i].type, unit_) + " " + op.params[i].name;
    }
    sig += ") = 0;";
    return sig;
  }

  /// Shared unmarshal-call-marshal body used by skeleton dispatch and the
  /// QoS impl dispatch.
  void emit_dispatch_case(const OperationDecl& op, bool first) {
    line(std::string("    ") + (first ? "if" : "} else if") + " (_op == " +
         escape_string(op.name) + ") {");
    line("      using maqs::qidl::gen::read;");
    line("      using maqs::qidl::gen::write;");
    for (const ParamDecl& param : op.params) {
      line("      " + cpp_type(*param.type) + " " + param.name + "{};");
      line("      read(_args, " + param.name + ");");
    }
    line("      _args.expect_end();");
    std::string call = op.name + "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i > 0) call += ", ";
      call += op.params[i].name;
    }
    call += ")";
    if (op.result->kind == TypeKind::kVoid) {
      line("      " + call + ";");
    } else {
      line("      write(_out, " + call + ");");
    }
  }

  void emit_mediator_base(const CharacteristicDecl& decl) {
    line("class " + decl.name +
         "MediatorBase : public maqs::core::Mediator {");
    line(" public:");
    line("  " + decl.name + "MediatorBase() : maqs::core::Mediator(" +
         escape_string(decl.name) + ") {}");
    line("");
    line("  // QoS operations (client half of the QIDL mapping).");
    for (const QosOperationDecl& op : decl.operations) {
      line("  " + virtual_signature(op.op));
    }
    line("");
    line("  maqs::cdr::Any qos_operation(const std::string& _op,");
    line("      const std::vector<maqs::cdr::Any>& _args) override {");
    bool first = true;
    for (const QosOperationDecl& op : decl.operations) {
      // Only ops with Any-mappable signatures are client-dispatchable.
      bool mappable = any_suffix(op.op.result->kind) != nullptr ||
                      op.op.result->kind == TypeKind::kVoid;
      for (const ParamDecl& param : op.op.params) {
        mappable = mappable && any_suffix(param.type->kind) != nullptr;
      }
      if (!mappable) continue;
      line(std::string("    ") + (first ? "if" : "} else if") +
           " (_op == " + escape_string(op.op.name) + ") {");
      first = false;
      line("      if (_args.size() != " +
           std::to_string(op.op.params.size()) + ") {");
      line("        throw maqs::core::QosError(\"" + op.op.name +
           ": wrong argument count\");");
      line("      }");
      std::string call = op.op.name + "(";
      for (std::size_t i = 0; i < op.op.params.size(); ++i) {
        if (i > 0) call += ", ";
        call += "_args[" + std::to_string(i) + "].as_" +
                any_suffix(op.op.params[i].type->kind) + "()";
      }
      call += ")";
      if (op.op.result->kind == TypeKind::kVoid) {
        line("      " + call + ";");
        line("      return maqs::cdr::Any::make_void();");
      } else {
        line("      return maqs::cdr::Any::from_" +
             std::string(any_suffix(op.op.result->kind)) + "(" + call +
             ");");
      }
    }
    if (!first) line("    }");
    line("    return maqs::core::Mediator::qos_operation(_op, _args);");
    line("  }");
    line("};");
    line("");
  }

  void emit_impl_base(const CharacteristicDecl& decl) {
    line("class " + decl.name + "ImplBase : public maqs::core::QosImpl {");
    line(" public:");
    line("  " + decl.name + "ImplBase() : maqs::core::QosImpl(" +
         escape_string(decl.name) + ") {}");
    line("");
    line("  // QoS operations (server half of the QIDL mapping).");
    for (const QosOperationDecl& op : decl.operations) {
      line("  " + virtual_signature(op.op));
    }
    line("");
    line("  void dispatch_qos_op(const std::string& _op,");
    line("      maqs::cdr::Decoder& _args, maqs::cdr::Encoder& _out,");
    line("      maqs::orb::ServerContext& _ctx) override {");
    bool first = true;
    for (const QosOperationDecl& op : decl.operations) {
      emit_dispatch_case(op.op, first);
      first = false;
      line("      return;");
    }
    if (!first) line("    }");
    line("    maqs::core::QosImpl::dispatch_qos_op(_op, _args, _out, "
         "_ctx);");
    line("  }");
    line("};");
    line("");
  }

  void emit_characteristic(const CharacteristicDecl& decl) {
    emit_descriptor_factory(decl);
    emit_mediator_base(decl);
    emit_impl_base(decl);
  }

  void emit_stub(const CheckedInterface& iface) {
    const std::string name = iface.decl.name;
    line("class " + name + "Stub : public maqs::orb::StubBase {");
    line(" public:");
    line("  " + name +
         "Stub(maqs::orb::Orb& orb, maqs::orb::ObjRef ref)");
    line("      : maqs::orb::StubBase(orb, std::move(ref)) {}");
    line("");
    for (const OperationDecl& op : iface.decl.operations) {
      std::string sig = "  " + cpp_type(*op.result) + " " + op.name + "(";
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        if (i > 0) sig += ", ";
        sig += cpp_param(*op.params[i].type, unit_) + " " +
               op.params[i].name;
      }
      sig += ") const {";
      line(sig);
      line("    using maqs::qidl::gen::read;");
      line("    using maqs::qidl::gen::write;");
      line("    maqs::cdr::Encoder _args = maqs::cdr::Encoder::pooled();");
      for (const ParamDecl& param : op.params) {
        line("    write(_args, " + param.name + ");");
      }
      if (op.result->kind == TypeKind::kVoid) {
        line("    invoke_operation(" + escape_string(op.name) +
             ", _args.take());");
      } else {
        line("    maqs::cdr::Decoder _result(invoke_operation(" +
             escape_string(op.name) + ", _args.take()));");
        line("    " + cpp_type(*op.result) + " _out{};");
        line("    read(_result, _out);");
        line("    _result.expect_end();");
        line("    return _out;");
      }
      line("  }");
      line("");
    }
    line("};");
    line("");
  }

  void emit_dispatch_body(const CheckedInterface& iface) {
    line("    (void)_ctx;");
    bool first = true;
    for (const OperationDecl& op : iface.decl.operations) {
      emit_dispatch_case(op, first);
      first = false;
    }
    if (!first) {
      line("    } else {");
      line("      throw maqs::orb::BadOperation(\"" + iface.decl.name +
           ": unknown operation \" + _op);");
      line("    }");
    } else {
      line("    throw maqs::orb::BadOperation(\"" + iface.decl.name +
           ": unknown operation \" + _op);");
    }
  }

  void emit_skeleton(const CheckedInterface& iface) {
    const std::string name = iface.decl.name;
    line("class " + name + "Skeleton : public maqs::orb::Servant {");
    line(" public:");
    line("  const std::string& repo_id() const override {");
    line("    static const std::string _id = " +
         escape_string(iface.repo_id) + ";");
    line("    return _id;");
    line("  }");
    line("");
    for (const OperationDecl& op : iface.decl.operations) {
      line("  " + virtual_signature(op));
    }
    line("");
    line("  void dispatch(const std::string& _op, maqs::cdr::Decoder& "
         "_args,");
    line("      maqs::cdr::Encoder& _out, maqs::orb::ServerContext& _ctx) "
         "override {");
    emit_dispatch_body(iface);
    line("  }");
    line("};");
    line("");
  }

  void emit_qos_skeleton(const CheckedInterface& iface) {
    const std::string name = iface.decl.name;
    line("// QoS-enabled server skeleton (Fig. 2): inherits the QoS");
    line("// skeleton base; the bound characteristics are assigned in the");
    line("// constructor, their delegates exchanged at negotiation time.");
    line("class " + name +
         "QosSkeleton : public maqs::core::QosServantBase {");
    line(" public:");
    line("  " + name + "QosSkeleton() {");
    for (const std::string& characteristic : iface.bound_characteristics) {
      line("    assign_characteristic(make_" + characteristic +
           "_descriptor());");
    }
    line("  }");
    line("");
    line("  const std::string& repo_id() const override {");
    line("    static const std::string _id = " +
         escape_string(iface.repo_id) + ";");
    line("    return _id;");
    line("  }");
    line("");
    for (const OperationDecl& op : iface.decl.operations) {
      line("  " + virtual_signature(op));
    }
    line("");
    line(" protected:");
    line("  void dispatch_app(const std::string& _op, maqs::cdr::Decoder& "
         "_args,");
    line("      maqs::cdr::Encoder& _out, maqs::orb::ServerContext& _ctx) "
         "override {");
    emit_dispatch_body(iface);
    line("  }");
    line("};");
    line("");
  }

  void emit_interface(const CheckedInterface& iface) {
    emit_stub(iface);
    emit_skeleton(iface);
    if (!iface.bound_characteristics.empty()) {
      emit_qos_skeleton(iface);
    }
  }

  const CheckedUnit& unit_;
  EmitterOptions options_;
  std::ostringstream out_;
};

}  // namespace

std::string emit_header(const CheckedUnit& unit,
                        const EmitterOptions& options) {
  return Emitter(unit, options).run();
}

}  // namespace maqs::qidl

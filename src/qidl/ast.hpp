// QIDL abstract syntax tree.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace maqs::qidl {

// ---- types ----

enum class TypeKind {
  kVoid,
  kBoolean,
  kOctet,
  kShort,
  kLong,
  kLongLong,
  kFloat,
  kDouble,
  kString,
  kSequence,
  kNamed,  // struct or enum reference, resolved by sema
};

struct TypeNode;
using TypePtr = std::shared_ptr<TypeNode>;

struct TypeNode {
  TypeKind kind = TypeKind::kVoid;
  TypePtr element;   // kSequence
  std::string name;  // kNamed
};

TypePtr make_basic_type(TypeKind kind);
TypePtr make_sequence_type(TypePtr element);
TypePtr make_named_type(std::string name);

/// Printable QIDL spelling, e.g. "sequence<long>".
std::string type_to_string(const TypeNode& type);

// ---- literals ----

using Literal = std::variant<std::monostate, std::int64_t, double,
                             std::string, bool>;

// ---- declarations ----

struct ParamDecl {
  std::string name;
  TypePtr type;
};

struct OperationDecl {
  std::string name;
  TypePtr result;
  std::vector<ParamDecl> params;
  std::vector<std::string> raises;
  int line = 0;
};

struct StructDecl {
  std::string name;
  std::vector<ParamDecl> fields;
  int line = 0;
};

struct EnumDecl {
  std::string name;
  std::vector<std::string> enumerators;
  int line = 0;
};

struct ExceptionDecl {
  std::string name;
  std::vector<ParamDecl> fields;
  int line = 0;
};

struct InterfaceDecl {
  std::string name;
  std::vector<OperationDecl> operations;
  int line = 0;
};

/// QoS parameter inside a characteristic (paper §3.2).
struct QosParamDecl {
  std::string name;
  TypePtr type;
  Literal default_value;
  std::optional<std::int64_t> range_min;
  std::optional<std::int64_t> range_max;
  int line = 0;
};

/// Negotiable dimension inside a characteristic: a ranked preference
/// order (most preferred first) plus a degradation priority — lower
/// `degrade_rank` dimensions are sacrificed first under pressure.
struct QosDimensionDecl {
  std::string name;
  TypePtr type;
  std::vector<Literal> ranked;
  std::int64_t degrade_rank = 0;
  int line = 0;
};

enum class QosOpGroup { kMechanism, kPeer, kAspect };

struct QosOperationDecl {
  QosOpGroup group = QosOpGroup::kMechanism;
  OperationDecl op;
};

struct CharacteristicDecl {
  std::string name;
  std::string category;  // free-form, e.g. "fault_tolerance"
  std::vector<QosParamDecl> params;
  std::vector<QosDimensionDecl> dimensions;
  std::vector<QosOperationDecl> operations;
  int line = 0;
};

/// `bind Interface : CharA, CharB;` — interface-granularity assignment.
struct BindDecl {
  std::string interface_name;
  std::vector<std::string> characteristics;
  int line = 0;
};

struct ModuleDecl;

using Declaration =
    std::variant<StructDecl, EnumDecl, ExceptionDecl, InterfaceDecl,
                 CharacteristicDecl, BindDecl,
                 std::shared_ptr<ModuleDecl>>;

struct ModuleDecl {
  std::string name;  // empty = file scope
  std::vector<Declaration> declarations;
  int line = 0;
};

/// A parsed compilation unit (the anonymous top-level module).
using Specification = ModuleDecl;

}  // namespace maqs::qidl

#include "orb/stub.hpp"

#include <utility>

#include "cdr/decoder.hpp"
#include "util/buffer_pool.hpp"

namespace maqs::orb {

void raise_for_status(const ReplyMessage& rep) {
  switch (rep.status) {
    case ReplyStatus::kOk:
      return;
    case ReplyStatus::kUserException: {
      std::string detail;
      try {
        cdr::Decoder dec(rep.body);
        detail = dec.read_string();
      } catch (const cdr::CdrError&) {
        detail = "<unreadable exception body>";
      }
      throw UserException(rep.exception, detail);
    }
    case ReplyStatus::kNotNegotiated:
      throw NotNegotiated(rep.exception);
    case ReplyStatus::kNoSuchObject:
      throw ObjectNotExist(rep.exception);
    case ReplyStatus::kBadOperation:
      throw BadOperation(rep.exception);
    case ReplyStatus::kSystemException:
      // Transport faults are classified by local provenance, not by the
      // exception id alone: only replies the local ORB synthesized
      // (timeouts, breaker fast-fails) are transport-level. A server that
      // genuinely raises "maqs/TIMEOUT" reached us over the wire and is
      // a SystemException like any other remote fault.
      if (rep.synthesized_locally) {
        if (rep.exception == "maqs/TIMEOUT") {
          throw TransportError("request timed out");
        }
        if (rep.exception == "maqs/CIRCUIT_OPEN") {
          throw TransportError("circuit breaker open");
        }
        throw TransportError(rep.exception);
      }
      if (rep.exception == "maqs/NO_QOS_TRANSPORT") {
        throw NoQosTransport(rep.exception);
      }
      throw SystemException(rep.exception);
  }
  throw SystemException("orb: unknown reply status");
}

util::Bytes StubBase::invoke_operation(const std::string& operation,
                                       util::Bytes args) const {
  // The info record lives on this frame, not inside invoke(): the root
  // trace span the pipeline's trace stage opens must still be active while
  // raise_for_status classifies the reply (thrown Errors stamp the active
  // trace id), and only dies when the record goes out of scope.
  ClientRequestInfo info{orb_};
  info.target = &ref_;
  info.mediator = mediator_.get();
  info.request.request_id = orb_.next_request_id();
  info.request.kind = RequestKind::kServiceRequest;
  info.request.object_key = ref_.object_key;
  info.request.operation = operation;
  info.request.body = std::move(args);
  orb_.invoke_with(info);
  // The (possibly mediator-transformed) argument buffer is dead once the
  // attempt loop returns — the wire frame was encoded from it. Recycle it
  // before the status check: on the woven path it is the largest buffer of
  // the whole request cycle, and letting it die with this frame forces the
  // server's result encode to malloc a fresh one every single request.
  util::BufferPool::instance().release(std::move(info.request.body));
  raise_for_status(info.reply);
  return std::move(info.reply.body);
}

}  // namespace maqs::orb

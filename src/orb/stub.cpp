#include "orb/stub.hpp"

#include <optional>

#include "cdr/decoder.hpp"
#include "trace/trace.hpp"

namespace maqs::orb {

void raise_for_status(const ReplyMessage& rep) {
  switch (rep.status) {
    case ReplyStatus::kOk:
      return;
    case ReplyStatus::kUserException: {
      std::string detail;
      try {
        cdr::Decoder dec(rep.body);
        detail = dec.read_string();
      } catch (const cdr::CdrError&) {
        detail = "<unreadable exception body>";
      }
      throw UserException(rep.exception, detail);
    }
    case ReplyStatus::kNotNegotiated:
      throw NotNegotiated(rep.exception);
    case ReplyStatus::kNoSuchObject:
      throw ObjectNotExist(rep.exception);
    case ReplyStatus::kBadOperation:
      throw BadOperation(rep.exception);
    case ReplyStatus::kSystemException:
      // Transport faults are classified by local provenance, not by the
      // exception id alone: only replies the local ORB synthesized
      // (timeouts, breaker fast-fails) are transport-level. A server that
      // genuinely raises "maqs/TIMEOUT" reached us over the wire and is
      // a SystemException like any other remote fault.
      if (rep.synthesized_locally) {
        if (rep.exception == "maqs/TIMEOUT") {
          throw TransportError("request timed out");
        }
        if (rep.exception == "maqs/CIRCUIT_OPEN") {
          throw TransportError("circuit breaker open");
        }
        throw TransportError(rep.exception);
      }
      if (rep.exception == "maqs/NO_QOS_TRANSPORT") {
        throw NoQosTransport(rep.exception);
      }
      throw SystemException(rep.exception);
  }
  throw SystemException("orb: unknown reply status");
}

util::Bytes StubBase::invoke_operation(const std::string& operation,
                                       util::Bytes args) const {
  RequestMessage req;
  req.request_id = orb_.next_request_id();
  req.kind = RequestKind::kServiceRequest;
  req.object_key = ref_.object_key;
  req.operation = operation;
  req.body = std::move(args);

  // Causal tracing is minted here, at the invocation interface: one root
  // span covers the whole blocking call (mediator weaving, transport
  // dispatch, wire, reply unweaving), and the context entry lets the
  // server re-attach its spans to the same trace. Sampled-out traces pay
  // nothing — no scope, no wire entry.
  std::optional<trace::SpanScope> span;
  if (trace::TraceRecorder* rec = orb_.trace_recorder();
      rec != nullptr && rec->enabled()) {
    const trace::TraceContext minted = rec->make_trace();
    if (minted.sampled()) {
      span.emplace(*rec, minted, "client.request", operation);
      req.context.set(trace::kTraceContextKey,
                      trace::encode_context(span->context()));
    }
  }

  ReplyMessage rep;
  if (mediator_) {
    // Client-side aspect weaving: the mediator sees the call before the
    // ORB does and again when the reply returns. The request is retained
    // across the invocation so inbound() can correlate (e.g. cache fills
    // keyed by operation+arguments).
    ObjRef target = ref_;
    if (auto local = mediator_->try_local(req, target)) {
      rep = *std::move(local);
    } else {
      mediator_->outbound(req, target);
      if (mediator_->needs_request_payload()) {
        rep = orb_.invoke(target, req);
        mediator_->inbound(req, rep);
      } else {
        // The mediator's inbound() only correlates on the header, so hand
        // the (possibly large) body to the ORB by move instead of copying.
        RequestMessage retained;
        retained.request_id = req.request_id;
        retained.kind = req.kind;
        retained.qos_aware = req.qos_aware;
        retained.object_key = req.object_key;
        retained.target_module = req.target_module;
        retained.operation = req.operation;
        rep = orb_.invoke(target, std::move(req));
        mediator_->inbound(retained, rep);
      }
    }
  } else {
    rep = orb_.invoke(ref_, std::move(req));
  }
  raise_for_status(rep);
  return std::move(rep.body);
}

}  // namespace maqs::orb

#include "orb/breaker.hpp"

namespace maqs::orb {

const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

bool CircuitBreaker::allow(sim::TimePoint now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < open_until_) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kHalfOpen:
      // One probe at a time: its outcome decides the next transition.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(sim::TimePoint now) {
  probe_in_flight_ = false;
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: back to open for a fresh period.
    state_ = BreakerState::kOpen;
    open_until_ = now + config_.open_period;
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_ = now + config_.open_period;
  }
}

}  // namespace maqs::orb

#include "orb/interceptor.hpp"

#include <string>
#include <utility>

#include "orb/orb.hpp"
#include "util/log.hpp"

namespace maqs::orb {

namespace {

/// Maps a locally synthesized fault reply to the TransportError the
/// blocking invocation contract promises. Never returns.
[[noreturn]] void throw_local_fault(const ReplyMessage& rep) {
  if (rep.exception == "maqs/TIMEOUT") {
    throw TransportError("orb: request timed out");
  }
  if (rep.exception == "maqs/CIRCUIT_OPEN") {
    throw TransportError("orb: circuit breaker open");
  }
  throw TransportError("orb: " + rep.exception);
}

}  // namespace

// ---- trace.client (100) ----

SendAction TraceClientInterceptor::send_request(ClientRequestInfo& info) {
  trace::TraceRecorder* rec = orb_.trace_recorder();
  if (rec == nullptr || !rec->enabled()) return SendAction::kContinue;
  // Nest under an active scope on the same recorder (a gateway.request
  // span, a servant making a downstream call); otherwise mint a fresh
  // trace for this invocation.
  trace::TraceContext parent;
  if (const trace::SpanScope::Active* outer = trace::SpanScope::active();
      outer != nullptr && outer->recorder == rec) {
    parent = outer->ctx;
  } else {
    parent = rec->make_trace();
  }
  if (!parent.sampled()) return SendAction::kContinue;
  info.root_span.emplace(*rec, parent, "client.request",
                         info.request.operation);
  info.request.context.set(trace::kTraceContextKey,
                           trace::encode_context(info.root_span->context()));
  return SendAction::kContinue;
}

// ---- mediator (200) ----

SendAction MediatorClientInterceptor::send_request(ClientRequestInfo& info) {
  ClientDelegate* mediator = info.mediator;
  if (mediator == nullptr) return SendAction::kContinue;
  if (auto local = mediator->try_local(info.request, *info.target)) {
    // Local answer: inbound() is not consulted (completing from
    // send_request skips this level's own receive_reply).
    info.reply = *std::move(local);
    return SendAction::kComplete;
  }
  // The delegate may redirect (load balancing); give it a mutable copy of
  // the target and let the levels below address the redirected one.
  info.redirect.emplace(*info.target);
  mediator->outbound(info.request, *info.redirect);
  info.target = &*info.redirect;
  if (mediator->needs_request_payload()) {
    info.retained = info.request;
  } else {
    // inbound() only correlates on the header: retain the cheap fields
    // and spare the copy of the marshaled arguments.
    info.retained.request_id = info.request.request_id;
    info.retained.kind = info.request.kind;
    info.retained.qos_aware = info.request.qos_aware;
    info.retained.object_key = info.request.object_key;
    info.retained.target_module = info.request.target_module;
    info.retained.operation = info.request.operation;
  }
  // A redirected target addresses its own object key.
  info.request.object_key = info.target->object_key;
  return SendAction::kContinue;
}

ReplyAction MediatorClientInterceptor::receive_reply(ClientRequestInfo& info) {
  if (info.mediator != nullptr && info.redirect.has_value()) {
    info.mediator->inbound(info.retained, info.reply);
  }
  return ReplyAction::kContinue;
}

// ---- qos.route (300) ----

SendAction RouteClientInterceptor::send_request(ClientRequestInfo& info) {
  RequestRouter* router = orb_.router();
  if (info.target->qos_aware() && router != nullptr) {
    ++stats_.qos_path;
    info.request.qos_aware = true;
    info.reply = router->route(*info.target, std::move(info.request));
    return SendAction::kComplete;
  }
  ++stats_.plain_path;
  return SendAction::kContinue;
}

// ---- local_fault (350) ----

ReplyAction LocalFaultClientInterceptor::receive_reply(
    ClientRequestInfo& info) {
  if (info.reply.synthesized_locally &&
      info.reply.status == ReplyStatus::kSystemException) {
    throw_local_fault(info.reply);
  }
  return ReplyAction::kContinue;
}

// ---- retry (400) ----

SendAction RetryClientInterceptor::send_request(ClientRequestInfo& info) {
  if (advisor_ == nullptr) return SendAction::kContinue;
  if (info.attempt == 1) {
    info.retry_engaged = true;
    info.started = orb_.loop().now();
  }
  return SendAction::kContinue;
}

ReplyAction RetryClientInterceptor::receive_reply(ClientRequestInfo& info) {
  if (advisor_ == nullptr ||
      info.reply.status != ReplyStatus::kSystemException) {
    return ReplyAction::kContinue;
  }
  const std::optional<sim::Duration> backoff = advisor_->on_attempt_failed(
      info.wire_dest(), info.request, info.reply, info.attempt,
      orb_.loop().now() - info.started);
  if (!backoff.has_value()) return ReplyAction::kContinue;
  ++stats_.requests_retried;
  if (trace::tracing_active()) {
    trace::point("retry.backoff",
                 "attempt=" + std::to_string(info.attempt) +
                     " backoff_ns=" + std::to_string(*backoff) + " " +
                     info.reply.exception);
  }
  if (*backoff > 0) {
    bool fired = false;
    orb_.loop().schedule(*backoff, [&fired] { fired = true; });
    orb_.run_until([&fired] { return fired; });
  }
  // Fresh id per attempt: a straggler reply to an abandoned attempt must
  // never satisfy (or double-complete) the retried one.
  info.request.request_id = orb_.next_request_id();
  ++info.attempt;
  return ReplyAction::kRetry;
}

// ---- trace.attempt (450) ----

SendAction AttemptTraceClientInterceptor::send_request(
    ClientRequestInfo& info) {
  if (info.retry_engaged && trace::tracing_active()) {
    info.attempt_span.emplace("retry.attempt",
                              "attempt=" + std::to_string(info.attempt));
  }
  return SendAction::kContinue;
}

ReplyAction AttemptTraceClientInterceptor::receive_reply(
    ClientRequestInfo& info) {
  info.attempt_span.reset();
  return ReplyAction::kContinue;
}

void AttemptTraceClientInterceptor::receive_exception(
    ClientRequestInfo& info) noexcept {
  info.attempt_span.reset();
}

// ---- breaker (500) ----

SendAction BreakerClientInterceptor::send_request(ClientRequestInfo& info) {
  if (!config_.has_value()) return SendAction::kContinue;
  // The id is normally assigned by the stub; plain-entry callers (e.g.
  // negotiation commands) may leave it 0, in which case the wire would
  // assign it — do it here so the fast-fail reply correlates.
  if (info.request.request_id == 0) {
    info.request.request_id = orb_.next_request_id();
  }
  ReplyMessage fast;
  if (!admit(info.wire_dest(), info.request.object_key,
             info.request.request_id, fast)) {
    info.reply = std::move(fast);
    return SendAction::kComplete;
  }
  return SendAction::kContinue;
}

std::optional<BreakerState> BreakerClientInterceptor::state(
    const net::Address& dest) const {
  // Worst-of aggregate over the endpoint's profile breakers, preserving
  // the pre-profile-keying endpoint-granularity query.
  std::optional<BreakerState> worst;
  for (const auto& [key, breaker] : breakers_) {
    if (key.first != dest) continue;
    const BreakerState s = breaker.state();
    if (!worst.has_value() || static_cast<int>(s) > static_cast<int>(*worst)) {
      worst = s;
    }
  }
  return worst;
}

std::optional<BreakerState> BreakerClientInterceptor::state(
    const net::Address& dest, std::string_view profile) const {
  auto it = breakers_.find(std::pair<const net::Address&, std::string_view>(
      dest, profile));
  if (it == breakers_.end()) return std::nullopt;
  return it->second.state();
}

bool BreakerClientInterceptor::admit(const net::Address& dest,
                                     std::string_view profile,
                                     std::uint64_t request_id,
                                     ReplyMessage& fast) {
  CircuitBreaker& breaker = breaker_for(dest, profile);
  const BreakerState before = breaker.state();
  const bool admitted = breaker.allow(orb_.loop().now());
  if (breaker.state() != before) {
    note_transition(dest, profile, before, breaker.state());
  }
  if (admitted) return true;
  // Fail fast: the synthesized rejection is delivered inline instead of
  // arming a doomed timeout.
  ++stats_.breaker_fast_fails;
  fast.request_id = request_id;
  fast.status = ReplyStatus::kSystemException;
  fast.exception = "maqs/CIRCUIT_OPEN";
  fast.synthesized_locally = true;
  return false;
}

void BreakerClientInterceptor::on_reply_decoded(const net::Address& from,
                                                std::string_view profile) {
  if (!config_.has_value()) return;
  // find, never create: a success for a profile no breaker tracks is not
  // worth a map entry.
  auto it = breakers_.find(
      std::pair<const net::Address&, std::string_view>(from, profile));
  if (it == breakers_.end()) return;
  const BreakerState before = it->second.state();
  it->second.record_success();
  if (it->second.state() != before) {
    note_transition(from, profile, before, it->second.state());
  }
}

void BreakerClientInterceptor::on_reply_decoded_any(const net::Address& from) {
  if (!config_.has_value()) return;
  for (auto& [key, breaker] : breakers_) {
    if (key.first != from) continue;
    const BreakerState before = breaker.state();
    breaker.record_success();
    if (breaker.state() != before) {
      note_transition(from, key.second, before, breaker.state());
    }
  }
}

void BreakerClientInterceptor::on_transport_failure(const net::Address& dest,
                                                    std::string_view profile) {
  if (!config_.has_value()) return;
  CircuitBreaker& breaker = breaker_for(dest, profile);
  const BreakerState before = breaker.state();
  breaker.record_failure(orb_.loop().now());
  if (breaker.state() != before) {
    note_transition(dest, profile, before, breaker.state());
  }
}

CircuitBreaker& BreakerClientInterceptor::breaker_for(
    const net::Address& dest, std::string_view profile) {
  auto it = breakers_.find(
      std::pair<const net::Address&, std::string_view>(dest, profile));
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(BreakerKey{dest, std::string(profile)},
                      CircuitBreaker(*config_))
             .first;
  }
  return it->second;
}

void BreakerClientInterceptor::note_transition(const net::Address& endpoint,
                                               std::string_view profile,
                                               BreakerState from,
                                               BreakerState to) {
  switch (to) {
    case BreakerState::kOpen: ++stats_.breaker_opens; break;
    case BreakerState::kHalfOpen: ++stats_.breaker_half_opens; break;
    case BreakerState::kClosed: ++stats_.breaker_closes; break;
  }
  MAQS_INFO() << "orb " << orb_.endpoint().to_string() << ": circuit to "
              << endpoint.to_string() << "/" << profile << " "
              << breaker_state_name(from) << " -> " << breaker_state_name(to);
  if (trace::tracing_active()) {
    trace::point("breaker.transition",
                 endpoint.to_string() + "/" + std::string(profile) + " " +
                     breaker_state_name(from) + "->" +
                     breaker_state_name(to));
  }
}

// ---- trace.server (100) ----

void TraceServerInterceptor::receive_request(ServerRequestInfo& info) {
  trace::TraceRecorder* rec = info.orb->trace_recorder();
  if (rec == nullptr || !rec->enabled()) return;
  if (auto tag = info.request->context.find(trace::kTraceContextKey);
      tag != info.request->context.end()) {
    if (auto ctx = trace::decode_context(tag->second)) {
      info.server_span.emplace(*rec, *ctx, "server.request",
                               info.request->operation);
    }
  }
}

void TraceServerInterceptor::send_reply(ServerRequestInfo& info) {
  info.server_span.reset();
}

void TraceServerInterceptor::send_exception(ServerRequestInfo& info) noexcept {
  info.server_span.reset();
}

// ---- wire.reply (150) ----

void WireReplyServerInterceptor::receive_request(ServerRequestInfo& info) {
  // Save the id on the way down: router transforms below may rewrite the
  // request, but the reply must answer the id the client sent.
  info.slots.set(slot_, info.request->request_id);
}

void WireReplyServerInterceptor::send_reply(ServerRequestInfo& info) {
  info.reply.request_id = info.slots.get(slot_);
  orb_.send_reply_frame(*info.from, info.reply);
}

// ---- qos.server (200) ----

void QosServerInterceptor::receive_request(ServerRequestInfo& info) {
  RequestMessage& req = *info.request;
  RequestRouter* router = orb_.router();
  if (req.kind == RequestKind::kCommand) {
    ++stats_.commands_dispatched;
    if (router == nullptr) {
      info.reply.request_id = req.request_id;
      info.reply.status = ReplyStatus::kSystemException;
      info.reply.exception = "maqs/NO_QOS_TRANSPORT";
      info.completed = true;
      return;
    }
    if (auto direct = router->inbound(req, *info.from)) {
      direct->request_id = req.request_id;
      info.reply = *std::move(direct);
      info.completed = true;
      return;
    }
    info.reply.request_id = req.request_id;
    info.reply.status = ReplyStatus::kBadOperation;
    info.reply.exception = "maqs/UNHANDLED_COMMAND";
    info.completed = true;
    return;
  }

  ++stats_.requests_dispatched;
  const bool engaged = req.qos_aware && router != nullptr;
  info.slots.set(slot_, engaged ? 1 : 0);
  if (engaged) {
    if (auto direct = router->inbound(req, *info.from)) {
      direct->request_id = req.request_id;
      info.reply = *std::move(direct);
      info.completed = true;
    }
  }
}

void QosServerInterceptor::send_reply(ServerRequestInfo& info) {
  if (info.slots.get(slot_) != 0) {
    orb_.router()->outbound(*info.request, info.reply);
  }
}

bool QosServerInterceptor::handle_error(ServerRequestInfo& info,
                                        const Error& e) {
  // Commands propagate (handle_request's caller logs and drops the
  // frame); service-request failures must surface as an exception reply,
  // never kill the dispatch loop or silently drop the request.
  if (info.request->kind == RequestKind::kCommand) return false;
  trace::note_error(e.what());
  info.reply = ReplyMessage{};
  info.reply.request_id = info.request->request_id;
  info.reply.status = ReplyStatus::kSystemException;
  info.reply.exception = e.what();
  return true;
}

}  // namespace maqs::orb

// Interoperable object references.
//
// An ObjRef names a remote object: repository id, server ORB endpoint and
// object key. Following the paper (§4), QoS awareness is advertised by a
// distinct tag in the IOR: a list of QosProfile entries naming the QoS
// characteristics assigned to the interface plus free-form properties
// (e.g. the transport module to use, a multicast group address). The
// invocation interface inspects this tag to decide between the plain
// GIOP/IIOP path and the QoS transport (Fig. 3).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/bytes.hpp"

namespace maqs::orb {

/// One QoS characteristic advertised in an IOR.
struct QosProfile {
  /// Characteristic name as declared in QIDL, e.g. "Compression".
  std::string characteristic;
  /// Mechanism-specific properties (module name, group address, ...).
  std::map<std::string, std::string> properties;

  bool operator==(const QosProfile&) const = default;
};

/// An alternate endpoint profile of a multi-profile reference: another
/// replica serving the same interface under its own (endpoint, object key)
/// pair. Mirrors GIOP's TAG_ALTERNATE_IIOP_ADDRESS, extended with the
/// object key so replicas may activate under distinct keys.
struct AltProfile {
  net::Address endpoint;
  std::string object_key;

  bool operator==(const AltProfile&) const = default;
};

struct ObjRef {
  /// Repository id of the interface, e.g. "IDL:demo/Hello:1.0".
  std::string repo_id;
  /// Endpoint of the ORB hosting the object.
  net::Address endpoint;
  /// Key under which the servant is activated in the object adapter.
  std::string object_key;
  /// QoS tag (empty == plain CORBA object, not QoS-aware).
  std::vector<QosProfile> qos;
  /// Alternate replica profiles (empty == single-profile reference). The
  /// primary profile is (endpoint, object_key) above; a replica-aware
  /// client (naming::ReplicaSelector) may address any alternate instead.
  std::vector<AltProfile> alternates;

  bool is_nil() const noexcept { return object_key.empty(); }
  bool qos_aware() const noexcept { return !qos.empty(); }
  bool multi_profile() const noexcept { return !alternates.empty(); }

  /// Total addressable profiles: the primary plus the alternates.
  std::size_t profile_count() const noexcept { return 1 + alternates.size(); }
  /// Profile `i` as an (endpoint, object key) pair; index 0 is the
  /// primary, 1..profile_count()-1 the alternates.
  AltProfile profile(std::size_t i) const;

  /// Profile lookup by characteristic name; nullptr if absent.
  const QosProfile* find_profile(const std::string& characteristic) const;

  bool operator==(const ObjRef&) const = default;

  // ---- marshaling & stringification ----
  util::Bytes encode() const;
  static ObjRef decode(util::BytesView data);
  /// "IOR:<hex>" — stringified form exchanged out of band.
  std::string to_string() const;
  static ObjRef from_string(const std::string& stringified);
};

}  // namespace maqs::orb

// Interoperable object references.
//
// An ObjRef names a remote object: repository id, server ORB endpoint and
// object key. Following the paper (§4), QoS awareness is advertised by a
// distinct tag in the IOR: a list of QosProfile entries naming the QoS
// characteristics assigned to the interface plus free-form properties
// (e.g. the transport module to use, a multicast group address). The
// invocation interface inspects this tag to decide between the plain
// GIOP/IIOP path and the QoS transport (Fig. 3).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/bytes.hpp"

namespace maqs::orb {

/// One QoS characteristic advertised in an IOR.
struct QosProfile {
  /// Characteristic name as declared in QIDL, e.g. "Compression".
  std::string characteristic;
  /// Mechanism-specific properties (module name, group address, ...).
  std::map<std::string, std::string> properties;

  bool operator==(const QosProfile&) const = default;
};

struct ObjRef {
  /// Repository id of the interface, e.g. "IDL:demo/Hello:1.0".
  std::string repo_id;
  /// Endpoint of the ORB hosting the object.
  net::Address endpoint;
  /// Key under which the servant is activated in the object adapter.
  std::string object_key;
  /// QoS tag (empty == plain CORBA object, not QoS-aware).
  std::vector<QosProfile> qos;

  bool is_nil() const noexcept { return object_key.empty(); }
  bool qos_aware() const noexcept { return !qos.empty(); }

  /// Profile lookup by characteristic name; nullptr if absent.
  const QosProfile* find_profile(const std::string& characteristic) const;

  bool operator==(const ObjRef&) const = default;

  // ---- marshaling & stringification ----
  util::Bytes encode() const;
  static ObjRef decode(util::BytesView data);
  /// "IOR:<hex>" — stringified form exchanged out of band.
  std::string to_string() const;
  static ObjRef from_string(const std::string& stringified);
};

}  // namespace maqs::orb

// Dynamic Invocation Interface.
//
// Builds requests at runtime from Any arguments — no generated stub
// needed. Because our compact CDR encodes an Any's *value* with exactly
// the bytes a typed stub writes, DII requests are wire-compatible with
// static skeletons. The DII is also the control channel for QoS modules:
// the paper (Fig. 3/§4) drives each module's "dynamic interface" through
// DII-built command requests, where arguments travel as self-describing
// Anys because the receiver has no compiled-in signature.
#pragma once

#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "orb/orb.hpp"

namespace maqs::orb {

class DiiRequest {
 public:
  /// A dynamic service request on `target`.
  DiiRequest(Orb& orb, ObjRef target, std::string operation);

  /// Appends an in-argument.
  DiiRequest& add_arg(cdr::Any arg);

  /// Declares the result type (mandatory for non-void results).
  DiiRequest& set_return_type(cdr::TypeCodePtr type);

  /// Adds a service-context entry.
  DiiRequest& set_context(const std::string& key, util::Bytes value);

  /// Blocking invocation. Returns the decoded result (void Any for void
  /// operations); throws the mapped exception on non-OK replies.
  cdr::Any invoke();

 private:
  Orb& orb_;
  ObjRef target_;
  std::string operation_;
  std::vector<cdr::Any> args_;
  cdr::TypeCodePtr return_type_;
  ServiceContext context_;
};

/// Encodes a command body: count + self-describing Anys.
util::Bytes encode_command_args(const std::vector<cdr::Any>& args);

/// Decodes a command body produced by encode_command_args.
std::vector<cdr::Any> decode_command_args(util::BytesView body);

/// Sends a command (Fig. 3 dual-use request) to the QoS transport of the
/// ORB at `dest`. `module` empty addresses the transport itself. Returns
/// the command's result Any; throws on error replies.
cdr::Any send_command(Orb& orb, const net::Address& dest,
                      const std::string& module, const std::string& operation,
                      const std::vector<cdr::Any>& args);

}  // namespace maqs::orb

// Client-side programming model: stubs and the mediator slot.
//
// The paper's client-side weaving (§3.3): "the stub is extended by a so
// called mediator. [...] At runtime the mediator of the desired QoS is set
// in the stub as a delegate. Each call is intercepted and delegated to the
// mediator which can issue the QoS behaviour on the client side."
//
// StubBase implements exactly that: generated (or generated-style) stubs
// funnel every operation through invoke_operation(), which builds the
// per-invocation ClientRequestInfo record and hands it to the ORB's
// interceptor pipeline. The installed ClientDelegate (maqs::core::Mediator
// derives from it) is consumed by the pipeline's mediator stage; it may
// rewrite the request, redirect the target (load balancing), or answer
// locally (actuality cache) without touching application code.
#pragma once

#include <memory>
#include <string>

#include "orb/orb.hpp"

namespace maqs::orb {

/// Maps a non-OK reply onto the exception hierarchy. Shared by static
/// stubs and the DII.
void raise_for_status(const ReplyMessage& rep);

class StubBase {
 public:
  StubBase(Orb& orb, ObjRef ref) : orb_(orb), ref_(std::move(ref)) {}
  virtual ~StubBase() = default;

  Orb& orb() const noexcept { return orb_; }
  const ObjRef& ref() const noexcept { return ref_; }

  /// Installs the mediator delegate (nullptr removes it).
  void set_mediator(std::shared_ptr<ClientDelegate> mediator) {
    mediator_ = std::move(mediator);
  }
  const std::shared_ptr<ClientDelegate>& mediator() const noexcept {
    return mediator_;
  }

 protected:
  /// Generated stubs call this for every operation: request construction,
  /// the pipeline walk, reply checking. Returns the reply body
  /// (CDR-encoded results); throws on any non-OK status.
  util::Bytes invoke_operation(const std::string& operation,
                               util::Bytes args) const;

 private:
  Orb& orb_;
  ObjRef ref_;
  std::shared_ptr<ClientDelegate> mediator_;
};

}  // namespace maqs::orb

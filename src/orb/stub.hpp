// Client-side programming model: stubs and the mediator slot.
//
// The paper's client-side weaving (§3.3): "the stub is extended by a so
// called mediator. [...] At runtime the mediator of the desired QoS is set
// in the stub as a delegate. Each call is intercepted and delegated to the
// mediator which can issue the QoS behaviour on the client side."
//
// StubBase implements exactly that: generated (or generated-style) stubs
// funnel every operation through invoke_operation(), which consults the
// installed ClientInterceptor (maqs::core::Mediator derives from it)
// before and after the ORB invocation. The interceptor may rewrite the
// request, redirect the target (load balancing), or answer locally
// (actuality cache) without touching application code.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "orb/orb.hpp"

namespace maqs::orb {

/// Client-side interception hook; the MAQS mediator framework implements
/// it. Kept in the ORB layer so the ORB stays QoS-agnostic.
class ClientInterceptor {
 public:
  virtual ~ClientInterceptor() = default;

  /// May answer the request locally (e.g. from a cache), bypassing the
  /// network entirely. Default: no local answer.
  virtual std::optional<ReplyMessage> try_local(const RequestMessage& req,
                                                const ObjRef& target) {
    (void)req;
    (void)target;
    return std::nullopt;
  }

  /// Before the request reaches the ORB; may rewrite body/context and
  /// redirect `target`.
  virtual void outbound(RequestMessage& req, ObjRef& target) {
    (void)req;
    (void)target;
  }

  /// After the reply returns, before the stub unmarshals it.
  virtual void inbound(const RequestMessage& req, ReplyMessage& rep) {
    (void)req;
    (void)rep;
  }

  /// Whether inbound() reads the request's body/context. When false the
  /// stub moves the request (body included) into the ORB and retains only
  /// the cheap header fields for inbound() correlation, sparing a copy of
  /// the marshaled arguments. Payload transforms that only touch the reply
  /// (compression, encryption) override this to false; the conservative
  /// default keeps the full request alive.
  virtual bool needs_request_payload() const { return true; }
};

/// Maps a non-OK reply onto the exception hierarchy. Shared by static
/// stubs and the DII.
void raise_for_status(const ReplyMessage& rep);

class StubBase {
 public:
  StubBase(Orb& orb, ObjRef ref) : orb_(orb), ref_(std::move(ref)) {}
  virtual ~StubBase() = default;

  Orb& orb() const noexcept { return orb_; }
  const ObjRef& ref() const noexcept { return ref_; }

  /// Installs the mediator delegate (nullptr removes it).
  void set_mediator(std::shared_ptr<ClientInterceptor> mediator) {
    mediator_ = std::move(mediator);
  }
  const std::shared_ptr<ClientInterceptor>& mediator() const noexcept {
    return mediator_;
  }

 protected:
  /// Generated stubs call this for every operation: request construction,
  /// mediator weaving, invocation, reply checking. Returns the reply body
  /// (CDR-encoded results); throws on any non-OK status.
  util::Bytes invoke_operation(const std::string& operation,
                               util::Bytes args) const;

 private:
  Orb& orb_;
  ObjRef ref_;
  std::shared_ptr<ClientInterceptor> mediator_;
};

}  // namespace maqs::orb

#include "orb/ior.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/exceptions.hpp"
#include "util/strings.hpp"

namespace maqs::orb {

AltProfile ObjRef::profile(std::size_t i) const {
  if (i == 0) return AltProfile{endpoint, object_key};
  return alternates.at(i - 1);
}

const QosProfile* ObjRef::find_profile(
    const std::string& characteristic) const {
  for (const QosProfile& profile : qos) {
    if (profile.characteristic == characteristic) return &profile;
  }
  return nullptr;
}

util::Bytes ObjRef::encode() const {
  cdr::Encoder enc;
  enc.write_string(repo_id);
  enc.write_string(endpoint.node);
  enc.write_u16(endpoint.port);
  enc.write_string(object_key);
  enc.write_u32(static_cast<std::uint32_t>(qos.size()));
  for (const QosProfile& profile : qos) {
    enc.write_string(profile.characteristic);
    enc.write_u32(static_cast<std::uint32_t>(profile.properties.size()));
    for (const auto& [key, value] : profile.properties) {
      enc.write_string(key);
      enc.write_string(value);
    }
  }
  enc.write_u32(static_cast<std::uint32_t>(alternates.size()));
  for (const AltProfile& alt : alternates) {
    enc.write_string(alt.endpoint.node);
    enc.write_u16(alt.endpoint.port);
    enc.write_string(alt.object_key);
  }
  return enc.take();
}

ObjRef ObjRef::decode(util::BytesView data) {
  cdr::Decoder dec(data);
  ObjRef ref;
  ref.repo_id = dec.read_string();
  ref.endpoint.node = dec.read_string();
  ref.endpoint.port = dec.read_u16();
  ref.object_key = dec.read_string();
  const std::uint32_t n = dec.read_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    QosProfile profile;
    profile.characteristic = dec.read_string();
    const std::uint32_t props = dec.read_u32();
    for (std::uint32_t j = 0; j < props; ++j) {
      std::string key = dec.read_string();
      profile.properties[key] = dec.read_string();
    }
    ref.qos.push_back(std::move(profile));
  }
  const std::uint32_t alts = dec.read_u32();
  for (std::uint32_t i = 0; i < alts; ++i) {
    AltProfile alt;
    alt.endpoint.node = dec.read_string();
    alt.endpoint.port = dec.read_u16();
    alt.object_key = dec.read_string();
    ref.alternates.push_back(std::move(alt));
  }
  dec.expect_end();
  return ref;
}

std::string ObjRef::to_string() const {
  return "IOR:" + util::to_hex(encode());
}

ObjRef ObjRef::from_string(const std::string& stringified) {
  if (!util::starts_with(stringified, "IOR:")) {
    throw MarshalError("ior: missing IOR: prefix");
  }
  try {
    return decode(util::from_hex(stringified.substr(4)));
  } catch (const std::invalid_argument& e) {
    throw MarshalError(std::string("ior: bad hex: ") + e.what());
  } catch (const cdr::CdrError& e) {
    throw MarshalError(std::string("ior: bad encoding: ") + e.what());
  }
}

}  // namespace maqs::orb

// Object adapter: the server-side registry mapping object keys to servants
// (CORBA POA equivalent, minus POA policies).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "orb/ior.hpp"
#include "orb/servant.hpp"

namespace maqs::orb {

class Orb;

class ObjectAdapter {
 public:
  explicit ObjectAdapter(Orb& orb) : orb_(orb) {}
  ObjectAdapter(const ObjectAdapter&) = delete;
  ObjectAdapter& operator=(const ObjectAdapter&) = delete;

  /// Activates a servant under `key` and returns its reference. The
  /// optional `qos` profiles become the IOR's QoS tag (paper §4).
  /// Throws std::invalid_argument if the key is empty or taken.
  ObjRef activate(const std::string& key, std::shared_ptr<Servant> servant,
                  std::vector<QosProfile> qos = {});

  /// Removes the servant; subsequent requests raise NO_SUCH_OBJECT.
  void deactivate(std::string_view key);

  /// Servant lookup; nullptr when not active. Heterogeneous string_view
  /// key: the per-request dispatch lookup never allocates.
  std::shared_ptr<Servant> find(std::string_view key) const;

  /// Re-creates the reference for an activated key (same data as
  /// activate() returned).
  ObjRef reference(std::string_view key) const;

  std::size_t active_count() const noexcept { return servants_.size(); }

 private:
  struct Entry {
    std::shared_ptr<Servant> servant;
    std::vector<QosProfile> qos;
  };
  /// Transparent hash so string_view keys probe without a temporary
  /// std::string.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const noexcept {
      return std::hash<std::string_view>{}(key);
    }
  };

  Orb& orb_;
  std::unordered_map<std::string, Entry, KeyHash, std::equal_to<>> servants_;
};

}  // namespace maqs::orb

// Object adapter: the server-side registry mapping object keys to servants
// (CORBA POA equivalent, minus POA policies).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "orb/ior.hpp"
#include "orb/servant.hpp"

namespace maqs::orb {

class Orb;

class ObjectAdapter {
 public:
  explicit ObjectAdapter(Orb& orb) : orb_(orb) {}
  ObjectAdapter(const ObjectAdapter&) = delete;
  ObjectAdapter& operator=(const ObjectAdapter&) = delete;

  /// Activates a servant under `key` and returns its reference. The
  /// optional `qos` profiles become the IOR's QoS tag (paper §4).
  /// Throws std::invalid_argument if the key is empty or taken.
  ObjRef activate(const std::string& key, std::shared_ptr<Servant> servant,
                  std::vector<QosProfile> qos = {});

  /// Removes the servant; subsequent requests raise NO_SUCH_OBJECT.
  void deactivate(const std::string& key);

  /// Servant lookup; nullptr when not active.
  std::shared_ptr<Servant> find(const std::string& key) const;

  /// Re-creates the reference for an activated key (same data as
  /// activate() returned).
  ObjRef reference(const std::string& key) const;

  std::size_t active_count() const noexcept { return servants_.size(); }

 private:
  struct Entry {
    std::shared_ptr<Servant> servant;
    std::vector<QosProfile> qos;
  };

  Orb& orb_;
  std::map<std::string, Entry> servants_;
};

}  // namespace maqs::orb

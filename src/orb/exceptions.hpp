// ORB exception model (CORBA system/user exception split).
//
// System exceptions are raised by the infrastructure; user exceptions are
// application-defined and travel in reply bodies. NotNegotiated is the
// exception the paper's server-side mapping mandates for QoS operations of
// characteristics that are assigned to the interface but not currently
// negotiated (§3.3: "only the operations of the actual negotiated QoS
// characteristic are processed while others raise an exception").
#pragma once

#include <string>

#include "util/error.hpp"

namespace maqs::orb {

class SystemException : public Error {
 public:
  using Error::Error;
};

/// Transport failure: destination unreachable, timeout, connection broken.
class TransportError : public SystemException {
 public:
  using SystemException::SystemException;
};

/// The object key does not name an active servant.
class ObjectNotExist : public SystemException {
 public:
  using SystemException::SystemException;
};

/// The servant does not implement the requested operation.
class BadOperation : public SystemException {
 public:
  using SystemException::SystemException;
};

/// Malformed argument stream (CdrError surfaced across the wire).
class MarshalError : public SystemException {
 public:
  using SystemException::SystemException;
};

/// A QoS-aware request or command arrived at an ORB with no QoS transport.
class NoQosTransport : public SystemException {
 public:
  using SystemException::SystemException;
};

/// QoS operation invoked for a characteristic that is assigned but not the
/// currently negotiated one (paper §3.3).
class NotNegotiated : public SystemException {
 public:
  using SystemException::SystemException;
};

/// Application-defined exception; `id` is its repository id.
class UserException : public Error {
 public:
  UserException(std::string id, const std::string& detail)
      : Error(id + ": " + detail), id_(std::move(id)), detail_(detail) {}

  const std::string& id() const noexcept { return id_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::string id_;
  std::string detail_;
};

}  // namespace maqs::orb

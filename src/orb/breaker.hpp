// Per-endpoint circuit breaking for the invocation layer.
//
// The ORB's blocking/async request paths consult one CircuitBreaker per
// destination endpoint: after `failure_threshold` *consecutive* transport
// failures (local timeouts — never server-raised exceptions, which prove
// the endpoint is reachable) the circuit opens and requests fail fast
// with a locally synthesized "maqs/CIRCUIT_OPEN" reply instead of tying
// up a timeout each. After `open_period` of virtual time the breaker
// half-opens and admits exactly one probe request; a successful reply
// closes the circuit, another failure re-opens it for a fresh period.
//
// All deadlines are sim-clock time points, so a fixed seed reproduces the
// exact same open/half-open/close transition sequence — the chaos suite
// asserts the sequence, not just the end state.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"

namespace maqs::orb {

struct BreakerConfig {
  /// Consecutive transport failures that trip the circuit.
  int failure_threshold = 5;
  /// How long an open circuit rejects before admitting a probe.
  sim::Duration open_period = 200 * sim::kMillisecond;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state) noexcept;

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

  /// True if a request may be sent at `now`. Flips open -> half-open once
  /// the open period has elapsed; in half-open, admits exactly one probe
  /// until its outcome is recorded.
  bool allow(sim::TimePoint now);

  /// A reply (any decoded reply, even an exception: the endpoint is up).
  void record_success();

  /// A transport-level failure: local timeout or undeliverable send.
  void record_failure(sim::TimePoint now);

  BreakerState state() const noexcept { return state_; }
  int consecutive_failures() const noexcept { return consecutive_failures_; }
  /// Meaningful while open: when the next probe is admitted.
  sim::TimePoint open_until() const noexcept { return open_until_; }

 private:
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  sim::TimePoint open_until_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace maqs::orb

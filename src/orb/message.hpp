// GIOP-style wire messages.
//
// One request format serves two purposes (paper §4, "the CORBA request is
// used in a dual fashion"): ordinary service requests to application
// objects, and *commands* that configure/control the QoS transport or one
// of its modules. The `kind` tag distinguishes them; `qos_aware` mirrors
// the IOR tag so the receiving invocation interface can dispatch per
// Fig. 3 without consulting client state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace maqs::orb {

enum class RequestKind : std::uint8_t {
  kServiceRequest = 0,
  kCommand = 1,
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kUserException,
  kSystemException,
  kNotNegotiated,
  kNoSuchObject,
  kBadOperation,
};

const char* reply_status_name(ReplyStatus status) noexcept;

/// Out-of-band request/reply metadata (CORBA service context). QoS
/// mechanisms use it to tag payloads: "qos.module", "qos.key-epoch",
/// "qos.timestamp", ...
///
/// Stored as a small flat vector kept sorted by key. Contexts carry a
/// handful of entries at most, so the flat layout beats node-based
/// std::map on every hot-path operation (no per-entry allocation, one
/// contiguous block, cheap iteration during encode) while preserving the
/// deterministic sorted wire order the std::map representation produced.
class ServiceContext {
 public:
  using value_type = std::pair<std::string, util::Bytes>;
  using Entries = std::vector<value_type>;
  using iterator = Entries::iterator;
  using const_iterator = Entries::const_iterator;

  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator find(std::string_view key) noexcept;
  const_iterator find(std::string_view key) const noexcept;
  bool contains(std::string_view key) const noexcept {
    return find(key) != end();
  }

  /// Returns the value for `key`, inserting an empty one if absent
  /// (std::map-compatible insertion point, sorted position).
  util::Bytes& operator[](std::string_view key);

  /// Checked lookup; throws std::out_of_range when the key is absent.
  const util::Bytes& at(std::string_view key) const;

  /// Insert-or-assign without the default-construct-then-assign dance.
  void set(std::string_view key, util::Bytes value);

  /// Removes the entry; returns false when absent.
  bool erase(std::string_view key);

  bool operator==(const ServiceContext&) const = default;

 private:
  Entries entries_;  // sorted ascending by key
};

struct RequestMessage {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::kServiceRequest;
  /// Mirrors ObjRef::qos_aware(); selects the QoS transport path (Fig. 3).
  bool qos_aware = false;
  /// Target servant (service requests).
  std::string object_key;
  /// Command addressee: "" = the QoS transport itself, else a module name.
  std::string target_module;
  std::string operation;
  ServiceContext context;
  /// CDR-encoded operation arguments (service requests) or a sequence of
  /// self-describing Anys (commands, DII).
  util::Bytes body;

  /// Exact wire size of encode()'s output; used to pre-size the buffer.
  std::size_t encoded_size() const noexcept;
  util::Bytes encode() const;
  static RequestMessage decode(util::BytesView data);
};

struct ReplyMessage {
  std::uint64_t request_id = 0;
  ReplyStatus status = ReplyStatus::kOk;
  /// Exception repository id / diagnostic when status != kOk.
  std::string exception;
  ServiceContext context;
  util::Bytes body;
  /// Local provenance flag: true iff this reply was synthesized by the
  /// local ORB (request timeout, circuit-breaker fast-fail) and never
  /// crossed the wire. NEVER marshaled — encode() ignores it and decode()
  /// always yields false — so a genuine server-raised exception that
  /// happens to reuse a local exception id ("maqs/TIMEOUT") stays
  /// distinguishable from the locally synthesized one. Retry policy
  /// classification depends on this: only local faults have a provably
  /// known delivery state.
  bool synthesized_locally = false;

  /// Exact wire size of encode()'s output; used to pre-size the buffer.
  std::size_t encoded_size() const noexcept;
  util::Bytes encode() const;
  static ReplyMessage decode(util::BytesView data);
};

/// Peeks at the framing byte: true if `data` is a request frame, false for
/// a reply frame; throws MarshalError otherwise.
bool is_request_frame(util::BytesView data);

}  // namespace maqs::orb

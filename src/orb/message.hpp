// GIOP-style wire messages.
//
// One request format serves two purposes (paper §4, "the CORBA request is
// used in a dual fashion"): ordinary service requests to application
// objects, and *commands* that configure/control the QoS transport or one
// of its modules. The `kind` tag distinguishes them; `qos_aware` mirrors
// the IOR tag so the receiving invocation interface can dispatch per
// Fig. 3 without consulting client state.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.hpp"

namespace maqs::orb {

enum class RequestKind : std::uint8_t {
  kServiceRequest = 0,
  kCommand = 1,
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kUserException,
  kSystemException,
  kNotNegotiated,
  kNoSuchObject,
  kBadOperation,
};

const char* reply_status_name(ReplyStatus status) noexcept;

/// Out-of-band request/reply metadata (CORBA service context). QoS
/// mechanisms use it to tag payloads: "qos.module", "qos.key-epoch",
/// "qos.timestamp", ...
using ServiceContext = std::map<std::string, util::Bytes>;

struct RequestMessage {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::kServiceRequest;
  /// Mirrors ObjRef::qos_aware(); selects the QoS transport path (Fig. 3).
  bool qos_aware = false;
  /// Target servant (service requests).
  std::string object_key;
  /// Command addressee: "" = the QoS transport itself, else a module name.
  std::string target_module;
  std::string operation;
  ServiceContext context;
  /// CDR-encoded operation arguments (service requests) or a sequence of
  /// self-describing Anys (commands, DII).
  util::Bytes body;

  util::Bytes encode() const;
  static RequestMessage decode(util::BytesView data);
};

struct ReplyMessage {
  std::uint64_t request_id = 0;
  ReplyStatus status = ReplyStatus::kOk;
  /// Exception repository id / diagnostic when status != kOk.
  std::string exception;
  ServiceContext context;
  util::Bytes body;

  util::Bytes encode() const;
  static ReplyMessage decode(util::BytesView data);
};

/// Peeks at the framing byte: true if `data` is a request frame, false for
/// a reply frame; throws MarshalError otherwise.
bool is_request_frame(util::BytesView data);

}  // namespace maqs::orb

#include "orb/dii.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/stub.hpp"

namespace maqs::orb {

DiiRequest::DiiRequest(Orb& orb, ObjRef target, std::string operation)
    : orb_(orb),
      target_(std::move(target)),
      operation_(std::move(operation)),
      return_type_(cdr::TypeCode::void_tc()) {}

DiiRequest& DiiRequest::add_arg(cdr::Any arg) {
  args_.push_back(std::move(arg));
  return *this;
}

DiiRequest& DiiRequest::set_return_type(cdr::TypeCodePtr type) {
  return_type_ = std::move(type);
  return *this;
}

DiiRequest& DiiRequest::set_context(const std::string& key,
                                    util::Bytes value) {
  context_[key] = std::move(value);
  return *this;
}

cdr::Any DiiRequest::invoke() {
  RequestMessage req;
  req.request_id = orb_.next_request_id();
  req.kind = RequestKind::kServiceRequest;
  req.object_key = target_.object_key;
  req.operation = operation_;
  req.context = context_;
  // Values only: byte-compatible with the stream a static stub writes.
  cdr::Encoder enc;
  for (const cdr::Any& arg : args_) arg.encode_value(enc);
  req.body = enc.take();

  ReplyMessage rep = orb_.invoke(target_, std::move(req));
  raise_for_status(rep);
  if (return_type_->kind() == cdr::TCKind::kVoid) {
    return cdr::Any::make_void();
  }
  cdr::Decoder dec(rep.body);
  cdr::Any result = cdr::Any::decode_value(dec, return_type_);
  dec.expect_end();
  return result;
}

util::Bytes encode_command_args(const std::vector<cdr::Any>& args) {
  cdr::Encoder enc;
  enc.write_u32(static_cast<std::uint32_t>(args.size()));
  for (const cdr::Any& arg : args) arg.encode(enc);
  return enc.take();
}

std::vector<cdr::Any> decode_command_args(util::BytesView body) {
  cdr::Decoder dec(body);
  const std::uint32_t n = dec.read_u32();
  std::vector<cdr::Any> args;
  args.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    args.push_back(cdr::Any::decode(dec));
  }
  dec.expect_end();
  return args;
}

cdr::Any send_command(Orb& orb, const net::Address& dest,
                      const std::string& module, const std::string& operation,
                      const std::vector<cdr::Any>& args) {
  RequestMessage req;
  req.request_id = orb.next_request_id();
  req.kind = RequestKind::kCommand;
  req.qos_aware = true;
  req.target_module = module;
  req.operation = operation;
  req.body = encode_command_args(args);

  ReplyMessage rep = orb.invoke_plain(dest, std::move(req));
  raise_for_status(rep);
  if (rep.body.empty()) return cdr::Any::make_void();
  cdr::Decoder dec(rep.body);
  cdr::Any result = cdr::Any::decode(dec);
  dec.expect_end();
  return result;
}

}  // namespace maqs::orb

// The ORB core: invocation interface, plain GIOP/IIOP-style transport and
// the hook where the QoS transport (Fig. 3) plugs in.
//
// Request routing implements the paper's Fig. 3 decision tree:
//
//   invocation interface -- with QoS? --no--> GIOP/IIOP path
//                                  \--yes--> QoS transport (RequestRouter)
//
// and on the receiving side:
//
//   frame --request?--> command?        --> QoS transport / module
//                      service request  --> (module inbound transform) -->
//                                           object adapter --> servant
//
// The ORB itself knows nothing about QoS mechanisms; it only provides the
// tagged-request plumbing and the RequestRouter extension point that
// maqs::core::QosTransport implements. This keeps the hierarchy of
// concerns the paper argues for: the ORB is reusable without any QoS.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "orb/adapter.hpp"
#include "orb/breaker.hpp"
#include "orb/exceptions.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"

namespace maqs::trace {
class TraceRecorder;
}

namespace maqs::orb {

/// Extension point implemented by the QoS transport (maqs::core). See file
/// comment for where each hook sits in the Fig. 3 flow.
class RequestRouter {
 public:
  virtual ~RequestRouter() = default;

  /// Client side: deliver a QoS-aware service request and return the reply.
  virtual ReplyMessage route(const ObjRef& target, RequestMessage req) = 0;

  /// Server side, before adapter dispatch. May rewrite the request (e.g.
  /// decrypt/decompress the body). Returning a reply short-circuits
  /// dispatch entirely (commands are answered here).
  virtual std::optional<ReplyMessage> inbound(RequestMessage& req,
                                              const net::Address& from) = 0;

  /// Server side, after dispatch: transform the outgoing reply.
  virtual void outbound(const RequestMessage& req, ReplyMessage& rep) = 0;
};

/// Extension point implemented by the retry policy (maqs::core). Like
/// RequestRouter, the interface lives in the ORB so invoke_plain() can
/// drive the retry loop, while the policy itself (what is safe to retry,
/// backoff schedule, deadline budget) stays a core concern.
class RetryAdvisor {
 public:
  virtual ~RetryAdvisor() = default;

  /// Consulted after attempt number `attempt` (1-based) produced the
  /// SYSTEM_EXCEPTION reply `rep`. `elapsed` is the virtual time spent in
  /// invoke_plain so far. Return a backoff to sleep before retrying, or
  /// nullopt to give up and surface the reply as-is.
  virtual std::optional<sim::Duration> on_attempt_failed(
      const net::Address& dest, const RequestMessage& req,
      const ReplyMessage& rep, int attempt, sim::Duration elapsed) = 0;
};

/// Statistics for the dispatch-path benchmarks (bench_f3_dispatch,
/// bench_f4_hotpath).
struct OrbStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_dispatched = 0;
  std::uint64_t commands_dispatched = 0;
  std::uint64_t plain_path = 0;     // requests that took GIOP/IIOP
  std::uint64_t qos_path = 0;       // requests handed to the QoS transport
  std::uint64_t replies_orphaned = 0;  // replies with no pending entry
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_marshaled_out = 0;  // frame bytes encoded and sent
  std::uint64_t bytes_marshaled_in = 0;   // frame bytes decoded successfully
  // Resilience counters (all zero unless a RetryAdvisor / BreakerConfig
  // is installed).
  std::uint64_t requests_retried = 0;     // extra attempts by invoke_plain
  std::uint64_t breaker_fast_fails = 0;   // requests rejected while open
  std::uint64_t breaker_opens = 0;        // transitions into open
  std::uint64_t breaker_half_opens = 0;   // transitions into half-open
  std::uint64_t breaker_closes = 0;       // transitions back to closed
};

class Orb {
 public:
  /// Binds the ORB to (node, port) on the simulated network.
  Orb(net::Network& network, net::NodeId node, std::uint16_t port);
  ~Orb();
  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  net::Network& network() noexcept { return network_; }
  const net::Network& network() const noexcept { return network_; }
  sim::EventLoop& loop() noexcept { return network_.loop(); }
  const net::Address& endpoint() const noexcept { return endpoint_; }
  ObjectAdapter& adapter() noexcept { return adapter_; }
  const OrbStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = OrbStats{}; }

  /// Installs/uninstalls the QoS transport. Not owned.
  void set_router(RequestRouter* router) noexcept { router_ = router; }
  RequestRouter* router() const noexcept { return router_; }

  /// Installs/uninstalls the retry policy driving invoke_plain's retry
  /// loop. Not owned. nullptr (the default) keeps the single-attempt
  /// zero-copy fast path.
  void set_retry_advisor(RetryAdvisor* advisor) noexcept {
    retry_advisor_ = advisor;
  }
  RetryAdvisor* retry_advisor() const noexcept { return retry_advisor_; }

  /// Enables per-endpoint circuit breaking on the outgoing request path
  /// (nullopt, the default, disables it and drops all breaker state).
  void set_breaker_config(std::optional<BreakerConfig> config) {
    breaker_config_ = config;
    breakers_.clear();
  }
  const std::optional<BreakerConfig>& breaker_config() const noexcept {
    return breaker_config_;
  }

  /// State of the breaker guarding `dest`; nullopt when breaking is off
  /// or no request has touched that endpoint yet.
  std::optional<BreakerState> breaker_state(const net::Address& dest) const {
    auto it = breakers_.find(dest);
    if (it == breakers_.end()) return std::nullopt;
    return it->second.state();
  }

  /// Installs/uninstalls the causal trace recorder (not owned; may be
  /// shared between ORBs so client and server spans land in one ring).
  /// nullptr (the default) keeps every instrumentation point on the
  /// branch-and-skip fast path.
  void set_trace_recorder(trace::TraceRecorder* recorder) noexcept {
    trace_recorder_ = recorder;
  }
  trace::TraceRecorder* trace_recorder() const noexcept {
    return trace_recorder_;
  }

  void set_default_timeout(sim::Duration timeout) noexcept {
    default_timeout_ = timeout;
  }
  sim::Duration default_timeout() const noexcept { return default_timeout_; }

  /// Fresh request id (unique per ORB; the wire pairs them with the
  /// requester endpoint, so per-ORB uniqueness suffices).
  std::uint64_t next_request_id() noexcept { return next_request_id_++; }

  // ---- client side ----

  /// The invocation interface (Fig. 3 client half): QoS-aware references
  /// go to the installed router, everything else takes the plain path.
  /// Blocks (pumps the event loop) until the reply arrives; throws
  /// TransportError on timeout.
  ReplyMessage invoke(const ObjRef& target, RequestMessage req);

  /// Plain GIOP/IIOP path to an explicit endpoint. Used directly by the
  /// QoS transport for negotiation bootstrap and module fallback.
  ReplyMessage invoke_plain(const net::Address& dest, RequestMessage req);

  /// Reply callback. Takes the reply by value so the ORB can move the
  /// decoded message straight into the handler (zero-copy reply path);
  /// lambdas taking `const ReplyMessage&` remain compatible.
  using ReplyHandler = std::function<void(ReplyMessage)>;

  /// Fire-and-collect: sends without blocking; `on_reply` runs for the
  /// reply or, on timeout, for a synthesized SYSTEM_EXCEPTION reply with
  /// exception "maqs/TIMEOUT". Returns the request id.
  std::uint64_t send_request(const net::Address& dest, RequestMessage req,
                             ReplyHandler on_reply,
                             sim::Duration timeout = 0);

  /// Multicast variant: one frame to every group member; `on_reply` runs
  /// once per reply until cancel_request() is called or the timeout fires
  /// (timeout delivers the synthesized "maqs/TIMEOUT" reply once).
  std::uint64_t send_multicast_request(
      const std::string& group, RequestMessage req,
      ReplyHandler on_reply,
      sim::Duration timeout = 0);

  /// Stops reply delivery for an outstanding request id.
  void cancel_request(std::uint64_t request_id);

  /// Convenience: blocking wait for a predicate on this ORB's loop.
  bool run_until(const std::function<bool()>& pred) {
    return loop().run_until(pred);
  }

  // ---- server side (exposed for the QoS transport) ----

  /// Dispatches a service request through the object adapter, applying
  /// router inbound/outbound transforms when the request is QoS-aware.
  ReplyMessage dispatch(RequestMessage req, const net::Address& from);

 private:
  void on_frame(const net::Address& from, const util::Bytes& data);
  void handle_request(const net::Address& from, RequestMessage req);
  void handle_reply(const net::Address& from, ReplyMessage rep);
  /// Adapter dispatch only (no router hooks).
  ReplyMessage dispatch_to_servant(const RequestMessage& req,
                                   const net::Address& from);

  /// One blocking attempt on the plain path: send, pump until the reply
  /// (possibly a synthesized local fault) arrives, return it.
  ReplyMessage attempt_plain(const net::Address& dest, RequestMessage req);
  /// Maps a locally synthesized fault reply to the TransportError
  /// invoke_plain's contract promises. Never returns.
  [[noreturn]] static void throw_local_fault(const ReplyMessage& rep);

  struct Pending {
    std::uint64_t id = 0;
    ReplyHandler on_reply;
    sim::EventId timeout_event = 0;
    bool multi = false;
    /// Destination, recorded only while circuit breaking is enabled (and
    /// never for multicast) so the timeout can charge the right breaker.
    net::Address dest;
  };

  /// Registers a pending entry with its timeout; shared by send_request and
  /// send_multicast_request. `dest` may be empty (multicast).
  void add_pending(std::uint64_t id, ReplyHandler on_reply,
                   sim::Duration timeout, bool multi,
                   const net::Address& dest);
  std::vector<Pending>::iterator find_pending(std::uint64_t id) noexcept;
  /// Removes the entry without touching its timeout event. The swap-and-pop
  /// invariant lives here and only here: the timeout path (whose event is
  /// already firing and must not be cancelled) and erase_pending share it.
  void pop_pending(std::vector<Pending>::iterator it);
  /// Erases a pending entry, always cancelling its timeout event first so
  /// no stale timeout can fire for a completed/cancelled request.
  void erase_pending(std::vector<Pending>::iterator it);

  // Breaker plumbing: each wrapper observes the state transition (if any)
  // for counters / log / trace. All are no-ops unless breaker_config_ set.
  CircuitBreaker& breaker_for(const net::Address& dest);
  bool breaker_allow(const net::Address& dest);
  void breaker_on_success(const net::Address& from);
  void breaker_on_failure(const net::Address& dest);
  void note_breaker_transition(const net::Address& endpoint,
                               BreakerState from, BreakerState to);

  net::Network& network_;
  net::Address endpoint_;
  ObjectAdapter adapter_;
  RequestRouter* router_ = nullptr;
  RetryAdvisor* retry_advisor_ = nullptr;
  trace::TraceRecorder* trace_recorder_ = nullptr;
  std::uint64_t next_request_id_ = 1;
  // Flat store: only a handful of requests are in flight at once, so a
  // linear scan beats a node-based map and reuses its capacity without
  // allocating per request.
  std::vector<Pending> pending_;
  sim::Duration default_timeout_ = 2 * sim::kSecond;
  std::optional<BreakerConfig> breaker_config_;
  std::map<net::Address, CircuitBreaker> breakers_;
  OrbStats stats_;
};

}  // namespace maqs::orb

// The ORB core: invocation interface, plain GIOP/IIOP-style transport and
// the hook where the QoS transport (Fig. 3) plugs in.
//
// Request routing implements the paper's Fig. 3 decision tree:
//
//   invocation interface -- with QoS? --no--> GIOP/IIOP path
//                                  \--yes--> QoS transport (RequestRouter)
//
// and on the receiving side:
//
//   frame --request?--> command?        --> QoS transport / module
//                      service request  --> (module inbound transform) -->
//                                           object adapter --> servant
//
// Both halves are realized as interceptor chains (orb/interceptor.hpp):
// invoke()/invoke_plain() walk the client chain down to one terminal wire
// attempt, handle_request() walks the server chain down to the object
// adapter. The ORB itself knows nothing about QoS mechanisms; routing,
// mediation, tracing, retry and circuit breaking are interceptors, and
// the RequestRouter extension point (implemented by maqs::core's
// QosTransport) hangs off the qos.route/qos.server stages. This keeps the
// hierarchy of concerns the paper argues for: the ORB is reusable without
// any QoS.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "orb/adapter.hpp"
#include "orb/breaker.hpp"
#include "orb/exceptions.hpp"
#include "orb/interceptor.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"

namespace maqs::trace {
class TraceRecorder;
}

namespace maqs::orb {

/// Extension point implemented by the QoS transport (maqs::core). See file
/// comment for where each hook sits in the Fig. 3 flow.
class RequestRouter {
 public:
  virtual ~RequestRouter() = default;

  /// Client side: deliver a QoS-aware service request and return the reply.
  virtual ReplyMessage route(const ObjRef& target, RequestMessage req) = 0;

  /// Server side, before adapter dispatch. May rewrite the request (e.g.
  /// decrypt/decompress the body). Returning a reply short-circuits
  /// dispatch entirely (commands are answered here).
  virtual std::optional<ReplyMessage> inbound(RequestMessage& req,
                                              const net::Address& from) = 0;

  /// Server side, after dispatch: transform the outgoing reply.
  virtual void outbound(const RequestMessage& req, ReplyMessage& rep) = 0;
};

/// Statistics for the dispatch-path benchmarks (bench_f3_dispatch,
/// bench_f4_hotpath).
struct OrbStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_dispatched = 0;
  std::uint64_t commands_dispatched = 0;
  std::uint64_t plain_path = 0;     // requests that took GIOP/IIOP
  std::uint64_t qos_path = 0;       // requests handed to the QoS transport
  std::uint64_t replies_orphaned = 0;  // replies with no pending entry
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_marshaled_out = 0;  // frame bytes encoded and sent
  std::uint64_t bytes_marshaled_in = 0;   // frame bytes decoded successfully
  // Resilience counters (all zero unless a RetryAdvisor / BreakerConfig
  // is installed).
  std::uint64_t requests_retried = 0;     // extra attempts by the retry stage
  std::uint64_t breaker_fast_fails = 0;   // requests rejected while open
  std::uint64_t breaker_opens = 0;        // transitions into open
  std::uint64_t breaker_half_opens = 0;   // transitions into half-open
  std::uint64_t breaker_closes = 0;       // transitions back to closed
};

class Orb {
 public:
  /// Binds the ORB to (node, port) on the simulated network.
  Orb(net::Network& network, net::NodeId node, std::uint16_t port);
  ~Orb();
  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  net::Network& network() noexcept { return network_; }
  const net::Network& network() const noexcept { return network_; }
  sim::EventLoop& loop() noexcept { return network_.loop(); }
  const net::Address& endpoint() const noexcept { return endpoint_; }
  ObjectAdapter& adapter() noexcept { return adapter_; }
  const OrbStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = OrbStats{}; }

  /// Installs/uninstalls the QoS transport. Not owned.
  void set_router(RequestRouter* router) noexcept { router_ = router; }
  RequestRouter* router() const noexcept { return router_; }

  /// Installs/uninstalls the retry policy driving the retry interceptor.
  /// Not owned. nullptr (the default) keeps the single-attempt zero-copy
  /// fast path.
  void set_retry_advisor(RetryAdvisor* advisor) noexcept {
    retry_ci_.set_advisor(advisor);
  }
  RetryAdvisor* retry_advisor() const noexcept { return retry_ci_.advisor(); }

  /// Enables per-endpoint circuit breaking on the outgoing request path
  /// (nullopt, the default, disables it and drops all breaker state).
  void set_breaker_config(std::optional<BreakerConfig> config) {
    breaker_ci_.set_config(std::move(config));
  }
  const std::optional<BreakerConfig>& breaker_config() const noexcept {
    return breaker_ci_.config();
  }

  /// Aggregate state over every profile breaker at `dest` (worst wins);
  /// nullopt when breaking is off or no request has touched that endpoint
  /// yet.
  std::optional<BreakerState> breaker_state(const net::Address& dest) const {
    return breaker_ci_.state(dest);
  }
  /// State of the breaker guarding exactly (dest, profile) — profile is
  /// the addressed object key.
  std::optional<BreakerState> breaker_state(const net::Address& dest,
                                            std::string_view profile) const {
    return breaker_ci_.state(dest, profile);
  }

  /// Installs/uninstalls the causal trace recorder (not owned; may be
  /// shared between ORBs so client and server spans land in one ring).
  /// nullptr (the default) keeps every instrumentation point on the
  /// branch-and-skip fast path.
  void set_trace_recorder(trace::TraceRecorder* recorder) noexcept {
    trace_recorder_ = recorder;
  }
  trace::TraceRecorder* trace_recorder() const noexcept {
    return trace_recorder_;
  }

  void set_default_timeout(sim::Duration timeout) noexcept {
    default_timeout_ = timeout;
  }
  sim::Duration default_timeout() const noexcept { return default_timeout_; }

  /// Fresh request id (unique per ORB; the wire pairs them with the
  /// requester endpoint, so per-ORB uniqueness suffices).
  std::uint64_t next_request_id() noexcept { return next_request_id_++; }

  // ---- interceptor pipeline ----

  /// Registers a custom interceptor (not owned) at `priority`; see
  /// orb/interceptor.hpp for the built-in chain positions. Must not be
  /// called while an invocation is walking the chain.
  void register_client_interceptor(ClientInterceptor* interceptor,
                                   int priority) {
    client_chain_.add(interceptor, priority);
  }
  bool unregister_client_interceptor(const ClientInterceptor* interceptor) {
    return client_chain_.remove(interceptor);
  }
  void register_server_interceptor(ServerInterceptor* interceptor,
                                   int priority) {
    server_chain_.add(interceptor, priority);
  }
  bool unregister_server_interceptor(const ServerInterceptor* interceptor) {
    return server_chain_.remove(interceptor);
  }

  /// Reserves a SlotTable index for a custom interceptor's cross-stage
  /// state (built-ins hold theirs already).
  std::size_t allocate_client_slot() { return client_chain_.allocate_slot(); }
  std::size_t allocate_server_slot() { return server_chain_.allocate_slot(); }

  /// Both chains in walk order: names, priorities and per-interceptor
  /// hit/short-circuit counters (client chain first).
  std::vector<InterceptorRecord> dump_interceptors() const;

  // ---- client side ----

  /// The invocation interface (Fig. 3 client half): walks the full client
  /// chain — trace mint, mediation, the QoS/plain fork, resilience — down
  /// to one (or more, under retry) wire attempts. Blocks (pumps the event
  /// loop) until the reply arrives; throws TransportError on timeout.
  ReplyMessage invoke(const ObjRef& target, RequestMessage req);

  /// Power-user form of invoke(): the caller owns the info record (target,
  /// request and the per-invocation mediator delegate must be set) and it
  /// outlives the walk, so the root trace span covers whatever the caller
  /// does with info.reply afterwards (the stub classifies status under
  /// it). info.reply holds the result.
  void invoke_with(ClientRequestInfo& info);

  /// Plain GIOP/IIOP path to an explicit endpoint: enters the client
  /// chain at kClientPlainEntry (local-fault/retry/breaker stages only).
  /// Used directly by the QoS transport for negotiation bootstrap and
  /// module fallback.
  ReplyMessage invoke_plain(const net::Address& dest, RequestMessage req);

  /// Reply callback. Takes the reply by value so the ORB can move the
  /// decoded message straight into the handler (zero-copy reply path);
  /// lambdas taking `const ReplyMessage&` remain compatible.
  using ReplyHandler = std::function<void(ReplyMessage)>;

  /// Fire-and-collect: sends without blocking; `on_reply` runs for the
  /// reply or, on timeout, for a synthesized SYSTEM_EXCEPTION reply with
  /// exception "maqs/TIMEOUT". Returns the request id.
  std::uint64_t send_request(const net::Address& dest, RequestMessage req,
                             ReplyHandler on_reply,
                             sim::Duration timeout = 0);

  /// Multicast variant: one frame to every group member; `on_reply` runs
  /// once per reply until cancel_request() is called or the timeout fires
  /// (timeout delivers the synthesized "maqs/TIMEOUT" reply once).
  std::uint64_t send_multicast_request(
      const std::string& group, RequestMessage req,
      ReplyHandler on_reply,
      sim::Duration timeout = 0);

  /// Stops reply delivery for an outstanding request id.
  void cancel_request(std::uint64_t request_id);

  /// Convenience: blocking wait for a predicate on this ORB's loop.
  bool run_until(const std::function<bool()>& pred) {
    return loop().run_until(pred);
  }

  // ---- server side (exposed for the QoS transport) ----

  /// Dispatches a service request through the server chain from
  /// kServerDispatchEntry (router inbound/outbound transforms + adapter),
  /// skipping the wire stages.
  ReplyMessage dispatch(RequestMessage req, const net::Address& from);

  /// Re-enters the full server chain for a request a scheduling
  /// interceptor parked earlier (see sched::RequestScheduler). The walk
  /// carries ServerRequestInfo::resumed so the parking level passes the
  /// request through; everything else — trace re-attach, wire reply,
  /// QoS transforms, adapter dispatch — runs exactly as for a fresh
  /// arrival.
  void resume_request(RequestMessage req, const net::Address& from);

  /// Encodes `rep`, counts the bytes in stats and sends the frame to
  /// `to`. The wire tail shared by the wire.reply interceptor and by
  /// schedulers that must answer a parked request (shed/evict) outside
  /// any chain walk.
  void send_reply_frame(const net::Address& to, const ReplyMessage& rep);

 private:
  void on_frame(const net::Address& from, const util::Bytes& data);
  void handle_request(const net::Address& from, RequestMessage req);
  void handle_reply(const net::Address& from, ReplyMessage rep);
  /// Adapter dispatch only (the server chain's terminal).
  ReplyMessage dispatch_to_servant(const RequestMessage& req,
                                   const net::Address& from);

  /// Recursive onion walk over the client chain; the level past the end
  /// is attempt_once().
  void client_walk(ClientRequestInfo& info, std::size_t index);
  /// The client chain's terminal: one blocking wire attempt — send, pump
  /// until the reply (possibly a synthesized local fault) arrives.
  /// Admission (breaker) already happened in the chain; this never
  /// re-checks it (a half-open circuit admits exactly one probe).
  void attempt_once(ClientRequestInfo& info);
  /// Encode + pending entry + network send (no breaker admission).
  std::uint64_t wire_send(const net::Address& dest, const RequestMessage& req,
                          ReplyHandler on_reply, sim::Duration timeout);

  struct Pending {
    std::uint64_t id = 0;
    ReplyHandler on_reply;
    sim::EventId timeout_event = 0;
    bool multi = false;
    /// Destination and addressed profile (object key), recorded only while
    /// circuit breaking is enabled (and never for multicast) so the
    /// timeout and the matched reply can charge/credit the right breaker.
    net::Address dest;
    std::string profile;
  };

  /// Registers a pending entry with its timeout; shared by wire_send and
  /// send_multicast_request. `dest`/`profile` may be empty (multicast).
  void add_pending(std::uint64_t id, ReplyHandler on_reply,
                   sim::Duration timeout, bool multi, const net::Address& dest,
                   const std::string& profile);
  std::vector<Pending>::iterator find_pending(std::uint64_t id) noexcept;
  /// Removes the entry without touching its timeout event. The swap-and-pop
  /// invariant lives here and only here: the timeout path (whose event is
  /// already firing and must not be cancelled) and erase_pending share it.
  void pop_pending(std::vector<Pending>::iterator it);
  /// Erases a pending entry, always cancelling its timeout event first so
  /// no stale timeout can fire for a completed/cancelled request.
  void erase_pending(std::vector<Pending>::iterator it);

  net::Network& network_;
  net::Address endpoint_;
  ObjectAdapter adapter_;
  RequestRouter* router_ = nullptr;
  trace::TraceRecorder* trace_recorder_ = nullptr;
  std::uint64_t next_request_id_ = 1;
  // Flat store plus an id -> slot index. The vector keeps entries
  // contiguous (capacity reuse, cheap teardown iteration); the index keeps
  // reply matching O(1) — population runs hold thousands of requests in
  // flight, where the old linear scan went quadratic per reply wave.
  std::vector<Pending> pending_;
  std::unordered_map<std::uint64_t, std::size_t> pending_index_;
  sim::Duration default_timeout_ = 2 * sim::kSecond;
  OrbStats stats_;

  // The pipeline: chains first, then the built-in interceptors (which
  // capture `stats_` by reference, so stats_ must precede them). The
  // ORB's constructor registers the built-ins at their documented
  // priorities; they are armed-but-idle until the matching facade
  // (set_retry_advisor, set_breaker_config, set_router,
  // set_trace_recorder, a stub's set_mediator) arms them.
  ClientChain client_chain_;
  ServerChain server_chain_;
  TraceClientInterceptor trace_ci_;
  MediatorClientInterceptor mediator_ci_;
  RouteClientInterceptor route_ci_;
  LocalFaultClientInterceptor fault_ci_;
  RetryClientInterceptor retry_ci_;
  AttemptTraceClientInterceptor attempt_ci_;
  BreakerClientInterceptor breaker_ci_;
  TraceServerInterceptor trace_si_;
  WireReplyServerInterceptor wire_si_;
  QosServerInterceptor qos_si_;
};

}  // namespace maqs::orb

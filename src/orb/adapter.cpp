#include "orb/adapter.hpp"

#include <stdexcept>

#include "orb/orb.hpp"

namespace maqs::orb {

ObjRef ObjectAdapter::activate(const std::string& key,
                               std::shared_ptr<Servant> servant,
                               std::vector<QosProfile> qos) {
  if (key.empty()) {
    throw std::invalid_argument("adapter: empty object key");
  }
  if (!servant) {
    throw std::invalid_argument("adapter: null servant for key " + key);
  }
  auto [it, inserted] = servants_.emplace(key, Entry{servant, std::move(qos)});
  if (!inserted) {
    throw std::invalid_argument("adapter: key already active: " + key);
  }
  return reference(key);
}

void ObjectAdapter::deactivate(std::string_view key) {
  auto it = servants_.find(key);
  if (it != servants_.end()) servants_.erase(it);
}

std::shared_ptr<Servant> ObjectAdapter::find(std::string_view key) const {
  auto it = servants_.find(key);
  return it != servants_.end() ? it->second.servant : nullptr;
}

ObjRef ObjectAdapter::reference(std::string_view key) const {
  auto it = servants_.find(key);
  if (it == servants_.end()) {
    throw ObjectNotExist("adapter: no active servant for key " +
                         std::string(key));
  }
  ObjRef ref;
  ref.repo_id = it->second.servant->repo_id();
  ref.endpoint = orb_.endpoint();
  ref.object_key = std::string(key);
  ref.qos = it->second.qos;
  return ref;
}

}  // namespace maqs::orb

// The unified invocation-interceptor pipeline (CORBA Portable-Interceptor
// style, shrunk to this ORB).
//
// Every cross-cutting concern of the request path — mediator delegation,
// trace span weaving, retry/backoff, circuit breaking, QoS routing,
// skeleton prolog/epilog — is an interceptor on one of two ordered chains:
//
//   client chain (Orb::invoke / invoke_plain walk it top-down):
//     100 trace.client   mint root span + "qos.trace" wire entry
//     200 mediator       try_local / outbound / inbound delegation
//     300 qos.route      Fig. 3 "with QoS?" fork to the RequestRouter
//     350 local_fault    synthesized-fault -> TransportError contract
//         ^-- invoke_plain enters the chain here (kClientPlainEntry)
//     400 retry          RetryAdvisor consult, backoff, fresh request id
//     450 trace.attempt  per-attempt "retry.attempt" child span
//     500 breaker        per-endpoint circuit-breaker fast-fail
//     --- terminal: one wire attempt (encode, send, pump until reply)
//
//   server chain (Orb::handle_request walks it; Orb::dispatch enters at
//   kServerDispatchEntry):
//     100 trace.server   re-attach the caller's trace context
//     150 wire.reply     stamp request id, encode, count bytes, send
//     175 sched          QoS-class scheduler (when armed): classify, admit,
//                        park; dispatch resumes via Orb::resume_request
//     200 qos.server     commands + router inbound/outbound transforms
//     --- terminal: object-adapter dispatch to the servant
//
// Chains are flat vectors ordered by (priority, registration order); the
// walk is an onion: send/receive hooks run in ascending priority order,
// reply hooks unwind in reverse. Per-invocation state crosses stages via
// the ClientRequestInfo/ServerRequestInfo record and its fixed SlotTable —
// no allocation on the fast path, and interceptors themselves stay
// stateless across concurrent (nested) invocations.
//
// Short-circuiting: a client interceptor may complete the call from
// send_request (skipping everything below it *and* its own receive_reply),
// ask for the levels from itself downward to be re-driven (kRetry), or
// fail the call by throwing from receive_reply; a server interceptor
// completes by setting info.completed. The QoS skeleton reuses the server
// chain machinery for its per-characteristic prolog/epilog and payload
// transform stages (see core/qos_skeleton.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "orb/breaker.hpp"
#include "orb/exceptions.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"
#include "trace/trace.hpp"

namespace maqs::orb {

class Orb;
class RequestRouter;
class ServerContext;
struct OrbStats;

/// Documented chain positions. Custom interceptors pick any other value;
/// equal priorities keep registration order.
namespace priorities {
inline constexpr int kClientTrace = 100;
inline constexpr int kClientMediator = 200;
/// Replica selection (naming::ReplicaSelector) sits between the mediator
/// and the QoS fork: a redirected target must be chosen before qos.route
/// decides between the QoS transport and the plain path.
inline constexpr int kClientReplicaSelect = 250;
inline constexpr int kClientRoute = 300;
inline constexpr int kClientLocalFault = 350;
/// Replica failover sits between local_fault and retry: it observes
/// synthesized fault replies *as replies* (local_fault above would convert
/// them to TransportError on the unwind) only after the retry stage below
/// has exhausted its per-replica attempts.
inline constexpr int kClientReplicaFailover = 375;
inline constexpr int kClientRetry = 400;
inline constexpr int kClientAttemptTrace = 450;
inline constexpr int kClientBreaker = 500;
inline constexpr int kServerTrace = 100;
inline constexpr int kServerWireReply = 150;
inline constexpr int kServerSched = 175;
inline constexpr int kServerQos = 200;
inline constexpr int kSkeletonPrologBase = 100;
inline constexpr int kSkeletonTransformBase = 200;
}  // namespace priorities

/// invoke_plain() enters the client chain at the first interceptor whose
/// priority is >= this: routing/mediation/trace minting belong to the full
/// invocation interface, resilience to every plain-path send.
inline constexpr int kClientPlainEntry = priorities::kClientLocalFault;

/// Orb::dispatch() (the QoS transport's server-side entry) walks only the
/// interceptors at or above this priority: the wire concerns (trace
/// re-attach, reply send) belong to handle_request alone.
inline constexpr int kServerDispatchEntry = priorities::kServerQos;

/// The per-invocation delegate the paper's §3.3 mediator weaving plugs
/// into the stub: it may answer locally, rewrite the request, redirect the
/// target and observe the reply. Consumed by the mediator client
/// interceptor; maqs::core::Mediator derives from it.
class ClientDelegate {
 public:
  virtual ~ClientDelegate() = default;

  /// May answer the request locally (e.g. from a cache), bypassing the
  /// network entirely. Default: no local answer.
  virtual std::optional<ReplyMessage> try_local(const RequestMessage& req,
                                                const ObjRef& target) {
    (void)req;
    (void)target;
    return std::nullopt;
  }

  /// Before the request reaches the wire; may rewrite body/context and
  /// redirect `target`.
  virtual void outbound(RequestMessage& req, ObjRef& target) {
    (void)req;
    (void)target;
  }

  /// After the reply returns, before the stub unmarshals it.
  virtual void inbound(const RequestMessage& req, ReplyMessage& rep) {
    (void)req;
    (void)rep;
  }

  /// Whether inbound() reads the request's body/context. When false the
  /// pipeline retains only the cheap header fields for inbound()
  /// correlation, sparing a copy of the marshaled arguments. Payload
  /// transforms that only touch the reply (compression, encryption)
  /// override this to false; the conservative default keeps the full
  /// request alive.
  virtual bool needs_request_payload() const { return true; }
};

/// Extension point implemented by the retry policy (maqs::core). The
/// interface lives in the ORB layer so the retry interceptor can drive the
/// loop, while the policy itself (what is safe to retry, backoff schedule,
/// deadline budget) stays a core concern.
class RetryAdvisor {
 public:
  virtual ~RetryAdvisor() = default;

  /// Consulted after attempt number `attempt` (1-based) produced the
  /// SYSTEM_EXCEPTION reply `rep`. `elapsed` is the virtual time spent in
  /// the invocation so far. Return a backoff to sleep before retrying, or
  /// nullopt to give up and surface the reply as-is.
  virtual std::optional<sim::Duration> on_attempt_failed(
      const net::Address& dest, const RequestMessage& req,
      const ReplyMessage& rep, int attempt, sim::Duration elapsed) = 0;
};

/// Fixed-size cross-stage scratch space: one u64 per slot, zeroed per
/// invocation, no heap. Slot indices are handed out per chain
/// (InterceptorChain::allocate_slot), so independently written
/// interceptors cannot collide.
struct SlotTable {
  static constexpr std::size_t kSlots = 8;
  std::uint64_t values[kSlots] = {};

  std::uint64_t get(std::size_t slot) const noexcept { return values[slot]; }
  void set(std::size_t slot, std::uint64_t value) noexcept {
    values[slot] = value;
  }
};

/// Per-invocation record threaded through the client chain. Lives on the
/// caller's stack (the stub keeps it alive across raise_for_status so the
/// root span covers reply classification, exactly like the pre-pipeline
/// inline weaving did).
struct ClientRequestInfo {
  explicit ClientRequestInfo(Orb& o) : orb(o) {}

  Orb& orb;

  /// Invocation target; redirected in place by the mediator stage. Null
  /// for plain-entry walks (invoke_plain), which address an endpoint.
  const ObjRef* target = nullptr;
  const net::Address* plain_dest = nullptr;

  RequestMessage request;
  ReplyMessage reply;

  /// Mediator stage state: the per-invocation delegate, the retained
  /// request handed to inbound(), and the redirectable target copy.
  ClientDelegate* mediator = nullptr;
  RequestMessage retained;
  std::optional<ObjRef> redirect;

  /// Replica-selection stage state (naming::ReplicaSelector). The select
  /// interceptor remembers the original multi-profile target in
  /// `replica_group` and points the wire at the chosen profile: via
  /// `replica_dest` (plain targets — no ObjRef copy on the hot path) or
  /// by rewriting `target` to the materialized `selected` copy (QoS-aware
  /// targets, which the router addresses through the ObjRef itself).
  const ObjRef* replica_group = nullptr;
  std::optional<net::Address> replica_dest;
  std::optional<ObjRef> selected;

  /// Retry stage state. `attempt` is 1-based; `retry_engaged` is set iff
  /// an advisor is armed for this invocation.
  int attempt = 1;
  bool retry_engaged = false;
  sim::TimePoint started = 0;

  /// Trace stage state: the root client.request span and the per-attempt
  /// retry.attempt span. Inline storage — spans cost no allocation.
  std::optional<trace::SpanScope> root_span;
  std::optional<trace::SpanScope> attempt_span;

  SlotTable slots;

  /// Endpoint the terminal wire attempt addresses.
  const net::Address& wire_dest() const noexcept {
    if (replica_dest.has_value()) return *replica_dest;
    return target != nullptr ? target->endpoint : *plain_dest;
  }
};

/// Per-invocation record threaded through a server chain. `orb`/`from`
/// are set for the ORB's own chain; skeleton-local stage chains carry the
/// dispatch context instead.
struct ServerRequestInfo {
  Orb* orb = nullptr;
  const net::Address* from = nullptr;
  RequestMessage* request = nullptr;
  ReplyMessage reply;
  ServerContext* ctx = nullptr;
  /// Set by an interceptor that answered the request itself; stops the
  /// walk from descending further (its own send_reply hook is skipped,
  /// the hooks above it still unwind).
  bool completed = false;
  /// Set by a scheduling interceptor that took ownership of the request
  /// and deferred its dispatch. Aborts the walk entirely: no level runs a
  /// send_reply hook (there is no reply yet — the owner re-enters the
  /// chain later via Orb::resume_request with `resumed` set).
  bool parked = false;
  /// Marks a walk re-entered for a previously parked request, so the
  /// parking interceptor passes it straight through to dispatch.
  bool resumed = false;
  std::optional<trace::SpanScope> server_span;
  SlotTable slots;
};

enum class SendAction {
  kContinue,  // descend to the next interceptor
  kComplete,  // info.reply is the answer; skip everything below
};

enum class ReplyAction {
  kContinue,  // unwind to the interceptor above
  kRetry,     // re-drive this interceptor and everything below it
};

class ClientInterceptor {
 public:
  virtual ~ClientInterceptor() = default;
  virtual const char* name() const noexcept = 0;

  /// Descending pass. May rewrite info.request, answer the call
  /// (kComplete after filling info.reply), or throw to fail it.
  virtual SendAction send_request(ClientRequestInfo&) {
    return SendAction::kContinue;
  }

  /// Ascending pass with info.reply filled. May rewrite the reply, demand
  /// a re-drive (kRetry), or throw to fail the call.
  virtual ReplyAction receive_reply(ClientRequestInfo&) {
    return ReplyAction::kContinue;
  }

  /// Observes an exception unwinding past this level (thrown below, or by
  /// this level's receive_reply). Cleanup only; the exception is rethrown.
  virtual void receive_exception(ClientRequestInfo&) noexcept {}
};

class ServerInterceptor {
 public:
  virtual ~ServerInterceptor() = default;
  virtual const char* name() const noexcept = 0;

  /// Descending pass. May rewrite the request or complete the call
  /// (fill info.reply, set info.completed).
  virtual void receive_request(ServerRequestInfo&) {}

  /// Ascending pass with info.reply filled. May rewrite or send it.
  virtual void send_reply(ServerRequestInfo&) {}

  /// Offered the Error unwinding past this level. Returning true converts
  /// it: the interceptor filled info.reply and the walk unwinds normally
  /// from here. Returning false (default) propagates.
  virtual bool handle_error(ServerRequestInfo&, const Error&) {
    return false;
  }

  /// Observes an exception this level did not convert. Cleanup only.
  virtual void send_exception(ServerRequestInfo&) noexcept {}
};

/// Flat, priority-ordered chain with per-entry hit/short-circuit counters.
/// Registration keeps the vector sorted (stable for equal priorities), so
/// any permutation of registration calls yields the same walk order.
template <typename Interceptor>
class InterceptorChain {
 public:
  struct Entry {
    int priority = 0;
    Interceptor* interceptor = nullptr;
    std::uint64_t hits = 0;
    std::uint64_t short_circuits = 0;
  };

  void add(Interceptor* interceptor, int priority) {
    Entry entry;
    entry.priority = priority;
    entry.interceptor = interceptor;
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry,
        [](const Entry& a, const Entry& b) { return a.priority < b.priority; });
    entries_.insert(pos, entry);
  }

  /// Removes the first entry for `interceptor`; false when absent.
  bool remove(const Interceptor* interceptor) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->interceptor == interceptor) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<Entry>& entries() noexcept { return entries_; }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Index of the first interceptor at or above `priority` (walk entry
  /// point for partial walks).
  std::size_t first_at_or_above(int priority) const noexcept {
    std::size_t i = 0;
    while (i < entries_.size() && entries_[i].priority < priority) ++i;
    return i;
  }

  /// Hands out the next free SlotTable index. Throws once the fixed table
  /// is exhausted — interceptors acquire slots at registration time, so
  /// this can never fire mid-request.
  std::size_t allocate_slot() {
    if (next_slot_ >= SlotTable::kSlots) {
      throw Error("interceptor chain: slot table exhausted");
    }
    return next_slot_++;
  }

 private:
  std::vector<Entry> entries_;
  std::size_t next_slot_ = 0;
};

using ClientChain = InterceptorChain<ClientInterceptor>;
using ServerChain = InterceptorChain<ServerInterceptor>;

/// One row of Orb::dump_interceptors() / StatsSnapshot's chain section.
struct InterceptorRecord {
  const char* name = "";
  int priority = 0;
  std::uint64_t hits = 0;
  std::uint64_t short_circuits = 0;
  bool server = false;
};

/// The onion walk shared by the ORB's server chain and the QoS skeleton's
/// stage chain. `terminal` runs below the deepest interceptor unless one
/// of them completed the call. A templated callable (not std::function)
/// keeps the armed-but-idle walk allocation-free.
template <typename Terminal>
void walk_server_chain(ServerChain& chain, std::size_t index,
                       ServerRequestInfo& info, Terminal&& terminal) {
  auto& entries = chain.entries();
  if (index >= entries.size()) {
    if (!info.completed) terminal(info);
    return;
  }
  auto& entry = entries[index];
  ++entry.hits;
  ServerInterceptor& interceptor = *entry.interceptor;
  try {
    interceptor.receive_request(info);
    if (info.completed) {
      // The interceptor answered: levels below never run, and neither
      // does its own send_reply (mirrors the pre-pipeline semantics of a
      // router inbound() answering before outbound() existed).
      ++entry.short_circuits;
      return;
    }
    if (info.parked) {
      // The interceptor parked the request for deferred dispatch: there
      // is no reply to send, so the walk aborts without running any
      // send_reply hook at this level or above.
      ++entry.short_circuits;
      return;
    }
    walk_server_chain(chain, index + 1, info,
                      std::forward<Terminal>(terminal));
    if (info.parked) return;
    interceptor.send_reply(info);
  } catch (const Error& e) {
    if (!interceptor.handle_error(info, e)) {
      interceptor.send_exception(info);
      throw;
    }
  } catch (...) {
    interceptor.send_exception(info);
    throw;
  }
}

// ---- built-in client interceptors ----

/// 100: mints the root client.request span and the "qos.trace" wire entry
/// when the recorder is enabled and head sampling says yes. The span lives
/// in the info record, so it stays open until the info owner (the stub)
/// releases it — reply classification happens under the span.
class TraceClientInterceptor final : public ClientInterceptor {
 public:
  explicit TraceClientInterceptor(Orb& orb) : orb_(orb) {}
  const char* name() const noexcept override { return "trace.client"; }
  SendAction send_request(ClientRequestInfo& info) override;

 private:
  Orb& orb_;
};

/// 200: the paper's §3.3 mediator weaving, driven by the per-invocation
/// delegate in info.mediator (installed by StubBase::set_mediator).
class MediatorClientInterceptor final : public ClientInterceptor {
 public:
  const char* name() const noexcept override { return "mediator"; }
  SendAction send_request(ClientRequestInfo& info) override;
  ReplyAction receive_reply(ClientRequestInfo& info) override;
};

/// 300: Fig. 3 "With QoS?" — QoS-aware targets with a router installed
/// complete through RequestRouter::route(); everything else descends onto
/// the plain path.
class RouteClientInterceptor final : public ClientInterceptor {
 public:
  RouteClientInterceptor(Orb& orb, OrbStats& stats)
      : orb_(orb), stats_(stats) {}
  const char* name() const noexcept override { return "qos.route"; }
  SendAction send_request(ClientRequestInfo& info) override;

 private:
  Orb& orb_;
  OrbStats& stats_;
};

/// 350 (= kClientPlainEntry): converts locally synthesized fault replies
/// (timeout, breaker fast-fail) into the TransportError the blocking
/// contract promises — after the retry level below has given up, before
/// the mediator/route levels above observe the unwind.
class LocalFaultClientInterceptor final : public ClientInterceptor {
 public:
  const char* name() const noexcept override { return "local_fault"; }
  ReplyAction receive_reply(ClientRequestInfo& info) override;
};

/// 400: consults the armed RetryAdvisor on SYSTEM_EXCEPTION replies,
/// sleeps the granted backoff on the virtual clock, assigns a fresh
/// request id (a straggler reply to an abandoned attempt must never
/// satisfy the retried one) and re-drives the levels below.
class RetryClientInterceptor final : public ClientInterceptor {
 public:
  RetryClientInterceptor(Orb& orb, OrbStats& stats)
      : orb_(orb), stats_(stats) {}
  const char* name() const noexcept override { return "retry"; }
  SendAction send_request(ClientRequestInfo& info) override;
  ReplyAction receive_reply(ClientRequestInfo& info) override;

  void set_advisor(RetryAdvisor* advisor) noexcept { advisor_ = advisor; }
  RetryAdvisor* advisor() const noexcept { return advisor_; }

 private:
  Orb& orb_;
  OrbStats& stats_;
  RetryAdvisor* advisor_ = nullptr;
};

/// 450: opens one retry.attempt child span per wire attempt when a retry
/// policy is engaged and a trace is in flight — retry wraps trace, so
/// per-attempt transport/network spans nest under their attempt instead
/// of smearing into one span outside the loop.
class AttemptTraceClientInterceptor final : public ClientInterceptor {
 public:
  const char* name() const noexcept override { return "trace.attempt"; }
  SendAction send_request(ClientRequestInfo& info) override;
  ReplyAction receive_reply(ClientRequestInfo& info) override;
  void receive_exception(ClientRequestInfo& info) noexcept override;
};

/// 500: per-(endpoint, profile) circuit breaker. Breakers are keyed by the
/// destination endpoint *and* the addressed object key, so one dead or
/// slow servant's open circuit never fast-fails sibling profiles behind
/// the same logical service (or other objects on the same ORB). Owns the
/// breaker map and the transition bookkeeping; the ORB's async send path
/// and the reply/timeout plumbing share it through admit()/
/// on_reply_decoded()/on_transport_failure().
class BreakerClientInterceptor final : public ClientInterceptor {
 public:
  /// (endpoint, object key) breaker key. The transparent comparator lets
  /// the admission path probe with a string_view pair — no key
  /// materialization per request.
  using BreakerKey = std::pair<net::Address, std::string>;
  struct BreakerKeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };

  BreakerClientInterceptor(Orb& orb, OrbStats& stats)
      : orb_(orb), stats_(stats) {}
  const char* name() const noexcept override { return "breaker"; }
  SendAction send_request(ClientRequestInfo& info) override;

  bool armed() const noexcept { return config_.has_value(); }
  void set_config(std::optional<BreakerConfig> config) {
    config_ = config;
    breakers_.clear();
  }
  const std::optional<BreakerConfig>& config() const noexcept {
    return config_;
  }
  /// Endpoint aggregate: the most-degraded state (open > half-open >
  /// closed) over every profile breaker at `dest`; nullopt when none
  /// tracks the endpoint yet.
  std::optional<BreakerState> state(const net::Address& dest) const;
  /// Exact (endpoint, profile) breaker state.
  std::optional<BreakerState> state(const net::Address& dest,
                                    std::string_view profile) const;

  /// Admission check shared by the chain walk and the async send path.
  /// Returns false and fills `fast` (a synthesized CIRCUIT_OPEN reply)
  /// when the circuit rejects the request.
  bool admit(const net::Address& dest, std::string_view profile,
             std::uint64_t request_id, ReplyMessage& fast);
  /// A decoded reply matched to its pending request proves that profile's
  /// servant live.
  void on_reply_decoded(const net::Address& from, std::string_view profile);
  /// An orphaned (or multicast) reply cannot be attributed to a profile;
  /// it still proves the endpoint reachable, so every breaker at that
  /// endpoint records the success.
  void on_reply_decoded_any(const net::Address& from);
  /// A timeout charges the breaker guarding (dest, profile).
  void on_transport_failure(const net::Address& dest,
                            std::string_view profile);

 private:
  CircuitBreaker& breaker_for(const net::Address& dest,
                              std::string_view profile);
  void note_transition(const net::Address& endpoint,
                       std::string_view profile, BreakerState from,
                       BreakerState to);

  Orb& orb_;
  OrbStats& stats_;
  std::optional<BreakerConfig> config_;
  std::map<BreakerKey, CircuitBreaker, BreakerKeyLess> breakers_;
};

// ---- built-in server interceptors ----

/// 100: re-attaches the client's trace context so server spans (and the
/// reply's transit span, sent by wire.reply while this scope is open)
/// share the trace. Unknown/garbage context entries are ignored.
class TraceServerInterceptor final : public ServerInterceptor {
 public:
  const char* name() const noexcept override { return "trace.server"; }
  void receive_request(ServerRequestInfo& info) override;
  void send_reply(ServerRequestInfo& info) override;
  void send_exception(ServerRequestInfo& info) noexcept override;
};

/// 150: the wire tail of handle_request — stamps the reply with the
/// original request id (saved on the way down; router transforms may
/// rewrite the request), encodes, counts bytes and sends.
class WireReplyServerInterceptor final : public ServerInterceptor {
 public:
  WireReplyServerInterceptor(Orb& orb, OrbStats& stats)
      : orb_(orb), stats_(stats) {}
  const char* name() const noexcept override { return "wire.reply"; }
  void receive_request(ServerRequestInfo& info) override;
  void send_reply(ServerRequestInfo& info) override;
  void set_slot(std::size_t slot) noexcept { slot_ = slot; }

 private:
  Orb& orb_;
  OrbStats& stats_;
  std::size_t slot_ = 0;
};

/// 200 (= kServerDispatchEntry): the Fig. 3 server half — commands are
/// answered by the router (or rejected), QoS-aware service requests get
/// the router's inbound/outbound transforms, and router/servant Errors
/// are converted into SYSTEM_EXCEPTION replies for service requests.
class QosServerInterceptor final : public ServerInterceptor {
 public:
  QosServerInterceptor(Orb& orb, OrbStats& stats)
      : orb_(orb), stats_(stats) {}
  const char* name() const noexcept override { return "qos.server"; }
  void receive_request(ServerRequestInfo& info) override;
  void send_reply(ServerRequestInfo& info) override;
  bool handle_error(ServerRequestInfo& info, const Error& e) override;
  void set_slot(std::size_t slot) noexcept { slot_ = slot; }

 private:
  Orb& orb_;
  OrbStats& stats_;
  std::size_t slot_ = 0;
};

}  // namespace maqs::orb

#include "orb/message.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/exceptions.hpp"

namespace maqs::orb {

namespace {
constexpr std::uint8_t kRequestMagic = 0xA1;
constexpr std::uint8_t kReplyMagic = 0xA2;

void encode_context(cdr::Encoder& enc, const ServiceContext& context) {
  enc.write_u32(static_cast<std::uint32_t>(context.size()));
  for (const auto& [key, value] : context) {
    enc.write_string(key);
    enc.write_bytes(value);
  }
}

ServiceContext decode_context(cdr::Decoder& dec) {
  ServiceContext context;
  const std::uint32_t n = dec.read_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = dec.read_string();
    context[key] = dec.read_bytes();
  }
  return context;
}
}  // namespace

const char* reply_status_name(ReplyStatus status) noexcept {
  switch (status) {
    case ReplyStatus::kOk: return "OK";
    case ReplyStatus::kUserException: return "USER_EXCEPTION";
    case ReplyStatus::kSystemException: return "SYSTEM_EXCEPTION";
    case ReplyStatus::kNotNegotiated: return "NOT_NEGOTIATED";
    case ReplyStatus::kNoSuchObject: return "NO_SUCH_OBJECT";
    case ReplyStatus::kBadOperation: return "BAD_OPERATION";
  }
  return "?";
}

util::Bytes RequestMessage::encode() const {
  cdr::Encoder enc;
  enc.write_u8(kRequestMagic);
  enc.write_u64(request_id);
  enc.write_u8(static_cast<std::uint8_t>(kind));
  enc.write_bool(qos_aware);
  enc.write_string(object_key);
  enc.write_string(target_module);
  enc.write_string(operation);
  encode_context(enc, context);
  enc.write_bytes(body);
  return enc.take();
}

RequestMessage RequestMessage::decode(util::BytesView data) {
  cdr::Decoder dec(data);
  if (dec.read_u8() != kRequestMagic) {
    throw MarshalError("message: not a request frame");
  }
  RequestMessage req;
  req.request_id = dec.read_u64();
  const std::uint8_t kind = dec.read_u8();
  if (kind > static_cast<std::uint8_t>(RequestKind::kCommand)) {
    throw MarshalError("message: bad request kind");
  }
  req.kind = static_cast<RequestKind>(kind);
  req.qos_aware = dec.read_bool();
  req.object_key = dec.read_string();
  req.target_module = dec.read_string();
  req.operation = dec.read_string();
  req.context = decode_context(dec);
  req.body = dec.read_bytes();
  dec.expect_end();
  return req;
}

util::Bytes ReplyMessage::encode() const {
  cdr::Encoder enc;
  enc.write_u8(kReplyMagic);
  enc.write_u64(request_id);
  enc.write_u8(static_cast<std::uint8_t>(status));
  enc.write_string(exception);
  encode_context(enc, context);
  enc.write_bytes(body);
  return enc.take();
}

ReplyMessage ReplyMessage::decode(util::BytesView data) {
  cdr::Decoder dec(data);
  if (dec.read_u8() != kReplyMagic) {
    throw MarshalError("message: not a reply frame");
  }
  ReplyMessage rep;
  rep.request_id = dec.read_u64();
  const std::uint8_t status = dec.read_u8();
  if (status > static_cast<std::uint8_t>(ReplyStatus::kBadOperation)) {
    throw MarshalError("message: bad reply status");
  }
  rep.status = static_cast<ReplyStatus>(status);
  rep.exception = dec.read_string();
  rep.context = decode_context(dec);
  rep.body = dec.read_bytes();
  dec.expect_end();
  return rep;
}

bool is_request_frame(util::BytesView data) {
  if (data.empty()) throw MarshalError("message: empty frame");
  if (data[0] == kRequestMagic) return true;
  if (data[0] == kReplyMagic) return false;
  throw MarshalError("message: unknown frame magic");
}

}  // namespace maqs::orb

#include "orb/message.hpp"

#include <algorithm>
#include <stdexcept>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "orb/exceptions.hpp"
#include "util/buffer_pool.hpp"

namespace maqs::orb {

namespace {
constexpr std::uint8_t kRequestMagic = 0xA1;
constexpr std::uint8_t kReplyMagic = 0xA2;

bool key_less(const ServiceContext::value_type& entry,
              std::string_view key) noexcept {
  return entry.first < key;
}

std::size_t context_wire_size(const ServiceContext& context) noexcept {
  std::size_t n = 4;  // entry count
  for (const auto& [key, value] : context) {
    n += 8 + key.size() + value.size();  // two length prefixes + payloads
  }
  return n;
}

void encode_context(cdr::Encoder& enc, const ServiceContext& context) {
  enc.write_u32(static_cast<std::uint32_t>(context.size()));
  for (const auto& [key, value] : context) {
    enc.write_string(key);
    enc.write_bytes(value);
  }
}

ServiceContext decode_context(cdr::Decoder& dec) {
  ServiceContext context;
  const std::uint32_t n = dec.read_u32();
  context.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Well-formed peers send sorted keys, so each insert lands at the back;
    // operator[] still handles (and dedupes) adversarial orderings.
    const std::string_view key = dec.read_string_view();
    context[key] = dec.read_bytes();
  }
  return context;
}
}  // namespace

// ---- ServiceContext ----

ServiceContext::iterator ServiceContext::find(std::string_view key) noexcept {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, key_less);
  if (it != entries_.end() && it->first == key) return it;
  return entries_.end();
}

ServiceContext::const_iterator ServiceContext::find(
    std::string_view key) const noexcept {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, key_less);
  if (it != entries_.end() && it->first == key) return it;
  return entries_.end();
}

util::Bytes& ServiceContext::operator[](std::string_view key) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, key_less);
  if (it == entries_.end() || it->first != key) {
    it = entries_.emplace(it, std::string(key), util::Bytes{});
  }
  return it->second;
}

const util::Bytes& ServiceContext::at(std::string_view key) const {
  auto it = find(key);
  if (it == end()) {
    throw std::out_of_range("ServiceContext: no entry '" + std::string(key) +
                            "'");
  }
  return it->second;
}

void ServiceContext::set(std::string_view key, util::Bytes value) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, key_less);
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.emplace(it, std::string(key), std::move(value));
  }
}

bool ServiceContext::erase(std::string_view key) {
  auto it = find(key);
  if (it == end()) return false;
  entries_.erase(it);
  return true;
}

// ---- messages ----

const char* reply_status_name(ReplyStatus status) noexcept {
  switch (status) {
    case ReplyStatus::kOk: return "OK";
    case ReplyStatus::kUserException: return "USER_EXCEPTION";
    case ReplyStatus::kSystemException: return "SYSTEM_EXCEPTION";
    case ReplyStatus::kNotNegotiated: return "NOT_NEGOTIATED";
    case ReplyStatus::kNoSuchObject: return "NO_SUCH_OBJECT";
    case ReplyStatus::kBadOperation: return "BAD_OPERATION";
  }
  return "?";
}

std::size_t RequestMessage::encoded_size() const noexcept {
  return 1 + 8 + 1 + 1                                        // magic, id,
                                                              // kind, qos
         + 4 + object_key.size() + 4 + target_module.size()   // keys
         + 4 + operation.size() + context_wire_size(context)  //
         + 4 + body.size();
}

util::Bytes RequestMessage::encode() const {
  // Frames come from the pool and go back to it when the network delivers
  // them — steady-state traffic encodes without touching the allocator.
  cdr::Encoder enc(util::BufferPool::instance().acquire(encoded_size()));
  enc.write_u8(kRequestMagic);
  enc.write_u64(request_id);
  enc.write_u8(static_cast<std::uint8_t>(kind));
  enc.write_bool(qos_aware);
  enc.write_string(object_key);
  enc.write_string(target_module);
  enc.write_string(operation);
  encode_context(enc, context);
  enc.write_bytes(body);
  return enc.take();
}

RequestMessage RequestMessage::decode(util::BytesView data) {
  cdr::Decoder dec(data);
  if (dec.read_u8() != kRequestMagic) {
    throw MarshalError("message: not a request frame");
  }
  RequestMessage req;
  req.request_id = dec.read_u64();
  const std::uint8_t kind = dec.read_u8();
  if (kind > static_cast<std::uint8_t>(RequestKind::kCommand)) {
    throw MarshalError("message: bad request kind");
  }
  req.kind = static_cast<RequestKind>(kind);
  req.qos_aware = dec.read_bool();
  req.object_key = dec.read_string();
  req.target_module = dec.read_string();
  req.operation = dec.read_string();
  req.context = decode_context(dec);
  const util::BytesView body = dec.read_bytes_view();
  req.body = util::BufferPool::instance().acquire(body.size());
  req.body.assign(body.begin(), body.end());
  dec.expect_end();
  return req;
}

std::size_t ReplyMessage::encoded_size() const noexcept {
  return 1 + 8 + 1                                            // magic, id,
                                                              // status
         + 4 + exception.size() + context_wire_size(context)  //
         + 4 + body.size();
}

util::Bytes ReplyMessage::encode() const {
  cdr::Encoder enc(util::BufferPool::instance().acquire(encoded_size()));
  enc.write_u8(kReplyMagic);
  enc.write_u64(request_id);
  enc.write_u8(static_cast<std::uint8_t>(status));
  enc.write_string(exception);
  encode_context(enc, context);
  enc.write_bytes(body);
  return enc.take();
}

ReplyMessage ReplyMessage::decode(util::BytesView data) {
  cdr::Decoder dec(data);
  if (dec.read_u8() != kReplyMagic) {
    throw MarshalError("message: not a reply frame");
  }
  ReplyMessage rep;
  rep.request_id = dec.read_u64();
  const std::uint8_t status = dec.read_u8();
  if (status > static_cast<std::uint8_t>(ReplyStatus::kBadOperation)) {
    throw MarshalError("message: bad reply status");
  }
  rep.status = static_cast<ReplyStatus>(status);
  rep.exception = dec.read_string();
  rep.context = decode_context(dec);
  const util::BytesView body = dec.read_bytes_view();
  rep.body = util::BufferPool::instance().acquire(body.size());
  rep.body.assign(body.begin(), body.end());
  dec.expect_end();
  return rep;
}

bool is_request_frame(util::BytesView data) {
  if (data.empty()) throw MarshalError("message: empty frame");
  if (data[0] == kRequestMagic) return true;
  if (data[0] == kReplyMagic) return false;
  throw MarshalError("message: unknown frame magic");
}

}  // namespace maqs::orb

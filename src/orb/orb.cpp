#include "orb/orb.hpp"

#include <optional>
#include <string>
#include <utility>

#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"
#include "util/log.hpp"

namespace maqs::orb {

Orb::Orb(net::Network& network, net::NodeId node, std::uint16_t port)
    : network_(network),
      endpoint_{std::move(node), port},
      adapter_(*this),
      trace_ci_(*this),
      route_ci_(*this, stats_),
      retry_ci_(*this, stats_),
      breaker_ci_(*this, stats_),
      wire_si_(*this, stats_),
      qos_si_(*this, stats_) {
  network_.add_node(endpoint_.node);
  network_.bind(endpoint_,
                [this](const net::Address& from, const util::Bytes& data) {
                  on_frame(from, data);
                });
  // The built-in pipeline, at its documented positions (see
  // orb/interceptor.hpp). Every stage is armed-but-idle until the matching
  // facade installs a policy.
  client_chain_.add(&trace_ci_, priorities::kClientTrace);
  client_chain_.add(&mediator_ci_, priorities::kClientMediator);
  client_chain_.add(&route_ci_, priorities::kClientRoute);
  client_chain_.add(&fault_ci_, priorities::kClientLocalFault);
  client_chain_.add(&retry_ci_, priorities::kClientRetry);
  client_chain_.add(&attempt_ci_, priorities::kClientAttemptTrace);
  client_chain_.add(&breaker_ci_, priorities::kClientBreaker);
  server_chain_.add(&trace_si_, priorities::kServerTrace);
  server_chain_.add(&wire_si_, priorities::kServerWireReply);
  server_chain_.add(&qos_si_, priorities::kServerQos);
  wire_si_.set_slot(server_chain_.allocate_slot());
  qos_si_.set_slot(server_chain_.allocate_slot());
}

Orb::~Orb() {
  // Cancel outstanding timeout events: they capture `this` and the loop
  // outlives the ORB, so a stale timeout firing after destruction would be
  // a use-after-free.
  for (const Pending& pending : pending_) {
    loop().cancel(pending.timeout_event);
  }
  network_.unbind(endpoint_);
}

ReplyMessage Orb::invoke(const ObjRef& target, RequestMessage req) {
  ClientRequestInfo info{*this};
  info.target = &target;
  info.request = std::move(req);
  invoke_with(info);
  return std::move(info.reply);
}

void Orb::invoke_with(ClientRequestInfo& info) {
  if (info.target == nullptr || info.target->is_nil()) {
    throw ObjectNotExist("orb: invoke on nil reference");
  }
  info.request.object_key = info.target->object_key;
  client_walk(info, 0);
}

ReplyMessage Orb::invoke_plain(const net::Address& dest, RequestMessage req) {
  ClientRequestInfo info{*this};
  info.plain_dest = &dest;
  info.request = std::move(req);
  client_walk(info, client_chain_.first_at_or_above(kClientPlainEntry));
  return std::move(info.reply);
}

void Orb::client_walk(ClientRequestInfo& info, std::size_t index) {
  auto& entries = client_chain_.entries();
  if (index >= entries.size()) {
    attempt_once(info);
    return;
  }
  auto& entry = entries[index];
  ClientInterceptor& interceptor = *entry.interceptor;
  // The kRetry loop: a retrying interceptor re-drives itself and every
  // level below it, while the levels above stay on their single pass.
  for (;;) {
    ++entry.hits;
    try {
      if (interceptor.send_request(info) == SendAction::kComplete) {
        // info.reply is the answer; levels below never run and this
        // interceptor's own receive_reply is skipped — the levels above
        // still observe the reply on their unwind.
        ++entry.short_circuits;
        return;
      }
      client_walk(info, index + 1);
      if (interceptor.receive_reply(info) == ReplyAction::kRetry) continue;
    } catch (...) {
      interceptor.receive_exception(info);
      throw;
    }
    return;
  }
}

void Orb::attempt_once(ClientRequestInfo& info) {
  // One blocking wire attempt. The request stays owned by the info record
  // (the encoder reads it in place), so a retry level above can re-drive
  // without ever copying it. Admission already happened in the chain's
  // breaker stage; re-checking here would double-spend a half-open
  // circuit's single probe.
  std::optional<ReplyMessage> result;
  const std::uint64_t id = wire_send(
      info.wire_dest(), info.request,
      [&result](ReplyMessage rep) { result = std::move(rep); },
      /*timeout=*/0);
  run_until([&result] { return result.has_value(); });
  if (!result.has_value()) {
    // Event queue drained without the reply or the timeout firing; this
    // only happens if the simulation is torn down mid-call.
    cancel_request(id);
    throw TransportError("orb: event loop drained while awaiting reply");
  }
  info.reply = *std::move(result);
}

void Orb::add_pending(std::uint64_t id, ReplyHandler on_reply,
                      sim::Duration timeout, bool multi,
                      const net::Address& dest, const std::string& profile) {
  Pending pending;
  pending.id = id;
  pending.multi = multi;
  pending.on_reply = std::move(on_reply);
  // Only copy the endpoint/profile when a breaker will want them charged
  // on timeout; keeping the strings empty preserves the allocation-free
  // pending entry on the default path.
  if (breaker_ci_.armed() && !multi) {
    pending.dest = dest;
    pending.profile = profile;
  }
  pending.timeout_event = loop().schedule(timeout, [this, id] {
    auto it = find_pending(id);
    if (it == pending_.end()) return;
    ++stats_.timeouts;
    auto callback = std::move(it->on_reply);
    net::Address failed_dest;
    std::string failed_profile;
    const bool charge_breaker = breaker_ci_.armed() && !it->dest.node.empty();
    if (charge_breaker) {
      failed_dest = std::move(it->dest);
      failed_profile = std::move(it->profile);
    }
    // The timeout event is firing right now, so there is nothing stale to
    // cancel: remove without touching the event.
    pop_pending(it);
    // Charge the breaker before the callback runs, so an immediate retry
    // from inside the callback sees the updated circuit state.
    if (charge_breaker) {
      breaker_ci_.on_transport_failure(failed_dest, failed_profile);
    }
    ReplyMessage timeout_reply;
    timeout_reply.request_id = id;
    timeout_reply.status = ReplyStatus::kSystemException;
    timeout_reply.exception = "maqs/TIMEOUT";
    timeout_reply.synthesized_locally = true;
    callback(std::move(timeout_reply));
  });
  pending_index_[id] = pending_.size();
  pending_.push_back(std::move(pending));
}

std::vector<Orb::Pending>::iterator Orb::find_pending(
    std::uint64_t id) noexcept {
  const auto hit = pending_index_.find(id);
  if (hit == pending_index_.end()) return pending_.end();
  return pending_.begin() + static_cast<std::ptrdiff_t>(hit->second);
}

void Orb::pop_pending(std::vector<Pending>::iterator it) {
  pending_index_.erase(it->id);
  if (it != pending_.end() - 1) {
    *it = std::move(pending_.back());
    pending_index_[it->id] =
        static_cast<std::size_t>(it - pending_.begin());
  }
  pending_.pop_back();
}

void Orb::erase_pending(std::vector<Pending>::iterator it) {
  loop().cancel(it->timeout_event);
  pop_pending(it);
}

std::uint64_t Orb::wire_send(const net::Address& dest,
                             const RequestMessage& req, ReplyHandler on_reply,
                             sim::Duration timeout) {
  if (timeout <= 0) timeout = default_timeout_;
  const std::uint64_t id = req.request_id;
  add_pending(id, std::move(on_reply), timeout, /*multi=*/false, dest,
              req.object_key);
  ++stats_.requests_sent;
  util::Bytes wire = req.encode();
  stats_.bytes_marshaled_out += wire.size();
  try {
    network_.send(endpoint_, dest, std::move(wire));
  } catch (...) {
    // Undeliverable (e.g. unknown node): roll back the pending entry and
    // its timeout instead of leaving a stale event armed.
    if (auto it = find_pending(id); it != pending_.end()) erase_pending(it);
    throw;
  }
  return id;
}

std::uint64_t Orb::send_request(const net::Address& dest, RequestMessage req,
                                ReplyHandler on_reply, sim::Duration timeout) {
  if (req.request_id == 0) req.request_id = next_request_id();
  const std::uint64_t id = req.request_id;
  if (breaker_ci_.armed()) {
    // Fail fast: deliver the synthesized rejection inline (before this
    // call returns) instead of arming a doomed timeout.
    ReplyMessage fast;
    if (!breaker_ci_.admit(dest, req.object_key, id, fast)) {
      on_reply(std::move(fast));
      return id;
    }
  }
  return wire_send(dest, req, std::move(on_reply), timeout);
}

std::uint64_t Orb::send_multicast_request(const std::string& group,
                                          RequestMessage req,
                                          ReplyHandler on_reply,
                                          sim::Duration timeout) {
  if (req.request_id == 0) req.request_id = next_request_id();
  if (timeout <= 0) timeout = default_timeout_;
  const std::uint64_t id = req.request_id;

  add_pending(id, std::move(on_reply), timeout, /*multi=*/true,
              net::Address{}, std::string{});
  ++stats_.requests_sent;
  util::Bytes wire = req.encode();
  stats_.bytes_marshaled_out += wire.size();
  try {
    network_.multicast(endpoint_, group, std::move(wire));
  } catch (...) {
    if (auto it = find_pending(id); it != pending_.end()) erase_pending(it);
    throw;
  }
  return id;
}

void Orb::cancel_request(std::uint64_t request_id) {
  auto it = find_pending(request_id);
  if (it == pending_.end()) return;
  erase_pending(it);
}

void Orb::on_frame(const net::Address& from, const util::Bytes& data) {
  try {
    if (is_request_frame(data)) {
      RequestMessage req = RequestMessage::decode(data);
      stats_.bytes_marshaled_in += data.size();
      handle_request(from, std::move(req));
    } else {
      ReplyMessage rep = ReplyMessage::decode(data);
      stats_.bytes_marshaled_in += data.size();
      handle_reply(from, std::move(rep));
    }
  } catch (const Error& e) {
    // Garbage frames are dropped; a reliable transport below us means this
    // indicates a peer bug, not line noise.
    MAQS_WARN() << "orb " << endpoint_.to_string() << ": bad frame from "
                << from.to_string() << ": " << e.what();
  }
}

void Orb::handle_request(const net::Address& from, RequestMessage req) {
  // Full server chain: trace re-attach, wire reply tail, QoS transforms,
  // then the adapter terminal.
  ServerRequestInfo info;
  info.orb = this;
  info.from = &from;
  info.request = &req;
  walk_server_chain(server_chain_, 0, info, [this](ServerRequestInfo& i) {
    i.reply = dispatch_to_servant(*i.request, *i.from);
  });
  // Both bodies die here (the reply was already encoded and sent by the
  // wire stage); recycle their storage. Parked requests moved the body out,
  // leaving nothing worth pooling — release() ignores empties.
  auto& pool = util::BufferPool::instance();
  pool.release(std::move(req.body));
  pool.release(std::move(info.reply.body));
}

void Orb::resume_request(RequestMessage req, const net::Address& from) {
  ServerRequestInfo info;
  info.orb = this;
  info.from = &from;
  info.request = &req;
  info.resumed = true;
  walk_server_chain(server_chain_, 0, info, [this](ServerRequestInfo& i) {
    i.reply = dispatch_to_servant(*i.request, *i.from);
  });
  auto& pool = util::BufferPool::instance();
  pool.release(std::move(req.body));
  pool.release(std::move(info.reply.body));
}

void Orb::send_reply_frame(const net::Address& to, const ReplyMessage& rep) {
  util::Bytes wire = rep.encode();
  stats_.bytes_marshaled_out += wire.size();
  network_.send(endpoint_, to, std::move(wire));
}

ReplyMessage Orb::dispatch(RequestMessage req, const net::Address& from) {
  // The QoS transport's entry: same chain, minus the wire stages (the
  // transport owns its own framing and trace spans).
  ServerRequestInfo info;
  info.orb = this;
  info.from = &from;
  info.request = &req;
  walk_server_chain(server_chain_,
                    server_chain_.first_at_or_above(kServerDispatchEntry),
                    info, [this](ServerRequestInfo& i) {
                      i.reply = dispatch_to_servant(*i.request, *i.from);
                    });
  return std::move(info.reply);
}

ReplyMessage Orb::dispatch_to_servant(const RequestMessage& req,
                                      const net::Address& from) {
  ReplyMessage rep;
  rep.request_id = req.request_id;
  std::shared_ptr<Servant> servant = adapter_.find(req.object_key);
  if (!servant) {
    rep.status = ReplyStatus::kNoSuchObject;
    rep.exception = "maqs/NO_SUCH_OBJECT: " + req.object_key;
    return rep;
  }
  cdr::Decoder args(req.body);
  // Results are usually the same order of magnitude as the arguments
  // (echo-shaped traffic); a recycled buffer at that size turns the common
  // case into zero allocations without hurting small results.
  cdr::Encoder out(util::BufferPool::instance().acquire(req.body.size() + 32));
  ServerContext ctx(req, from, rep.context);
  try {
    trace::SpanScope span("adapter.dispatch", req.operation);
    servant->dispatch(req.operation, args, out, ctx);
    rep.status = ReplyStatus::kOk;
    rep.body = out.take();
  } catch (const NotNegotiated& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kNotNegotiated;
    rep.exception = e.what();
  } catch (const BadOperation& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kBadOperation;
    rep.exception = e.what();
  } catch (const UserException& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kUserException;
    rep.exception = e.id();
    cdr::Encoder exc_body;
    exc_body.write_string(e.detail());
    rep.body = exc_body.take();
  } catch (const cdr::CdrError& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kSystemException;
    rep.exception = std::string("maqs/MARSHAL: ") + e.what();
  } catch (const Error& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kSystemException;
    rep.exception = e.what();
  }
  return rep;
}

void Orb::handle_reply(const net::Address& from, ReplyMessage rep) {
  // Any decoded reply — matched, orphaned, even an exception — proves the
  // endpoint is reachable, so the breaker hears about it before the
  // callback runs. A matched reply credits exactly the profile breaker its
  // request charged; an orphan (late probe reply after its timeout,
  // surplus multicast replies) cannot be attributed to a profile, so every
  // breaker at the endpoint hears the success — a straggler still closes
  // the circuit rather than leaving it needlessly open.
  auto it = find_pending(rep.request_id);
  if (breaker_ci_.armed()) {
    if (it != pending_.end() && !it->multi && !it->dest.node.empty()) {
      breaker_ci_.on_reply_decoded(from, it->profile);
    } else {
      breaker_ci_.on_reply_decoded_any(from);
    }
  }
  if (it == pending_.end()) {
    // Late reply after timeout/cancel, or surplus replies of a multicast
    // request already satisfied: normal, counted for observability.
    ++stats_.replies_orphaned;
    return;
  }
  if (it->multi) {
    // Keep the entry alive: more replies may follow. Copy the callback so
    // the handler may cancel_request() from within.
    auto callback = it->on_reply;
    callback(std::move(rep));
  } else {
    // Move the callback out before erasing so the handler may re-enter the
    // ORB (issue a nested call) without touching a dead entry.
    auto callback = std::move(it->on_reply);
    erase_pending(it);
    callback(std::move(rep));
  }
}

std::vector<InterceptorRecord> Orb::dump_interceptors() const {
  std::vector<InterceptorRecord> out;
  out.reserve(client_chain_.entries().size() + server_chain_.entries().size());
  for (const auto& entry : client_chain_.entries()) {
    out.push_back({entry.interceptor->name(), entry.priority, entry.hits,
                   entry.short_circuits, /*server=*/false});
  }
  for (const auto& entry : server_chain_.entries()) {
    out.push_back({entry.interceptor->name(), entry.priority, entry.hits,
                   entry.short_circuits, /*server=*/true});
  }
  return out;
}

}  // namespace maqs::orb

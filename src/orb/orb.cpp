#include "orb/orb.hpp"

#include <optional>
#include <string>
#include <utility>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace maqs::orb {

Orb::Orb(net::Network& network, net::NodeId node, std::uint16_t port)
    : network_(network), endpoint_{std::move(node), port}, adapter_(*this) {
  network_.add_node(endpoint_.node);
  network_.bind(endpoint_,
                [this](const net::Address& from, const util::Bytes& data) {
                  on_frame(from, data);
                });
}

Orb::~Orb() {
  // Cancel outstanding timeout events: they capture `this` and the loop
  // outlives the ORB, so a stale timeout firing after destruction would be
  // a use-after-free.
  for (const Pending& pending : pending_) {
    loop().cancel(pending.timeout_event);
  }
  network_.unbind(endpoint_);
}

ReplyMessage Orb::invoke(const ObjRef& target, RequestMessage req) {
  if (target.is_nil()) {
    throw ObjectNotExist("orb: invoke on nil reference");
  }
  req.object_key = target.object_key;
  // Fig. 3, "With QoS?": the IOR tag decides the path.
  if (target.qos_aware() && router_ != nullptr) {
    req.qos_aware = true;
    ++stats_.qos_path;
    return router_->route(target, std::move(req));
  }
  ++stats_.plain_path;
  return invoke_plain(target.endpoint, std::move(req));
}

ReplyMessage Orb::invoke_plain(const net::Address& dest, RequestMessage req) {
  if (retry_advisor_ == nullptr) {
    // Single-attempt fast path: the request moves straight through to the
    // wire encoder, no copy.
    ReplyMessage rep = attempt_plain(dest, std::move(req));
    if (rep.synthesized_locally &&
        rep.status == ReplyStatus::kSystemException) {
      throw_local_fault(rep);
    }
    return rep;
  }

  const sim::TimePoint started = loop().now();
  for (int attempt = 1;; ++attempt) {
    ReplyMessage rep = attempt_plain(dest, req);
    if (rep.status != ReplyStatus::kSystemException) return rep;
    const std::optional<sim::Duration> backoff =
        retry_advisor_->on_attempt_failed(dest, req, rep, attempt,
                                          loop().now() - started);
    if (!backoff.has_value()) {
      if (rep.synthesized_locally) throw_local_fault(rep);
      // Remote exception: surface it to the caller (raise_for_status maps
      // it to the right exception type) rather than masking it.
      return rep;
    }
    ++stats_.requests_retried;
    if (trace::tracing_active()) {
      trace::point("retry.backoff",
                   "attempt=" + std::to_string(attempt) +
                       " backoff_ns=" + std::to_string(*backoff) + " " +
                       rep.exception);
    }
    if (*backoff > 0) {
      bool fired = false;
      loop().schedule(*backoff, [&fired] { fired = true; });
      run_until([&fired] { return fired; });
    }
    // Fresh id per attempt: a straggler reply to an abandoned attempt must
    // never satisfy (or double-complete) the retried one.
    req.request_id = next_request_id();
  }
}

ReplyMessage Orb::attempt_plain(const net::Address& dest,
                                RequestMessage req) {
  std::optional<ReplyMessage> result;
  const std::uint64_t id = send_request(
      dest, std::move(req),
      [&result](ReplyMessage rep) { result = std::move(rep); });
  run_until([&result] { return result.has_value(); });
  if (!result.has_value()) {
    // Event queue drained without the reply or the timeout firing; this
    // only happens if the simulation is torn down mid-call.
    cancel_request(id);
    throw TransportError("orb: event loop drained while awaiting reply");
  }
  return *std::move(result);
}

void Orb::throw_local_fault(const ReplyMessage& rep) {
  if (rep.exception == "maqs/TIMEOUT") {
    throw TransportError("orb: request timed out");
  }
  if (rep.exception == "maqs/CIRCUIT_OPEN") {
    throw TransportError("orb: circuit breaker open");
  }
  throw TransportError("orb: " + rep.exception);
}

void Orb::add_pending(std::uint64_t id, ReplyHandler on_reply,
                      sim::Duration timeout, bool multi,
                      const net::Address& dest) {
  Pending pending;
  pending.id = id;
  pending.multi = multi;
  pending.on_reply = std::move(on_reply);
  // Only copy the endpoint when a breaker will want it charged on timeout;
  // keeping the string empty preserves the allocation-free pending entry
  // on the default path.
  if (breaker_config_.has_value() && !multi) pending.dest = dest;
  pending.timeout_event = loop().schedule(timeout, [this, id] {
    auto it = find_pending(id);
    if (it == pending_.end()) return;
    ++stats_.timeouts;
    auto callback = std::move(it->on_reply);
    net::Address failed_dest;
    const bool charge_breaker =
        breaker_config_.has_value() && !it->dest.node.empty();
    if (charge_breaker) failed_dest = std::move(it->dest);
    // The timeout event is firing right now, so there is nothing stale to
    // cancel: remove without touching the event.
    pop_pending(it);
    // Charge the breaker before the callback runs, so an immediate retry
    // from inside the callback sees the updated circuit state.
    if (charge_breaker) breaker_on_failure(failed_dest);
    ReplyMessage timeout_reply;
    timeout_reply.request_id = id;
    timeout_reply.status = ReplyStatus::kSystemException;
    timeout_reply.exception = "maqs/TIMEOUT";
    timeout_reply.synthesized_locally = true;
    callback(std::move(timeout_reply));
  });
  pending_.push_back(std::move(pending));
}

std::vector<Orb::Pending>::iterator Orb::find_pending(
    std::uint64_t id) noexcept {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) return it;
  }
  return pending_.end();
}

void Orb::pop_pending(std::vector<Pending>::iterator it) {
  if (it != pending_.end() - 1) *it = std::move(pending_.back());
  pending_.pop_back();
}

void Orb::erase_pending(std::vector<Pending>::iterator it) {
  loop().cancel(it->timeout_event);
  pop_pending(it);
}

std::uint64_t Orb::send_request(const net::Address& dest, RequestMessage req,
                                ReplyHandler on_reply, sim::Duration timeout) {
  if (req.request_id == 0) req.request_id = next_request_id();
  if (timeout <= 0) timeout = default_timeout_;
  const std::uint64_t id = req.request_id;

  if (breaker_config_.has_value() && !breaker_allow(dest)) {
    // Fail fast: deliver the synthesized rejection inline (before this
    // call returns) instead of arming a doomed timeout. invoke_plain's
    // run_until sees the reply on its first predicate check.
    ++stats_.breaker_fast_fails;
    ReplyMessage fast;
    fast.request_id = id;
    fast.status = ReplyStatus::kSystemException;
    fast.exception = "maqs/CIRCUIT_OPEN";
    fast.synthesized_locally = true;
    on_reply(std::move(fast));
    return id;
  }

  add_pending(id, std::move(on_reply), timeout, /*multi=*/false, dest);
  ++stats_.requests_sent;
  util::Bytes wire = req.encode();
  stats_.bytes_marshaled_out += wire.size();
  try {
    network_.send(endpoint_, dest, std::move(wire));
  } catch (...) {
    // Undeliverable (e.g. unknown node): roll back the pending entry and
    // its timeout instead of leaving a stale event armed.
    if (auto it = find_pending(id); it != pending_.end()) erase_pending(it);
    throw;
  }
  return id;
}

std::uint64_t Orb::send_multicast_request(const std::string& group,
                                          RequestMessage req,
                                          ReplyHandler on_reply,
                                          sim::Duration timeout) {
  if (req.request_id == 0) req.request_id = next_request_id();
  if (timeout <= 0) timeout = default_timeout_;
  const std::uint64_t id = req.request_id;

  add_pending(id, std::move(on_reply), timeout, /*multi=*/true,
              net::Address{});
  ++stats_.requests_sent;
  util::Bytes wire = req.encode();
  stats_.bytes_marshaled_out += wire.size();
  try {
    network_.multicast(endpoint_, group, std::move(wire));
  } catch (...) {
    if (auto it = find_pending(id); it != pending_.end()) erase_pending(it);
    throw;
  }
  return id;
}

void Orb::cancel_request(std::uint64_t request_id) {
  auto it = find_pending(request_id);
  if (it == pending_.end()) return;
  erase_pending(it);
}

void Orb::on_frame(const net::Address& from, const util::Bytes& data) {
  try {
    if (is_request_frame(data)) {
      RequestMessage req = RequestMessage::decode(data);
      stats_.bytes_marshaled_in += data.size();
      handle_request(from, std::move(req));
    } else {
      ReplyMessage rep = ReplyMessage::decode(data);
      stats_.bytes_marshaled_in += data.size();
      handle_reply(from, std::move(rep));
    }
  } catch (const Error& e) {
    // Garbage frames are dropped; a reliable transport below us means this
    // indicates a peer bug, not line noise.
    MAQS_WARN() << "orb " << endpoint_.to_string() << ": bad frame from "
                << from.to_string() << ": " << e.what();
  }
}

void Orb::handle_request(const net::Address& from, RequestMessage req) {
  const std::uint64_t request_id = req.request_id;
  // Re-attach the client's trace so server spans (and the reply's transit
  // span, sent below while the scope is open) share it. When no recorder
  // is installed the entry is ignored — tolerance for tracing peers.
  std::optional<trace::SpanScope> scope;
  if (trace_recorder_ != nullptr && trace_recorder_->enabled()) {
    if (auto tag = req.context.find(trace::kTraceContextKey);
        tag != req.context.end()) {
      if (auto ctx = trace::decode_context(tag->second)) {
        scope.emplace(*trace_recorder_, *ctx, "server.request",
                      req.operation);
      }
    }
  }
  ReplyMessage rep = dispatch(std::move(req), from);
  rep.request_id = request_id;
  util::Bytes wire = rep.encode();
  stats_.bytes_marshaled_out += wire.size();
  network_.send(endpoint_, from, std::move(wire));
}

ReplyMessage Orb::dispatch(RequestMessage req, const net::Address& from) {
  // Fig. 3 server half: QoS-aware traffic (including commands) consults the
  // QoS transport first; it may answer directly (commands, negotiation) or
  // rewrite the request (inbound payload transforms).
  if (req.kind == RequestKind::kCommand) {
    ++stats_.commands_dispatched;
    if (router_ == nullptr) {
      ReplyMessage rep;
      rep.request_id = req.request_id;
      rep.status = ReplyStatus::kSystemException;
      rep.exception = "maqs/NO_QOS_TRANSPORT";
      return rep;
    }
    auto direct = router_->inbound(req, from);
    if (direct.has_value()) {
      direct->request_id = req.request_id;
      return *std::move(direct);
    }
    ReplyMessage rep;
    rep.request_id = req.request_id;
    rep.status = ReplyStatus::kBadOperation;
    rep.exception = "maqs/UNHANDLED_COMMAND";
    return rep;
  }

  ++stats_.requests_dispatched;
  const bool use_router = req.qos_aware && router_ != nullptr;
  // Router hooks may fail (bad module state, failed payload restore);
  // that must surface as an exception reply, never kill the dispatch
  // loop or silently drop the request.
  try {
    if (use_router) {
      auto direct = router_->inbound(req, from);
      if (direct.has_value()) {
        direct->request_id = req.request_id;
        return *std::move(direct);
      }
    }
    ReplyMessage rep = dispatch_to_servant(req, from);
    if (use_router) {
      router_->outbound(req, rep);
    }
    return rep;
  } catch (const Error& e) {
    trace::note_error(e.what());
    ReplyMessage rep;
    rep.request_id = req.request_id;
    rep.status = ReplyStatus::kSystemException;
    rep.exception = e.what();
    return rep;
  }
}

ReplyMessage Orb::dispatch_to_servant(const RequestMessage& req,
                                      const net::Address& from) {
  ReplyMessage rep;
  rep.request_id = req.request_id;
  std::shared_ptr<Servant> servant = adapter_.find(req.object_key);
  if (!servant) {
    rep.status = ReplyStatus::kNoSuchObject;
    rep.exception = "maqs/NO_SUCH_OBJECT: " + req.object_key;
    return rep;
  }
  cdr::Decoder args(req.body);
  // Results are usually the same order of magnitude as the arguments
  // (echo-shaped traffic); pre-sizing turns the common case into one
  // allocation without hurting small results.
  cdr::Encoder out(req.body.size() + 32);
  ServerContext ctx(req, from, rep.context);
  try {
    trace::SpanScope span("adapter.dispatch", req.operation);
    servant->dispatch(req.operation, args, out, ctx);
    rep.status = ReplyStatus::kOk;
    rep.body = out.take();
  } catch (const NotNegotiated& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kNotNegotiated;
    rep.exception = e.what();
  } catch (const BadOperation& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kBadOperation;
    rep.exception = e.what();
  } catch (const UserException& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kUserException;
    rep.exception = e.id();
    cdr::Encoder exc_body;
    exc_body.write_string(e.detail());
    rep.body = exc_body.take();
  } catch (const cdr::CdrError& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kSystemException;
    rep.exception = std::string("maqs/MARSHAL: ") + e.what();
  } catch (const Error& e) {
    trace::note_error(e.what());
    rep.status = ReplyStatus::kSystemException;
    rep.exception = e.what();
  }
  return rep;
}

void Orb::handle_reply(const net::Address& from, ReplyMessage rep) {
  // Any decoded reply — matched, orphaned, even an exception — proves the
  // endpoint is reachable, so the breaker hears about it before the
  // pending lookup. A late probe reply after its timeout still closes the
  // circuit rather than leaving it needlessly open.
  if (breaker_config_.has_value()) breaker_on_success(from);
  auto it = find_pending(rep.request_id);
  if (it == pending_.end()) {
    // Late reply after timeout/cancel, or surplus replies of a multicast
    // request already satisfied: normal, counted for observability.
    ++stats_.replies_orphaned;
    return;
  }
  if (it->multi) {
    // Keep the entry alive: more replies may follow. Copy the callback so
    // the handler may cancel_request() from within.
    auto callback = it->on_reply;
    callback(std::move(rep));
  } else {
    // Move the callback out before erasing so the handler may re-enter the
    // ORB (issue a nested call) without touching a dead entry.
    auto callback = std::move(it->on_reply);
    erase_pending(it);
    callback(std::move(rep));
  }
}

// ---- circuit breaking ----

CircuitBreaker& Orb::breaker_for(const net::Address& dest) {
  auto it = breakers_.find(dest);
  if (it == breakers_.end()) {
    it = breakers_.emplace(dest, CircuitBreaker(*breaker_config_)).first;
  }
  return it->second;
}

bool Orb::breaker_allow(const net::Address& dest) {
  CircuitBreaker& breaker = breaker_for(dest);
  const BreakerState before = breaker.state();
  const bool admitted = breaker.allow(loop().now());
  if (breaker.state() != before) {
    note_breaker_transition(dest, before, breaker.state());
  }
  return admitted;
}

void Orb::breaker_on_success(const net::Address& from) {
  // find, never create: a success for an endpoint no breaker tracks is
  // not worth a map entry.
  auto it = breakers_.find(from);
  if (it == breakers_.end()) return;
  const BreakerState before = it->second.state();
  it->second.record_success();
  if (it->second.state() != before) {
    note_breaker_transition(from, before, it->second.state());
  }
}

void Orb::breaker_on_failure(const net::Address& dest) {
  CircuitBreaker& breaker = breaker_for(dest);
  const BreakerState before = breaker.state();
  breaker.record_failure(loop().now());
  if (breaker.state() != before) {
    note_breaker_transition(dest, before, breaker.state());
  }
}

void Orb::note_breaker_transition(const net::Address& endpoint,
                                  BreakerState from, BreakerState to) {
  switch (to) {
    case BreakerState::kOpen: ++stats_.breaker_opens; break;
    case BreakerState::kHalfOpen: ++stats_.breaker_half_opens; break;
    case BreakerState::kClosed: ++stats_.breaker_closes; break;
  }
  MAQS_INFO() << "orb " << endpoint_.to_string() << ": circuit to "
              << endpoint.to_string() << " " << breaker_state_name(from)
              << " -> " << breaker_state_name(to);
  if (trace::tracing_active()) {
    trace::point("breaker.transition",
                 endpoint.to_string() + " " +
                     std::string(breaker_state_name(from)) + "->" +
                     breaker_state_name(to));
  }
}

}  // namespace maqs::orb

// Server-side programming model: servants and dispatch context.
#pragma once

#include <string>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "net/address.hpp"
#include "orb/message.hpp"

namespace maqs::orb {

/// Per-invocation server-side context. QoS skeletons use it to read the
/// request's service context (negotiated agreement id, payload tags) and to
/// attach reply context entries (timestamps, monitoring samples).
class ServerContext {
 public:
  ServerContext(const RequestMessage& request, const net::Address& client,
                ServiceContext& reply_context)
      : request_(request), client_(client), reply_context_(reply_context) {}

  const RequestMessage& request() const noexcept { return request_; }
  const net::Address& client() const noexcept { return client_; }

  /// Mutable reply service context.
  ServiceContext& reply_context() noexcept { return reply_context_; }

 private:
  const RequestMessage& request_;
  net::Address client_;
  ServiceContext& reply_context_;
};

/// Base of all skeletons. Generated (or generated-style) skeletons decode
/// arguments, call the implementation and encode results; infrastructure
/// errors are reported by throwing the exceptions in orb/exceptions.hpp.
class Servant {
 public:
  virtual ~Servant() = default;

  /// Repository id of the most-derived interface.
  virtual const std::string& repo_id() const = 0;

  /// Dispatches one operation. `args` holds the CDR argument stream; the
  /// result (if any) is encoded into `out`. Throws BadOperation for unknown
  /// operations.
  virtual void dispatch(const std::string& operation, cdr::Decoder& args,
                        cdr::Encoder& out, ServerContext& ctx) = 0;
};

}  // namespace maqs::orb

#include "naming/directory.hpp"

#include <algorithm>
#include <utility>

#include "orb/exceptions.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace maqs::naming {

const std::string& directory_object_key() {
  static const std::string kKey = "maqs.directory";
  return kKey;
}

const std::string& directory_repo_id() {
  static const std::string kId = "IDL:maqs/ServiceDirectory:1.0";
  return kId;
}

ServiceDirectory::ServiceDirectory(sim::EventLoop& loop,
                                   DirectoryConfig config)
    : loop_(loop), config_(config) {}

void ServiceDirectory::register_member(const std::string& service,
                                       const std::string& repo_id,
                                       const orb::AltProfile& profile,
                                       double load, std::uint64_t epoch) {
  ++stats_.registers;
  Group& group = groups_[service];
  if (group.repo_id.empty()) group.repo_id = repo_id;
  prune(group);
  const sim::TimePoint expires = loop_.now() + config_.member_ttl;
  for (MemberRecord& member : group.members) {
    if (member.profile == profile) {
      member.load = load;
      member.epoch = epoch;
      member.expires = expires;
      return;
    }
  }
  group.members.push_back(MemberRecord{profile, load, epoch, expires});
  MAQS_INFO() << "directory: " << service << " += "
              << profile.endpoint.to_string() << "/" << profile.object_key
              << " (" << group.members.size() << " members)";
}

bool ServiceDirectory::heartbeat(const std::string& service,
                                 const orb::AltProfile& profile, double load,
                                 std::uint64_t epoch) {
  ++stats_.heartbeats;
  auto it = groups_.find(service);
  if (it != groups_.end()) {
    prune(it->second);
    for (MemberRecord& member : it->second.members) {
      if (member.profile == profile) {
        member.load = load;
        member.epoch = epoch;
        member.expires = loop_.now() + config_.member_ttl;
        return true;
      }
    }
  }
  ++stats_.unknown_heartbeats;
  return false;
}

void ServiceDirectory::deregister(const std::string& service,
                                  const orb::AltProfile& profile) {
  ++stats_.deregisters;
  auto it = groups_.find(service);
  if (it == groups_.end()) return;
  std::erase_if(it->second.members, [&](const MemberRecord& member) {
    return member.profile == profile;
  });
}

void ServiceDirectory::prune(Group& group) {
  const sim::TimePoint now = loop_.now();
  const std::size_t before = group.members.size();
  std::erase_if(group.members, [now](const MemberRecord& member) {
    return member.expires <= now;
  });
  stats_.expirations += before - group.members.size();
}

std::vector<const MemberRecord*> ServiceDirectory::ordered(
    const Group& group) const {
  std::vector<const MemberRecord*> out;
  out.reserve(group.members.size());
  for (const MemberRecord& member : group.members) out.push_back(&member);
  // Highest epoch leads (the passive-replication primary); stable keeps
  // registration order among equals, so the ordering is deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const MemberRecord* a, const MemberRecord* b) {
                     return a->epoch > b->epoch;
                   });
  return out;
}

std::vector<MemberRecord> ServiceDirectory::members(
    const std::string& service) {
  auto it = groups_.find(service);
  if (it == groups_.end()) return {};
  prune(it->second);
  std::vector<MemberRecord> out;
  for (const MemberRecord* member : ordered(it->second)) {
    out.push_back(*member);
  }
  return out;
}

orb::ObjRef ServiceDirectory::lookup(const std::string& service) {
  ++stats_.lookups;
  orb::ObjRef ref;
  auto it = groups_.find(service);
  if (it == groups_.end()) return ref;
  prune(it->second);
  if (it->second.members.empty()) return ref;
  const std::vector<const MemberRecord*> order = ordered(it->second);
  ref.repo_id = it->second.repo_id;
  ref.endpoint = order.front()->profile.endpoint;
  ref.object_key = order.front()->profile.object_key;
  for (std::size_t i = 1; i < order.size(); ++i) {
    ref.alternates.push_back(order[i]->profile);
  }
  return ref;
}

std::size_t ServiceDirectory::member_count(const std::string& service) {
  auto it = groups_.find(service);
  if (it == groups_.end()) return 0;
  prune(it->second);
  return it->second.members.size();
}

void ServiceDirectory::dispatch(const std::string& operation,
                                cdr::Decoder& args, cdr::Encoder& out,
                                orb::ServerContext& ctx) {
  (void)ctx;
  if (operation == "register") {
    const std::string service = args.read_string();
    const std::string repo = args.read_string();
    orb::AltProfile profile;
    profile.endpoint.node = args.read_string();
    profile.endpoint.port = args.read_u16();
    profile.object_key = args.read_string();
    const double load = args.read_f64();
    const std::uint64_t epoch = args.read_u64();
    args.expect_end();
    register_member(service, repo, profile, load, epoch);
    out.write_bool(true);
  } else if (operation == "heartbeat") {
    const std::string service = args.read_string();
    orb::AltProfile profile;
    profile.endpoint.node = args.read_string();
    profile.endpoint.port = args.read_u16();
    profile.object_key = args.read_string();
    const double load = args.read_f64();
    const std::uint64_t epoch = args.read_u64();
    args.expect_end();
    out.write_bool(heartbeat(service, profile, load, epoch));
  } else if (operation == "deregister") {
    const std::string service = args.read_string();
    orb::AltProfile profile;
    profile.endpoint.node = args.read_string();
    profile.endpoint.port = args.read_u16();
    profile.object_key = args.read_string();
    args.expect_end();
    deregister(service, profile);
  } else if (operation == "lookup") {
    const std::string service = args.read_string();
    args.expect_end();
    // The reference (nil for unknown services) plus the per-profile load
    // and epoch reports, aligned with the reference's profile indices —
    // the client-side selector feeds its least-loaded policy from these.
    auto it = groups_.find(service);
    orb::ObjRef ref = lookup(service);
    out.write_bytes(ref.encode());
    if (ref.is_nil() || it == groups_.end()) {
      out.write_u32(0);
      return;
    }
    const std::vector<const MemberRecord*> order = ordered(it->second);
    out.write_u32(static_cast<std::uint32_t>(order.size()));
    for (const MemberRecord* member : order) {
      out.write_f64(member->load);
      out.write_u64(member->epoch);
    }
  } else {
    throw orb::BadOperation("ServiceDirectory: unknown operation " +
                            operation);
  }
}

}  // namespace maqs::naming

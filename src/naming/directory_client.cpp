#include "naming/directory_client.hpp"

#include <utility>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "util/log.hpp"

namespace maqs::naming {

namespace {

void write_profile(cdr::Encoder& enc, const orb::AltProfile& profile) {
  enc.write_string(profile.endpoint.node);
  enc.write_u16(profile.endpoint.port);
  enc.write_string(profile.object_key);
}

}  // namespace

orb::ReplyMessage DirectoryClient::call(const std::string& operation,
                                        util::Bytes args) {
  orb::RequestMessage req;
  req.object_key = directory_object_key();
  req.operation = operation;
  req.body = std::move(args);
  return orb_.invoke_plain(directory_, std::move(req));
}

std::optional<ServiceView> DirectoryClient::lookup(
    const std::string& service) {
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(service);
  orb::ReplyMessage rep = call("lookup", args.take());
  if (rep.status != orb::ReplyStatus::kOk) return std::nullopt;
  cdr::Decoder result(std::move(rep.body));
  ServiceView view;
  view.ref = orb::ObjRef::decode(result.read_bytes());
  const std::uint32_t n = result.read_u32();
  view.loads.reserve(n);
  view.epochs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    view.loads.push_back(result.read_f64());
    view.epochs.push_back(result.read_u64());
  }
  result.expect_end();
  if (view.ref.is_nil()) return std::nullopt;
  return view;
}

bool DirectoryClient::register_member(const std::string& service,
                                      const std::string& repo_id,
                                      const orb::AltProfile& profile,
                                      double load, std::uint64_t epoch) {
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(service);
  args.write_string(repo_id);
  write_profile(args, profile);
  args.write_f64(load);
  args.write_u64(epoch);
  orb::ReplyMessage rep = call("register", args.take());
  if (rep.status != orb::ReplyStatus::kOk) return false;
  cdr::Decoder result(std::move(rep.body));
  const bool accepted = result.read_bool();
  result.expect_end();
  return accepted;
}

bool DirectoryClient::heartbeat(const std::string& service,
                                const orb::AltProfile& profile, double load,
                                std::uint64_t epoch) {
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(service);
  write_profile(args, profile);
  args.write_f64(load);
  args.write_u64(epoch);
  orb::ReplyMessage rep = call("heartbeat", args.take());
  if (rep.status != orb::ReplyStatus::kOk) return false;
  cdr::Decoder result(std::move(rep.body));
  const bool known = result.read_bool();
  result.expect_end();
  return known;
}

void DirectoryClient::deregister(const std::string& service,
                                 const orb::AltProfile& profile) {
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(service);
  write_profile(args, profile);
  call("deregister", args.take());
}

HeartbeatAgent::HeartbeatAgent(orb::Orb& orb, net::Address directory_endpoint,
                               Config config)
    : orb_(orb),
      directory_(std::move(directory_endpoint)),
      config_(std::move(config)),
      profile_{orb.endpoint(), config_.object_key} {}

void HeartbeatAgent::start() {
  if (running()) return;
  send_register();
  timer_ = orb_.loop().schedule(config_.period, [this] { beat(); });
}

void HeartbeatAgent::stop() {
  if (timer_ != 0) {
    orb_.loop().cancel(timer_);
    timer_ = 0;
  }
  if (inflight_register_ != 0) {
    orb_.cancel_request(inflight_register_);
    inflight_register_ = 0;
  }
  if (inflight_beat_ != 0) {
    orb_.cancel_request(inflight_beat_);
    inflight_beat_ = 0;
  }
}

void HeartbeatAgent::send_register() {
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(config_.service);
  args.write_string(orb_.adapter().reference(config_.object_key).repo_id);
  args.write_string(profile_.endpoint.node);
  args.write_u16(profile_.endpoint.port);
  args.write_string(profile_.object_key);
  args.write_f64(sample_load());
  args.write_u64(sample_epoch());
  orb::RequestMessage req;
  req.object_key = directory_object_key();
  req.operation = "register";
  req.body = args.take();
  // Fire-and-forget: a lost register is repaired by the next beat's
  // "unknown" answer, so the reply only clears the in-flight marker.
  inflight_register_ = orb_.send_request(
      directory_, std::move(req),
      [this](orb::ReplyMessage) { inflight_register_ = 0; }, config_.period);
}

void HeartbeatAgent::beat() {
  timer_ = 0;
  cdr::Encoder args = cdr::Encoder::pooled();
  args.write_string(config_.service);
  args.write_string(profile_.endpoint.node);
  args.write_u16(profile_.endpoint.port);
  args.write_string(profile_.object_key);
  args.write_f64(sample_load());
  args.write_u64(sample_epoch());
  orb::RequestMessage req;
  req.object_key = directory_object_key();
  req.operation = "heartbeat";
  req.body = args.take();
  ++stats_.beats_sent;
  inflight_beat_ = orb_.send_request(
      directory_, std::move(req),
      [this](orb::ReplyMessage rep) {
        inflight_beat_ = 0;
        if (rep.status != orb::ReplyStatus::kOk) return;
        cdr::Decoder result(std::move(rep.body));
        const bool known = result.read_bool();
        if (!known) {
          ++stats_.reregisters;
          MAQS_INFO() << "heartbeat: " << config_.service
                      << " unknown at directory, re-registering";
          send_register();
        }
      },
      config_.period);
  timer_ = orb_.loop().schedule(config_.period, [this] { beat(); });
}

}  // namespace maqs::naming

// Client-side access to the ServiceDirectory: blocking wrappers for
// lookup/registration plus the HeartbeatAgent a replica runs to keep its
// membership lease alive and to piggyback load/epoch reports on each beat.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "naming/directory.hpp"
#include "orb/orb.hpp"

namespace maqs::naming {

/// What a directory lookup returns: the multi-profile reference plus the
/// load/epoch each profile advertised on its last heartbeat, index-aligned
/// with ObjRef::profile(i).
struct ServiceView {
  orb::ObjRef ref;
  std::vector<double> loads;
  std::vector<std::uint64_t> epochs;
};

/// Thin blocking wrapper over the directory's wire protocol. Requests ride
/// the plain client chain (local-fault, retry, breaker), so directory
/// traffic is as resilient as application traffic.
class DirectoryClient {
 public:
  DirectoryClient(orb::Orb& orb, net::Address directory_endpoint)
      : orb_(orb), directory_(std::move(directory_endpoint)) {}

  const net::Address& directory_endpoint() const noexcept {
    return directory_;
  }

  /// Nullopt when the service is unknown/empty or the directory is
  /// unreachable.
  std::optional<ServiceView> lookup(const std::string& service);

  bool register_member(const std::string& service, const std::string& repo_id,
                       const orb::AltProfile& profile, double load,
                       std::uint64_t epoch);

  /// True when the directory still knows the member; false asks the caller
  /// to re-register (lease expired or directory restarted).
  bool heartbeat(const std::string& service, const orb::AltProfile& profile,
                 double load, std::uint64_t epoch);

  void deregister(const std::string& service,
                  const orb::AltProfile& profile);

 private:
  orb::ReplyMessage call(const std::string& operation, util::Bytes args);

  orb::Orb& orb_;
  net::Address directory_;
};

struct HeartbeatStats {
  std::uint64_t beats_sent = 0;
  /// Beats the directory answered "unknown", triggering a re-register.
  std::uint64_t reregisters = 0;
};

/// Periodic, non-blocking membership lease renewal for one local servant.
/// start() registers the servant's profile with the directory and then
/// beats every `period`; each beat samples the load and epoch probes so
/// the directory (and through it, every client-side selector) sees fresh
/// figures without any extra round trips.
class HeartbeatAgent {
 public:
  struct Config {
    std::string service;
    /// Object key the servant is activated under on this ORB's adapter.
    std::string object_key;
    sim::Duration period = 100 * sim::kMillisecond;
    /// Current-load sample, e.g. core::make_load_probe(scheduler). Defaults
    /// to a constant 0.
    std::function<double()> load_probe;
    /// State-epoch sample for passive replication (defaults to 0; wire to
    /// characteristics::Replication::epoch()).
    std::function<std::uint64_t()> epoch_probe;
  };

  HeartbeatAgent(orb::Orb& orb, net::Address directory_endpoint,
                 Config config);
  ~HeartbeatAgent() { stop(); }

  HeartbeatAgent(const HeartbeatAgent&) = delete;
  HeartbeatAgent& operator=(const HeartbeatAgent&) = delete;

  /// Registers with the directory and starts the beat timer. Idempotent.
  void start();
  /// Cancels the beat timer (membership then lapses at the TTL).
  void stop();
  bool running() const noexcept { return timer_ != 0; }

  const HeartbeatStats& stats() const noexcept { return stats_; }

 private:
  void send_register();
  void beat();
  double sample_load() const {
    return config_.load_probe ? config_.load_probe() : 0.0;
  }
  std::uint64_t sample_epoch() const {
    return config_.epoch_probe ? config_.epoch_probe() : 0;
  }

  orb::Orb& orb_;
  net::Address directory_;
  Config config_;
  orb::AltProfile profile_;
  HeartbeatStats stats_;
  sim::EventId timer_ = 0;
  /// In-flight request ids, cancelled on stop() so no reply handler can
  /// outlive the agent.
  std::uint64_t inflight_register_ = 0;
  std::uint64_t inflight_beat_ = 0;
};

}  // namespace maqs::naming

#include "naming/selector.hpp"

#include <string>
#include <utility>

#include "trace/trace.hpp"

namespace maqs::naming {

namespace {

// Slot layout: low 32 bits = tried-profile bitmask, bits 32..39 = the
// profile index the invocation currently addresses.
std::uint32_t slot_mask(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(v & 0xffffffffu);
}
std::size_t slot_index(std::uint64_t v) noexcept {
  return static_cast<std::size_t>((v >> 32) & 0xffu);
}
std::uint64_t slot_pack(std::uint32_t mask, std::size_t index) noexcept {
  return static_cast<std::uint64_t>(mask) |
         (static_cast<std::uint64_t>(index & 0xffu) << 32);
}

}  // namespace

ReplicaSelector::ReplicaSelector(orb::Orb& orb, SelectorConfig config)
    : orb_(orb), config_(config), select_ci_(*this), failover_ci_(*this) {
  slot_ = orb_.allocate_client_slot();
  orb_.register_client_interceptor(&select_ci_,
                                   orb::priorities::kClientReplicaSelect);
  orb_.register_client_interceptor(&failover_ci_,
                                   orb::priorities::kClientReplicaFailover);
}

ReplicaSelector::~ReplicaSelector() {
  orb_.unregister_client_interceptor(&select_ci_);
  orb_.unregister_client_interceptor(&failover_ci_);
}

void ReplicaSelector::update_loads(std::string_view group_key,
                                   const std::vector<double>& loads) {
  auto it = groups_.find(group_key);
  GroupState& state =
      it != groups_.end()
          ? it->second
          : groups_.emplace(std::string(group_key), GroupState{})
                .first->second;
  state.ensure(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) state.loads[i] = loads[i];
}

std::vector<std::uint64_t> ReplicaSelector::dispatch_counts(
    std::string_view group_key) const {
  auto it = groups_.find(group_key);
  if (it == groups_.end()) return {};
  return it->second.dispatched;
}

void ReplicaSelector::reset() { groups_.clear(); }

ReplicaSelector::GroupState& ReplicaSelector::group_state(
    const orb::ObjRef& group) {
  auto it = groups_.find(std::string_view(group.object_key));
  if (it == groups_.end()) {
    it = groups_.emplace(group.object_key, GroupState{}).first;
  }
  it->second.ensure(std::min(group.profile_count(), kMaxProfiles));
  return it->second;
}

bool ReplicaSelector::blocked(const orb::ObjRef& group,
                              const GroupState& state,
                              std::size_t idx) const {
  if (state.quarantine_until[idx] > orb_.loop().now()) return true;
  const orb::AltProfile profile = group.profile(idx);
  return orb_.breaker_state(profile.endpoint, profile.object_key) ==
         orb::BreakerState::kOpen;
}

std::size_t ReplicaSelector::pick(const orb::ObjRef& group, GroupState& state,
                                  std::uint32_t tried_mask) {
  const std::size_t n = std::min(group.profile_count(), kMaxProfiles);
  // Two passes: first only healthy candidates (not quarantined, breaker
  // not open), then — when every untried profile looks unhealthy — any
  // untried one. A degraded replica beats a guaranteed failure.
  for (int pass = 0; pass < 2; ++pass) {
    const bool filtered = pass == 0;
    std::size_t best = kMaxProfiles;
    switch (config_.policy) {
      case SelectPolicy::kRoundRobin: {
        for (std::size_t step = 0; step < n; ++step) {
          const std::size_t idx = (state.cursor + step) % n;
          if (tried_mask & (1u << idx)) continue;
          if (filtered && blocked(group, state, idx)) {
            ++stats_.skips;
            continue;
          }
          best = idx;
          break;
        }
        break;
      }
      case SelectPolicy::kLeastLoaded: {
        for (std::size_t idx = 0; idx < n; ++idx) {
          if (tried_mask & (1u << idx)) continue;
          if (filtered && blocked(group, state, idx)) {
            ++stats_.skips;
            continue;
          }
          if (best == kMaxProfiles || state.loads[idx] < state.loads[best]) {
            best = idx;
          }
        }
        break;
      }
      case SelectPolicy::kLocality: {
        const std::string& here = orb_.endpoint().node;
        std::size_t fallback = kMaxProfiles;
        for (std::size_t step = 0; step < n; ++step) {
          const std::size_t idx = (state.cursor + step) % n;
          if (tried_mask & (1u << idx)) continue;
          if (filtered && blocked(group, state, idx)) {
            ++stats_.skips;
            continue;
          }
          if (group.profile(idx).endpoint.node == here) {
            best = idx;
            break;
          }
          if (fallback == kMaxProfiles) fallback = idx;
        }
        if (best == kMaxProfiles) best = fallback;
        break;
      }
    }
    if (best != kMaxProfiles) {
      if (config_.policy != SelectPolicy::kLeastLoaded) {
        state.cursor = (best + 1) % n;
      }
      return best;
    }
  }
  return kMaxProfiles;
}

void ReplicaSelector::apply(orb::ClientRequestInfo& info,
                            const orb::ObjRef& group, GroupState& state,
                            std::size_t idx) {
  const orb::AltProfile profile = group.profile(idx);
  if (group.qos_aware()) {
    // The router addresses the ObjRef itself, so materialize a copy of the
    // group reference pointing at the chosen profile.
    info.selected = group;
    info.selected->endpoint = profile.endpoint;
    info.selected->object_key = profile.object_key;
    info.target = &*info.selected;
  } else {
    // Plain path: redirect only the wire destination — no ObjRef copy on
    // the hot path.
    info.replica_dest = profile.endpoint;
  }
  info.request.object_key = profile.object_key;
  ++state.dispatched[idx];
  const std::uint64_t prev = info.slots.get(slot_);
  info.slots.set(slot_,
                 slot_pack(slot_mask(prev) | (1u << idx), idx));
}

orb::SendAction ReplicaSelector::on_send(orb::ClientRequestInfo& info) {
  if (info.target == nullptr || !info.target->multi_profile()) {
    return orb::SendAction::kContinue;
  }
  // A mediator-level re-drive walks through here again: keep the original
  // group (info.target may already point at the materialized selection).
  if (info.replica_group == nullptr) info.replica_group = info.target;
  const orb::ObjRef& group = *info.replica_group;
  GroupState& state = group_state(group);
  const std::size_t idx =
      pick(group, state, slot_mask(info.slots.get(slot_)));
  if (idx == kMaxProfiles) {
    // Nothing untried left (re-driven walk); surface whatever comes back.
    return orb::SendAction::kContinue;
  }
  apply(info, group, state, idx);
  ++stats_.selections;
  if (trace::tracing_active()) {
    trace::point("replica.select",
                 "group=" + group.object_key +
                     " idx=" + std::to_string(idx) +
                     " dest=" + info.wire_dest().to_string() + "/" +
                     info.request.object_key);
  }
  return orb::SendAction::kContinue;
}

orb::ReplyAction ReplicaSelector::on_reply(orb::ClientRequestInfo& info) {
  if (info.replica_group == nullptr) return orb::ReplyAction::kContinue;
  const orb::ReplyMessage& rep = info.reply;
  if (!rep.synthesized_locally ||
      rep.status != orb::ReplyStatus::kSystemException) {
    return orb::ReplyAction::kContinue;
  }
  // CIRCUIT_OPEN is provably unsent — always safe to re-target. TIMEOUT
  // may have executed server-side, so only idempotent services opt in.
  const bool eligible =
      rep.exception == "maqs/CIRCUIT_OPEN" ||
      (config_.failover_on_timeout && rep.exception == "maqs/TIMEOUT");
  if (!eligible) return orb::ReplyAction::kContinue;

  const orb::ObjRef& group = *info.replica_group;
  GroupState& state = group_state(group);
  const std::uint64_t slot = info.slots.get(slot_);
  const std::size_t failed = slot_index(slot);
  if (failed < state.quarantine_until.size()) {
    state.quarantine_until[failed] =
        orb_.loop().now() + config_.quarantine_period;
  }
  const std::size_t next = pick(group, state, slot_mask(slot));
  if (next == kMaxProfiles) {
    ++stats_.exhausted;
    return orb::ReplyAction::kContinue;
  }
  apply(info, group, state, next);
  // Fresh id (a straggler for the failed attempt must never satisfy the
  // re-targeted one) and a fresh per-replica retry budget.
  info.request.request_id = orb_.next_request_id();
  info.attempt = 1;
  ++stats_.failovers;
  if (trace::tracing_active()) {
    trace::point("replica.failover",
                 "group=" + group.object_key + " failed_idx=" +
                     std::to_string(failed) + " next_idx=" +
                     std::to_string(next) + " dest=" +
                     info.wire_dest().to_string() + "/" +
                     info.request.object_key + " " + rep.exception);
  }
  return orb::ReplyAction::kRetry;
}

orb::SendAction ReplicaSelector::SelectInterceptor::send_request(
    orb::ClientRequestInfo& info) {
  return owner_.on_send(info);
}

orb::ReplyAction ReplicaSelector::FailoverInterceptor::receive_reply(
    orb::ClientRequestInfo& info) {
  return owner_.on_reply(info);
}

}  // namespace maqs::naming

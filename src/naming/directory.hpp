// Service directory: replica-group membership for the many-node system.
//
// The paper's validation leans on fault tolerance through replica groups
// and performance through load balancing; both need an infrastructure
// service that knows *where* the replicas of a logical service are. The
// ServiceDirectory is that service — itself an ordinary CORBA-style
// servant reached over the existing ORB and interceptor chain, so
// directory traffic enjoys the same resilience stack (retry, breaker,
// tracing) as application traffic.
//
// The model: a *service* (by name) owns a replica group; each member is
// one (endpoint, object key) profile plus the load and state epoch its
// last heartbeat advertised. lookup() hands out a multi-profile ObjRef
// (the primary plus alternates, see orb::ObjRef::alternates) ordered by
// state epoch — the most caught-up replica leads, which is exactly the
// primary a passive-replication client wants. Membership is leased:
// members that miss heartbeats for the configured TTL expire lazily on
// the next operation that touches their service, so expiry is a pure
// function of virtual time and stays deterministic under a fixed seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "orb/ior.hpp"
#include "orb/servant.hpp"
#include "sim/event_loop.hpp"

namespace maqs::naming {

/// Well-known object key the directory servant activates under.
const std::string& directory_object_key();  // "maqs.directory"
const std::string& directory_repo_id();     // "IDL:maqs/ServiceDirectory:1.0"

struct DirectoryConfig {
  /// Membership lease: a member expires this long after its last
  /// register/heartbeat.
  sim::Duration member_ttl = 500 * sim::kMillisecond;
};

struct DirectoryStats {
  std::uint64_t registers = 0;
  std::uint64_t heartbeats = 0;
  /// Heartbeats for members the directory does not know (expired, or the
  /// directory itself restarted) — answered "unknown" so the sender
  /// re-registers.
  std::uint64_t unknown_heartbeats = 0;
  std::uint64_t deregisters = 0;
  std::uint64_t lookups = 0;
  std::uint64_t expirations = 0;
};

/// One replica-group member as the directory sees it.
struct MemberRecord {
  orb::AltProfile profile;
  double load = 0.0;
  std::uint64_t epoch = 0;
  sim::TimePoint expires = 0;
};

/// The directory servant. Wire operations (compact CDR, plain path):
///
///   register   (service, repo_id, node, port, object_key, load, epoch)
///              -> bool accepted
///   heartbeat  (service, node, port, object_key, load, epoch) -> bool known
///   deregister (service, node, port, object_key) -> void
///   lookup     (service) -> ObjRef bytes (nil when unknown),
///              u32 n, n x (load f64, epoch u64)  [per profile, in order]
///
/// The in-process API below is what the skeleton delegates to; tests and
/// collocated deployments may call it directly.
class ServiceDirectory final : public orb::Servant {
 public:
  explicit ServiceDirectory(sim::EventLoop& loop, DirectoryConfig config = {});

  const DirectoryConfig& config() const noexcept { return config_; }
  /// Applies to leases granted from now on (existing expiry times stand).
  void set_config(DirectoryConfig config) noexcept { config_ = config; }
  const DirectoryStats& stats() const noexcept { return stats_; }

  /// Registers (or refreshes) a member; renews its lease.
  void register_member(const std::string& service,
                       const std::string& repo_id,
                       const orb::AltProfile& profile, double load,
                       std::uint64_t epoch);

  /// Renews a member's lease and updates its load/epoch report. False when
  /// the member is unknown — the caller should re-register.
  bool heartbeat(const std::string& service, const orb::AltProfile& profile,
                 double load, std::uint64_t epoch);

  /// Removes a member (no-op when absent).
  void deregister(const std::string& service,
                  const orb::AltProfile& profile);

  /// Live members of a service, primary (highest epoch) first; empty when
  /// unknown. Prunes expired members.
  std::vector<MemberRecord> members(const std::string& service);

  /// Multi-profile reference for the service (nil when unknown or empty).
  orb::ObjRef lookup(const std::string& service);

  /// Live member count after pruning.
  std::size_t member_count(const std::string& service);

  // -- orb::Servant --
  const std::string& repo_id() const override { return directory_repo_id(); }
  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  struct Group {
    std::string repo_id;
    /// Registration order; lookups re-order by epoch, not this vector.
    std::vector<MemberRecord> members;
  };

  /// Drops expired members of the group; returns survivors in epoch order
  /// (stable for ties, so equal-epoch groups keep registration order).
  void prune(Group& group);
  std::vector<const MemberRecord*> ordered(const Group& group) const;

  sim::EventLoop& loop_;
  DirectoryConfig config_;
  DirectoryStats stats_;
  std::map<std::string, Group, std::less<>> groups_;
};

}  // namespace maqs::naming

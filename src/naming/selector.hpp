// Client-side replica selection and transparent failover.
//
// A multi-profile ObjRef (directory lookup result) names a replica group;
// the ReplicaSelector decides, per invocation, which profile the wire
// attempt addresses. Two thin client interceptors realize it:
//
//   250 replica.select    pick a profile before the qos.route fork
//   375 replica.failover  on a locally synthesized fault, re-drive the
//                         levels below against the next untried profile
//
// Selection policies: round-robin, least-loaded (fed by the load figures
// replicas piggyback on directory heartbeats, delivered here through
// update_loads()), and locality (prefer replicas on the caller's node).
// Profiles whose (endpoint, object key) circuit breaker is open, and
// profiles recently quarantined by a failover, are skipped while any
// alternative remains.
//
// Failover is idempotency-gated: a CIRCUIT_OPEN fast-fail is provably
// unsent and always safe to re-target; a TIMEOUT may have executed, so it
// fails over only when the config says the service is idempotent. Each
// failover re-targets with a fresh request id and resets the retry
// stage's attempt budget — the retry policy applies per replica.
//
// All cross-stage state (tried-profile mask, current profile index) lives
// in one SlotTable slot, so concurrent nested invocations never share
// mutable selector state and the hot path stays allocation-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "orb/interceptor.hpp"
#include "orb/orb.hpp"

namespace maqs::naming {

enum class SelectPolicy : std::uint8_t {
  kRoundRobin,
  kLeastLoaded,
  kLocality,
};

struct SelectorConfig {
  SelectPolicy policy = SelectPolicy::kRoundRobin;
  /// Failover on "maqs/TIMEOUT" replies too (declare the service
  /// idempotent). CIRCUIT_OPEN failover is always on: a fast-failed
  /// request was never sent.
  bool failover_on_timeout = false;
  /// How long a profile sits out after a failover charged it.
  sim::Duration quarantine_period = 200 * sim::kMillisecond;
};

struct SelectorStats {
  std::uint64_t selections = 0;
  std::uint64_t failovers = 0;
  /// Candidates passed over because quarantined or breaker-open.
  std::uint64_t skips = 0;
  /// Invocations that ran out of untried profiles (the last fault reply
  /// then surfaces through the local_fault contract above).
  std::uint64_t exhausted = 0;
};

class ReplicaSelector {
 public:
  explicit ReplicaSelector(orb::Orb& orb, SelectorConfig config = {});
  ~ReplicaSelector();

  ReplicaSelector(const ReplicaSelector&) = delete;
  ReplicaSelector& operator=(const ReplicaSelector&) = delete;

  const SelectorConfig& config() const noexcept { return config_; }
  const SelectorStats& stats() const noexcept { return stats_; }

  /// Feed fresh per-profile load figures for a group (index-aligned with
  /// ObjRef::profile(i)), e.g. from DirectoryClient::lookup's ServiceView.
  void update_loads(std::string_view group_key,
                    const std::vector<double>& loads);

  /// How many invocations each profile of a group has received (selection
  /// + failover re-targets); empty when the group is unknown.
  std::vector<std::uint64_t> dispatch_counts(std::string_view group_key) const;

  /// Drops quarantine/cursor/load state for all groups (tests).
  void reset();

 private:
  class SelectInterceptor final : public orb::ClientInterceptor {
   public:
    explicit SelectInterceptor(ReplicaSelector& owner) : owner_(owner) {}
    const char* name() const noexcept override { return "replica.select"; }
    orb::SendAction send_request(orb::ClientRequestInfo& info) override;

   private:
    ReplicaSelector& owner_;
  };

  class FailoverInterceptor final : public orb::ClientInterceptor {
   public:
    explicit FailoverInterceptor(ReplicaSelector& owner) : owner_(owner) {}
    const char* name() const noexcept override { return "replica.failover"; }
    orb::ReplyAction receive_reply(orb::ClientRequestInfo& info) override;

   private:
    ReplicaSelector& owner_;
  };

  /// Per-group mutable state, keyed by the group's primary object key.
  struct GroupState {
    std::vector<double> loads;
    std::vector<sim::TimePoint> quarantine_until;
    std::vector<std::uint64_t> dispatched;
    std::size_t cursor = 0;

    void ensure(std::size_t n) {
      if (loads.size() < n) loads.resize(n, 0.0);
      if (quarantine_until.size() < n) quarantine_until.resize(n, 0);
      if (dispatched.size() < n) dispatched.resize(n, 0);
    }
  };

  static constexpr std::size_t kMaxProfiles = 32;

  GroupState& group_state(const orb::ObjRef& group);

  /// Picks a profile index by policy among candidates not in `tried_mask`,
  /// preferring non-quarantined, breaker-closed ones. Returns kMaxProfiles
  /// when every profile has been tried.
  std::size_t pick(const orb::ObjRef& group, GroupState& state,
                   std::uint32_t tried_mask);

  /// Points the invocation at profile `idx` and records it in the slot.
  void apply(orb::ClientRequestInfo& info, const orb::ObjRef& group,
             GroupState& state, std::size_t idx);

  bool blocked(const orb::ObjRef& group, const GroupState& state,
               std::size_t idx) const;

  orb::SendAction on_send(orb::ClientRequestInfo& info);
  orb::ReplyAction on_reply(orb::ClientRequestInfo& info);

  orb::Orb& orb_;
  SelectorConfig config_;
  SelectorStats stats_;
  SelectInterceptor select_ci_;
  FailoverInterceptor failover_ci_;
  std::size_t slot_ = 0;
  std::map<std::string, GroupState, std::less<>> groups_;
};

}  // namespace maqs::naming

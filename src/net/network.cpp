#include "net/network.hpp"

#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"
#include "util/log.hpp"

namespace maqs::net {

namespace {
constexpr int kMaxRetransmissions = 16;

/// Transit span detail: "src>dst <bytes>B [queue=<ns>ns] [retx=<n>]".
/// Built only when a trace is in flight; all values are virtual-time
/// deterministic.
std::string transit_detail(const Address& from, const Address& to,
                           std::size_t bytes, sim::Duration queue_wait,
                           int retransmits) {
  std::string detail = from.node + ">" + to.node;
  detail += " " + std::to_string(bytes) + "B";
  if (queue_wait > 0) {
    detail += " queue=" + std::to_string(queue_wait) + "ns";
  }
  if (retransmits > 0) detail += " retx=" + std::to_string(retransmits);
  return detail;
}
}  // namespace

Network::Network(sim::EventLoop& loop, std::uint64_t seed)
    : loop_(loop), rng_(seed) {}

void Network::add_node(const NodeId& node) {
  nodes_.try_emplace(node);
}

bool Network::has_node(const NodeId& node) const {
  return nodes_.contains(node);
}

bool Network::is_alive(const NodeId& node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.alive;
}

const Network::NodeState& Network::node_state(const NodeId& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  return it->second;
}

void Network::set_link(const NodeId& a, const NodeId& b,
                       const LinkParams& params) {
  node_state(a);
  node_state(b);
  links_[{a, b}] = params;
  links_[{b, a}] = params;
  // A cached pair may have resolved to default_link_ before this entry
  // existed.
  invalidate_fast_paths();
}

const LinkParams& Network::link(const NodeId& from, const NodeId& to) const {
  auto it = links_.find({from, to});
  return it != links_.end() ? it->second : default_link_;
}

void Network::crash(const NodeId& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.alive = false;
}

void Network::restart(const NodeId& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.alive = true;
  ++it->second.incarnation;
}

void Network::set_partition(const NodeId& node, int group) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.partition = group;
}

void Network::heal_partitions() {
  for (auto& [_, state] : nodes_) state.partition = 0;
}

void Network::bind(const Address& addr, Handler handler) {
  node_state(addr.node);
  if (!handler) {
    throw std::invalid_argument("network: null handler for " +
                                addr.to_string());
  }
  auto [_, inserted] =
      handlers_.emplace(addr, std::make_shared<Handler>(std::move(handler)));
  if (!inserted) {
    throw std::invalid_argument("network: address already bound: " +
                                addr.to_string());
  }
}

void Network::unbind(const Address& addr) {
  handlers_.erase(addr);
}

bool Network::is_bound(const Address& addr) const {
  return handlers_.contains(addr);
}

Network::FastPath& Network::fast_path(const NodeId& from, const NodeId& to) {
  for (FastPath& cached : fast_path_cache_) {
    if (cached.src != nullptr && cached.from == from && cached.to == to) {
      return cached;
    }
  }
  auto src_it = nodes_.find(from);
  if (src_it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + from + "'");
  }
  auto dst_it = nodes_.find(to);
  if (dst_it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + to + "'");
  }
  FastPath& entry = fast_path_cache_[fast_path_next_];
  fast_path_next_ = (fast_path_next_ + 1) % fast_path_cache_.size();
  entry.from = from;
  entry.to = to;
  entry.src = &src_it->second;
  entry.dst = &dst_it->second;
  entry.link = from == to ? nullptr : &link(from, to);
  entry.pair_bytes = &per_pair_bytes_[{from, to}];
  return entry;
}

void Network::send(const Address& from, const Address& to,
                   util::Bytes payload) {
  const FastPath& path = fast_path(from.node, to.node);

  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  *path.pair_bytes += payload.size();

  const trace::SpanScope::Active* act = trace::SpanScope::active();

  if (!path.src->alive) {
    ++stats_.messages_dropped;
    if (act != nullptr) {
      act->recorder->record_complete(
          act->ctx, "net.transit",
          transit_detail(from, to, payload.size(), 0, 0), loop_.now(),
          loop_.now(), "dropped: source down");
    }
    util::BufferPool::instance().release(std::move(payload));
    return;
  }

  sim::Duration delay;
  sim::Duration queue_wait = 0;
  int retransmits = 0;
  if (path.link == nullptr) {  // loopback
    delay = loopback_latency_;
  } else {
    const LinkParams& lp = *path.link;
    sim::Duration transmit = 0;
    if (lp.bandwidth_bps > 0) {
      const double bits = static_cast<double>(payload.size()) * 8.0;
      transmit = sim::from_seconds(bits / lp.bandwidth_bps);
      // Bandwidth serialization: back-to-back messages queue behind each
      // other on the directed link.
      sim::TimePoint& busy = busy_until_[{from.node, to.node}];
      const sim::TimePoint start = std::max(loop_.now(), busy);
      busy = start + transmit;
      queue_wait = start - loop_.now();
      delay = queue_wait + transmit + lp.latency;
    } else {
      // Infinite bandwidth: transmission is instant and the link never
      // serializes, so skip the busy-until bookkeeping entirely.
      delay = lp.latency;
    }
    if (lp.jitter > 0) {
      delay += static_cast<sim::Duration>(
          rng_.next_below(static_cast<std::uint64_t>(lp.jitter) + 1));
    }
    // Reliable transport over a lossy link: each lost attempt costs one
    // retransmission timeout (2x latency + transmit), as a TCP-like
    // transport would exhibit. After kMaxRetransmissions the "connection"
    // is declared broken and the message is dropped.
    while (lp.loss_rate > 0.0 && rng_.chance(lp.loss_rate)) {
      if (++retransmits > kMaxRetransmissions) {
        ++stats_.messages_dropped;
        if (act != nullptr) {
          act->recorder->record_complete(
              act->ctx, "net.transit",
              transit_detail(from, to, payload.size(), queue_wait,
                             retransmits - 1),
              loop_.now(), loop_.now() + delay,
              "dropped: retransmission cap");
        }
        util::BufferPool::instance().release(std::move(payload));
        return;
      }
      ++stats_.retransmissions;
      delay += 2 * lp.latency + transmit;
    }
  }

  // Transit span of the trace active at send time, closed at the computed
  // delivery instant: queueing and retransmission delay are visible as
  // span length (plus the detail breakdown) without waiting for delivery.
  if (act != nullptr) {
    act->recorder->record_complete(
        act->ctx, "net.transit",
        transit_detail(from, to, payload.size(), queue_wait, retransmits),
        loop_.now(), loop_.now() + delay);
  }

  const std::size_t slot =
      park_in_flight(from, to, path.src, path.dst, std::move(payload));
  loop_.schedule(delay, [this, slot] { deliver_slot(slot); });
}

std::size_t Network::park_in_flight(const Address& from, const Address& to,
                                    const NodeState* src,
                                    const NodeState* dst,
                                    util::Bytes payload) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = in_flight_.size();
    in_flight_.emplace_back();
  }
  InFlight& msg = in_flight_[slot];
  msg.from = from;  // assignment reuses the slot's string/port storage
  msg.to = to;
  msg.src = src;
  msg.dst = dst;
  msg.dest_incarnation = dst->incarnation;  // incarnation as of send time
  msg.payload = std::move(payload);
  return slot;
}

void Network::deliver_slot(std::size_t slot) {
  // Move everything to locals and release the slot BEFORE running the
  // handler: nested sends re-enter the pool and may grow in_flight_,
  // invalidating any reference into it.
  InFlight& msg = in_flight_[slot];
  Address from = std::move(msg.from);
  Address to = std::move(msg.to);
  const NodeState* src = msg.src;
  const NodeState* dst = msg.dst;
  const std::uint64_t dest_incarnation = msg.dest_incarnation;
  util::Bytes payload = std::move(msg.payload);
  free_slots_.push_back(slot);
  deliver(from, to, *src, *dst, dest_incarnation, std::move(payload));
}

void Network::deliver(const Address& from, const Address& to,
                      const NodeState& src, const NodeState& dst,
                      std::uint64_t dest_incarnation, util::Bytes payload) {
  // src/dst are read at delivery time: crashes, restarts and partitions
  // that happened while the message was in flight are observed here.
  // The frame's storage ends its life here on every path — recycle it
  // (encode() on either side drew it from the same pool).
  if (!dst.alive || dst.incarnation != dest_incarnation) {
    ++stats_.messages_dropped;
    util::BufferPool::instance().release(std::move(payload));
    return;
  }
  if (src.partition != dst.partition) {
    ++stats_.messages_dropped;
    util::BufferPool::instance().release(std::move(payload));
    return;
  }
  auto handler_it = handlers_.find(to);
  if (handler_it == handlers_.end()) {
    ++stats_.messages_dropped;
    util::BufferPool::instance().release(std::move(payload));
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += payload.size();
  // Pin the handler (it may unbind/rebind itself while running); the
  // shared_ptr copy is a refcount bump, not a std::function clone.
  std::shared_ptr<Handler> handler = handler_it->second;
  (*handler)(from, payload);
  util::BufferPool::instance().release(std::move(payload));
}

void Network::create_group(const std::string& group) {
  groups_.try_emplace(group);
}

void Network::join_group(const std::string& group, const Address& member) {
  auto& members = groups_[group];
  for (const Address& m : members) {
    if (m == member) return;
  }
  members.push_back(member);
}

void Network::leave_group(const std::string& group, const Address& member) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  std::erase(it->second, member);
}

std::vector<Address> Network::group_members(const std::string& group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second : std::vector<Address>{};
}

void Network::multicast(const Address& from, const std::string& group,
                        util::Bytes payload) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Snapshot membership: handlers triggered by earlier copies must not
  // affect who receives this datagram.
  const std::vector<Address> members = it->second;
  const Address* last = nullptr;
  for (const Address& member : members) {
    if (!(member == from)) last = &member;
  }
  for (const Address& member : members) {
    if (member == from) continue;
    if (&member == last) {
      send(from, member, std::move(payload));  // last copy moves, not clones
    } else {
      send(from, member, payload);
    }
  }
}

std::uint64_t Network::bytes_between(const NodeId& a, const NodeId& b) const {
  auto it = per_pair_bytes_.find({a, b});
  return it != per_pair_bytes_.end() ? it->second : 0;
}

}  // namespace maqs::net

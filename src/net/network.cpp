#include "net/network.hpp"

#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace maqs::net {

namespace {
constexpr int kMaxRetransmissions = 16;
}

Network::Network(sim::EventLoop& loop, std::uint64_t seed)
    : loop_(loop), rng_(seed) {}

void Network::add_node(const NodeId& node) {
  nodes_.try_emplace(node);
}

bool Network::has_node(const NodeId& node) const {
  return nodes_.contains(node);
}

bool Network::is_alive(const NodeId& node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.alive;
}

const Network::NodeState& Network::node_state(const NodeId& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  return it->second;
}

void Network::set_link(const NodeId& a, const NodeId& b,
                       const LinkParams& params) {
  node_state(a);
  node_state(b);
  links_[{a, b}] = params;
  links_[{b, a}] = params;
}

const LinkParams& Network::link(const NodeId& from, const NodeId& to) const {
  auto it = links_.find({from, to});
  return it != links_.end() ? it->second : default_link_;
}

void Network::crash(const NodeId& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.alive = false;
}

void Network::restart(const NodeId& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.alive = true;
  ++it->second.incarnation;
}

void Network::set_partition(const NodeId& node, int group) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("network: unknown node '" + node + "'");
  }
  it->second.partition = group;
}

void Network::heal_partitions() {
  for (auto& [_, state] : nodes_) state.partition = 0;
}

void Network::bind(const Address& addr, Handler handler) {
  node_state(addr.node);
  if (!handler) {
    throw std::invalid_argument("network: null handler for " +
                                addr.to_string());
  }
  auto [_, inserted] = handlers_.emplace(addr, std::move(handler));
  if (!inserted) {
    throw std::invalid_argument("network: address already bound: " +
                                addr.to_string());
  }
}

void Network::unbind(const Address& addr) {
  handlers_.erase(addr);
}

bool Network::is_bound(const Address& addr) const {
  return handlers_.contains(addr);
}

void Network::send(const Address& from, const Address& to,
                   util::Bytes payload) {
  const NodeState& src = node_state(from.node);
  const NodeState& dst = node_state(to.node);

  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  per_pair_bytes_[{from.node, to.node}] += payload.size();

  if (!src.alive) {
    ++stats_.messages_dropped;
    return;
  }

  sim::Duration delay;
  if (from.node == to.node) {
    delay = loopback_latency_;
  } else {
    const LinkParams& lp = link(from.node, to.node);
    sim::Duration transmit = 0;
    if (lp.bandwidth_bps > 0) {
      const double bits = static_cast<double>(payload.size()) * 8.0;
      transmit = sim::from_seconds(bits / lp.bandwidth_bps);
    }
    // Bandwidth serialization: back-to-back messages queue behind each
    // other on the directed link.
    sim::TimePoint& busy = busy_until_[{from.node, to.node}];
    const sim::TimePoint start = std::max(loop_.now(), busy);
    busy = start + transmit;

    delay = (start - loop_.now()) + transmit + lp.latency;
    if (lp.jitter > 0) {
      delay += static_cast<sim::Duration>(
          rng_.next_below(static_cast<std::uint64_t>(lp.jitter) + 1));
    }
    // Reliable transport over a lossy link: each lost attempt costs one
    // retransmission timeout (2x latency + transmit), as a TCP-like
    // transport would exhibit. After kMaxRetransmissions the "connection"
    // is declared broken and the message is dropped.
    int attempts = 0;
    while (lp.loss_rate > 0.0 && rng_.chance(lp.loss_rate)) {
      if (++attempts > kMaxRetransmissions) {
        ++stats_.messages_dropped;
        return;
      }
      ++stats_.retransmissions;
      delay += 2 * lp.latency + transmit;
    }
  }

  const std::uint64_t dest_incarnation = dst.incarnation;
  loop_.schedule(delay, [this, from, to, dest_incarnation,
                         payload = std::move(payload)]() mutable {
    deliver(from, to, dest_incarnation, std::move(payload));
  });
}

void Network::deliver(const Address& from, const Address& to,
                      std::uint64_t dest_incarnation, util::Bytes payload) {
  auto dst_it = nodes_.find(to.node);
  if (dst_it == nodes_.end() || !dst_it->second.alive ||
      dst_it->second.incarnation != dest_incarnation) {
    ++stats_.messages_dropped;
    return;
  }
  auto src_it = nodes_.find(from.node);
  if (src_it != nodes_.end() &&
      src_it->second.partition != dst_it->second.partition) {
    ++stats_.messages_dropped;
    return;
  }
  auto handler_it = handlers_.find(to);
  if (handler_it == handlers_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += payload.size();
  // Copy the handler: it may unbind/rebind itself while running.
  Handler handler = handler_it->second;
  handler(from, payload);
}

void Network::create_group(const std::string& group) {
  groups_.try_emplace(group);
}

void Network::join_group(const std::string& group, const Address& member) {
  auto& members = groups_[group];
  for (const Address& m : members) {
    if (m == member) return;
  }
  members.push_back(member);
}

void Network::leave_group(const std::string& group, const Address& member) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  std::erase(it->second, member);
}

std::vector<Address> Network::group_members(const std::string& group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second : std::vector<Address>{};
}

void Network::multicast(const Address& from, const std::string& group,
                        util::Bytes payload) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Snapshot membership: handlers triggered by earlier copies must not
  // affect who receives this datagram.
  const std::vector<Address> members = it->second;
  for (const Address& member : members) {
    if (member == from) continue;
    send(from, member, payload);
  }
}

std::uint64_t Network::bytes_between(const NodeId& a, const NodeId& b) const {
  auto it = per_pair_bytes_.find({a, b});
  return it != per_pair_bytes_.end() ? it->second : 0;
}

}  // namespace maqs::net

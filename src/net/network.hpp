// Discrete-event network simulator.
//
// This is the substitute for the real IP network under the authors' ORB
// (DESIGN.md §2): hosts, point-to-point links with latency / bandwidth /
// jitter / loss, IP-multicast-style groups, and fault injection (crashes,
// restarts, partitions). The transport models a reliable, in-order message
// service (loss shows up as retransmission delay, as TCP would exhibit),
// because CORBA GIOP assumes a reliable transport underneath.
//
// Determinism: all randomness (jitter, loss) comes from one seeded RNG; the
// same seed and workload reproduce identical timelines.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/address.hpp"
#include "sim/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace maqs::net {

/// Characteristics of a directed link between two hosts.
struct LinkParams {
  /// One-way propagation delay.
  sim::Duration latency = sim::kMillisecond;
  /// Serialization bandwidth in bits per second; <= 0 means infinite.
  double bandwidth_bps = 1e9;
  /// Probability that a transmission attempt is lost (and retransmitted).
  double loss_rate = 0.0;
  /// Extra uniform random delay in [0, jitter] per delivery.
  sim::Duration jitter = 0;
};

/// Aggregate traffic counters.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // dead/partitioned target, retry cap
  std::uint64_t retransmissions = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

class Network {
 public:
  using Handler =
      std::function<void(const Address& from, const util::Bytes& payload)>;

  explicit Network(sim::EventLoop& loop, std::uint64_t seed = 42);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::EventLoop& loop() noexcept { return loop_; }

  // ---- topology ----

  /// Registers a host. Idempotent.
  void add_node(const NodeId& node);
  bool has_node(const NodeId& node) const;
  bool is_alive(const NodeId& node) const;

  /// Default parameters for links with no explicit setting.
  void set_default_link(const LinkParams& params) { default_link_ = params; }
  const LinkParams& default_link() const noexcept { return default_link_; }

  /// Sets parameters for both directions between a and b.
  void set_link(const NodeId& a, const NodeId& b, const LinkParams& params);
  const LinkParams& link(const NodeId& from, const NodeId& to) const;

  /// Delay and bandwidth applied to same-host (loopback) traffic.
  void set_loopback_latency(sim::Duration d) { loopback_latency_ = d; }

  // ---- fault injection ----

  /// Marks a host dead: its handlers stop firing, in-flight messages to it
  /// are dropped at delivery time, and sends from it are discarded.
  void crash(const NodeId& node);

  /// Revives a crashed host with a new incarnation; messages sent to the
  /// previous incarnation never arrive (connections were severed).
  void restart(const NodeId& node);

  /// Assigns the node to a partition group; traffic between different
  /// groups is dropped at delivery time. Default group is 0.
  void set_partition(const NodeId& node, int group);

  /// Puts every node back into partition group 0.
  void heal_partitions();

  // ---- endpoints ----

  /// Binds a receive handler; throws std::invalid_argument if the node is
  /// unknown or the address is already bound.
  void bind(const Address& addr, Handler handler);
  void unbind(const Address& addr);
  bool is_bound(const Address& addr) const;

  /// Sends one message. Delivery is scheduled on the event loop according
  /// to the link model; undeliverable messages are silently dropped (the
  /// RPC layer above implements timeouts).
  void send(const Address& from, const Address& to, util::Bytes payload);

  // ---- multicast ----

  /// Creates a multicast group (idempotent); returns its name.
  void create_group(const std::string& group);
  void join_group(const std::string& group, const Address& member);
  void leave_group(const std::string& group, const Address& member);
  std::vector<Address> group_members(const std::string& group) const;

  /// Sends the payload to every group member (excluding `from` itself),
  /// with per-member independent link timing.
  void multicast(const Address& from, const std::string& group,
                 util::Bytes payload);

  // ---- accounting ----

  const NetStats& stats() const noexcept { return stats_; }
  void reset_stats() {
    stats_ = NetStats{};
    per_pair_bytes_.clear();  // cached counter pointers die with the map
    invalidate_fast_paths();
  }

  /// Total payload bytes sent from node a to node b since last reset.
  std::uint64_t bytes_between(const NodeId& a, const NodeId& b) const;

 private:
  struct NodeState {
    bool alive = true;
    std::uint64_t incarnation = 0;
    int partition = 0;
  };

  /// One in-flight message. Parked in a pooled slot so the event-loop
  /// closure captures only {network, slot index} and stays within
  /// std::function's small-buffer optimization — no heap allocation per
  /// send.
  struct InFlight {
    Address from;
    Address to;
    const NodeState* src = nullptr;  // stable: nodes are never removed
    const NodeState* dst = nullptr;
    std::uint64_t dest_incarnation = 0;
    util::Bytes payload;
  };

  /// Resolved lookups for one (from, to) node pair. A request/reply cycle
  /// alternates between exactly two directions, so a 2-entry cache turns
  /// the four map probes per send (two node states, link params, per-pair
  /// byte counter) into one or two short string compares. All cached
  /// pointers are stable: nodes_ never erases, links_ and per_pair_bytes_
  /// are node-based maps mutated in place.
  struct FastPath {
    NodeId from;
    NodeId to;
    NodeState* src = nullptr;
    NodeState* dst = nullptr;
    const LinkParams* link = nullptr;  // nullptr for loopback pairs
    std::uint64_t* pair_bytes = nullptr;
  };

  const NodeState& node_state(const NodeId& node) const;
  FastPath& fast_path(const NodeId& from, const NodeId& to);
  void invalidate_fast_paths() { fast_path_cache_ = {}; }
  std::size_t park_in_flight(const Address& from, const Address& to,
                             const NodeState* src, const NodeState* dst,
                             util::Bytes payload);
  void deliver_slot(std::size_t slot);
  void deliver(const Address& from, const Address& to, const NodeState& src,
               const NodeState& dst, std::uint64_t dest_incarnation,
               util::Bytes payload);

  sim::EventLoop& loop_;
  util::Rng rng_;
  LinkParams default_link_;
  sim::Duration loopback_latency_ = 10 * sim::kMicrosecond;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  // Earliest time each directed pair's link is free (bandwidth serialization).
  std::map<std::pair<NodeId, NodeId>, sim::TimePoint> busy_until_;
  // shared_ptr so a delivery pins the handler with a refcount bump instead
  // of copying the std::function, while unbind-during-delivery stays safe.
  std::unordered_map<Address, std::shared_ptr<Handler>> handlers_;
  std::map<std::string, std::vector<Address>> groups_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> per_pair_bytes_;
  std::vector<InFlight> in_flight_;     // slot-indexed; recycled via free list
  std::vector<std::size_t> free_slots_;
  std::array<FastPath, 2> fast_path_cache_;
  std::size_t fast_path_next_ = 0;
  NetStats stats_;
};

}  // namespace maqs::net

// Discrete-event network simulator.
//
// This is the substitute for the real IP network under the authors' ORB
// (DESIGN.md §2): hosts, point-to-point links with latency / bandwidth /
// jitter / loss, IP-multicast-style groups, and fault injection (crashes,
// restarts, partitions). The transport models a reliable, in-order message
// service (loss shows up as retransmission delay, as TCP would exhibit),
// because CORBA GIOP assumes a reliable transport underneath.
//
// Determinism: all randomness (jitter, loss) comes from one seeded RNG; the
// same seed and workload reproduce identical timelines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/address.hpp"
#include "sim/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace maqs::net {

/// Characteristics of a directed link between two hosts.
struct LinkParams {
  /// One-way propagation delay.
  sim::Duration latency = sim::kMillisecond;
  /// Serialization bandwidth in bits per second; <= 0 means infinite.
  double bandwidth_bps = 1e9;
  /// Probability that a transmission attempt is lost (and retransmitted).
  double loss_rate = 0.0;
  /// Extra uniform random delay in [0, jitter] per delivery.
  sim::Duration jitter = 0;
};

/// Aggregate traffic counters.
struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // dead/partitioned target, retry cap
  std::uint64_t retransmissions = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

class Network {
 public:
  using Handler =
      std::function<void(const Address& from, const util::Bytes& payload)>;

  explicit Network(sim::EventLoop& loop, std::uint64_t seed = 42);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::EventLoop& loop() noexcept { return loop_; }

  // ---- topology ----

  /// Registers a host. Idempotent.
  void add_node(const NodeId& node);
  bool has_node(const NodeId& node) const;
  bool is_alive(const NodeId& node) const;

  /// Default parameters for links with no explicit setting.
  void set_default_link(const LinkParams& params) { default_link_ = params; }
  const LinkParams& default_link() const noexcept { return default_link_; }

  /// Sets parameters for both directions between a and b.
  void set_link(const NodeId& a, const NodeId& b, const LinkParams& params);
  const LinkParams& link(const NodeId& from, const NodeId& to) const;

  /// Delay and bandwidth applied to same-host (loopback) traffic.
  void set_loopback_latency(sim::Duration d) { loopback_latency_ = d; }

  // ---- fault injection ----

  /// Marks a host dead: its handlers stop firing, in-flight messages to it
  /// are dropped at delivery time, and sends from it are discarded.
  void crash(const NodeId& node);

  /// Revives a crashed host with a new incarnation; messages sent to the
  /// previous incarnation never arrive (connections were severed).
  void restart(const NodeId& node);

  /// Assigns the node to a partition group; traffic between different
  /// groups is dropped at delivery time. Default group is 0.
  void set_partition(const NodeId& node, int group);

  /// Puts every node back into partition group 0.
  void heal_partitions();

  // ---- endpoints ----

  /// Binds a receive handler; throws std::invalid_argument if the node is
  /// unknown or the address is already bound.
  void bind(const Address& addr, Handler handler);
  void unbind(const Address& addr);
  bool is_bound(const Address& addr) const;

  /// Sends one message. Delivery is scheduled on the event loop according
  /// to the link model; undeliverable messages are silently dropped (the
  /// RPC layer above implements timeouts).
  void send(const Address& from, const Address& to, util::Bytes payload);

  // ---- multicast ----

  /// Creates a multicast group (idempotent); returns its name.
  void create_group(const std::string& group);
  void join_group(const std::string& group, const Address& member);
  void leave_group(const std::string& group, const Address& member);
  std::vector<Address> group_members(const std::string& group) const;

  /// Sends the payload to every group member (excluding `from` itself),
  /// with per-member independent link timing.
  void multicast(const Address& from, const std::string& group,
                 util::Bytes payload);

  // ---- accounting ----

  const NetStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = NetStats{}; per_pair_bytes_.clear(); }

  /// Total payload bytes sent from node a to node b since last reset.
  std::uint64_t bytes_between(const NodeId& a, const NodeId& b) const;

 private:
  struct NodeState {
    bool alive = true;
    std::uint64_t incarnation = 0;
    int partition = 0;
  };

  const NodeState& node_state(const NodeId& node) const;
  void deliver(const Address& from, const Address& to,
               std::uint64_t dest_incarnation, util::Bytes payload);

  sim::EventLoop& loop_;
  util::Rng rng_;
  LinkParams default_link_;
  sim::Duration loopback_latency_ = 10 * sim::kMicrosecond;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  // Earliest time each directed pair's link is free (bandwidth serialization).
  std::map<std::pair<NodeId, NodeId>, sim::TimePoint> busy_until_;
  std::unordered_map<Address, Handler> handlers_;
  std::map<std::string, std::vector<Address>> groups_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> per_pair_bytes_;
  NetStats stats_;
};

}  // namespace maqs::net

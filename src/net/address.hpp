// Network addressing for the simulated transport.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace maqs::net {

/// A host in the simulated network.
using NodeId = std::string;

/// A bindable endpoint: (host, port).
struct Address {
  NodeId node;
  std::uint16_t port = 0;

  bool operator==(const Address&) const = default;
  auto operator<=>(const Address&) const = default;

  std::string to_string() const {
    return node + ":" + std::to_string(port);
  }
};

}  // namespace maqs::net

template <>
struct std::hash<maqs::net::Address> {
  std::size_t operator()(const maqs::net::Address& a) const noexcept {
    return std::hash<std::string>{}(a.node) * 31 +
           std::hash<std::uint16_t>{}(a.port);
  }
};

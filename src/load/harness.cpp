#include "load/harness.hpp"

#include <ostream>
#include <thread>
#include <utility>

namespace maqs::load {

ShardConfig PopulationConfig::shard_config(std::uint32_t i) const {
  ShardConfig shard;
  shard.shard = i;
  shard.seed = seed;  // shards decorrelate internally by shard id
  const std::uint32_t base = shards > 0 ? clients / shards : clients;
  const std::uint32_t remainder = shards > 0 ? clients % shards : 0;
  shard.clients = base + (i < remainder ? 1 : 0);
  shard.horizon = horizon;
  shard.service_rate_rps = service_rate_rps;
  shard.classes = classes;
  shard.tenants = tenants;
  shard.mmpp = mmpp;
  shard.mmpp_tenant = mmpp_tenant;
  shard.blob_size = blob_size;
  shard.request_timeout = request_timeout;
  shard.trace_sample_every = trace_sample_every;
  return shard;
}

namespace {

void merge_sched(sched::SchedStats& into, const sched::SchedStats& from) {
  into.dispatched_inline += from.dispatched_inline;
  into.parked += from.parked;
  into.dispatched_queued += from.dispatched_queued;
  into.shed_no_tokens += from.shed_no_tokens;
  into.shed_queue_full += from.shed_queue_full;
  into.shed_deadline += from.shed_deadline;
  into.shed_evicted += from.shed_evicted;
  into.overload_signals += from.overload_signals;
  into.commands_bypassed += from.commands_bypassed;
  if (into.classes.empty()) into.classes = from.classes;
  else {
    for (std::size_t i = 0;
         i < into.classes.size() && i < from.classes.size(); ++i) {
      into.classes[i].arrived += from.classes[i].arrived;
      into.classes[i].dispatched += from.classes[i].dispatched;
      into.classes[i].shed += from.classes[i].shed;
    }
  }
}

}  // namespace

PopulationResult run_population(const PopulationConfig& config) {
  const std::uint32_t shard_count = config.shards > 0 ? config.shards : 1;
  PopulationResult result;
  result.shards.resize(shard_count);

  // One thread per shard. Threads may finish in any order; each writes
  // only its own slot, and everything below merges in slot (shard-id)
  // order, so scheduling cannot perturb the output.
  std::vector<std::thread> threads;
  threads.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    threads.emplace_back([&config, &result, i] {
      result.shards[i] = run_shard(config.shard_config(i));
    });
  }
  for (std::thread& t : threads) t.join();

  for (const ShardResult& shard : result.shards) {
    if (result.classes.empty()) {
      result.classes.resize(shard.classes.size());
      for (std::size_t c = 0; c < shard.classes.size(); ++c) {
        result.classes[c].name = shard.classes[c].name;
      }
    }
    for (std::size_t c = 0;
         c < result.classes.size() && c < shard.classes.size(); ++c) {
      result.classes[c].merge(shard.classes[c]);
    }
    merge_sched(result.sched, shard.sched);
    result.commands_ok += shard.commands_ok;
    result.commands_error += shard.commands_error;
    result.open_loop_sent += shard.open_loop_sent;
  }
  return result;
}

void write_latency_json(const PopulationConfig& config,
                        const PopulationResult& result, std::ostream& os) {
  // Integer-only values (virtual time is integral nanoseconds), fixed key
  // order: same config + seed => same bytes, so the file diffs cleanly
  // and the determinism check is a plain byte compare.
  os << "{\n";
  os << "  \"bench\": \"l1_population\",\n";
  os << "  \"clients\": " << config.clients << ",\n";
  os << "  \"shards\": " << config.shards << ",\n";
  os << "  \"seed\": " << config.seed << ",\n";
  os << "  \"horizon_ms\": " << config.horizon / sim::kMillisecond << ",\n";
  os << "  \"service_rate_rps_per_shard\": "
     << static_cast<std::uint64_t>(config.service_rate_rps) << ",\n";
  os << "  \"classes\": [\n";
  for (std::size_t c = 0; c < result.classes.size(); ++c) {
    const ClassOutcome& out = result.classes[c];
    sim::Duration budget = 0;
    for (const sched::ClassConfig& cls : config.classes) {
      if (cls.name == out.name) budget = cls.deadline_budget;
    }
    const std::uint64_t p99_ns = out.latency.p99();
    os << "    {\"class\": \"" << out.name << "\", "
       << "\"sent\": " << out.sent << ", "
       << "\"ok\": " << out.ok << ", "
       << "\"shed\": " << out.shed << ", "
       << "\"timeout\": " << out.timeout << ", "
       << "\"error\": " << out.error << ",\n"
       << "     \"p50_us\": " << out.latency.p50() / 1000 << ", "
       << "\"p99_us\": " << p99_ns / 1000 << ", "
       << "\"p999_us\": " << out.latency.p999() / 1000 << ", "
       << "\"max_us\": " << out.latency.max() / 1000 << ", "
       << "\"deadline_budget_us\": " << budget / sim::kMicrosecond << ", "
       << "\"p99_within_budget\": "
       << (budget > 0 && p99_ns <= static_cast<std::uint64_t>(budget)
               ? "true"
               : "false")
       << "}" << (c + 1 < result.classes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"commands\": {\"ok\": " << result.commands_ok
     << ", \"error\": " << result.commands_error << "},\n";
  os << "  \"open_loop_arrivals\": " << result.open_loop_sent << ",\n";
  os << "  \"sched\": {"
     << "\"dispatched_inline\": " << result.sched.dispatched_inline << ", "
     << "\"parked\": " << result.sched.parked << ", "
     << "\"dispatched_queued\": " << result.sched.dispatched_queued << ",\n"
     << "    \"shed_no_tokens\": " << result.sched.shed_no_tokens << ", "
     << "\"shed_queue_full\": " << result.sched.shed_queue_full << ", "
     << "\"shed_deadline\": " << result.sched.shed_deadline << ", "
     << "\"shed_evicted\": " << result.sched.shed_evicted << ",\n"
     << "    \"overload_signals\": " << result.sched.overload_signals << ", "
     << "\"commands_bypassed\": " << result.sched.commands_bypassed << "}\n";
  os << "}\n";
}

}  // namespace maqs::load

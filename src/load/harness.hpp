// Population harness: shards in parallel threads, merged deterministically.
//
// run_population() splits the client population across shards, runs each
// shard's world on its own OS thread (shards share nothing — pools and
// trace stacks are thread-local), then merges results strictly in
// shard-id order. Thread completion order therefore cannot leak into the
// output: the merged counters, latency sketches (bucket-wise commutative
// merge) and the JSON report are byte-identical across reruns of the same
// seed, which is what lets BENCH_latency.json be a tracked artifact.
#pragma once

#include <iosfwd>
#include <string>

#include "load/shard.hpp"

namespace maqs::load {

struct PopulationConfig {
  std::uint32_t clients = 1'000'000;
  std::uint32_t shards = 8;
  std::uint64_t seed = 42;
  sim::Duration horizon = 30 * sim::kSecond;
  /// Scheduler pacing per shard (total capacity = shards * this).
  double service_rate_rps = 10'000.0;
  std::vector<sched::ClassConfig> classes = default_classes();
  std::vector<TenantSpec> tenants = default_tenants();
  MmppConfig mmpp;
  std::size_t mmpp_tenant = 0;
  std::size_t blob_size = 4096;
  sim::Duration request_timeout = 5 * sim::kSecond;
  std::uint32_t trace_sample_every = 0;

  /// The ShardConfig for shard `i` (clients split largest-remainder).
  ShardConfig shard_config(std::uint32_t i) const;
};

struct PopulationResult {
  /// Merged per-class outcomes, scheduler class-id order.
  std::vector<ClassOutcome> classes;
  /// Field-wise sum of every shard's scheduler stats.
  sched::SchedStats sched;
  std::uint64_t commands_ok = 0;
  std::uint64_t commands_error = 0;
  std::uint64_t open_loop_sent = 0;
  /// Per-shard raw results, shard-id order (spans included when tracing).
  std::vector<ShardResult> shards;
};

/// Runs every shard (one thread each) and merges in shard-id order.
PopulationResult run_population(const PopulationConfig& config);

/// Deterministic machine-readable report (integer-only values): the
/// BENCH_latency.json schema CI checks — per class, sent/ok/shed/timeout/
/// error plus p50/p99/p999/max in microseconds and the deadline verdict.
void write_latency_json(const PopulationConfig& config,
                        const PopulationResult& result, std::ostream& os);

}  // namespace maqs::load

// One population shard: a self-contained simulated world under load.
//
// A million clients do not fit in one event loop's wall-clock budget, so
// the population is split into shards. Each shard owns a complete world —
// event loop, network, server/client ORBs, QoS transports, the woven
// compression+encryption servant, and a paced RequestScheduler — and runs
// it to a virtual-time horizon entirely on one thread. Nothing is shared
// between shards (buffer pools and trace stacks are thread-local), so
// shards run in parallel OS threads and their results merge in shard-id
// order, independent of thread scheduling.
//
// Determinism: a shard's behaviour is a pure function of its ShardConfig.
// The event loop orders all activity by virtual time, every random draw
// comes from the shard's seeded Rng, and replies arrive in loop order —
// so a fixed (seed, shard) replays byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/percentile.hpp"
#include "load/workload.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"

namespace maqs::load {

struct ShardConfig {
  std::uint32_t shard = 0;
  std::uint64_t seed = 42;
  /// Closed-loop client population of this shard.
  std::uint32_t clients = 1000;
  /// Virtual-time horizon; no new requests are issued past it (in-flight
  /// ones settle during the idle drain).
  sim::Duration horizon = 30 * sim::kSecond;
  /// Scheduler pacing (requests per virtual second). Must be > 0 for the
  /// overload story — an unpaced server never queues.
  double service_rate_rps = 10'000.0;
  /// QoS classes (scheduler order defines class ids).
  std::vector<sched::ClassConfig> classes;
  /// Tenant mixes; each tenant names one of `classes` via qos_class.
  std::vector<TenantSpec> tenants;
  /// Optional open-loop MMPP arrival stream drawn from
  /// tenants[mmpp_tenant]'s mix (open-loop traffic does not back off).
  MmppConfig mmpp;
  std::size_t mmpp_tenant = 0;
  /// Woven-operation payload size.
  std::size_t blob_size = 4096;
  sim::Duration request_timeout = 5 * sim::kSecond;
  /// 0 disables tracing; n > 0 records every n-th request's causal tree.
  std::uint32_t trace_sample_every = 0;
};

/// Per-QoS-class outcome counters plus the latency sketch (virtual
/// nanoseconds, successful replies only).
struct ClassOutcome {
  std::string name;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;     ///< answered maqs/OVERLOAD
  std::uint64_t timeout = 0;  ///< locally synthesized maqs/TIMEOUT
  std::uint64_t error = 0;    ///< any other non-OK reply
  core::PercentileSketch latency;

  /// Bucket-wise accumulation (shard merge).
  void merge(const ClassOutcome& other);
};

struct ShardResult {
  std::uint32_t shard = 0;
  /// Scheduler class-id order (same order for every shard of a run).
  std::vector<ClassOutcome> classes;
  sched::SchedStats sched;
  std::uint64_t commands_ok = 0;
  std::uint64_t commands_error = 0;
  /// Requests issued by the open-loop MMPP stream (also counted in the
  /// per-class outcomes above).
  std::uint64_t open_loop_sent = 0;
  /// Sampled spans (trace_sample_every > 0), tagged with the shard id for
  /// the deterministic multi-shard merge.
  std::vector<trace::Span> spans;
};

/// Runs one shard start to finish on the calling thread.
ShardResult run_shard(const ShardConfig& config);

/// The headline 3-class population: gold (weight 8, 50 ms budget),
/// silver (weight 3, 200 ms), best_effort (weight 1, 500 ms).
std::vector<sched::ClassConfig> default_classes();

/// Tenants matching default_classes(): 15% gold / 25% silver / 60%
/// best-effort, mixing plain, woven and command traffic.
std::vector<TenantSpec> default_tenants();

}  // namespace maqs::load

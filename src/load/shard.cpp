#include "load/shard.hpp"

#include <array>
#include <memory>
#include <utility>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "characteristics/compression.hpp"
#include "characteristics/encryption.hpp"
#include "core/mediator.hpp"
#include "core/qos_skeleton.hpp"
#include "core/qos_transport.hpp"
#include "net/network.hpp"
#include "orb/dii.hpp"
#include "orb/orb.hpp"
#include "sched/classifier.hpp"
#include "util/strings.hpp"

namespace maqs::load {

namespace {

/// The woven interface: its installed QoS impls transform *every* request
/// body, so only woven traffic may target it.
constexpr const char* kWovenKey = "echo";
/// The plain interface serving untransformed add/echo traffic.
constexpr const char* kPlainKey = "calc";

/// Woven servant: the blob op rides through QosServantBase, so every
/// dispatch pays the genuine decrypt+inflate (and the reply the
/// compress+encrypt) of the negotiated characteristics.
class LoadWovenServant final : public core::QosServantBase {
 public:
  const std::string& repo_id() const override {
    static const std::string id = "IDL:maqs/load/Echo:1.0";
    return id;
  }

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "blob") {
      const util::Bytes data = args.read_bytes();
      args.expect_end();
      out.write_bytes(data);
    } else {
      throw orb::BadOperation("LoadEcho: unknown operation " + operation);
    }
  }
};

/// Plain GIOP servant for the untransformed ops — plain peers need no QoS
/// machinery at all (they still get classified, via the context tag).
class LoadPlainServant final : public orb::Servant {
 public:
  const std::string& repo_id() const override {
    static const std::string id = "IDL:maqs/load/Calc:1.0";
    return id;
  }

  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "echo") {
      const std::string s = args.read_string();
      args.expect_end();
      out.write_string(s);
    } else if (operation == "add") {
      const std::int32_t a = args.read_i32();
      const std::int32_t b = args.read_i32();
      args.expect_end();
      out.write_i32(a + b);
    } else {
      throw orb::BadOperation("LoadCalc: unknown operation " + operation);
    }
  }
};

/// Compressible text payload for the woven blob op (mirrors the bench
/// payload shape: ~90% repeated phrase, ~10% seeded noise).
util::Bytes blob_payload(std::size_t size, util::Rng& rng) {
  const std::string phrase = "population shard woven payload frame ";
  util::Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    if (rng.next_double() < 0.9) {
      const std::size_t n = std::min(phrase.size(), size - out.size());
      out.insert(out.end(), phrase.begin(), phrase.begin() + n);
    } else {
      const std::uint64_t word = rng.next();
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(&word);
      const std::size_t n = std::min(sizeof(word), size - out.size());
      out.insert(out.end(), bytes, bytes + n);
    }
  }
  return out;
}

core::Agreement make_agreement(const std::string& characteristic,
                               std::map<std::string, cdr::Any> params) {
  core::Agreement agreement;
  agreement.id = 1;
  agreement.characteristic = characteristic;
  agreement.object_key = kWovenKey;
  agreement.params = std::move(params);
  agreement.state = core::AgreementState::kActive;
  return agreement;
}

/// All per-shard machinery the reply callbacks need. Lives on
/// run_shard's stack; the event loop is fully drained before it returns,
/// so no callback can outlive it.
struct Driver {
  const ShardConfig& cfg;
  sim::EventLoop& loop;
  orb::Orb& client;
  net::Address server_addr;
  util::Rng rng;
  /// Pre-built request per (tenant, op) — the woven body and its context
  /// tags are computed once through the mediator chain, then cloned.
  std::vector<std::array<orb::RequestMessage, kOpKindCount>> templates;
  std::vector<std::size_t> tenant_class;  // tenant -> scheduler class id
  std::vector<ClassOutcome>& outcomes;
  trace::TraceRecorder* recorder = nullptr;
  /// Client half of the weaving, run per woven request (the encryption
  /// nonce is bound to the request id, so bodies cannot be pre-sealed).
  core::CompositeMediator* mediator = nullptr;
  orb::ObjRef woven_ref;
  /// Ids are assigned here (never left 0) so the woven transform can seal
  /// against the id the wire will actually carry.
  std::uint64_t next_request_id = 1;
  MmppArrivals arrivals;
  std::uint64_t commands_ok = 0;
  std::uint64_t commands_error = 0;
  std::uint64_t open_loop_sent = 0;

  Driver(const ShardConfig& cfg_in, sim::EventLoop& loop_in,
         orb::Orb& client_in, std::vector<ClassOutcome>& outcomes_in)
      : cfg(cfg_in),
        loop(loop_in),
        client(client_in),
        // Decorrelate shards: the same base seed must not replay the same
        // draw sequence in every shard.
        rng(cfg_in.seed ^ (0x9E3779B97F4A7C15ULL * (cfg_in.shard + 1))),
        outcomes(outcomes_in),
        arrivals(cfg_in.mmpp) {}

  void issue(std::size_t tenant, bool closed_loop) {
    if (loop.now() >= cfg.horizon) return;
    const OpKind op = sample_op(cfg.tenants[tenant], rng);
    orb::RequestMessage req = templates[tenant][static_cast<std::size_t>(op)];
    req.request_id = next_request_id++;
    if (op == OpKind::kWovenBlob) {
      mediator->outbound(req, woven_ref);
    }
    if (recorder != nullptr) {
      // The async send path bypasses the client interceptor chain, so the
      // trace context is minted here; make_trace() applies head sampling.
      const trace::TraceContext ctx = recorder->make_trace();
      if (ctx.sampled()) {
        req.context.set(trace::kTraceContextKey, trace::encode_context(ctx));
      }
    }
    if (op != OpKind::kCommand) ++outcomes[tenant_class[tenant]].sent;
    const sim::TimePoint t0 = loop.now();
    client.send_request(
        server_addr, std::move(req),
        [this, tenant, op, t0, closed_loop](orb::ReplyMessage rep) {
          finish(tenant, op, t0, closed_loop, rep);
        },
        cfg.request_timeout);
  }

  void finish(std::size_t tenant, OpKind op, sim::TimePoint t0,
              bool closed_loop, const orb::ReplyMessage& rep) {
    if (op == OpKind::kCommand) {
      if (rep.status == orb::ReplyStatus::kOk) {
        ++commands_ok;
      } else {
        ++commands_error;
      }
    } else {
      ClassOutcome& out = outcomes[tenant_class[tenant]];
      if (rep.status == orb::ReplyStatus::kOk) {
        ++out.ok;
        out.latency.record(static_cast<std::uint64_t>(loop.now() - t0));
      } else if (util::starts_with(rep.exception, sched::kOverloadException)) {
        ++out.shed;
      } else if (rep.synthesized_locally) {
        ++out.timeout;
      } else {
        ++out.error;
      }
    }
    if (closed_loop && loop.now() < cfg.horizon) {
      const sim::Duration think = cfg.tenants[tenant].think.sample(rng);
      loop.schedule(think, [this, tenant] { issue(tenant, true); });
    }
  }

  /// Self-rescheduling open-loop arrival chain.
  void schedule_open_loop() {
    const sim::Duration gap = arrivals.next_arrival(rng);
    loop.schedule(gap, [this] {
      if (loop.now() >= cfg.horizon) return;
      ++open_loop_sent;
      issue(cfg.mmpp_tenant, /*closed_loop=*/false);
      schedule_open_loop();
    });
  }
};

}  // namespace

void ClassOutcome::merge(const ClassOutcome& other) {
  sent += other.sent;
  ok += other.ok;
  shed += other.shed;
  timeout += other.timeout;
  error += other.error;
  latency.merge(other.latency);
}

ShardResult run_shard(const ShardConfig& config) {
  // ---- the world ----
  sim::EventLoop loop;
  net::Network network{loop};
  network.set_default_link(net::LinkParams{.latency = 200 * sim::kMicrosecond,
                                           .bandwidth_bps = 1e9});
  orb::Orb server{network, "server", 9000};
  orb::Orb client{network, "client", 9001};
  core::QosTransport server_transport{server};

  trace::TraceRecorder recorder(loop, /*capacity=*/4096);
  if (config.trace_sample_every > 0) {
    recorder.set_enabled(true);
    recorder.set_sample_every(config.trace_sample_every);
    recorder.set_shard(config.shard);
    server.set_trace_recorder(&recorder);
  }

  // ---- servants: a woven blob interface and a plain calc interface ----
  auto woven_servant = std::make_shared<LoadWovenServant>();
  woven_servant->assign_characteristic(
      characteristics::compression_descriptor());
  woven_servant->assign_characteristic(
      characteristics::encryption_descriptor());
  orb::QosProfile compression;
  compression.characteristic = characteristics::compression_name();
  orb::QosProfile encryption;
  encryption.characteristic = characteristics::encryption_name();
  orb::ObjRef ref = server.adapter().activate(kWovenKey, woven_servant,
                                              {compression, encryption});
  auto plain_servant = std::make_shared<LoadPlainServant>();
  server.adapter().activate(kPlainKey, plain_servant);

  const core::Agreement compress_agreement =
      make_agreement(characteristics::compression_name(),
                     {{"algorithm", cdr::Any::from_string("lz77")},
                      {"level", cdr::Any::from_long(32)},
                      {"min_size", cdr::Any::from_long(64)}});
  const core::Agreement encrypt_agreement =
      make_agreement(characteristics::encryption_name(),
                     {{"psk", cdr::Any::from_string("load-psk")},
                      {"integrity", cdr::Any::from_bool(true)}});

  auto mediator = std::make_shared<core::CompositeMediator>();
  auto compress_mediator =
      std::make_shared<characteristics::CompressionMediator>();
  compress_mediator->bind_agreement(compress_agreement);
  mediator->add(compress_mediator);
  auto encrypt_mediator =
      std::make_shared<characteristics::EncryptionMediator>();
  encrypt_mediator->bind_agreement(encrypt_agreement);
  mediator->add(encrypt_mediator);

  auto compress_impl = std::make_shared<characteristics::CompressionImpl>();
  compress_impl->bind_agreement(compress_agreement);
  woven_servant->install_impl(compress_impl);
  auto encrypt_impl = std::make_shared<characteristics::EncryptionImpl>();
  encrypt_impl->bind_agreement(encrypt_agreement);
  woven_servant->install_impl(encrypt_impl);

  // ---- the paced QoS-class scheduler ----
  sched::SchedulerConfig sched_config;
  sched_config.classes = config.classes.empty() ? default_classes()
                                                : config.classes;
  sched_config.service_rate_rps = config.service_rate_rps;
  sched::RequestScheduler scheduler(server, sched_config);

  const auto& classifier = scheduler.classifier();
  std::vector<ClassOutcome> outcomes(classifier.class_count());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    outcomes[i].name = classifier.class_name(i);
  }

  Driver driver(config, loop, client, outcomes);
  driver.server_addr = server.endpoint();
  if (config.trace_sample_every > 0) driver.recorder = &recorder;

  const std::vector<TenantSpec>& tenants = config.tenants;
  driver.tenant_class.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) {
    driver.tenant_class.push_back(classifier.class_id(tenant.qos_class)
                                      .value_or(classifier.best_effort()));
  }

  driver.mediator = mediator.get();
  driver.woven_ref = ref;

  // ---- request templates: one per (tenant, op) ----
  // Plain bodies are final; the woven blob template stays *unsealed* here
  // — the encryption nonce binds to the request id, so Driver::issue runs
  // the mediator chain per request, after assigning the id.
  std::array<orb::RequestMessage, kOpKindCount> base;
  {
    cdr::Encoder enc;
    enc.write_i32(7);
    enc.write_i32(35);
    base[0].object_key = kPlainKey;
    base[0].operation = "add";
    base[0].body = enc.take();
  }
  {
    cdr::Encoder enc;
    enc.write_string("population shard echo probe");
    base[1].object_key = kPlainKey;
    base[1].operation = "echo";
    base[1].body = enc.take();
  }
  {
    cdr::Encoder enc;
    enc.write_bytes(blob_payload(config.blob_size, driver.rng));
    base[2].object_key = kWovenKey;
    base[2].operation = "blob";
    base[2].qos_aware = true;
    base[2].body = enc.take();
  }
  {
    base[3].kind = orb::RequestKind::kCommand;
    base[3].qos_aware = true;
    base[3].operation = "ping";
    base[3].body = orb::encode_command_args({});
  }
  driver.templates.reserve(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    std::array<orb::RequestMessage, kOpKindCount> per_tenant = base;
    const util::Bytes tag = util::to_bytes(tenants[t].qos_class);
    for (std::size_t op = 0; op < kOpKindCount; ++op) {
      // Classifier rule 1: the explicit class tag the client's agreement
      // bought (commands bypass classification; tagging them is harmless).
      per_tenant[op].context.set(sched::kClassContextKey, tag);
    }
    driver.templates.push_back(std::move(per_tenant));
  }

  // ---- population start: staggered by one think-time draw ----
  const std::vector<std::uint32_t> split =
      split_population(tenants, config.clients);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (std::uint32_t i = 0; i < split[t]; ++i) {
      const sim::Duration stagger = tenants[t].think.sample(driver.rng);
      loop.schedule(stagger, [&driver, t] { driver.issue(t, true); });
    }
  }
  if (config.mmpp.enabled() && !tenants.empty()) {
    driver.schedule_open_loop();
  }

  // ---- run to the horizon, then let in-flight work settle ----
  loop.run_for(config.horizon);
  loop.run_until_idle();

  ShardResult result;
  result.shard = config.shard;
  result.classes = std::move(outcomes);
  result.sched = scheduler.stats();
  result.commands_ok = driver.commands_ok;
  result.commands_error = driver.commands_error;
  result.open_loop_sent = driver.open_loop_sent;
  if (config.trace_sample_every > 0) result.spans = recorder.spans();
  return result;
}

std::vector<sched::ClassConfig> default_classes() {
  sched::ClassConfig gold;
  gold.name = "gold";
  gold.weight = 8.0;
  gold.deadline_budget = 50 * sim::kMillisecond;
  gold.queue_limit = 256;
  sched::ClassConfig silver;
  silver.name = "silver";
  silver.weight = 3.0;
  silver.deadline_budget = 200 * sim::kMillisecond;
  silver.queue_limit = 512;
  sched::ClassConfig best_effort;
  best_effort.name = sched::kBestEffortClassName;
  best_effort.weight = 1.0;
  best_effort.deadline_budget = 500 * sim::kMillisecond;
  best_effort.queue_limit = 1024;
  return {gold, silver, best_effort};
}

std::vector<TenantSpec> default_tenants() {
  TenantSpec gold;
  gold.name = "interactive";
  gold.qos_class = "gold";
  gold.population_share = 0.15;
  gold.op_mix[0] = 0.50;  // add
  gold.op_mix[1] = 0.20;  // echo
  gold.op_mix[2] = 0.25;  // woven blob
  gold.op_mix[3] = 0.05;  // control-plane command
  gold.think.minimum = 2 * sim::kSecond;
  gold.think.cap = 60 * sim::kSecond;

  TenantSpec silver;
  silver.name = "dashboard";
  silver.qos_class = "silver";
  silver.population_share = 0.25;
  silver.op_mix[0] = 0.60;
  silver.op_mix[1] = 0.25;
  silver.op_mix[2] = 0.15;
  silver.op_mix[3] = 0.0;
  silver.think.minimum = 2 * sim::kSecond;
  silver.think.cap = 90 * sim::kSecond;

  TenantSpec bulk;
  bulk.name = "batch";
  bulk.qos_class = sched::kBestEffortClassName;
  bulk.population_share = 0.60;
  bulk.op_mix[0] = 0.70;
  bulk.op_mix[1] = 0.20;
  bulk.op_mix[2] = 0.10;
  bulk.op_mix[3] = 0.0;
  bulk.think.minimum = 2 * sim::kSecond;
  bulk.think.cap = 120 * sim::kSecond;

  return {gold, silver, bulk};
}

}  // namespace maqs::load

// Workload generation for population-scale simulation runs.
//
// The paper's QoS argument only bites under load: "resource-dependent"
// characteristics (§2.2) are exactly the ones that degrade when a million
// clients contend for a server. This module generates that load — per
// tenant, per QoS class, from seeded deterministic PRNGs:
//
//   - Closed-loop clients: issue a request, wait for the reply, think,
//     repeat. Think times are heavy-tailed (bounded Pareto) — real user
//     populations are bursty at every time scale, and an exponential
//     think model would understate queue buildup.
//   - Open-loop arrivals: a 2-state MMPP (Markov-modulated Poisson
//     process) flips between a calm and a burst rate with exponential
//     dwell times. Open-loop traffic does not slow down when the server
//     queues — that is what pushes the scheduler into its shedding regime.
//   - Per-tenant mixes: each tenant maps to one QoS class and draws its
//     operations from a weighted mix of plain calls (add/echo), woven
//     calls (compressed+encrypted blob) and control-plane commands.
//
// Every draw comes from the shard's util::Rng; a fixed (seed, shard)
// reproduces the identical arrival sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace maqs::load {

/// Operation kinds a tenant's clients can issue.
enum class OpKind : std::uint8_t {
  kPlainAdd = 0,   ///< tiny request/reply, no transforms
  kPlainEcho = 1,  ///< small string round trip
  kWovenBlob = 2,  ///< 4k blob through compression+encryption weaving
  kCommand = 3,    ///< control-plane ping (bypasses the request queues)
};
inline constexpr std::size_t kOpKindCount = 4;

/// Bounded Pareto think-time model. alpha in (1, 2] gives the heavy tail;
/// the mean of the unbounded law is minimum * alpha / (alpha - 1).
struct ThinkTimeModel {
  sim::Duration minimum = 2 * sim::kSecond;
  sim::Duration cap = 120 * sim::kSecond;
  double alpha = 1.5;

  sim::Duration sample(util::Rng& rng) const;
};

/// One tenant: a QoS class, a share of the client population, an
/// operation mix and a think-time law.
struct TenantSpec {
  std::string name;
  /// QoS class this tenant's requests are tagged with (classifier rule 1).
  std::string qos_class;
  /// Relative share of the closed-loop population.
  double population_share = 1.0;
  /// Weights over OpKind (index order); zero-sum mixes default to add.
  double op_mix[kOpKindCount] = {1.0, 0.0, 0.0, 0.0};
  ThinkTimeModel think;
};

/// Draws an OpKind from the tenant's mix.
OpKind sample_op(const TenantSpec& tenant, util::Rng& rng);

/// Splits `total_clients` across tenants by population share, largest
/// remainder to the earliest tenant — deterministic and exact (the parts
/// sum to total_clients).
std::vector<std::uint32_t> split_population(
    const std::vector<TenantSpec>& tenants, std::uint32_t total_clients);

/// 2-state Markov-modulated Poisson arrival process.
struct MmppConfig {
  double calm_rps = 0.0;   ///< arrival rate in the calm state (0 = off)
  double burst_rps = 0.0;  ///< arrival rate in the burst state
  sim::Duration calm_dwell_mean = 2 * sim::kSecond;
  sim::Duration burst_dwell_mean = 300 * sim::kMillisecond;

  bool enabled() const noexcept { return calm_rps > 0 || burst_rps > 0; }
};

/// Stateful MMPP stream: next_arrival() returns the delay until the next
/// arrival, advancing the modulating chain as virtual time passes.
class MmppArrivals {
 public:
  explicit MmppArrivals(MmppConfig config) : config_(config) {}

  /// Delay from the previous arrival to the next one. Always > 0.
  sim::Duration next_arrival(util::Rng& rng);

  bool bursting() const noexcept { return bursting_; }

 private:
  MmppConfig config_;
  bool bursting_ = false;
  /// Virtual time left in the current modulating state (consumed by
  /// arrivals as they pass through it).
  sim::Duration state_left_ = 0;
};

}  // namespace maqs::load

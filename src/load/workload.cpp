#include "load/workload.hpp"

#include <cmath>

namespace maqs::load {

sim::Duration ThinkTimeModel::sample(util::Rng& rng) const {
  // Inverse-transform bounded Pareto: x = xm / u^(1/alpha), clipped at
  // the cap. u is nudged off 0 so the tail stays bounded by the cap, not
  // by a division blowup.
  const double u = 1.0 - rng.next_double();  // (0, 1]
  const double x =
      static_cast<double>(minimum) / std::pow(u, 1.0 / alpha);
  const double capped = std::min(x, static_cast<double>(cap));
  const auto ticks = static_cast<sim::Duration>(capped);
  return ticks > 0 ? ticks : 1;
}

OpKind sample_op(const TenantSpec& tenant, util::Rng& rng) {
  double total = 0;
  for (double w : tenant.op_mix) total += w;
  if (total <= 0) return OpKind::kPlainAdd;
  double pick = rng.next_double() * total;
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    pick -= tenant.op_mix[i];
    if (pick < 0) return static_cast<OpKind>(i);
  }
  return OpKind::kPlainAdd;
}

std::vector<std::uint32_t> split_population(
    const std::vector<TenantSpec>& tenants, std::uint32_t total_clients) {
  std::vector<std::uint32_t> out(tenants.size(), 0);
  if (tenants.empty()) return out;
  double total_share = 0;
  for (const TenantSpec& t : tenants) total_share += t.population_share;
  if (total_share <= 0) {
    out[0] = total_clients;
    return out;
  }
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(
        static_cast<double>(total_clients) *
        (tenants[i].population_share / total_share));
    assigned += out[i];
  }
  // Exactness: hand the rounding remainder to the first tenant.
  out[0] += total_clients - assigned;
  return out;
}

sim::Duration MmppArrivals::next_arrival(util::Rng& rng) {
  sim::Duration waited = 0;
  for (;;) {
    const double rate = bursting_ ? config_.burst_rps : config_.calm_rps;
    if (state_left_ <= 0) {
      const sim::Duration dwell_mean =
          bursting_ ? config_.burst_dwell_mean : config_.calm_dwell_mean;
      state_left_ = std::max<sim::Duration>(
          1, static_cast<sim::Duration>(
                 rng.exponential(static_cast<double>(dwell_mean))));
    }
    if (rate <= 0) {
      // Silent state: burn the dwell and flip.
      waited += state_left_;
      state_left_ = 0;
      bursting_ = !bursting_;
      continue;
    }
    const auto gap = static_cast<sim::Duration>(
        rng.exponential(static_cast<double>(sim::kSecond) / rate));
    const sim::Duration step = gap > 0 ? gap : 1;
    if (step <= state_left_) {
      state_left_ -= step;
      return waited + step;
    }
    // The modulating chain flips before the drawn arrival: consume the
    // dwell and redraw in the next state (memorylessness makes the
    // truncated redraw exact).
    waited += state_left_;
    state_left_ = 0;
    bursting_ = !bursting_;
  }
}

}  // namespace maqs::load

// QoS negotiation.
//
// "There is no system wide view on the QoS capability of a system but
// each QoS agreement has to be negotiated independently" (§3). The
// protocol runs as commands over the plain GIOP/IIOP path — exactly the
// bootstrap story of Fig. 3, where a QoS-aware relationship without an
// assigned module falls back to the plain module: "This allows initial
// negotiation of a QoS agreement between client and service".
//
// Protocol (command target "maqs.negotiator" on the server transport):
//   negotiate(characteristic, object_key, phase, matrix, params)
//       -> accepted? agreement_id, matrix, final/counter params, message
//   renegotiate(agreement_id, expected_version, matrix, params)
//       -> same result shape
//   terminate(agreement_id)                -> void
//
// The offer carries a capability matrix: the client's ranked preference
// lattice with its chosen point. The server intersects that lattice with
// ResourceManager capacity and either accepts the chosen point or
// counters with its best feasible point; the client confirms a counter
// (phase "accept") when it satisfies its preferences. Accepted
// agreements are versioned; a renegotiation must name the version it is
// renegotiating from and either commits version+1 atomically or leaves
// the previous agreement version (matrix, params, reservation) intact.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/contract.hpp"
#include "core/provider.hpp"
#include "core/qos_transport.hpp"
#include "orb/stub.hpp"

namespace maqs::core {

/// Raised on rejected or failed negotiations.
class NegotiationFailed : public QosError {
 public:
  using QosError::QosError;
};

/// Parameter <-> Any-sequence marshaling shared by both sides.
std::vector<cdr::Any> encode_params(
    const std::map<std::string, cdr::Any>& params);
std::map<std::string, cdr::Any> decode_params(
    const std::vector<cdr::Any>& anys, std::size_t offset);

/// Admission decision.
struct AdmissionDecision {
  enum class Kind { kAccept, kCounter, kReject } kind = Kind::kAccept;
  /// kCounter: the server's counter-proposal.
  std::map<std::string, cdr::Any> counter_params;
  std::string reason;
};

/// Pluggable admission policy: characteristic + flattened params (scalars
/// plus chosen dimension values) -> decision. The default (nullptr) walks
/// the offer's preference lattice against resource-demand admission. A
/// policy that accepts is responsible for reserving its own demand.
using AdmissionPolicy = std::function<AdmissionDecision(
    const CharacteristicProvider&, const std::map<std::string, cdr::Any>&,
    ResourceManager&)>;

/// Outcome of reviewing one offered capability matrix + scalar params
/// against a provider's declared capabilities and the resource budget.
struct OfferReview {
  AdmissionDecision::Kind kind = AdmissionDecision::Kind::kReject;
  /// kAccept: the granted matrix (offer's chosen point, possibly degraded
  /// to the best feasible point when that equals the offer — see below).
  /// kCounter: the server's best feasible point in the client's lattice.
  CapabilityMatrix matrix;
  /// Validated scalar params (defaults filled).
  std::map<std::string, cdr::Any> scalars;
  /// scalars + matrix.chosen_params(): the agreement's flat param view.
  std::map<std::string, cdr::Any> flattened;
  /// Demand at the granted point; reserved in the ResourceManager iff
  /// `reserved` (kAccept only — counters hold nothing).
  ResourceDemand demand;
  bool reserved = false;
  std::string reason;
};

/// Shared offer-validation/admission helper behind both handle_negotiate
/// and handle_renegotiate: validates the scalar params and the matrix
/// against the provider's descriptor, then walks the offered preference
/// lattice from its chosen point down until the flattened demand fits the
/// resource budget. Fitting at the offered point accepts (demand stays
/// reserved); fitting lower down counters with that point (nothing
/// reserved); exhausting the lattice falls back to degrading integral
/// scalar params toward their minima (legacy counter) before rejecting.
/// A non-null `policy` short-circuits the walk entirely.
OfferReview review_offer(const CharacteristicProvider& provider,
                         ResourceManager& resources,
                         const AdmissionPolicy& policy,
                         CapabilityMatrix offer,
                         const std::map<std::string, cdr::Any>& proposed);

/// Server half. One instance per server ORB/transport.
class NegotiationService {
 public:
  static const std::string& command_target();  // "maqs.negotiator"

  NegotiationService(QosTransport& transport, const ProviderRegistry& providers,
                     ResourceManager& resources);
  ~NegotiationService();

  AgreementRepository& agreements() noexcept { return agreements_; }
  ResourceManager& resources() noexcept { return resources_; }

  void set_admission_policy(AdmissionPolicy policy) {
    policy_ = std::move(policy);
  }

  /// Marks the agreement violated and pushes a violation notification to
  /// the client's adaptation handler (QoS-to-QoS over the middleware).
  void notify_violation(std::uint64_t agreement_id, const std::string& reason);

  /// Resolves a resource overload (capacity dropped below reservations):
  /// newest agreements demanding the resource are violated first until
  /// reservations fit. Returns the violated agreement ids.
  std::vector<std::uint64_t> shed_overload(const std::string& resource);

 private:
  cdr::Any handle_command(const std::string& op,
                          const std::vector<cdr::Any>& args,
                          const net::Address& from);
  cdr::Any handle_negotiate(const std::vector<cdr::Any>& args,
                            const net::Address& from);
  cdr::Any handle_renegotiate(const std::vector<cdr::Any>& args);
  cdr::Any handle_terminate(const std::vector<cdr::Any>& args);

  /// Applies the server-side binding for an accepted agreement: QoS impl
  /// delegate into the servant, module load.
  void apply_server_binding(Agreement& agreement);

  cdr::Any result_any(bool accepted, std::uint64_t agreement_id,
                      const std::string& message,
                      const CapabilityMatrix& matrix,
                      const std::map<std::string, cdr::Any>& params);

  QosTransport& transport_;
  const ProviderRegistry& providers_;
  ResourceManager& resources_;
  AgreementRepository agreements_;
  AdmissionPolicy policy_;
  /// agreement id -> client adaptation endpoint (push channel) and the
  /// demand reserved for it.
  std::map<std::uint64_t, net::Address> client_endpoints_;
  std::map<std::uint64_t, ResourceDemand> reservations_;
};

/// Client preferences (outlook §6: "client preferences have to be
/// incorporated in the negotiation process"). Bounds per integral param
/// or dimension, plus per-dimension allowed value sets; a counter-offer
/// violating any of them is refused.
struct ClientPreferences {
  struct Bound {
    std::optional<std::int64_t> min;
    std::optional<std::int64_t> max;
  };
  std::map<std::string, Bound> bounds;
  /// Non-integral dimensions (e.g. compression.algorithm): the counter's
  /// value must be a member of the listed set when one is given.
  std::map<std::string, std::vector<cdr::Any>> allowed;

  bool acceptable(const std::map<std::string, cdr::Any>& params) const;
};

/// Client half: drives the protocol and applies the client-side binding
/// (mediator into the stub, module assignment, setup handshakes).
class Negotiator {
 public:
  Negotiator(QosTransport& transport, const ProviderRegistry& providers);

  /// Negotiates `characteristic` for the stub's object and installs the
  /// woven client side on success. Params naming a declared dimension
  /// restrict the offered lattice to start at that value; the rest travel
  /// as scalar params. A server counter is confirmed (phase "accept")
  /// iff it satisfies `prefs` (when given); the loop converges in at most
  /// dimensions+1 rounds. Throws NegotiationFailed otherwise.
  Agreement negotiate(orb::StubBase& stub, const std::string& characteristic,
                      const std::map<std::string, cdr::Any>& params,
                      const ClientPreferences* prefs = nullptr);

  /// Same protocol from an explicit pre-built offer matrix.
  Agreement negotiate_offer(orb::StubBase& stub,
                            const std::string& characteristic,
                            CapabilityMatrix offer,
                            std::map<std::string, cdr::Any> scalars,
                            const ClientPreferences* prefs = nullptr);

  /// Renegotiates an existing agreement to new parameters (dimension
  /// names re-pin the matrix point, the rest replace scalars), rebinding
  /// the installed mediator/modules on success. The request names the
  /// agreement version it renegotiates from; a stale version fails.
  Agreement renegotiate(orb::StubBase& stub, const Agreement& agreement,
                        const std::map<std::string, cdr::Any>& params);

  /// Terminates the agreement and removes the client-side weaving.
  void terminate(orb::StubBase& stub, const Agreement& agreement);

 private:
  /// Installs mediator/module for an accepted agreement.
  void apply_client_binding(orb::StubBase& stub, const Agreement& agreement);

  QosTransport& transport_;
  const ProviderRegistry& providers_;
};

}  // namespace maqs::core

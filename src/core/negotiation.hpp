// QoS negotiation.
//
// "There is no system wide view on the QoS capability of a system but
// each QoS agreement has to be negotiated independently" (§3). The
// protocol runs as commands over the plain GIOP/IIOP path — exactly the
// bootstrap story of Fig. 3, where a QoS-aware relationship without an
// assigned module falls back to the plain module: "This allows initial
// negotiation of a QoS agreement between client and service".
//
// Protocol (command target "maqs.negotiator" on the server transport):
//   negotiate(characteristic, object_key, params)
//       -> accepted? agreement_id, final/counter params, message
//   renegotiate(agreement_id, params)      -> same result shape
//   terminate(agreement_id)                -> void
//
// Admission on the server is pluggable; the default reserves the
// provider's declared resource demand against the ResourceManager and
// counter-offers by degrading integral params toward their minimum when
// the demand does not fit.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/contract.hpp"
#include "core/provider.hpp"
#include "core/qos_transport.hpp"
#include "orb/stub.hpp"

namespace maqs::core {

/// Raised on rejected or failed negotiations.
class NegotiationFailed : public QosError {
 public:
  using QosError::QosError;
};

/// Parameter <-> Any-sequence marshaling shared by both sides.
std::vector<cdr::Any> encode_params(
    const std::map<std::string, cdr::Any>& params);
std::map<std::string, cdr::Any> decode_params(
    const std::vector<cdr::Any>& anys, std::size_t offset);

/// Admission decision.
struct AdmissionDecision {
  enum class Kind { kAccept, kCounter, kReject } kind = Kind::kAccept;
  /// kCounter: the server's counter-proposal.
  std::map<std::string, cdr::Any> counter_params;
  std::string reason;
};

/// Pluggable admission policy: characteristic + validated params ->
/// decision. The default (nullptr) uses resource-demand admission.
using AdmissionPolicy = std::function<AdmissionDecision(
    const CharacteristicProvider&, const std::map<std::string, cdr::Any>&,
    ResourceManager&)>;

/// Server half. One instance per server ORB/transport.
class NegotiationService {
 public:
  static const std::string& command_target();  // "maqs.negotiator"

  NegotiationService(QosTransport& transport, const ProviderRegistry& providers,
                     ResourceManager& resources);
  ~NegotiationService();

  AgreementRepository& agreements() noexcept { return agreements_; }
  ResourceManager& resources() noexcept { return resources_; }

  void set_admission_policy(AdmissionPolicy policy) {
    policy_ = std::move(policy);
  }

  /// Marks the agreement violated and pushes a violation notification to
  /// the client's adaptation handler (QoS-to-QoS over the middleware).
  void notify_violation(std::uint64_t agreement_id, const std::string& reason);

  /// Resolves a resource overload (capacity dropped below reservations):
  /// newest agreements demanding the resource are violated first until
  /// reservations fit. Returns the violated agreement ids.
  std::vector<std::uint64_t> shed_overload(const std::string& resource);

 private:
  cdr::Any handle_command(const std::string& op,
                          const std::vector<cdr::Any>& args,
                          const net::Address& from);
  cdr::Any handle_negotiate(const std::vector<cdr::Any>& args,
                            const net::Address& from);
  cdr::Any handle_renegotiate(const std::vector<cdr::Any>& args);
  cdr::Any handle_terminate(const std::vector<cdr::Any>& args);

  AdmissionDecision admit(const CharacteristicProvider& provider,
                          const std::map<std::string, cdr::Any>& params);
  /// Applies the server-side binding for an accepted agreement: QoS impl
  /// delegate into the servant, module load.
  void apply_server_binding(Agreement& agreement);

  cdr::Any result_any(bool accepted, std::uint64_t agreement_id,
                      const std::string& message,
                      const std::map<std::string, cdr::Any>& params);

  QosTransport& transport_;
  const ProviderRegistry& providers_;
  ResourceManager& resources_;
  AgreementRepository agreements_;
  AdmissionPolicy policy_;
  /// agreement id -> client adaptation endpoint (push channel) and the
  /// demand reserved for it.
  std::map<std::uint64_t, net::Address> client_endpoints_;
  std::map<std::uint64_t, ResourceDemand> reservations_;
};

/// Client preferences (outlook §6: "client preferences have to be
/// incorporated in the negotiation process"). Bounds per integral param;
/// a counter-offer outside any bound is refused.
struct ClientPreferences {
  struct Bound {
    std::optional<std::int64_t> min;
    std::optional<std::int64_t> max;
  };
  std::map<std::string, Bound> bounds;

  bool acceptable(const std::map<std::string, cdr::Any>& params) const;
};

/// Client half: drives the protocol and applies the client-side binding
/// (mediator into the stub, module assignment, setup handshakes).
class Negotiator {
 public:
  Negotiator(QosTransport& transport, const ProviderRegistry& providers);

  /// Negotiates `characteristic` for the stub's object and installs the
  /// woven client side on success. A server counter-offer is accepted iff
  /// it satisfies `prefs` (when given), confirming it with a second
  /// round. Throws NegotiationFailed otherwise.
  Agreement negotiate(orb::StubBase& stub, const std::string& characteristic,
                      const std::map<std::string, cdr::Any>& params,
                      const ClientPreferences* prefs = nullptr);

  /// Renegotiates an existing agreement to new parameters, rebinding the
  /// installed mediator on success.
  Agreement renegotiate(orb::StubBase& stub, const Agreement& agreement,
                        const std::map<std::string, cdr::Any>& params);

  /// Terminates the agreement and removes the client-side weaving.
  void terminate(orb::StubBase& stub, const Agreement& agreement);

 private:
  /// Installs mediator/module for an accepted agreement.
  void apply_client_binding(orb::StubBase& stub, const Agreement& agreement);

  QosTransport& transport_;
  const ProviderRegistry& providers_;
};

}  // namespace maqs::core

#include "core/capability.hpp"

#include <algorithm>

#include "core/characteristic.hpp"

namespace maqs::core {

cdr::Any make_tuple_any(std::vector<cdr::Any> items) {
  std::vector<std::pair<std::string, cdr::TypeCodePtr>> members;
  members.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    members.emplace_back("f" + std::to_string(i), items[i].type());
  }
  return cdr::Any::from_struct(
      cdr::TypeCode::struct_tc("tuple", std::move(members)),
      std::move(items));
}

CapabilityMatrix::CapabilityMatrix(std::vector<DimensionDesc> dimensions)
    : dimensions_(std::move(dimensions)),
      chosen_(dimensions_.size(), 0) {
  for (const DimensionDesc& dim : dimensions_) {
    if (dim.ranked.empty()) {
      throw QosError("capability: dimension '" + dim.name +
                     "' has no values");
    }
  }
}

std::size_t CapabilityMatrix::find_dimension(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i].name == name) return i;
  }
  return npos;
}

const cdr::Any& CapabilityMatrix::value(std::size_t i) const {
  if (i >= dimensions_.size()) {
    throw QosError("capability: dimension index out of range");
  }
  return dimensions_[i].ranked[chosen_[i]];
}

const cdr::Any* CapabilityMatrix::find_value(const std::string& name) const {
  const std::size_t i = find_dimension(name);
  return i == npos ? nullptr : &dimensions_[i].ranked[chosen_[i]];
}

bool CapabilityMatrix::choose(const std::string& name,
                              const cdr::Any& value) {
  const std::size_t i = find_dimension(name);
  if (i == npos) return false;
  const std::vector<cdr::Any>& ranked = dimensions_[i].ranked;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (ranked[r] == value) {
      chosen_[i] = r;
      return true;
    }
  }
  return false;
}

bool CapabilityMatrix::restrict_to(const std::string& name,
                                   const cdr::Any& value) {
  const std::size_t i = find_dimension(name);
  if (i == npos) return false;
  std::vector<cdr::Any>& ranked = dimensions_[i].ranked;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (ranked[r] == value) {
      ranked.erase(ranked.begin(), ranked.begin() + static_cast<long>(r));
      chosen_[i] = 0;
      return true;
    }
  }
  return false;
}

bool CapabilityMatrix::at_floor() const noexcept {
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (chosen_[i] + 1 < dimensions_[i].ranked.size()) return false;
  }
  return true;
}

bool CapabilityMatrix::degrade_dimension(std::size_t i) {
  if (i >= dimensions_.size()) return false;
  if (chosen_[i] + 1 >= dimensions_[i].ranked.size()) return false;
  ++chosen_[i];
  return true;
}

std::optional<std::string> CapabilityMatrix::degrade_step() {
  std::size_t best = npos;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    if (chosen_[i] + 1 >= dimensions_[i].ranked.size()) continue;
    if (best == npos ||
        dimensions_[i].degrade_rank < dimensions_[best].degrade_rank) {
      best = i;
    }
  }
  if (best == npos) return std::nullopt;
  ++chosen_[best];
  return dimensions_[best].name;
}

std::map<std::string, cdr::Any> CapabilityMatrix::chosen_params() const {
  std::map<std::string, cdr::Any> out;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    out[dimensions_[i].name] = dimensions_[i].ranked[chosen_[i]];
  }
  return out;
}

std::size_t CapabilityMatrix::rank_distance() const noexcept {
  std::size_t sum = 0;
  for (std::size_t rank : chosen_) sum += rank;
  return sum;
}

bool CapabilityMatrix::same_point(const CapabilityMatrix& other) const {
  if (dimensions_.size() != other.dimensions_.size()) return false;
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    const cdr::Any* mine = find_value(dimensions_[i].name);
    const cdr::Any* theirs = other.find_value(dimensions_[i].name);
    if (mine == nullptr || theirs == nullptr || !(*mine == *theirs)) {
      return false;
    }
  }
  return true;
}

// Wire form: tuple [version:i64, ndims:i64, then per dimension:
// name:string, degrade_rank:i64, chosen:i64, nvalues:i64, values...].
cdr::Any CapabilityMatrix::to_any() const {
  std::vector<cdr::Any> items;
  items.push_back(cdr::Any::from_longlong(version_));
  items.push_back(
      cdr::Any::from_longlong(static_cast<std::int64_t>(dimensions_.size())));
  for (std::size_t i = 0; i < dimensions_.size(); ++i) {
    const DimensionDesc& dim = dimensions_[i];
    items.push_back(cdr::Any::from_string(dim.name));
    items.push_back(
        cdr::Any::from_longlong(static_cast<std::int64_t>(dim.degrade_rank)));
    items.push_back(
        cdr::Any::from_longlong(static_cast<std::int64_t>(chosen_[i])));
    items.push_back(
        cdr::Any::from_longlong(static_cast<std::int64_t>(dim.ranked.size())));
    for (const cdr::Any& value : dim.ranked) items.push_back(value);
  }
  return make_tuple_any(std::move(items));
}

CapabilityMatrix CapabilityMatrix::from_any(const cdr::Any& any) {
  const std::vector<cdr::Any>& items = any.as_elements();
  std::size_t at = 0;
  auto next = [&]() -> const cdr::Any& {
    if (at >= items.size()) {
      throw QosError("capability: truncated matrix encoding");
    }
    return items[at++];
  };
  CapabilityMatrix matrix;
  matrix.version_ = next().as_longlong();
  const std::int64_t ndims = next().as_longlong();
  if (ndims < 0 || ndims > 64) {
    throw QosError("capability: malformed matrix encoding");
  }
  for (std::int64_t d = 0; d < ndims; ++d) {
    DimensionDesc dim;
    dim.name = next().as_string();
    dim.degrade_rank = static_cast<int>(next().as_longlong());
    const std::int64_t chosen = next().as_longlong();
    const std::int64_t nvalues = next().as_longlong();
    if (nvalues <= 0 || nvalues > 1024 || chosen < 0 || chosen >= nvalues) {
      throw QosError("capability: malformed dimension '" + dim.name + "'");
    }
    dim.ranked.reserve(static_cast<std::size_t>(nvalues));
    for (std::int64_t v = 0; v < nvalues; ++v) dim.ranked.push_back(next());
    matrix.dimensions_.push_back(std::move(dim));
    matrix.chosen_.push_back(static_cast<std::size_t>(chosen));
  }
  return matrix;
}

}  // namespace maqs::core

// Client QoS preferences as a hierarchy of contract proposals.
//
// Outlook §6: "There is no system wide shared view on QoS levels
// especially when the price is embraced. Therefore, client preferences
// have to be incorporated in the negotiation process." (The companion
// paper [5] represents preferences "by hierarchies of contracts".)
//
// A PreferenceHierarchy is an ordered list of contract proposals — most
// preferred first — each with parameter values, hard bounds, and a
// utility score. negotiate_preferred() walks the hierarchy: it proposes
// each level in turn, accepts counter-offers only when they satisfy the
// level's bounds, and returns the first agreement reached together with
// its utility. This turns the server's take-it-or-counter admission into
// a genuine two-sided negotiation.
#pragma once

#include <optional>
#include <vector>

#include "core/negotiation.hpp"

namespace maqs::core {

/// One level of the hierarchy: a concrete proposal plus acceptance
/// bounds and the utility the client assigns to getting it.
struct ContractProposal {
  std::map<std::string, cdr::Any> params;
  ClientPreferences bounds;  // counter-offers outside these are refused
  double utility = 1.0;
  std::string label;  // for diagnostics ("gold", "silver", ...)
};

class PreferenceHierarchy {
 public:
  /// Adds a level; levels are tried in decreasing utility order.
  void add(ContractProposal proposal);

  const std::vector<ContractProposal>& levels() const noexcept {
    return levels_;
  }
  bool empty() const noexcept { return levels_.empty(); }

 private:
  std::vector<ContractProposal> levels_;
};

struct PreferredAgreement {
  Agreement agreement;
  double utility = 0;
  std::string label;
};

/// Walks the hierarchy against the server. Returns the first level the
/// server admits (possibly via an in-bounds counter-offer). Throws
/// NegotiationFailed when no level is acceptable to both sides.
PreferredAgreement negotiate_preferred(Negotiator& negotiator,
                                       orb::StubBase& stub,
                                       const std::string& characteristic,
                                       const PreferenceHierarchy& hierarchy);

}  // namespace maqs::core

#include "core/preference.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace maqs::core {

void PreferenceHierarchy::add(ContractProposal proposal) {
  levels_.push_back(std::move(proposal));
  std::stable_sort(levels_.begin(), levels_.end(),
                   [](const ContractProposal& a, const ContractProposal& b) {
                     return a.utility > b.utility;
                   });
}

PreferredAgreement negotiate_preferred(Negotiator& negotiator,
                                       orb::StubBase& stub,
                                       const std::string& characteristic,
                                       const PreferenceHierarchy& hierarchy) {
  if (hierarchy.empty()) {
    throw NegotiationFailed("preference hierarchy is empty");
  }
  std::string last_error;
  for (const ContractProposal& level : hierarchy.levels()) {
    try {
      Agreement agreement = negotiator.negotiate(
          stub, characteristic, level.params, &level.bounds);
      return PreferredAgreement{std::move(agreement), level.utility,
                                level.label};
    } catch (const NegotiationFailed& e) {
      last_error = e.what();
      MAQS_DEBUG() << "preference level '" << level.label
                   << "' not admitted: " << e.what();
    }
  }
  throw NegotiationFailed(
      "no level of the preference hierarchy was admitted (last: " +
      last_error + ")");
}

}  // namespace maqs::core

#include "core/trader.hpp"

#include "orb/stub.hpp"

namespace maqs::core {

std::uint64_t Trader::export_offer(Offer offer) {
  if (offer.ref.is_nil()) {
    throw QosError("trader: cannot export a nil reference");
  }
  if (offer.characteristics.empty()) {
    for (const orb::QosProfile& profile : offer.ref.qos) {
      offer.characteristics.push_back(profile.characteristic);
    }
  }
  const std::uint64_t id = next_id_++;
  offers_.emplace(id, std::move(offer));
  return id;
}

void Trader::withdraw(std::uint64_t offer_id) {
  offers_.erase(offer_id);
}

std::vector<Offer> Trader::query(const std::string& characteristic) const {
  std::vector<Offer> out;
  for (const auto& [_, offer] : offers_) {
    for (const std::string& name : offer.characteristics) {
      if (name == characteristic) {
        out.push_back(offer);
        break;
      }
    }
  }
  return out;
}

std::vector<Offer> Trader::query_interface(const std::string& repo_id) const {
  std::vector<Offer> out;
  for (const auto& [_, offer] : offers_) {
    if (offer.ref.repo_id == repo_id) out.push_back(offer);
  }
  return out;
}

std::vector<Offer> Trader::query_category(
    QosCategory category, const CharacteristicCatalog& catalog) const {
  std::vector<Offer> out;
  for (const auto& [_, offer] : offers_) {
    for (const std::string& name : offer.characteristics) {
      const CharacteristicDescriptor* descriptor = catalog.find(name);
      if (descriptor != nullptr && descriptor->category() == category) {
        out.push_back(offer);
        break;
      }
    }
  }
  return out;
}

// ---- servant ----

const std::string& TraderServant::object_key() {
  static const std::string kKey = "maqs/trader";
  return kKey;
}

const std::string& TraderServant::repo_id() const {
  static const std::string kId = "IDL:maqs/Trader:1.0";
  return kId;
}

void TraderServant::dispatch(const std::string& operation,
                             cdr::Decoder& args, cdr::Encoder& out,
                             orb::ServerContext& ctx) {
  (void)ctx;
  if (operation == "export_offer") {
    Offer offer;
    offer.ref = orb::ObjRef::from_string(args.read_string());
    const std::uint32_t n_chars = args.read_u32();
    for (std::uint32_t i = 0; i < n_chars; ++i) {
      offer.characteristics.push_back(args.read_string());
    }
    const std::uint32_t n_props = args.read_u32();
    for (std::uint32_t i = 0; i < n_props; ++i) {
      std::string key = args.read_string();
      offer.properties[key] = args.read_string();
    }
    args.expect_end();
    out.write_u64(trader_.export_offer(std::move(offer)));
  } else if (operation == "withdraw") {
    const std::uint64_t id = args.read_u64();
    args.expect_end();
    trader_.withdraw(id);
  } else if (operation == "query" || operation == "query_interface") {
    const std::string needle = args.read_string();
    args.expect_end();
    const std::vector<Offer> offers = operation == "query"
                                          ? trader_.query(needle)
                                          : trader_.query_interface(needle);
    out.write_u32(static_cast<std::uint32_t>(offers.size()));
    for (const Offer& offer : offers) {
      out.write_string(offer.ref.to_string());
    }
  } else {
    throw orb::BadOperation("Trader: unknown operation " + operation);
  }
}

// ---- client helper ----

orb::ObjRef TraderClient::trader_ref() const {
  orb::ObjRef ref;
  ref.repo_id = "IDL:maqs/Trader:1.0";
  ref.endpoint = endpoint_;
  ref.object_key = TraderServant::object_key();
  return ref;
}

std::uint64_t TraderClient::export_offer(const Offer& offer) {
  cdr::Encoder args;
  args.write_string(offer.ref.to_string());
  args.write_u32(static_cast<std::uint32_t>(offer.characteristics.size()));
  for (const std::string& name : offer.characteristics) {
    args.write_string(name);
  }
  args.write_u32(static_cast<std::uint32_t>(offer.properties.size()));
  for (const auto& [key, value] : offer.properties) {
    args.write_string(key);
    args.write_string(value);
  }
  orb::RequestMessage req;
  req.object_key = TraderServant::object_key();
  req.operation = "export_offer";
  req.body = args.take();
  orb::ReplyMessage rep = orb_.invoke_plain(endpoint_, std::move(req));
  orb::raise_for_status(rep);
  cdr::Decoder dec(rep.body);
  return dec.read_u64();
}

void TraderClient::withdraw(std::uint64_t offer_id) {
  cdr::Encoder args;
  args.write_u64(offer_id);
  orb::RequestMessage req;
  req.object_key = TraderServant::object_key();
  req.operation = "withdraw";
  req.body = args.take();
  orb::raise_for_status(orb_.invoke_plain(endpoint_, std::move(req)));
}

namespace {
std::vector<orb::ObjRef> decode_refs(const orb::ReplyMessage& rep) {
  cdr::Decoder dec(rep.body);
  const std::uint32_t n = dec.read_u32();
  std::vector<orb::ObjRef> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(orb::ObjRef::from_string(dec.read_string()));
  }
  dec.expect_end();
  return out;
}
}  // namespace

std::vector<orb::ObjRef> TraderClient::query(
    const std::string& characteristic) {
  cdr::Encoder args;
  args.write_string(characteristic);
  orb::RequestMessage req;
  req.object_key = TraderServant::object_key();
  req.operation = "query";
  req.body = args.take();
  orb::ReplyMessage rep = orb_.invoke_plain(endpoint_, std::move(req));
  orb::raise_for_status(rep);
  return decode_refs(rep);
}

std::vector<orb::ObjRef> TraderClient::query_interface(
    const std::string& repo_id) {
  cdr::Encoder args;
  args.write_string(repo_id);
  orb::RequestMessage req;
  req.object_key = TraderServant::object_key();
  req.operation = "query_interface";
  req.body = args.take();
  orb::ReplyMessage rep = orb_.invoke_plain(endpoint_, std::move(req));
  orb::raise_for_status(rep);
  return decode_refs(rep);
}

}  // namespace maqs::core

#include "core/mediator.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace maqs::core {

void CompositeMediator::add(std::shared_ptr<Mediator> mediator) {
  if (!mediator) throw QosError("composite mediator: null delegate");
  if (find(mediator->characteristic())) {
    throw QosError("composite mediator: duplicate characteristic '" +
                   mediator->characteristic() + "'");
  }
  chain_.push_back(std::move(mediator));
  rebuild_fused();
  distribute_channel_version();
}

void CompositeMediator::distribute_channel_version() {
  // A lone member (or none) keeps standalone semantics: its mechanism
  // material stays versioned by its own agreement, exactly as if it were
  // bound by hand outside any composite.
  if (chain_.size() < 2) {
    for (const auto& mediator : chain_) mediator->set_channel_version(-1);
    return;
  }
  std::int64_t sum = 0;
  for (const auto& mediator : chain_) sum += mediator->agreement().version();
  for (const auto& mediator : chain_) {
    // Hand-built members (version 0) never joined a negotiation; leave
    // their bindings alone so legacy frames stay byte-identical.
    if (mediator->agreement().version() <= 0) continue;
    if (mediator->channel_version() == sum) continue;
    mediator->set_channel_version(sum);
    // Re-register the member's versioned material (codec binding, key
    // epoch) under the channel version. Copy first: bind_agreement
    // overwrites the member's stored agreement.
    const Agreement bound = mediator->agreement();
    mediator->bind_agreement(bound);
  }
}

bool CompositeMediator::rebind(const std::string& characteristic,
                               const Agreement& agreement) {
  const std::shared_ptr<Mediator> member = find(characteristic);
  if (!member) return false;
  if (chain_.size() >= 2 && agreement.version() > 0) {
    // Bump the channel before binding so the member registers its new
    // material under the NEW epoch instead of overwriting the binding
    // in-flight frames of the current epoch still need.
    std::int64_t sum = agreement.version();
    for (const auto& mediator : chain_) {
      if (mediator != member) sum += mediator->agreement().version();
    }
    member->set_channel_version(sum);
  }
  member->bind_agreement(agreement);
  distribute_channel_version();
  return true;
}

void CompositeMediator::rebuild_fused() {
  fused_.clear();
  for (const auto& mediator : chain_) {
    if (mediator->streaming_transform() == nullptr) return;
  }
  for (const auto& mediator : chain_) {
    fused_.add(mediator->streaming_transform());
  }
}

bool CompositeMediator::remove(const std::string& characteristic) {
  const auto it = std::find_if(chain_.begin(), chain_.end(),
                               [&](const std::shared_ptr<Mediator>& m) {
                                 return m->characteristic() == characteristic;
                               });
  if (it == chain_.end()) return false;
  chain_.erase(it);
  rebuild_fused();
  distribute_channel_version();
  return true;
}

std::shared_ptr<Mediator> CompositeMediator::find(
    const std::string& characteristic) const {
  for (const auto& mediator : chain_) {
    if (mediator->characteristic() == characteristic) return mediator;
  }
  return nullptr;
}

std::optional<orb::ReplyMessage> CompositeMediator::try_local(
    const orb::RequestMessage& req, const orb::ObjRef& target) {
  for (const auto& mediator : chain_) {
    if (auto reply = mediator->try_local(req, target)) return reply;
  }
  return std::nullopt;
}

void CompositeMediator::outbound(orb::RequestMessage& req,
                                 orb::ObjRef& target) {
  // Fused path: every member exposed a streaming stage, so the whole
  // outbound stack runs over one arena with the same per-characteristic
  // spans the loop below would emit.
  if (!fused_.empty()) {
    fused_.run_forward(req.body, {req.request_id, false});
    return;
  }
  // One span per characteristic: the trace attributes transform cost to
  // the mediator that caused it (compress vs. encrypt), not to the chain.
  for (const auto& mediator : chain_) {
    trace::SpanScope span("mediator.outbound", mediator->characteristic());
    mediator->outbound(req, target);
  }
}

bool CompositeMediator::needs_request_payload() const {
  for (const auto& mediator : chain_) {
    if (mediator->needs_request_payload()) return true;
  }
  return false;
}

void CompositeMediator::inbound(const orb::RequestMessage& req,
                                orb::ReplyMessage& rep) {
  if (!fused_.empty()) {
    if (rep.status != orb::ReplyStatus::kOk) return;  // exceptions ship raw
    fused_.run_reverse(rep.body, {req.request_id, true});
    return;
  }
  // Reverse order: the last outbound transform is outermost on the wire
  // and must be undone first — e.g. outbound [compress, encrypt] yields
  // encrypt(compress(x)), so inbound runs decrypt, then decompress.
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    trace::SpanScope span("mediator.inbound", (*it)->characteristic());
    (*it)->inbound(req, rep);
  }
}

}  // namespace maqs::core

#include "core/stats.hpp"

namespace maqs::core {

namespace {

void line(std::string& out, const char* key, std::uint64_t value) {
  out += key;
  out += " = ";
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string StatsSnapshot::to_string() const {
  std::string out;
  out.reserve(1024);
  out += "[orb]\n";
  line(out, "requests_sent", orb.requests_sent);
  line(out, "requests_dispatched", orb.requests_dispatched);
  line(out, "commands_dispatched", orb.commands_dispatched);
  line(out, "plain_path", orb.plain_path);
  line(out, "qos_path", orb.qos_path);
  line(out, "replies_orphaned", orb.replies_orphaned);
  line(out, "timeouts", orb.timeouts);
  line(out, "bytes_marshaled_out", orb.bytes_marshaled_out);
  line(out, "bytes_marshaled_in", orb.bytes_marshaled_in);
  line(out, "requests_retried", orb.requests_retried);
  line(out, "breaker_fast_fails", orb.breaker_fast_fails);
  line(out, "breaker_opens", orb.breaker_opens);
  line(out, "breaker_half_opens", orb.breaker_half_opens);
  line(out, "breaker_closes", orb.breaker_closes);
  if (has_transport) {
    out += "[qos-transport]\n";
    line(out, "requests_via_module", transport.requests_via_module);
    line(out, "requests_fallback_plain", transport.requests_fallback_plain);
    line(out, "commands_to_transport", transport.commands_to_transport);
    line(out, "commands_to_module", transport.commands_to_module);
    line(out, "inbound_module_transforms",
         transport.inbound_module_transforms);
    line(out, "modules_loaded", transport.modules_loaded);
    line(out, "requests_module_missing", transport.requests_module_missing);
    line(out, "requests_degraded", transport.requests_degraded);
    line(out, "modules_quarantined", transport.modules_quarantined);
  }
  out += "[net]\n";
  line(out, "messages_sent", net.messages_sent);
  line(out, "messages_delivered", net.messages_delivered);
  line(out, "messages_dropped", net.messages_dropped);
  line(out, "retransmissions", net.retransmissions);
  line(out, "bytes_sent", net.bytes_sent);
  line(out, "bytes_delivered", net.bytes_delivered);
  if (has_trace) {
    out += "[trace]\n";
    line(out, "traces_started", trace.traces_started);
    line(out, "traces_sampled", trace.traces_sampled);
    line(out, "spans_recorded", trace.spans_recorded);
    line(out, "spans_evicted", trace.spans_evicted);
    line(out, "span_errors", trace.span_errors);
  }
  if (has_sched) {
    out += "[sched]\n";
    line(out, "dispatched_inline", sched.dispatched_inline);
    line(out, "parked", sched.parked);
    line(out, "dispatched_queued", sched.dispatched_queued);
    line(out, "shed_no_tokens", sched.shed_no_tokens);
    line(out, "shed_queue_full", sched.shed_queue_full);
    line(out, "shed_deadline", sched.shed_deadline);
    line(out, "shed_evicted", sched.shed_evicted);
    line(out, "overload_signals", sched.overload_signals);
    line(out, "commands_bypassed", sched.commands_bypassed);
    for (const sched::ClassStats& cls : sched.classes) {
      out += "class ";
      out += cls.name;
      out += " arrived=";
      out += std::to_string(cls.arrived);
      out += " dispatched=";
      out += std::to_string(cls.dispatched);
      out += " shed=";
      out += std::to_string(cls.shed);
      out += '\n';
    }
  }
  if (has_resources) {
    out += "[resources]\n";
    line(out, "resource_over_release", resource_over_release);
  }
  if (!interceptors.empty()) {
    out += "[interceptors]\n";
    for (const orb::InterceptorRecord& rec : interceptors) {
      out += rec.server ? "server " : "client ";
      out += std::to_string(rec.priority);
      out += ' ';
      out += rec.name;
      out += " hits=";
      out += std::to_string(rec.hits);
      out += " short_circuits=";
      out += std::to_string(rec.short_circuits);
      out += '\n';
    }
  }
  return out;
}

StatsSnapshot collect_stats(const orb::Orb& orb,
                            const QosTransport* transport,
                            const sched::RequestScheduler* scheduler,
                            const ResourceManager* resources) {
  StatsSnapshot snap;
  snap.orb = orb.stats();
  snap.net = orb.network().stats();
  snap.interceptors = orb.dump_interceptors();
  if (transport != nullptr) {
    snap.transport = transport->stats();
    snap.has_transport = true;
  }
  if (const maqs::trace::TraceRecorder* rec = orb.trace_recorder()) {
    snap.trace = rec->stats();
    snap.has_trace = true;
  }
  if (scheduler != nullptr) {
    snap.sched = scheduler->stats();
    snap.has_sched = true;
  }
  if (resources != nullptr) {
    snap.resource_over_release = resources->over_releases();
    snap.has_resources = true;
  }
  return snap;
}

void attach_recorder(Monitor& monitor, trace::TraceRecorder& recorder) {
  recorder.set_metrics_sink(
      [&monitor](const std::string& metric, sim::TimePoint at, double millis) {
        monitor.record(metric, at, millis);
      });
}

}  // namespace maqs::core

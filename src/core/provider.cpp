#include "core/provider.hpp"

namespace maqs::core {

void ProviderRegistry::add(CharacteristicProvider provider) {
  const std::string name = provider.descriptor.name();
  auto [_, inserted] = providers_.emplace(name, std::move(provider));
  if (!inserted) {
    throw QosError("provider registry: duplicate provider '" + name + "'");
  }
}

bool ProviderRegistry::contains(const std::string& characteristic) const {
  return providers_.contains(characteristic);
}

const CharacteristicProvider& ProviderRegistry::get(
    const std::string& characteristic) const {
  auto it = providers_.find(characteristic);
  if (it == providers_.end()) {
    throw QosError("provider registry: unknown characteristic '" +
                   characteristic + "'");
  }
  return it->second;
}

const CharacteristicProvider* ProviderRegistry::find(
    const std::string& characteristic) const {
  auto it = providers_.find(characteristic);
  return it != providers_.end() ? &it->second : nullptr;
}

CharacteristicCatalog ProviderRegistry::catalog() const {
  CharacteristicCatalog catalog;
  for (const auto& [_, provider] : providers_) {
    catalog.add(provider.descriptor);
  }
  return catalog;
}

}  // namespace maqs::core

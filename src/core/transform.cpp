#include "core/transform.hpp"

#include <algorithm>
#include <cstring>

#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"

namespace maqs::core {

// ---- TransformArena ----

TransformArena::~TransformArena() {
  for (util::Bytes& slab : slabs_) {
    util::BufferPool::instance().release(std::move(slab));
  }
}

std::span<std::uint8_t> TransformArena::allocate(std::size_t n) {
  while (active_ < slabs_.size()) {
    util::Bytes& slab = slabs_[active_];
    if (slab.size() - used_ >= n) {
      std::span<std::uint8_t> out(slab.data() + used_, n);
      used_ += n;
      return out;
    }
    ++active_;
    used_ = 0;
  }
  const std::size_t slab_size = std::max(kMinSlab, n);
  util::Bytes slab = util::BufferPool::instance().acquire(slab_size);
  slab.resize(slab_size);
  slabs_.push_back(std::move(slab));
  active_ = slabs_.size() - 1;
  used_ = n;
  return {slabs_.back().data(), n};
}

void TransformArena::reset() noexcept {
  active_ = 0;
  used_ = 0;
}

// ---- ChainBuf ----

void ChainBuf::borrow(util::Bytes& body) noexcept {
  storage_ = Storage::kBorrowed;
  bytes_ = &body;
  region_ = nullptr;
  offset_ = 0;
  size_ = body.size();
}

void ChainBuf::adopt(std::span<std::uint8_t> region, std::size_t offset,
                     std::size_t size) noexcept {
  storage_ = Storage::kArena;
  bytes_ = nullptr;
  region_ = region.data();
  offset_ = offset;
  size_ = size;
}

void ChainBuf::adopt_bytes(util::Bytes& owner) noexcept {
  storage_ = Storage::kStageBytes;
  bytes_ = &owner;
  region_ = nullptr;
  offset_ = 0;
  size_ = owner.size();
}

std::uint8_t* ChainBuf::prepend(std::size_t n) {
  if (offset_ < n) {
    throw QosError("transform chain: insufficient headroom for prepend");
  }
  offset_ -= n;
  size_ += n;
  return data() + offset_;
}

void ChainBuf::drop_front(std::size_t n) {
  if (size_ < n) {
    throw QosError("transform chain: drop_front past end of payload");
  }
  offset_ += n;
  size_ -= n;
}

void ChainBuf::materialize_into(util::Bytes& body) {
  if (storage_ == Storage::kBorrowed && bytes_ == &body) {
    // Still the caller's storage: trim front/tail in place.
    body.erase(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(offset_));
    body.resize(size_);
    return;
  }
  if (storage_ == Storage::kStageBytes) {
    // The payload owns a whole recyclable buffer: steal it and donate the
    // caller's old storage to the stage for the next run.
    util::Bytes& owner = *bytes_;
    owner.erase(owner.begin(),
                owner.begin() + static_cast<std::ptrdiff_t>(offset_));
    owner.resize(size_);
    body.swap(owner);
    return;
  }
  const std::uint8_t* src = data() + offset_;
  body.assign(src, src + size_);
}

// ---- TransformChain ----

void TransformChain::add(StreamingTransform* stage) {
  if (stage == nullptr) throw QosError("transform chain: null stage");
  stages_.push_back(stage);
  // Recompute suffix headroom: stage i's output must leave room for every
  // later stage's header to prepend without a move.
  headroom_after_.assign(stages_.size(), 0);
  for (std::size_t i = stages_.size() - 1; i-- > 0;) {
    headroom_after_[i] =
        headroom_after_[i + 1] + stages_[i + 1]->forward_overhead();
  }
}

void TransformChain::clear() noexcept {
  stages_.clear();
  headroom_after_.clear();
}

void TransformChain::run_forward(util::Bytes& body,
                                 const TransformContext& ctx) {
  if (stages_.empty()) return;
  arena_.reset();
  ChainBuf buf(arena_, 0);
  buf.borrow(body);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    buf.set_reserve_front(headroom_after_[i]);
    if (forward_span_ != nullptr) {
      trace::SpanScope span(forward_span_, stages_[i]->label());
      stages_[i]->forward(buf, ctx);
    } else {
      stages_[i]->forward(buf, ctx);
    }
  }
  buf.materialize_into(body);
}

void TransformChain::run_reverse(util::Bytes& body,
                                 const TransformContext& ctx) {
  if (stages_.empty()) return;
  arena_.reset();
  ChainBuf buf(arena_, 0);
  buf.borrow(body);
  for (std::size_t i = stages_.size(); i-- > 0;) {
    buf.set_reserve_front(0);
    if (reverse_span_ != nullptr) {
      trace::SpanScope span(reverse_span_, stages_[i]->label());
      stages_[i]->reverse(buf, ctx);
    } else {
      stages_[i]->reverse(buf, ctx);
    }
  }
  buf.materialize_into(body);
}

}  // namespace maqs::core

// QoS trading service.
//
// §2.2: "infrastructure services for e.g. trading, negotiation,
// monitoring and accounting should be an integral part of the
// framework." The trader matches clients to QoS-enabled offers: servers
// export object references together with the QoS characteristics their
// interfaces carry; clients query by characteristic or category and
// receive candidate references whose IOR QoS tags they can negotiate
// against.
//
// The trader itself is an ordinary CORBA object (a servant under a
// well-known key), so remote ORBs reach it through the regular
// invocation path — no special transport.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/characteristic.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"

namespace maqs::core {

/// One exported service offer.
struct Offer {
  orb::ObjRef ref;
  /// Characteristic names advertised (mirrors the IOR's QoS tag).
  std::vector<std::string> characteristics;
  /// Free-form properties ("region=eu", "price=3", ...).
  std::map<std::string, std::string> properties;
};

/// In-process trader state; wrapped by TraderServant for remote access.
class Trader {
 public:
  /// Registers an offer; returns its id. Characteristics default to the
  /// reference's QoS tag when the list is empty.
  std::uint64_t export_offer(Offer offer);
  /// Withdraws an offer; unknown ids are ignored.
  void withdraw(std::uint64_t offer_id);

  /// All offers advertising `characteristic` (exact name).
  std::vector<Offer> query(const std::string& characteristic) const;
  /// All offers whose repo id matches `repo_id` (any characteristics).
  std::vector<Offer> query_interface(const std::string& repo_id) const;
  /// All offers advertising a characteristic of `category`, resolved
  /// through the catalog.
  std::vector<Offer> query_category(QosCategory category,
                                    const CharacteristicCatalog& catalog) const;

  std::size_t size() const noexcept { return offers_.size(); }

 private:
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Offer> offers_;
};

/// Remote facade: operations export_offer(ior, chars, props) -> id,
/// withdraw(id), query(characteristic) -> sequence<ior-string>,
/// query_interface(repo_id) -> sequence<ior-string>.
class TraderServant final : public orb::Servant {
 public:
  explicit TraderServant(Trader& trader) : trader_(trader) {}

  static const std::string& object_key();  // "maqs/trader"

  const std::string& repo_id() const override;
  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  Trader& trader_;
};

/// Client-side helper for the remote trader.
class TraderClient {
 public:
  TraderClient(orb::Orb& orb, net::Address trader_endpoint)
      : orb_(orb), endpoint_(std::move(trader_endpoint)) {}

  std::uint64_t export_offer(const Offer& offer);
  void withdraw(std::uint64_t offer_id);
  std::vector<orb::ObjRef> query(const std::string& characteristic);
  std::vector<orb::ObjRef> query_interface(const std::string& repo_id);

 private:
  orb::ObjRef trader_ref() const;

  orb::Orb& orb_;
  net::Address endpoint_;
};

}  // namespace maqs::core

// One snapshot type for every counter the middleware keeps: ORB dispatch
// counters, QoS transport routing counters, network counters and the trace
// recorder's counters. The paper treats monitoring as its own concern
// (§2.1); this is the read-side of that concern — a single call that
// gathers the per-layer stats structs instead of callers chasing four
// accessors, and one formatter for examples and tools.
#pragma once

#include <string>
#include <vector>

#include "core/monitoring.hpp"
#include "core/qos_transport.hpp"
#include "core/resource.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"

namespace maqs::core {

/// Merged view of the observability counters around one ORB. The `has_*`
/// flags record which optional layers were present at collection time so
/// to_string() can omit absent sections instead of printing zeros.
struct StatsSnapshot {
  orb::OrbStats orb;
  TransportStats transport;
  net::NetStats net;
  trace::RecorderStats trace;
  sched::SchedStats sched;
  /// ResourceManager::over_releases() — clamped over-release bugs.
  std::uint64_t resource_over_release = 0;
  /// The ORB's interceptor chains in walk order (client then server),
  /// with per-stage hit/short-circuit counters.
  std::vector<orb::InterceptorRecord> interceptors;
  bool has_transport = false;
  bool has_trace = false;
  bool has_sched = false;
  bool has_resources = false;

  /// Human-readable multi-line dump ("orb.requests_sent = 12" style),
  /// stable ordering, suitable for example output and golden logs.
  std::string to_string() const;
};

/// Gathers the counters reachable from `orb`: its own stats, its
/// network's, its trace recorder's (when installed) and — when the
/// optional layers are passed — the QoS transport's routing stats, the
/// request scheduler's [sched] section and the ResourceManager's
/// over-release counter.
StatsSnapshot collect_stats(const orb::Orb& orb,
                            const QosTransport* transport = nullptr,
                            const sched::RequestScheduler* scheduler = nullptr,
                            const ResourceManager* resources = nullptr);

/// Feeds every recorded span's duration into `monitor` as a sample of
/// metric "span.<name>" (milliseconds, timestamped at span start). This is
/// the bridge from tracing to the paper's monitoring concern: thresholds
/// and violation handlers on span metrics work like on any other series.
/// Both objects must outlive the subscription (recorder holds a reference).
void attach_recorder(Monitor& monitor, trace::TraceRecorder& recorder);

}  // namespace maqs::core

// QoS monitoring service.
//
// The framework "provides infrastructure services such as for the
// negotiation of QoS agreements and for monitoring them" (§2.1). QoS
// mechanisms feed metric samples (latency, payload bytes, staleness, ...)
// into a Monitor; thresholds attached to a metric fire violation events,
// which the adaptation layer turns into renegotiations.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace maqs::core {

/// Bounded series of timestamped samples with summary statistics.
class MetricSeries {
 public:
  explicit MetricSeries(std::size_t capacity = 1024) : capacity_(capacity) {}

  void record(sim::TimePoint at, double value);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double last() const;
  double min() const;
  double max() const;
  double mean() const;
  /// p in [0,1]; nearest-rank on the retained window.
  double percentile(double p) const;

 private:
  std::size_t capacity_;
  std::deque<std::pair<sim::TimePoint, double>> samples_;
};

/// Threshold bounds on a metric; either side optional.
struct Threshold {
  std::optional<double> min;
  std::optional<double> max;
};

struct Violation {
  std::string metric;
  double value = 0;
  Threshold threshold;
  sim::TimePoint at = 0;
  /// Consecutive out-of-bounds samples including this one.
  int consecutive = 0;
};

class Monitor {
 public:
  using ViolationHandler = std::function<void(const Violation&)>;

  /// Creates the series on first use.
  MetricSeries& series(const std::string& metric);
  const MetricSeries* find_series(const std::string& metric) const;

  void set_threshold(const std::string& metric, Threshold threshold);
  void clear_threshold(const std::string& metric);

  /// A violation fires only after `n` consecutive out-of-bounds samples
  /// (debounce; default 1 = immediate).
  void set_debounce(int n) { debounce_ = n < 1 ? 1 : n; }

  /// Handlers run synchronously from record().
  void subscribe(ViolationHandler handler);

  /// Records a sample and evaluates thresholds.
  void record(const std::string& metric, sim::TimePoint at, double value);

  std::uint64_t violations_fired() const noexcept { return violations_; }

 private:
  std::map<std::string, MetricSeries> series_;
  std::map<std::string, Threshold> thresholds_;
  std::map<std::string, int> consecutive_;
  std::vector<ViolationHandler> handlers_;
  int debounce_ = 1;
  std::uint64_t violations_ = 0;
};

}  // namespace maqs::core

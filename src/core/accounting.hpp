// QoS accounting service.
//
// §2.2 names accounting among the framework's infrastructure services,
// and the outlook (§6) motivates it: "the rating of which QoS
// characteristic and its level is preferable to another is depending on
// the client — especially when the price is embraced." The accounting
// service meters per-agreement usage (requests, payload bytes, wall of
// virtual time under agreement) and prices it with a pluggable tariff,
// so negotiation-time preferences can weigh cost against level.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "core/contract.hpp"
#include "sim/event_loop.hpp"

namespace maqs::core {

struct UsageRecord {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  sim::TimePoint opened_at = 0;
  sim::TimePoint closed_at = -1;  // -1 = still open

  sim::Duration active_for(sim::TimePoint now) const {
    return (closed_at >= 0 ? closed_at : now) - opened_at;
  }
};

/// Tariff: price per (agreement, usage). Units are abstract "credits".
using Tariff = std::function<double(const Agreement&, const UsageRecord&,
                                    sim::TimePoint now)>;

/// A simple default: base price per negotiated integral level plus a
/// per-megabyte volume component.
Tariff linear_tariff(double per_level_per_second, double per_megabyte,
                     const std::string& level_param = "level");

class AccountingService {
 public:
  explicit AccountingService(sim::EventLoop& loop) : loop_(loop) {}

  /// Opens metering for an agreement (idempotent).
  void open(const Agreement& agreement);
  /// Records one request of `bytes` payload against the agreement.
  void charge(std::uint64_t agreement_id, std::uint64_t bytes);
  /// Stops metering (final invoice keeps accruing nothing further).
  void close(std::uint64_t agreement_id);

  const UsageRecord* usage(std::uint64_t agreement_id) const;

  /// Invoice under the given tariff; throws QosError for unknown ids.
  double invoice(std::uint64_t agreement_id, const Tariff& tariff) const;

  std::size_t open_accounts() const;

 private:
  sim::EventLoop& loop_;
  std::map<std::uint64_t, std::pair<Agreement, UsageRecord>> accounts_;
};

}  // namespace maqs::core

// QoS binding service.
//
// Paper §3.2: "QoS specifications in QIDL can be assigned to interfaces
// only. This is an implication from the underlying interface to object
// relation. Possible conflicts between different QoS characteristics if
// finer granularity is considered are hard to resolve and therefore
// forbidden, i.e. QoS assignment to operations or parameters."
//
// BindingService enforces exactly that rule and carries the declared
// compatibility matrix for multi-characteristic assignments on one
// interface.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/characteristic.hpp"

namespace maqs::core {

/// Requested binding granularity; only kInterface is legal.
enum class BindingGranularity { kInterface, kOperation, kParameter };

const char* binding_granularity_name(BindingGranularity g) noexcept;

class BindingService {
 public:
  explicit BindingService(const CharacteristicCatalog& catalog)
      : catalog_(catalog) {}

  /// Declares two characteristics as mutually exclusive on one interface
  /// (e.g. two mechanisms that both re-route requests).
  void declare_conflict(const std::string& a, const std::string& b);
  bool conflicts(const std::string& a, const std::string& b) const;

  /// Binds a characteristic to an interface (repository id).
  /// Throws QosError when:
  ///   - granularity is operation- or parameter-level (paper rule),
  ///   - the characteristic is unknown to the catalog,
  ///   - it is already bound to this interface,
  ///   - it conflicts with an existing binding on this interface.
  void bind(const std::string& interface_repo_id,
            const std::string& characteristic,
            BindingGranularity granularity = BindingGranularity::kInterface);

  void unbind(const std::string& interface_repo_id,
              const std::string& characteristic);

  std::vector<std::string> bindings(
      const std::string& interface_repo_id) const;
  bool is_bound(const std::string& interface_repo_id,
                const std::string& characteristic) const;

 private:
  const CharacteristicCatalog& catalog_;
  std::map<std::string, std::vector<std::string>> bindings_;
  std::set<std::pair<std::string, std::string>> conflicts_;
};

}  // namespace maqs::core

// Resource availability model.
//
// "The possible level of a QoS characteristic depends on the resource
// availability in the system" (§3, QoS adaptation). The ResourceManager
// tracks named resources (bandwidth, cpu, replicas, ...) on the server
// side; admission reserves against them, and capacity changes notify
// listeners so agreements can be re-negotiated when availability drops.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/characteristic.hpp"

namespace maqs::core {

/// Resource demand of one agreement: resource name -> amount.
using ResourceDemand = std::map<std::string, double>;

class ResourceManager {
 public:
  /// Listener: (resource, new capacity, currently reserved).
  using ChangeListener =
      std::function<void(const std::string&, double, double)>;

  /// Declares (or re-declares) a resource with the given capacity.
  void declare(const std::string& resource, double capacity);
  bool is_declared(const std::string& resource) const;

  double capacity(const std::string& resource) const;
  double reserved(const std::string& resource) const;
  double available(const std::string& resource) const;

  /// Atomically reserves a demand bundle; false (and no change) if any
  /// resource lacks headroom. Unknown resources are admission errors.
  bool try_reserve(const ResourceDemand& demand);
  /// Releases a previously reserved bundle. Releasing more than is
  /// reserved clamps at zero — but that is an accounting bug upstream, so
  /// every clamp is counted (over_releases) and emits a
  /// "resource.over_release" trace point instead of passing silently.
  void release(const ResourceDemand& demand);

  /// Times release() clamped a resource at zero (double-release or
  /// release-without-reserve bugs).
  std::uint64_t over_releases() const noexcept { return over_releases_; }

  /// Changes capacity; listeners fire (capacity may now be below the
  /// reserved total — the negotiation layer resolves the overload).
  void set_capacity(const std::string& resource, double capacity);

  void subscribe(ChangeListener listener);

  /// True if reservations exceed capacity anywhere.
  bool overloaded() const;
  std::vector<std::string> overloaded_resources() const;

 private:
  struct Entry {
    double capacity = 0;
    double reserved = 0;
  };
  const Entry& entry(const std::string& resource) const;

  std::map<std::string, Entry> resources_;
  std::vector<ChangeListener> listeners_;
  std::uint64_t over_releases_ = 0;
};

}  // namespace maqs::core

#include "core/percentile.hpp"

#include <sstream>

namespace maqs::core {

std::uint64_t PercentileSketch::bucket_upper_edge(std::size_t index) noexcept {
  if (index < kExactLimit) return index;  // exact buckets: width 1
  const std::size_t i = index - kExactLimit;
  const std::uint32_t octave = static_cast<std::uint32_t>(i / kSubBuckets);
  const std::uint64_t sub = i % kSubBuckets;
  const std::uint64_t lower = (kSubBuckets + sub) << (octave + 1);
  const std::uint64_t width = std::uint64_t{1} << (octave + 1);
  return lower + width - 1;
}

std::uint64_t PercentileSketch::value_at_permille(
    std::uint32_t permille) const noexcept {
  if (count_ == 0) return 0;
  if (permille == 0) return min_;
  if (permille >= 1000) return max_;
  // 1-based rank of the order statistic, rounded up — integer arithmetic
  // so the same (count, permille) always lands on the same rank.
  const std::uint64_t rank = (count_ * permille + 999) / 1000;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp into the observed range: the upper edge of the max's own
      // bucket can exceed the true maximum.
      const std::uint64_t edge = bucket_upper_edge(i);
      return edge > max_ ? max_ : edge;
    }
  }
  return max_;
}

void PercentileSketch::merge(const PercentileSketch& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

std::string PercentileSketch::to_string() const {
  std::ostringstream out;
  out << "count=" << count_ << " min=" << min() << " p50=" << p50()
      << " p99=" << p99() << " p999=" << p999() << " max=" << max_;
  return out.str();
}

}  // namespace maqs::core

// QoS adaptation.
//
// "Varying resource availability should be addressed through adaption,
// i.e. renegotiations if the resource availability in- or decreases"
// (§3). The AdaptationManager is the client half of that loop:
//
//   server: ResourceManager capacity change
//     -> NegotiationService::shed_overload -> violation push (command)
//   client: AdaptationManager "violation" handler
//     -> adaptation policy proposes degraded parameters
//     -> Negotiator::renegotiate (or terminate when no level remains)
//     -> mediator rebinds at the new level
//
// It can also react to purely client-side observations by watching a
// Monitor metric (e.g. observed latency) with the same policy flow.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/monitoring.hpp"
#include "core/negotiation.hpp"

namespace maqs::core {

class AdaptationManager {
 public:
  /// Command target under which the manager registers on the client
  /// transport ("maqs.adaptation").
  static const std::string& command_target();

  /// Policy: (current agreement, violation reason) -> new parameter
  /// proposal, or nullopt to terminate the agreement.
  using Policy = std::function<std::optional<std::map<std::string, cdr::Any>>(
      const Agreement&, const std::string& reason)>;

  AdaptationManager(QosTransport& transport, Negotiator& negotiator);
  ~AdaptationManager();

  /// Puts an agreement under adaptation management. The stub must outlive
  /// the registration.
  void manage(orb::StubBase& stub, const Agreement& agreement, Policy policy);
  void unmanage(std::uint64_t agreement_id);

  /// Current (possibly renegotiated) agreement; nullptr when unmanaged.
  const Agreement* managed_agreement(std::uint64_t agreement_id) const;

  /// Successful renegotiations performed.
  std::uint64_t adaptations() const noexcept { return adaptations_; }
  /// Agreements terminated because no acceptable level remained.
  std::uint64_t terminations() const noexcept { return terminations_; }

  /// Client-side trigger: a threshold violation on `metric` adapts the
  /// given managed agreement (reason "monitor:<metric>").
  void watch_metric(Monitor& monitor, const std::string& metric,
                    Threshold threshold, std::uint64_t agreement_id);

 private:
  cdr::Any handle_command(const std::string& op,
                          const std::vector<cdr::Any>& args);
  void adapt(std::uint64_t agreement_id, const std::string& reason);
  /// Degradation-handler callback: the transport quarantined `module` for
  /// `object_key`; adapt every managed agreement bound to that key
  /// (reason "mechanism:<module>: <cause>").
  void on_mechanism_failure(const std::string& module,
                            const std::string& object_key,
                            const std::string& reason);

  struct Entry {
    orb::StubBase* stub = nullptr;
    Agreement agreement;
    Policy policy;
    bool adapting = false;  // re-entrancy guard
  };

  QosTransport& transport_;
  Negotiator& negotiator_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t adaptations_ = 0;
  std::uint64_t terminations_ = 0;
};

/// Degrades along the agreement's preference lattice: one degrade_step()
/// per violation (the dimension with the lowest degrade_rank that is not
/// yet at its floor), terminating when the matrix reaches its floor.
/// Agreements without dimensions terminate on first violation.
AdaptationManager::Policy make_lattice_policy();

/// Resource-aware variant: when the violation reason names a resource
/// (shed_overload's "resource overload: <r>", sched_bridge's
/// "resource=<r>") and the provider declares a demand function, proposes
/// the *cheapest* single-dimension step that strictly relieves that
/// resource — the one giving up the least total demand. Falls back to the
/// plain lattice order when no step relieves the violated budget or the
/// reason names no resource. `providers` must outlive the policy.
AdaptationManager::Policy make_lattice_policy(
    const ProviderRegistry& providers);

/// Parses the violated resource out of a violation reason; empty when the
/// reason names none.
std::string violation_resource(const std::string& reason);

}  // namespace maqs::core

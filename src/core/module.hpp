// Transport-layer QoS modules (paper §4, Fig. 3).
//
// "The QoS transport is an entity which administrates all QoS transport
// modules. Each QoS module offers a common static interface and a
// specific dynamic interface. The common interface allows the dynamic
// loading of QoS modules on request. [...] the dynamic interface is
// handled through the dynamic invocation interface."
//
// QosModule is the common static interface: lifecycle (start/stop on
// load/unload), the request-path hooks, and command() — the dynamic
// interface, reached via DII-built command requests whose arguments are
// self-describing Anys.
//
// The request-path hooks come in two granularities:
//   - payload transforms (transform_request / restore_request /
//     transform_reply / restore_reply): symmetric body rewrites such as
//     compression and encryption; the default invoke() drives them and
//     ships the frame over the plain path, stamping "qos.module" into the
//     service context so the peer transport finds the right module;
//   - full invoke() override: modules that change routing itself
//     (replica-group multicast, load distribution at transport level).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "core/characteristic.hpp"
#include "orb/ior.hpp"
#include "orb/message.hpp"
#include "orb/orb.hpp"

namespace maqs::core {

class QosTransport;

/// Facilities handed to a module when it is loaded.
class ModuleContext {
 public:
  ModuleContext(orb::Orb& orb, QosTransport& transport)
      : orb_(orb), transport_(transport) {}

  orb::Orb& orb() noexcept { return orb_; }
  QosTransport& transport() noexcept { return transport_; }
  net::Network& network() noexcept { return orb_.network(); }

 private:
  orb::Orb& orb_;
  QosTransport& transport_;
};

/// Service-context key naming the module a frame was transformed by.
inline const std::string kModuleContextKey = "qos.module";

class QosModule {
 public:
  explicit QosModule(std::string name) : name_(std::move(name)) {}
  virtual ~QosModule() = default;

  const std::string& name() const noexcept { return name_; }

  // ---- static interface (lifecycle) ----
  virtual void start(ModuleContext& ctx) { ctx_ = &ctx; }
  virtual void stop() { ctx_ = nullptr; }

  // ---- request path ----

  /// Client side: deliver the request, produce the reply. The default
  /// applies transform_request, sends over the plain path and applies
  /// restore_reply on the way back.
  virtual orb::ReplyMessage invoke(orb::RequestMessage req,
                                   const orb::ObjRef& target);

  /// Client outbound payload rewrite.
  virtual void transform_request(orb::RequestMessage& req) { (void)req; }
  /// Server inbound inverse of transform_request.
  virtual void restore_request(orb::RequestMessage& req) { (void)req; }
  /// Server outbound reply rewrite.
  virtual void transform_reply(const orb::RequestMessage& req,
                               orb::ReplyMessage& rep) {
    (void)req;
    (void)rep;
  }
  /// Client inbound inverse of transform_reply.
  virtual void restore_reply(orb::ReplyMessage& rep) { (void)rep; }

  // ---- dynamic interface (DII commands) ----
  virtual cdr::Any command(const std::string& op,
                           const std::vector<cdr::Any>& args);

 protected:
  /// Valid between start() and stop().
  ModuleContext& context();

 private:
  std::string name_;
  ModuleContext* ctx_ = nullptr;
};

/// Factory registry simulating dynamic loading: loading a module "on
/// request" instantiates it from its registered factory (the analogue of
/// dlopen'ing a module library).
class ModuleFactoryRegistry {
 public:
  using Factory = std::function<std::unique_ptr<QosModule>()>;

  static ModuleFactoryRegistry& instance();

  /// Throws QosError on duplicates.
  void register_factory(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  /// Throws QosError for unknown names.
  std::unique_ptr<QosModule> create(const std::string& name) const;
  std::vector<std::string> names() const;
  /// Test hook.
  void unregister(const std::string& name);

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace maqs::core

#include "core/retry.hpp"

namespace maqs::core {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLocalTimeout: return "local-timeout";
    case FaultKind::kCircuitOpen: return "circuit-open";
    case FaultKind::kLocalFault: return "local-fault";
    case FaultKind::kRemoteException: return "remote-exception";
  }
  return "?";
}

FaultKind classify_fault(const orb::ReplyMessage& rep) noexcept {
  if (rep.status != orb::ReplyStatus::kSystemException) {
    return FaultKind::kNone;
  }
  if (!rep.synthesized_locally) return FaultKind::kRemoteException;
  if (rep.exception == "maqs/TIMEOUT") return FaultKind::kLocalTimeout;
  if (rep.exception == "maqs/CIRCUIT_OPEN") return FaultKind::kCircuitOpen;
  return FaultKind::kLocalFault;
}

bool RetryPolicy::should_retry(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::kLocalTimeout: return retry_local_timeouts;
    case FaultKind::kCircuitOpen: return retry_circuit_open;
    // An unclassified local fault has unknown delivery state; treat it
    // like a timeout.
    case FaultKind::kLocalFault: return retry_local_timeouts;
    case FaultKind::kRemoteException: return retry_remote;
    case FaultKind::kNone: return false;
  }
  return false;
}

RetryPolicy RetryPolicy::idempotent() { return RetryPolicy{}; }

RetryPolicy RetryPolicy::at_most_once() {
  RetryPolicy policy;
  policy.retry_local_timeouts = false;
  policy.retry_circuit_open = true;
  policy.retry_remote = false;
  return policy;
}

sim::Duration RetryGovernor::base_backoff(int attempt) const noexcept {
  // attempt 1 -> initial, attempt 2 -> initial * multiplier, ...
  double backoff = static_cast<double>(policy_.initial_backoff);
  for (int i = 1; i < attempt; ++i) {
    backoff *= policy_.multiplier;
    if (backoff >= static_cast<double>(policy_.max_backoff)) break;
  }
  const auto clamped = static_cast<sim::Duration>(backoff);
  return clamped < policy_.max_backoff ? clamped : policy_.max_backoff;
}

std::optional<sim::Duration> RetryGovernor::on_attempt_failed(
    const net::Address& dest, const orb::RequestMessage& req,
    const orb::ReplyMessage& rep, int attempt, sim::Duration elapsed) {
  (void)dest;
  (void)req;
  if (attempt >= policy_.max_attempts ||
      !policy_.should_retry(classify_fault(rep))) {
    ++retries_denied_;
    return std::nullopt;
  }
  sim::Duration backoff = base_backoff(attempt);
  if (policy_.jitter > 0.0) {
    // Deterministic jitter: scale by a factor in [1 - j, 1 + j]. The rng
    // advances once per granted-or-budget-denied retry, so the schedule
    // is reproducible for a fixed seed regardless of wall time.
    const double factor =
        1.0 - policy_.jitter + 2.0 * policy_.jitter * rng_.next_double();
    backoff = static_cast<sim::Duration>(
        static_cast<double>(backoff) * factor);
  }
  if (backoff > policy_.max_backoff) backoff = policy_.max_backoff;
  if (policy_.deadline_budget > 0 &&
      elapsed + backoff > policy_.deadline_budget) {
    // Never exceed the budget: sleeping past the deadline to make an
    // attempt that cannot finish in time helps nobody.
    ++retries_denied_;
    return std::nullopt;
  }
  ++retries_granted_;
  return backoff;
}

}  // namespace maqs::core

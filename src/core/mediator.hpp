// Client-side aspect weaving: mediators.
//
// Paper §3.3: "On the client side the stub is extended by a so called
// mediator. The QoS implementor implements the generated mediator
// skeleton. At runtime the mediator of the desired QoS is set in the stub
// as a delegate."
//
// Mediator is that generated skeleton's base: it plugs into StubBase's
// delegate slot (consumed by the pipeline's mediator interceptor), carries
// the agreement it operates under, and exposes
// the characteristic's QoS operations to client code (mechanism ops run
// locally on the mediator; peer ops talk to the server-side QoS impl over
// the middleware).
//
// CompositeMediator supports several simultaneously negotiated
// characteristics on one stub (e.g. Compression + Encryption): it chains
// the delegates in a defined order — outbound in installation order,
// inbound reversed — so payload transforms nest correctly.
#pragma once

#include <memory>
#include <vector>

#include "core/contract.hpp"
#include "core/transform.hpp"
#include "orb/stub.hpp"

namespace maqs::core {

class Mediator : public orb::ClientDelegate {
 public:
  explicit Mediator(std::string characteristic)
      : characteristic_(std::move(characteristic)) {}

  const std::string& characteristic() const noexcept {
    return characteristic_;
  }

  /// Binds/rebinds the agreement this mediator operates under; called at
  /// negotiation time and again after every successful renegotiation
  /// (adaptation swaps parameters without replacing the delegate).
  virtual void bind_agreement(const Agreement& agreement) {
    agreement_ = agreement;
  }

  const Agreement& agreement() const noexcept { return agreement_; }

  /// Woven channel version: when several agreements share one wire channel
  /// (a composite stub), frames are versioned by the SUM of all member
  /// agreement versions — strictly monotone across any single member's
  /// renegotiation — rather than by any one agreement's version. The
  /// composite distributes it at weave and rebind time; -1 (the default)
  /// means standalone, where bind_agreement versions its mechanism
  /// material (codec bindings, key epochs) by the agreement's own version.
  void set_channel_version(std::int64_t version) noexcept {
    channel_version_ = version;
  }
  std::int64_t channel_version() const noexcept { return channel_version_; }

  /// Client-side entry for the characteristic's QoS operations (the
  /// mediator half of the QIDL mapping). Mechanism ops usually execute
  /// locally; peer ops are forwarded to the server's QoS implementation.
  /// Default: reject (characteristic declares no client-side ops).
  virtual cdr::Any qos_operation(const std::string& op,
                                 const std::vector<cdr::Any>& args) {
    (void)args;
    throw QosError("mediator " + characteristic_ +
                   ": unsupported QoS operation '" + op + "'");
  }

  /// Streaming form of this mediator's payload transform, when it has one.
  /// A composite whose members all expose a stage fuses them into a single
  /// TransformChain (one arena, zero intermediate copies); any mediator
  /// returning nullptr keeps the whole composite on the legacy
  /// outbound()/inbound() hooks.
  virtual StreamingTransform* streaming_transform() { return nullptr; }

 protected:
  /// Version to register versioned mechanism material under for
  /// `agreement`: the channel version when woven, else the agreement's own.
  std::int64_t effective_version(const Agreement& agreement) const noexcept {
    return channel_version_ >= 0 ? channel_version_ : agreement.version();
  }

 private:
  std::string characteristic_;
  Agreement agreement_;
  std::int64_t channel_version_ = -1;
};

class CompositeMediator : public orb::ClientDelegate {
 public:
  /// Appends a mediator at the end of the outbound chain.
  void add(std::shared_ptr<Mediator> mediator);
  /// Removes by characteristic name; returns false when absent.
  bool remove(const std::string& characteristic);
  /// Rebinds one member at a renegotiated agreement and redistributes the
  /// channel version: every member re-registers its versioned material at
  /// the new frame epoch while retaining the previous one, so in-flight
  /// frames across the switch still decode. Returns false when no member
  /// carries the characteristic.
  bool rebind(const std::string& characteristic, const Agreement& agreement);
  std::shared_ptr<Mediator> find(const std::string& characteristic) const;
  std::size_t size() const noexcept { return chain_.size(); }

  std::optional<orb::ReplyMessage> try_local(
      const orb::RequestMessage& req, const orb::ObjRef& target) override;
  void outbound(orb::RequestMessage& req, orb::ObjRef& target) override;
  void inbound(const orb::RequestMessage& req,
               orb::ReplyMessage& rep) override;
  /// True iff any delegate in the chain needs it: the retained request is
  /// shared across the whole chain, so one payload-hungry mediator pins it.
  bool needs_request_payload() const override;

 private:
  /// Rebuilds the fused streaming chain after add/remove. All-or-nothing:
  /// the fused path engages only when every member mediator exposes a
  /// streaming stage.
  void rebuild_fused();
  /// Pushes the channel version (sum of member agreement versions) to the
  /// members sharing this stub's wire channel; see
  /// Mediator::set_channel_version.
  void distribute_channel_version();

  std::vector<std::shared_ptr<Mediator>> chain_;
  TransformChain fused_{"mediator.outbound", "mediator.inbound"};
};

}  // namespace maqs::core

// QoS characteristic descriptors (the QIDL metamodel at runtime).
//
// A QIDL `qos characteristic` declaration compiles into one of these
// descriptors: the QoS parameters that can be negotiated, plus the three
// operation groups the paper identifies (§3.2):
//   - mechanism ops: setup/control/monitoring of the QoS mechanism,
//   - peer ops ("QoS to QoS"): mechanism-to-mechanism communication
//     through the middleware (multicast addresses, key changes, ...),
//   - aspect ops: the controlled cross-cut into the application object
//     (e.g. state access for replica groups).
//
// Descriptors live in the CharacteristicCatalog, the runtime analogue of
// the paper's proposed "catalog similar to design patterns".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "core/capability.hpp"
#include "util/error.hpp"

namespace maqs::core {

/// QoS management error (bad descriptors, unknown characteristics, ...).
class QosError : public Error {
 public:
  using Error::Error;
};

/// One negotiable QoS parameter.
struct ParamDesc {
  std::string name;
  cdr::TypeCodePtr type;
  cdr::Any default_value;
  /// Inclusive numeric bounds (integral params only; ignored otherwise).
  std::optional<std::int64_t> min;
  std::optional<std::int64_t> max;
};

enum class QosOpKind { kMechanism, kPeer, kAspect };

/// One QoS operation declared by the characteristic.
struct QosOpDesc {
  std::string name;
  QosOpKind kind = QosOpKind::kMechanism;
};

/// QoS categories from the paper's examples.
enum class QosCategory {
  kFaultTolerance,
  kPerformance,
  kBandwidth,
  kActuality,
  kPrivacy,
  kOther,
};

const char* qos_category_name(QosCategory category) noexcept;

class CharacteristicDescriptor {
 public:
  CharacteristicDescriptor() = default;
  CharacteristicDescriptor(std::string name, QosCategory category,
                           std::vector<ParamDesc> params,
                           std::vector<QosOpDesc> operations);
  /// With negotiable dimensions (the capability matrix shape).
  CharacteristicDescriptor(std::string name, QosCategory category,
                           std::vector<ParamDesc> params,
                           std::vector<DimensionDesc> dimensions,
                           std::vector<QosOpDesc> operations);

  const std::string& name() const noexcept { return name_; }
  QosCategory category() const noexcept { return category_; }
  const std::vector<ParamDesc>& params() const noexcept { return params_; }
  const std::vector<DimensionDesc>& dimensions() const noexcept {
    return dimensions_;
  }
  const std::vector<QosOpDesc>& operations() const noexcept {
    return operations_;
  }

  const ParamDesc* find_param(const std::string& name) const;
  const DimensionDesc* find_dimension(const std::string& name) const;
  const QosOpDesc* find_operation(const std::string& name) const;
  bool owns_operation(const std::string& name) const {
    return find_operation(name) != nullptr;
  }

  /// Default parameter assignment.
  std::map<std::string, cdr::Any> default_params() const;

  /// Validates a proposed parameter assignment: every name must be
  /// declared, types must match, integral values must respect bounds.
  /// Throws QosError on violation. Missing params are filled from
  /// defaults in the returned map.
  std::map<std::string, cdr::Any> validate_params(
      const std::map<std::string, cdr::Any>& proposed) const;

  /// The full preference lattice with every dimension at its most
  /// preferred value (version 0).
  CapabilityMatrix default_matrix() const;

  /// Validates an offered matrix against the declared dimensions: every
  /// offered dimension must be declared, every offered value must be one
  /// of the declared values, and every declared dimension must be
  /// present. Throws QosError on violation.
  void validate_matrix(const CapabilityMatrix& offer) const;

 private:
  std::string name_;
  QosCategory category_ = QosCategory::kOther;
  std::vector<ParamDesc> params_;
  std::vector<DimensionDesc> dimensions_;
  std::vector<QosOpDesc> operations_;
};

/// Registry of known characteristics (both sides of the wire register the
/// providers they support; negotiation consults it).
class CharacteristicCatalog {
 public:
  /// Throws QosError on duplicate names.
  void add(CharacteristicDescriptor descriptor);
  bool contains(const std::string& name) const;
  /// Throws QosError when absent.
  const CharacteristicDescriptor& get(const std::string& name) const;
  const CharacteristicDescriptor* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, CharacteristicDescriptor> entries_;
};

}  // namespace maqs::core

#include "core/binding.hpp"

#include <algorithm>

namespace maqs::core {

const char* binding_granularity_name(BindingGranularity g) noexcept {
  switch (g) {
    case BindingGranularity::kInterface: return "interface";
    case BindingGranularity::kOperation: return "operation";
    case BindingGranularity::kParameter: return "parameter";
  }
  return "?";
}

void BindingService::declare_conflict(const std::string& a,
                                      const std::string& b) {
  conflicts_.insert({std::min(a, b), std::max(a, b)});
}

bool BindingService::conflicts(const std::string& a,
                               const std::string& b) const {
  return conflicts_.contains({std::min(a, b), std::max(a, b)});
}

void BindingService::bind(const std::string& interface_repo_id,
                          const std::string& characteristic,
                          BindingGranularity granularity) {
  if (granularity != BindingGranularity::kInterface) {
    throw QosError(
        std::string("binding: QoS may be assigned to interfaces only; ") +
        binding_granularity_name(granularity) +
        "-level assignment is forbidden");
  }
  if (!catalog_.contains(characteristic)) {
    throw QosError("binding: unknown characteristic '" + characteristic +
                   "'");
  }
  auto& bound = bindings_[interface_repo_id];
  for (const std::string& existing : bound) {
    if (existing == characteristic) {
      throw QosError("binding: '" + characteristic +
                     "' already bound to " + interface_repo_id);
    }
    if (conflicts(existing, characteristic)) {
      throw QosError("binding: '" + characteristic + "' conflicts with '" +
                     existing + "' on " + interface_repo_id);
    }
  }
  bound.push_back(characteristic);
}

void BindingService::unbind(const std::string& interface_repo_id,
                            const std::string& characteristic) {
  auto it = bindings_.find(interface_repo_id);
  if (it == bindings_.end()) return;
  std::erase(it->second, characteristic);
}

std::vector<std::string> BindingService::bindings(
    const std::string& interface_repo_id) const {
  auto it = bindings_.find(interface_repo_id);
  return it != bindings_.end() ? it->second : std::vector<std::string>{};
}

bool BindingService::is_bound(const std::string& interface_repo_id,
                              const std::string& characteristic) const {
  const auto bound = bindings(interface_repo_id);
  return std::find(bound.begin(), bound.end(), characteristic) != bound.end();
}

}  // namespace maqs::core

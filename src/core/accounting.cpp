#include "core/accounting.hpp"

namespace maqs::core {

Tariff linear_tariff(double per_level_per_second, double per_megabyte,
                     const std::string& level_param) {
  return [per_level_per_second, per_megabyte, level_param](
             const Agreement& agreement, const UsageRecord& usage,
             sim::TimePoint now) {
    double level = 1.0;
    if (auto it = agreement.params.find(level_param);
        it != agreement.params.end()) {
      level = static_cast<double>(it->second.as_integer());
    }
    const double seconds = sim::to_seconds(usage.active_for(now));
    const double megabytes =
        static_cast<double>(usage.bytes) / (1024.0 * 1024.0);
    return per_level_per_second * level * seconds +
           per_megabyte * megabytes;
  };
}

void AccountingService::open(const Agreement& agreement) {
  if (agreement.id == 0) {
    throw QosError("accounting: cannot meter agreement id 0");
  }
  auto it = accounts_.find(agreement.id);
  if (it != accounts_.end()) {
    // Re-open after renegotiation: keep usage, refresh the level.
    it->second.first = agreement;
    it->second.second.closed_at = -1;
    return;
  }
  UsageRecord record;
  record.opened_at = loop_.now();
  accounts_.emplace(agreement.id, std::make_pair(agreement, record));
}

void AccountingService::charge(std::uint64_t agreement_id,
                               std::uint64_t bytes) {
  auto it = accounts_.find(agreement_id);
  if (it == accounts_.end()) {
    throw QosError("accounting: unknown agreement " +
                   std::to_string(agreement_id));
  }
  if (it->second.second.closed_at >= 0) {
    throw QosError("accounting: agreement " + std::to_string(agreement_id) +
                   " is closed");
  }
  ++it->second.second.requests;
  it->second.second.bytes += bytes;
}

void AccountingService::close(std::uint64_t agreement_id) {
  auto it = accounts_.find(agreement_id);
  if (it == accounts_.end()) return;
  if (it->second.second.closed_at < 0) {
    it->second.second.closed_at = loop_.now();
  }
}

const UsageRecord* AccountingService::usage(
    std::uint64_t agreement_id) const {
  auto it = accounts_.find(agreement_id);
  return it != accounts_.end() ? &it->second.second : nullptr;
}

double AccountingService::invoice(std::uint64_t agreement_id,
                                  const Tariff& tariff) const {
  auto it = accounts_.find(agreement_id);
  if (it == accounts_.end()) {
    throw QosError("accounting: unknown agreement " +
                   std::to_string(agreement_id));
  }
  return tariff(it->second.first, it->second.second, loop_.now());
}

std::size_t AccountingService::open_accounts() const {
  std::size_t n = 0;
  for (const auto& [_, account] : accounts_) {
    if (account.second.closed_at < 0) ++n;
  }
  return n;
}

}  // namespace maqs::core

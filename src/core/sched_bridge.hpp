// Policy glue between the scheduling mechanism (src/sched) and the QoS
// management layer (negotiation, adaptation, resources).
//
// The scheduler is deliberately policy-free: it differentiates classes,
// admits, queues and sheds, but it does not know what an agreement is or
// what "renegotiate downward" means. This bridge supplies that policy —
// the separation-of-concerns cut the paper (and RAFDA's policy/mechanism
// argument) calls for:
//
//   - attach_overload_renegotiation(): the scheduler's renegotiate-once
//     overload signal becomes a NegotiationService violation push on every
//     active agreement of the shed object, which reaches the client's
//     AdaptationManager and renegotiates the class downward — before
//     further requests of the class are rejected with maqs/OVERLOAD.
//   - attach_class_budgets(): classes whose config names a ResourceManager
//     resource get their token rate from that resource's capacity, and
//     follow capacity changes ("the possible level of a QoS characteristic
//     depends on the resource availability in the system", §3).
//   - bind_agreement_class(): derives the classifier binding from a
//     negotiated agreement (object-key granularity, like the binding
//     service itself).
//   - make_load_probe(): exposes the scheduler's queue depth as the load
//     figure a replica advertises through its directory heartbeats, so
//     client-side least-loaded selection steers work away from busy
//     replicas (naming::HeartbeatAgent::Config::load_probe).
#pragma once

#include <functional>
#include <string_view>

#include "core/negotiation.hpp"
#include "core/resource.hpp"
#include "sched/scheduler.hpp"

namespace maqs::core {

/// Wires the scheduler's overload signal to `negotiation`: each signal
/// marks every active agreement on the shed object violated, pushing the
/// violation to the client's adaptation endpoint (reason
/// "overload:class=<c>: <cause>"). Both objects must outlive the wiring.
void attach_overload_renegotiation(sched::RequestScheduler& scheduler,
                                   NegotiationService& negotiation);

/// Initializes the token rate of every class whose config names a
/// declared resource from that resource's current capacity, and
/// subscribes to capacity changes so the budgets track availability.
/// `scheduler` must outlive `resources`' listener list.
void attach_class_budgets(sched::RequestScheduler& scheduler,
                          ResourceManager& resources);

/// Binds the agreement's object key to `class_name` in the scheduler's
/// classifier: requests for a negotiated binding are scheduled in the
/// class its agreement bought. False when the class is unknown.
bool bind_agreement_class(sched::RequestScheduler& scheduler,
                          const Agreement& agreement,
                          std::string_view class_name);

/// Load probe for directory heartbeats: samples the scheduler's total
/// queue depth. The scheduler must outlive the returned function.
std::function<double()> make_load_probe(
    const sched::RequestScheduler& scheduler);

/// Class-scoped variant: only the named class's backlog counts (a gold
/// replica advertising bronze backlog would repel gold traffic for no
/// reason).
std::function<double()> make_load_probe(
    const sched::RequestScheduler& scheduler, std::string class_name);

}  // namespace maqs::core

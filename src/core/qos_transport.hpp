// The QoS transport: Fig. 3's dispatch inside the ORB.
//
//                  +-- no QoS?  ------------------> GIOP/IIOP (plain path)
//   invocation --->|
//                  +-- QoS-aware request ---+-- module assigned --> module
//                  |                        +-- none ------------> plain
//                  +-- command --+-- target_module == "" --> transport cmd
//                                +-- named module ---------> module cmd
//
// The transport also owns module administration ("administrates all QoS
// transport modules"): loading on request through the factory registry,
// per-relationship module assignment, and the command channel that makes
// up the reflection mechanism the paper describes ("a simple reflection
// mechanism allows the extension of the ORB at runtime").
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/module.hpp"
#include "orb/orb.hpp"

namespace maqs::core {

/// Dispatch counters backing bench_f3_dispatch.
struct TransportStats {
  std::uint64_t requests_via_module = 0;
  std::uint64_t requests_fallback_plain = 0;
  std::uint64_t commands_to_transport = 0;
  std::uint64_t commands_to_module = 0;
  std::uint64_t inbound_module_transforms = 0;
  std::uint64_t modules_loaded = 0;
  /// Requests whose *assigned* module was missing from the module table —
  /// a broken binding, counted apart from the deliberate no-assignment
  /// fallback above so the condition cannot hide in fallback noise.
  std::uint64_t requests_module_missing = 0;
  /// Requests routed plain because their module is quarantined (graceful
  /// degradation), plus per-request fallbacks after a module failure.
  std::uint64_t requests_degraded = 0;
  /// Quarantine transitions (a module can re-enter after release).
  std::uint64_t modules_quarantined = 0;
};

/// Graceful-degradation knobs: after `failure_threshold` consecutive
/// module failures for one assignment, the module is quarantined for
/// `quarantine_period` of virtual time and traffic takes the plain path.
struct DegradationConfig {
  int failure_threshold = 3;
  sim::Duration quarantine_period = 500 * sim::kMillisecond;
};

class QosTransport final : public orb::RequestRouter {
 public:
  /// Installs itself as the ORB's router and registers the transport's
  /// static pseudo-object ("maqs/qos-transport") in the object adapter so
  /// it is reachable "like any other object".
  explicit QosTransport(orb::Orb& orb);
  ~QosTransport() override;
  QosTransport(const QosTransport&) = delete;
  QosTransport& operator=(const QosTransport&) = delete;

  orb::Orb& orb() noexcept { return orb_; }
  const TransportStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = TransportStats{}; }

  /// Reserved object key of the transport pseudo-object.
  static const std::string& pseudo_object_key();

  // ---- module administration ----

  /// Loads (instantiates + starts) a module; idempotent. Throws QosError
  /// when no factory is registered under `name`.
  QosModule& load_module(const std::string& name);
  /// Stops and discards the module; assignments to it are removed.
  void unload_module(const std::string& name);
  /// Fault injection: drops the module instance *without* administrative
  /// cleanup — assignments keep pointing at it, modeling a mechanism that
  /// crashed out from under its bindings. Requests for those assignments
  /// take the requests_module_missing path (warned, routed plain) until
  /// the module reloads or the binding is renegotiated.
  void crash_module(const std::string& name);
  /// string_view key: the per-request inbound/outbound lookups probe the
  /// module table straight from context-tag bytes, no temporary string.
  QosModule* find_module(std::string_view name);
  bool is_loaded(const std::string& name) const;
  std::vector<std::string> loaded_modules() const;

  // ---- module assignment (client/server relationship -> module) ----

  /// Routes future requests for `object_key` (on any server) through the
  /// module, loading it on demand.
  void assign(const std::string& object_key, const std::string& module);
  void unassign(const std::string& object_key);
  std::optional<std::string> assignment(const std::string& object_key) const;

  // ---- orb::RequestRouter (Fig. 3) ----
  orb::ReplyMessage route(const orb::ObjRef& target,
                          orb::RequestMessage req) override;
  std::optional<orb::ReplyMessage> inbound(
      orb::RequestMessage& req, const net::Address& from) override;
  void outbound(const orb::RequestMessage& req,
                orb::ReplyMessage& rep) override;

  /// The transport's own dynamic interface (commands with empty
  /// target_module): load_module, unload_module, list_modules, assign,
  /// unassign, ping.
  cdr::Any transport_command(const std::string& op,
                             const std::vector<cdr::Any>& args);

  /// Hook for negotiation/commands addressed to "maqs.negotiator": the
  /// negotiation service registers itself here (keeps core decoupled).
  using CommandHandler = std::function<cdr::Any(
      const std::string& op, const std::vector<cdr::Any>& args,
      const net::Address& from)>;
  void set_command_handler(const std::string& target, CommandHandler handler);

  // ---- graceful degradation (quarantine + renegotiation hook) ----

  /// Enables module-failure tracking on route(); nullopt (the default)
  /// disables it and clears all health state.
  void set_degradation(std::optional<DegradationConfig> config);
  const std::optional<DegradationConfig>& degradation() const noexcept {
    return degradation_;
  }

  /// Invoked (once per quarantine transition, from a fresh event-loop
  /// tick) when an assignment's module is quarantined. The adaptation
  /// engine registers itself here to renegotiate the agreement down.
  using DegradationHandler = std::function<void(
      const std::string& module, const std::string& object_key,
      const std::string& reason)>;
  void set_degradation_handler(DegradationHandler handler) {
    degradation_handler_ = std::move(handler);
  }

  /// True while `object_key`'s assigned module sits in quarantine.
  bool is_quarantined(const std::string& object_key) const;

 private:
  /// Per-assignment module health, tracked only while degradation is on.
  struct ModuleHealth {
    int consecutive_failures = 0;
    bool quarantined = false;
    sim::TimePoint release_at = 0;
  };

  /// Records a module failure for the assignment; quarantines at the
  /// configured threshold and schedules the degradation handler.
  void on_module_failure(const std::string& object_key,
                         const std::string& module,
                         const std::string& reason);
  /// Checks (and lazily expires) quarantine for the assignment.
  bool quarantined_now(const std::string& object_key);

  orb::ReplyMessage command_reply(std::uint64_t request_id,
                                  const cdr::Any& result);
  orb::ReplyMessage command_error(std::uint64_t request_id,
                                  const std::string& what);

  orb::Orb& orb_;
  ModuleContext context_;
  std::map<std::string, std::unique_ptr<QosModule>, std::less<>> modules_;
  std::map<std::string, std::string, std::less<>> assignments_;
  std::map<std::string, CommandHandler> command_handlers_;
  std::optional<DegradationConfig> degradation_;
  DegradationHandler degradation_handler_;
  std::map<std::string, ModuleHealth, std::less<>> health_;
  TransportStats stats_;
};

}  // namespace maqs::core

#include "core/resource.hpp"

#include "trace/trace.hpp"

namespace maqs::core {

void ResourceManager::declare(const std::string& resource, double capacity) {
  resources_[resource].capacity = capacity;
}

bool ResourceManager::is_declared(const std::string& resource) const {
  return resources_.contains(resource);
}

const ResourceManager::Entry& ResourceManager::entry(
    const std::string& resource) const {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    throw QosError("resource manager: unknown resource '" + resource + "'");
  }
  return it->second;
}

double ResourceManager::capacity(const std::string& resource) const {
  return entry(resource).capacity;
}

double ResourceManager::reserved(const std::string& resource) const {
  return entry(resource).reserved;
}

double ResourceManager::available(const std::string& resource) const {
  const Entry& e = entry(resource);
  return e.capacity - e.reserved;
}

bool ResourceManager::try_reserve(const ResourceDemand& demand) {
  for (const auto& [resource, amount] : demand) {
    const Entry& e = entry(resource);
    if (e.reserved + amount > e.capacity) return false;
  }
  for (const auto& [resource, amount] : demand) {
    resources_[resource].reserved += amount;
  }
  return true;
}

void ResourceManager::release(const ResourceDemand& demand) {
  for (const auto& [resource, amount] : demand) {
    auto it = resources_.find(resource);
    if (it == resources_.end()) continue;
    it->second.reserved -= amount;
    if (it->second.reserved < 0) {
      // Over-release: someone returned more than they reserved. Clamp so
      // accounting stays sane, but surface the bug instead of hiding it.
      ++over_releases_;
      if (trace::tracing_active()) {
        trace::point("resource.over_release",
                     resource + " by=" + std::to_string(-it->second.reserved));
      }
      it->second.reserved = 0;
    }
  }
}

void ResourceManager::set_capacity(const std::string& resource,
                                   double capacity) {
  Entry& e = resources_[resource];
  e.capacity = capacity;
  for (const auto& listener : listeners_) {
    listener(resource, e.capacity, e.reserved);
  }
}

void ResourceManager::subscribe(ChangeListener listener) {
  if (listener) listeners_.push_back(std::move(listener));
}

bool ResourceManager::overloaded() const {
  for (const auto& [_, e] : resources_) {
    if (e.reserved > e.capacity) return true;
  }
  return false;
}

std::vector<std::string> ResourceManager::overloaded_resources() const {
  std::vector<std::string> out;
  for (const auto& [name, e] : resources_) {
    if (e.reserved > e.capacity) out.push_back(name);
  }
  return out;
}

}  // namespace maqs::core

#include "core/contract.hpp"

namespace maqs::core {

const char* agreement_state_name(AgreementState state) noexcept {
  switch (state) {
    case AgreementState::kProposed: return "proposed";
    case AgreementState::kActive: return "active";
    case AgreementState::kViolated: return "violated";
    case AgreementState::kRenegotiating: return "renegotiating";
    case AgreementState::kTerminated: return "terminated";
  }
  return "?";
}

namespace {
const cdr::Any& require_param(const Agreement& agreement,
                              const std::string& name) {
  auto it = agreement.params.find(name);
  if (it == agreement.params.end()) {
    throw QosError("agreement " + std::to_string(agreement.id) +
                   ": missing param '" + name + "'");
  }
  return it->second;
}
}  // namespace

std::int64_t Agreement::int_param(const std::string& name) const {
  return require_param(*this, name).as_integer();
}

std::string Agreement::string_param(const std::string& name) const {
  return require_param(*this, name).as_string();
}

bool Agreement::bool_param(const std::string& name) const {
  return require_param(*this, name).as_bool();
}

const cdr::Any* Agreement::find_param(const std::string& name) const {
  auto it = params.find(name);
  return it != params.end() ? &it->second : nullptr;
}

std::int64_t Agreement::int_param_or(const std::string& name,
                                     std::int64_t fallback) const {
  const cdr::Any* any = find_param(name);
  return any != nullptr ? any->as_integer() : fallback;
}

std::string Agreement::string_param_or(const std::string& name,
                                       std::string fallback) const {
  const cdr::Any* any = find_param(name);
  return any != nullptr ? any->as_string() : fallback;
}

bool Agreement::bool_param_or(const std::string& name, bool fallback) const {
  const cdr::Any* any = find_param(name);
  return any != nullptr ? any->as_bool() : fallback;
}

Agreement& AgreementRepository::create(Agreement agreement) {
  agreement.id = next_id_++;
  auto [it, _] = agreements_.emplace(agreement.id, std::move(agreement));
  return it->second;
}

Agreement* AgreementRepository::find(std::uint64_t id) {
  auto it = agreements_.find(id);
  return it != agreements_.end() ? &it->second : nullptr;
}

const Agreement* AgreementRepository::find(std::uint64_t id) const {
  auto it = agreements_.find(id);
  return it != agreements_.end() ? &it->second : nullptr;
}

Agreement& AgreementRepository::get(std::uint64_t id) {
  Agreement* agreement = find(id);
  if (agreement == nullptr) {
    throw QosError("agreement repository: unknown id " + std::to_string(id));
  }
  return *agreement;
}

void AgreementRepository::terminate(std::uint64_t id) {
  if (Agreement* agreement = find(id)) {
    agreement->state = AgreementState::kTerminated;
  }
}

std::vector<Agreement*> AgreementRepository::by_characteristic(
    const std::string& name) {
  std::vector<Agreement*> out;
  for (auto& [_, agreement] : agreements_) {
    if (agreement.characteristic == name &&
        agreement.state != AgreementState::kTerminated) {
      out.push_back(&agreement);
    }
  }
  return out;
}

std::vector<Agreement*> AgreementRepository::by_object(
    const std::string& object_key) {
  std::vector<Agreement*> out;
  for (auto& [_, agreement] : agreements_) {
    if (agreement.object_key == object_key &&
        agreement.state != AgreementState::kTerminated) {
      out.push_back(&agreement);
    }
  }
  return out;
}

std::size_t AgreementRepository::active_count() const {
  std::size_t n = 0;
  for (const auto& [_, agreement] : agreements_) {
    if (agreement.state == AgreementState::kActive) ++n;
  }
  return n;
}

}  // namespace maqs::core

#include "core/characteristic.hpp"

namespace maqs::core {

const char* qos_category_name(QosCategory category) noexcept {
  switch (category) {
    case QosCategory::kFaultTolerance: return "fault-tolerance";
    case QosCategory::kPerformance: return "performance";
    case QosCategory::kBandwidth: return "bandwidth";
    case QosCategory::kActuality: return "actuality";
    case QosCategory::kPrivacy: return "privacy";
    case QosCategory::kOther: return "other";
  }
  return "?";
}

CharacteristicDescriptor::CharacteristicDescriptor(
    std::string name, QosCategory category, std::vector<ParamDesc> params,
    std::vector<QosOpDesc> operations)
    : CharacteristicDescriptor(std::move(name), category, std::move(params),
                               {}, std::move(operations)) {}

CharacteristicDescriptor::CharacteristicDescriptor(
    std::string name, QosCategory category, std::vector<ParamDesc> params,
    std::vector<DimensionDesc> dimensions, std::vector<QosOpDesc> operations)
    : name_(std::move(name)),
      category_(category),
      params_(std::move(params)),
      dimensions_(std::move(dimensions)),
      operations_(std::move(operations)) {
  if (name_.empty()) throw QosError("characteristic: empty name");
  for (const ParamDesc& param : params_) {
    if (!param.type) {
      throw QosError("characteristic " + name_ + ": param '" + param.name +
                     "' has no type");
    }
    if (!param.default_value.type()->equal(*param.type)) {
      throw QosError("characteristic " + name_ + ": param '" + param.name +
                     "' default has wrong type");
    }
  }
  for (const DimensionDesc& dim : dimensions_) {
    if (dim.ranked.empty()) {
      throw QosError("characteristic " + name_ + ": dimension '" + dim.name +
                     "' has no values");
    }
    if (find_param(dim.name) != nullptr) {
      throw QosError("characteristic " + name_ + ": dimension '" + dim.name +
                     "' clashes with a param of the same name");
    }
    for (const cdr::Any& value : dim.ranked) {
      if (!value.type()->equal(*dim.ranked.front().type())) {
        throw QosError("characteristic " + name_ + ": dimension '" +
                       dim.name + "' mixes value types");
      }
    }
  }
}

const ParamDesc* CharacteristicDescriptor::find_param(
    const std::string& name) const {
  for (const ParamDesc& param : params_) {
    if (param.name == name) return &param;
  }
  return nullptr;
}

const DimensionDesc* CharacteristicDescriptor::find_dimension(
    const std::string& name) const {
  for (const DimensionDesc& dim : dimensions_) {
    if (dim.name == name) return &dim;
  }
  return nullptr;
}

const QosOpDesc* CharacteristicDescriptor::find_operation(
    const std::string& name) const {
  for (const QosOpDesc& op : operations_) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

std::map<std::string, cdr::Any> CharacteristicDescriptor::default_params()
    const {
  std::map<std::string, cdr::Any> out;
  for (const ParamDesc& param : params_) {
    out[param.name] = param.default_value;
  }
  return out;
}

std::map<std::string, cdr::Any> CharacteristicDescriptor::validate_params(
    const std::map<std::string, cdr::Any>& proposed) const {
  std::map<std::string, cdr::Any> out = default_params();
  for (const auto& [name, value] : proposed) {
    const ParamDesc* desc = find_param(name);
    if (desc == nullptr) {
      throw QosError("characteristic " + name_ + ": unknown param '" + name +
                     "'");
    }
    if (!value.type()->equal(*desc->type)) {
      throw QosError("characteristic " + name_ + ": param '" + name +
                     "' type mismatch: expected " + desc->type->to_string() +
                     ", got " + value.type()->to_string());
    }
    if (desc->min.has_value() || desc->max.has_value()) {
      const std::int64_t v = value.as_integer();
      if (desc->min.has_value() && v < *desc->min) {
        throw QosError("characteristic " + name_ + ": param '" + name +
                       "' below minimum");
      }
      if (desc->max.has_value() && v > *desc->max) {
        throw QosError("characteristic " + name_ + ": param '" + name +
                       "' above maximum");
      }
    }
    out[name] = value;
  }
  return out;
}

CapabilityMatrix CharacteristicDescriptor::default_matrix() const {
  return dimensions_.empty() ? CapabilityMatrix{}
                             : CapabilityMatrix{dimensions_};
}

void CharacteristicDescriptor::validate_matrix(
    const CapabilityMatrix& offer) const {
  for (const DimensionDesc& offered : offer.dimensions()) {
    const DimensionDesc* declared = find_dimension(offered.name);
    if (declared == nullptr) {
      throw QosError("characteristic " + name_ + ": unknown dimension '" +
                     offered.name + "'");
    }
    for (const cdr::Any& value : offered.ranked) {
      bool known = false;
      for (const cdr::Any& candidate : declared->ranked) {
        if (candidate == value) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw QosError("characteristic " + name_ + ": dimension '" +
                       offered.name + "' offers an undeclared value");
      }
    }
  }
  for (const DimensionDesc& declared : dimensions_) {
    if (offer.find_dimension(declared.name) == CapabilityMatrix::npos) {
      throw QosError("characteristic " + name_ + ": offer misses dimension '" +
                     declared.name + "'");
    }
  }
}

void CharacteristicCatalog::add(CharacteristicDescriptor descriptor) {
  const std::string name = descriptor.name();
  auto [_, inserted] = entries_.emplace(name, std::move(descriptor));
  if (!inserted) {
    throw QosError("catalog: duplicate characteristic '" + name + "'");
  }
}

bool CharacteristicCatalog::contains(const std::string& name) const {
  return entries_.contains(name);
}

const CharacteristicDescriptor& CharacteristicCatalog::get(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw QosError("catalog: unknown characteristic '" + name + "'");
  }
  return it->second;
}

const CharacteristicDescriptor* CharacteristicCatalog::find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() ? &it->second : nullptr;
}

std::vector<std::string> CharacteristicCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

}  // namespace maqs::core

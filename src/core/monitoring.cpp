#include "core/monitoring.hpp"

#include <algorithm>
#include <cmath>

#include "core/characteristic.hpp"

namespace maqs::core {

void MetricSeries::record(sim::TimePoint at, double value) {
  samples_.emplace_back(at, value);
  if (samples_.size() > capacity_) samples_.pop_front();
}

double MetricSeries::last() const {
  if (samples_.empty()) throw QosError("metric series: empty");
  return samples_.back().second;
}

double MetricSeries::min() const {
  if (samples_.empty()) throw QosError("metric series: empty");
  double out = samples_.front().second;
  for (const auto& [_, v] : samples_) out = std::min(out, v);
  return out;
}

double MetricSeries::max() const {
  if (samples_.empty()) throw QosError("metric series: empty");
  double out = samples_.front().second;
  for (const auto& [_, v] : samples_) out = std::max(out, v);
  return out;
}

double MetricSeries::mean() const {
  if (samples_.empty()) throw QosError("metric series: empty");
  double sum = 0;
  for (const auto& [_, v] : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double MetricSeries::percentile(double p) const {
  if (samples_.empty()) throw QosError("metric series: empty");
  p = std::clamp(p, 0.0, 1.0);
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const auto& [_, v] : samples_) values.push_back(v);
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

MetricSeries& Monitor::series(const std::string& metric) {
  return series_.try_emplace(metric).first->second;
}

const MetricSeries* Monitor::find_series(const std::string& metric) const {
  auto it = series_.find(metric);
  return it != series_.end() ? &it->second : nullptr;
}

void Monitor::set_threshold(const std::string& metric, Threshold threshold) {
  thresholds_[metric] = threshold;
  consecutive_[metric] = 0;
}

void Monitor::clear_threshold(const std::string& metric) {
  thresholds_.erase(metric);
  consecutive_.erase(metric);
}

void Monitor::subscribe(ViolationHandler handler) {
  if (handler) handlers_.push_back(std::move(handler));
}

void Monitor::record(const std::string& metric, sim::TimePoint at,
                     double value) {
  series(metric).record(at, value);
  auto it = thresholds_.find(metric);
  if (it == thresholds_.end()) return;
  const Threshold& threshold = it->second;
  const bool out_of_bounds =
      (threshold.min.has_value() && value < *threshold.min) ||
      (threshold.max.has_value() && value > *threshold.max);
  int& streak = consecutive_[metric];
  if (!out_of_bounds) {
    streak = 0;
    return;
  }
  if (++streak < debounce_) return;
  ++violations_;
  Violation violation{metric, value, threshold, at, streak};
  for (const auto& handler : handlers_) handler(violation);
}

}  // namespace maqs::core

// Server-side aspect weaving: QoS skeletons (paper Fig. 2).
//
// The QIDL server-side mapping: "The server inherits from the QoS skeleton
// and the server skeleton [...]. The server skeleton is extended by a
// delegate to the actual QoS implementation. This will be exchanged at
// runtime to the actual QoS characteristic's QoS implementation. Hence,
// only the operations of the actual negotiated QoS characteristic are
// processed while others raise an exception. The server skeleton takes
// incoming requests from the ORB and calls a prolog and an epilog
// operation on the QoS implementation before and after the operation is
// processed by the server."
//
// QosServantBase realizes exactly that weaving:
//   - assigned characteristics declare which operations are QoS ops,
//   - a single exchangeable QosImpl delegate handles the negotiated one,
//   - QoS ops of non-negotiated (but assigned) characteristics raise
//     NotNegotiated,
//   - application operations are bracketed by prolog/epilog.
//
// Generated server skeletons derive from QosServantBase and implement
// dispatch_app() (our qidlc emits this shape). For retrofitting an
// existing plain skeleton without regenerating it, WovenServant wraps any
// orb::Servant by delegation — same weaving, composition instead of
// inheritance.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/characteristic.hpp"
#include "core/contract.hpp"
#include "core/transform.hpp"
#include "orb/exceptions.hpp"
#include "orb/interceptor.hpp"
#include "orb/servant.hpp"

namespace maqs::core {

/// The cross-cut the paper singles out for replica groups: "the ability
/// for this QoS violates the encapsulation of a server", resolved through
/// a dedicated interface ("QoS aspect integration", §3.2). Servants whose
/// interface carries a characteristic with state-aspect ops implement it;
/// QoS implementations reach it via QosServerContext::state_access().
class StateAccess {
 public:
  virtual ~StateAccess() = default;
  virtual util::Bytes get_state() = 0;
  virtual void set_state(util::BytesView state) = 0;
};

class QosServantBase;

/// What a QoS implementation may touch on its hosting servant.
class QosServerContext {
 public:
  explicit QosServerContext(QosServantBase& host) : host_(host) {}
  QosServantBase& host() noexcept { return host_; }
  /// The servant's state-access aspect interface; nullptr if the servant
  /// does not expose one.
  StateAccess* state_access();

 private:
  QosServantBase& host_;
};

/// Server half of a QoS characteristic — "the QoS implementation" of
/// Fig. 2. Exchanged as a delegate at (re)negotiation time.
class QosImpl {
 public:
  explicit QosImpl(std::string characteristic)
      : characteristic_(std::move(characteristic)) {}
  virtual ~QosImpl() = default;

  const std::string& characteristic() const noexcept {
    return characteristic_;
  }

  virtual void bind_agreement(const Agreement& agreement) {
    agreement_ = agreement;
  }
  const Agreement& agreement() const noexcept { return agreement_; }

  /// Woven channel version — server mirror of
  /// Mediator::set_channel_version: when several agreements weave through
  /// one servant, frames are versioned by the sum of all installed
  /// delegates' agreement versions, distributed by the hosting servant at
  /// install and rebind time. -1 (default) = standalone; bind_agreement
  /// then versions material by the agreement's own version.
  void set_channel_version(std::int64_t version) noexcept {
    channel_version_ = version;
  }
  std::int64_t channel_version() const noexcept { return channel_version_; }

  /// Called when the delegate is installed into / removed from a servant.
  virtual void attach(QosServerContext& ctx) { (void)ctx; }
  virtual void detach() {}

  /// Bracket around every application operation (Fig. 2).
  virtual void prolog(orb::ServerContext& ctx) { (void)ctx; }
  virtual void epilog(orb::ServerContext& ctx) { (void)ctx; }

  /// Aspect transform of the marshaled argument stream before the
  /// application skeleton unmarshals it (inverse of what the mediator did
  /// on the client: decompress, decrypt, ...). Default: identity.
  virtual util::Bytes transform_args(util::Bytes args,
                                     orb::ServerContext& ctx) {
    (void)ctx;
    return args;
  }

  /// Aspect transform of the marshaled result stream after the
  /// application skeleton produced it. Default: identity.
  virtual util::Bytes transform_result(util::Bytes result,
                                       orb::ServerContext& ctx) {
    (void)ctx;
    return result;
  }

  /// Streaming form of this implementation's payload transform, when it
  /// has one. When every installed delegate exposes a stage the skeleton
  /// fuses them into one TransformChain (single arena, no per-stage
  /// copies); any delegate returning nullptr keeps the whole servant on
  /// the legacy transform_args/transform_result hooks.
  virtual StreamingTransform* streaming_transform() { return nullptr; }

  /// The characteristic's QoS operations (mechanism + peer + aspect ops
  /// from QIDL). Throws BadOperation for names it does not implement.
  virtual void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                               cdr::Encoder& out, orb::ServerContext& ctx) {
    (void)args;
    (void)out;
    (void)ctx;
    throw orb::BadOperation("qos impl " + characteristic_ +
                            ": unknown QoS operation " + op);
  }

 protected:
  /// Version to register versioned mechanism material under for
  /// `agreement`: the channel version when woven, else the agreement's own.
  std::int64_t effective_version(const Agreement& agreement) const noexcept {
    return channel_version_ >= 0 ? channel_version_ : agreement.version();
  }

 private:
  std::string characteristic_;
  Agreement agreement_;
  std::int64_t channel_version_ = -1;
};

/// Base of QoS-enabled server skeletons (see file comment).
class QosServantBase : public orb::Servant {
 public:
  /// Declares a characteristic as assigned to this interface. Its QoS
  /// operations become dispatchable (NotNegotiated until negotiated).
  void assign_characteristic(const CharacteristicDescriptor& descriptor);

  bool is_assigned(const std::string& characteristic) const;
  std::vector<std::string> assigned_characteristics() const;

  /// Paper-faithful delegate exchange (Fig. 2): clears every installed
  /// delegate and installs `impl` as the single negotiated one. Passing
  /// nullptr clears everything (all QoS ops raise NotNegotiated again).
  void set_active_impl(std::shared_ptr<QosImpl> impl);

  /// Most recently installed delegate; nullptr when none.
  const std::shared_ptr<QosImpl>& active_impl() const;

  /// Multi-category extension: each characteristic's delegate slot is
  /// exchanged independently, so several independently negotiated
  /// agreements (e.g. Compression + Actuality) weave simultaneously.
  /// Replaces any previous delegate of the same characteristic.
  void install_impl(std::shared_ptr<QosImpl> impl);
  void remove_impl(const std::string& characteristic);
  void clear_impls();
  /// Rebinds the delegate of `characteristic` at a renegotiated agreement
  /// and redistributes the woven channel version (the server mirror of
  /// CompositeMediator::rebind): every delegate re-registers its versioned
  /// material at the new frame epoch while retaining the previous one.
  /// Returns false when no delegate of that characteristic is installed.
  bool rebind_impl(const std::string& characteristic,
                   const Agreement& agreement);
  std::shared_ptr<QosImpl> impl_for(const std::string& characteristic) const;
  /// Installed delegates in installation order.
  const std::vector<std::shared_ptr<QosImpl>>& active_impls() const noexcept {
    return impls_;
  }

  /// The woven dispatch path; final so weaving cannot be bypassed.
  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) final;

  /// Optional state-access aspect (override in servants that expose it).
  virtual StateAccess* state_access() { return nullptr; }

 protected:
  /// The generated application skeleton: unmarshal, call impl, marshal.
  virtual void dispatch_app(const std::string& operation, cdr::Decoder& args,
                            cdr::Encoder& out, orb::ServerContext& ctx) = 0;

 private:
  /// Rebuilds the per-servant stage chain from impls_ after any delegate
  /// exchange: each delegate contributes a prolog/epilog stage in the
  /// prolog band and a payload-transform stage in the transform band
  /// (see dispatch() for the nesting the band priorities encode).
  void rebuild_stage_chain();

  /// Pushes the channel version (sum of installed delegates' agreement
  /// versions) to the delegates weaving this servant's wire channel; see
  /// QosImpl::set_channel_version.
  void distribute_channel_version();

  /// op name -> owning characteristic (across all assigned ones).
  std::map<std::string, std::string> qos_ops_;
  std::map<std::string, CharacteristicDescriptor> assigned_;
  /// Installed delegates in installation order (client mediator chains
  /// install in the same negotiation order, which the transform nesting
  /// relies on — see dispatch()).
  std::vector<std::shared_ptr<QosImpl>> impls_;
  std::unique_ptr<QosServerContext> impl_ctx_;
  /// The woven dispatch as an interceptor chain: one prolog/epilog and one
  /// transform stage per installed delegate, walked by dispatch() with the
  /// application skeleton as the terminal.
  std::vector<std::unique_ptr<orb::ServerInterceptor>> stages_;
  orb::ServerChain stage_chain_;
};

/// Delegation-based weaving for pre-existing skeletons: wraps any servant
/// and applies the same QoS dispatch rules around it.
class WovenServant final : public QosServantBase {
 public:
  explicit WovenServant(std::shared_ptr<orb::Servant> inner);

  const std::string& repo_id() const override { return inner_->repo_id(); }
  StateAccess* state_access() override;

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  std::shared_ptr<orb::Servant> inner_;
};

}  // namespace maqs::core

#include "core/qos_skeleton.hpp"

#include <utility>

#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"

namespace maqs::core {

namespace {

// The Fig. 2 prolog/epilog bracket of one installed delegate, as a stage on
// the skeleton's server chain. Spans are scoped to the hook body (siblings,
// not parents of the stages below) so the trace tree matches the woven
// loop it replaces.
class PrologEpilogStage final : public orb::ServerInterceptor {
 public:
  explicit PrologEpilogStage(std::shared_ptr<QosImpl> impl)
      : impl_(std::move(impl)) {}
  const char* name() const noexcept override { return "skeleton.prolog_epilog"; }

  void receive_request(orb::ServerRequestInfo& info) override {
    trace::SpanScope span("skeleton.prolog", impl_->characteristic());
    impl_->prolog(*info.ctx);
  }

  void send_reply(orb::ServerRequestInfo& info) override {
    trace::SpanScope span("skeleton.epilog", impl_->characteristic());
    impl_->epilog(*info.ctx);
  }

 private:
  std::shared_ptr<QosImpl> impl_;
};

// One delegate's marshaled-payload transforms: arguments inverted on the
// way down, results applied on the way up.
class TransformStage final : public orb::ServerInterceptor {
 public:
  explicit TransformStage(std::shared_ptr<QosImpl> impl)
      : impl_(std::move(impl)) {}
  const char* name() const noexcept override { return "skeleton.transform"; }

  void receive_request(orb::ServerRequestInfo& info) override {
    trace::SpanScope span("skeleton.transform_args", impl_->characteristic());
    info.request->body =
        impl_->transform_args(std::move(info.request->body), *info.ctx);
  }

  void send_reply(orb::ServerRequestInfo& info) override {
    trace::SpanScope span("skeleton.transform_result",
                          impl_->characteristic());
    info.reply.body =
        impl_->transform_result(std::move(info.reply.body), *info.ctx);
  }

 private:
  std::shared_ptr<QosImpl> impl_;
};

// Every installed delegate exposed a streaming stage: one fused chain in
// the transform band replaces the per-delegate TransformStage stack. The
// chain applies stages in installation order on the way out (matching the
// band layout's result-transform order) and reversed on the way in, with
// the same per-characteristic spans the individual stages would emit.
class FusedTransformStage final : public orb::ServerInterceptor {
 public:
  FusedTransformStage()
      : chain_("skeleton.transform_result", "skeleton.transform_args") {}
  const char* name() const noexcept override { return "skeleton.transform"; }

  TransformChain& chain() noexcept { return chain_; }

  void receive_request(orb::ServerRequestInfo& info) override {
    chain_.run_reverse(info.request->body,
                       {info.request->request_id, false});
  }

  void send_reply(orb::ServerRequestInfo& info) override {
    chain_.run_forward(info.reply.body, {info.request->request_id, true});
  }

 private:
  TransformChain chain_;
};

}  // namespace

StateAccess* QosServerContext::state_access() {
  return host_.state_access();
}

void QosServantBase::assign_characteristic(
    const CharacteristicDescriptor& descriptor) {
  if (assigned_.contains(descriptor.name())) {
    throw QosError("qos skeleton: characteristic '" + descriptor.name() +
                   "' already assigned");
  }
  // QoS operation names must be unambiguous across assigned
  // characteristics: the dispatch has to attribute each op to exactly one
  // owner (this mirrors the paper's conflict avoidance, §3.2). Validate
  // against a copy so a rejected assignment leaves earlier ones intact.
  std::map<std::string, std::string> updated = qos_ops_;
  for (const QosOpDesc& op : descriptor.operations()) {
    auto [it, inserted] = updated.emplace(op.name, descriptor.name());
    if (!inserted) {
      throw QosError("qos skeleton: QoS operation '" + op.name +
                     "' clashes between '" + it->second + "' and '" +
                     descriptor.name() + "'");
    }
  }
  qos_ops_ = std::move(updated);
  assigned_.emplace(descriptor.name(), descriptor);
}

bool QosServantBase::is_assigned(const std::string& characteristic) const {
  return assigned_.contains(characteristic);
}

std::vector<std::string> QosServantBase::assigned_characteristics() const {
  std::vector<std::string> out;
  out.reserve(assigned_.size());
  for (const auto& [name, _] : assigned_) out.push_back(name);
  return out;
}

void QosServantBase::install_impl(std::shared_ptr<QosImpl> impl) {
  if (!impl) throw QosError("qos skeleton: install_impl(nullptr)");
  if (!assigned_.contains(impl->characteristic())) {
    throw QosError("qos skeleton: characteristic '" +
                   impl->characteristic() + "' is not assigned");
  }
  remove_impl(impl->characteristic());
  if (!impl_ctx_) impl_ctx_ = std::make_unique<QosServerContext>(*this);
  impl->attach(*impl_ctx_);
  impls_.push_back(std::move(impl));
  rebuild_stage_chain();
  distribute_channel_version();
}

void QosServantBase::remove_impl(const std::string& characteristic) {
  for (auto it = impls_.begin(); it != impls_.end(); ++it) {
    if ((*it)->characteristic() == characteristic) {
      (*it)->detach();
      impls_.erase(it);
      rebuild_stage_chain();
      distribute_channel_version();
      return;
    }
  }
}

void QosServantBase::distribute_channel_version() {
  // A lone delegate (or none) keeps standalone semantics: its mechanism
  // material stays versioned by its own agreement.
  if (impls_.size() < 2) {
    for (const auto& impl : impls_) impl->set_channel_version(-1);
    return;
  }
  std::int64_t sum = 0;
  for (const auto& impl : impls_) sum += impl->agreement().version();
  for (const auto& impl : impls_) {
    // Hand-built delegates (version 0) never joined a negotiation; leave
    // their bindings alone so legacy frames stay byte-identical.
    if (impl->agreement().version() <= 0) continue;
    if (impl->channel_version() == sum) continue;
    impl->set_channel_version(sum);
    // Re-register the delegate's versioned material (codec binding, key
    // epoch) under the channel version. Copy first: bind_agreement
    // overwrites the delegate's stored agreement.
    const Agreement bound = impl->agreement();
    impl->bind_agreement(bound);
  }
}

bool QosServantBase::rebind_impl(const std::string& characteristic,
                                 const Agreement& agreement) {
  const std::shared_ptr<QosImpl> delegate = impl_for(characteristic);
  if (!delegate) return false;
  if (impls_.size() >= 2 && agreement.version() > 0) {
    // Bump the channel before binding so the delegate registers its new
    // material under the NEW epoch instead of overwriting the binding
    // in-flight frames of the current epoch still need.
    std::int64_t sum = agreement.version();
    for (const auto& impl : impls_) {
      if (impl != delegate) sum += impl->agreement().version();
    }
    delegate->set_channel_version(sum);
  }
  delegate->bind_agreement(agreement);
  distribute_channel_version();
  return true;
}

void QosServantBase::clear_impls() {
  for (auto& impl : impls_) impl->detach();
  impls_.clear();
  rebuild_stage_chain();
}

void QosServantBase::rebuild_stage_chain() {
  stage_chain_ = orb::ServerChain{};
  stages_.clear();
  // Band layout encodes the paper's nesting: prologs run in installation
  // order (ascending prolog band), argument transforms in reverse
  // installation order (descending offsets in the transform band), and the
  // unwind mirrors both — result transforms in installation order, epilogs
  // reversed.
  const int n = static_cast<int>(impls_.size());
  bool all_streaming = n > 0;
  for (const auto& impl : impls_) {
    if (impl->streaming_transform() == nullptr) {
      all_streaming = false;
      break;
    }
  }
  for (int i = 0; i < n; ++i) {
    stages_.push_back(std::make_unique<PrologEpilogStage>(impls_[i]));
    stage_chain_.add(stages_.back().get(),
                     orb::priorities::kSkeletonPrologBase + i);
    if (!all_streaming) {
      stages_.push_back(std::make_unique<TransformStage>(impls_[i]));
      stage_chain_.add(stages_.back().get(),
                       orb::priorities::kSkeletonTransformBase + (n - 1 - i));
    }
  }
  if (all_streaming) {
    auto fused = std::make_unique<FusedTransformStage>();
    for (const auto& impl : impls_) {
      fused->chain().add(impl->streaming_transform());
    }
    stage_chain_.add(fused.get(), orb::priorities::kSkeletonTransformBase);
    stages_.push_back(std::move(fused));
  }
}

void QosServantBase::set_active_impl(std::shared_ptr<QosImpl> impl) {
  clear_impls();
  if (impl) install_impl(std::move(impl));
}

const std::shared_ptr<QosImpl>& QosServantBase::active_impl() const {
  static const std::shared_ptr<QosImpl> kNone;
  return impls_.empty() ? kNone : impls_.back();
}

std::shared_ptr<QosImpl> QosServantBase::impl_for(
    const std::string& characteristic) const {
  for (const auto& impl : impls_) {
    if (impl->characteristic() == characteristic) return impl;
  }
  return nullptr;
}

void QosServantBase::dispatch(const std::string& operation,
                              cdr::Decoder& args, cdr::Encoder& out,
                              orb::ServerContext& ctx) {
  // QoS operation? Only negotiated characteristics' are processed; the
  // rest of the assigned set raises the exception (Fig. 2).
  auto it = qos_ops_.find(operation);
  if (it != qos_ops_.end()) {
    if (std::shared_ptr<QosImpl> owner = impl_for(it->second)) {
      owner->dispatch_qos_op(operation, args, out, ctx);
      return;
    }
    throw orb::NotNegotiated("qos skeleton: operation '" + operation +
                             "' belongs to characteristic '" + it->second +
                             "', which is not negotiated");
  }
  // Application operation: the woven stage chain. Walk order (ascending
  // priority) runs prologs in installation order, then argument transforms
  // in reverse installation order (the client's mediator chain applied
  // them in installation order, so the last one is outermost on the wire),
  // then the application terminal; the unwind applies result transforms in
  // installation order (so the client chain can peel them back) and
  // epilogs reversed. An exception from any stage skips the unwind hooks
  // below it and propagates to the adapter's reply mapping, exactly like
  // the hand-rolled loops it replaces.
  if (impls_.empty()) {
    trace::SpanScope app_span("skeleton.app", operation);
    dispatch_app(operation, args, out, ctx);
    return;
  }
  auto& pool = util::BufferPool::instance();
  const util::BytesView raw_args = args.read_remaining_view();
  orb::RequestMessage staged;
  staged.request_id = ctx.request().request_id;
  staged.operation = operation;
  staged.body = pool.acquire(raw_args.size());
  staged.body.assign(raw_args.begin(), raw_args.end());
  orb::ServerRequestInfo info;
  info.from = &ctx.client();
  info.request = &staged;
  info.ctx = &ctx;
  orb::walk_server_chain(
      stage_chain_, 0, info,
      [this, &operation, &pool](orb::ServerRequestInfo& i) {
        cdr::Decoder transformed_args{util::BytesView(i.request->body)};
        // Replies are usually the same order of size as the (restored)
        // arguments; a recycled buffer at that size encodes most results
        // without any allocation.
        cdr::Encoder app_out(pool.acquire(i.request->body.size() + 32));
        {
          trace::SpanScope app_span("skeleton.app", operation);
          dispatch_app(operation, transformed_args, app_out, *i.ctx);
        }
        i.reply.body = app_out.take();
      });
  out.write_raw(info.reply.body);
  pool.release(std::move(staged.body));
  pool.release(std::move(info.reply.body));
}

WovenServant::WovenServant(std::shared_ptr<orb::Servant> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw QosError("woven servant: null inner servant");
}

StateAccess* WovenServant::state_access() {
  return dynamic_cast<StateAccess*>(inner_.get());
}

void WovenServant::dispatch_app(const std::string& operation,
                                cdr::Decoder& args, cdr::Encoder& out,
                                orb::ServerContext& ctx) {
  inner_->dispatch(operation, args, out, ctx);
}

}  // namespace maqs::core

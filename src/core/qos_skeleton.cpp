#include "core/qos_skeleton.hpp"

#include "trace/trace.hpp"

namespace maqs::core {

StateAccess* QosServerContext::state_access() {
  return host_.state_access();
}

void QosServantBase::assign_characteristic(
    const CharacteristicDescriptor& descriptor) {
  if (assigned_.contains(descriptor.name())) {
    throw QosError("qos skeleton: characteristic '" + descriptor.name() +
                   "' already assigned");
  }
  // QoS operation names must be unambiguous across assigned
  // characteristics: the dispatch has to attribute each op to exactly one
  // owner (this mirrors the paper's conflict avoidance, §3.2). Validate
  // against a copy so a rejected assignment leaves earlier ones intact.
  std::map<std::string, std::string> updated = qos_ops_;
  for (const QosOpDesc& op : descriptor.operations()) {
    auto [it, inserted] = updated.emplace(op.name, descriptor.name());
    if (!inserted) {
      throw QosError("qos skeleton: QoS operation '" + op.name +
                     "' clashes between '" + it->second + "' and '" +
                     descriptor.name() + "'");
    }
  }
  qos_ops_ = std::move(updated);
  assigned_.emplace(descriptor.name(), descriptor);
}

bool QosServantBase::is_assigned(const std::string& characteristic) const {
  return assigned_.contains(characteristic);
}

std::vector<std::string> QosServantBase::assigned_characteristics() const {
  std::vector<std::string> out;
  out.reserve(assigned_.size());
  for (const auto& [name, _] : assigned_) out.push_back(name);
  return out;
}

void QosServantBase::install_impl(std::shared_ptr<QosImpl> impl) {
  if (!impl) throw QosError("qos skeleton: install_impl(nullptr)");
  if (!assigned_.contains(impl->characteristic())) {
    throw QosError("qos skeleton: characteristic '" +
                   impl->characteristic() + "' is not assigned");
  }
  remove_impl(impl->characteristic());
  if (!impl_ctx_) impl_ctx_ = std::make_unique<QosServerContext>(*this);
  impl->attach(*impl_ctx_);
  impls_.push_back(std::move(impl));
}

void QosServantBase::remove_impl(const std::string& characteristic) {
  for (auto it = impls_.begin(); it != impls_.end(); ++it) {
    if ((*it)->characteristic() == characteristic) {
      (*it)->detach();
      impls_.erase(it);
      return;
    }
  }
}

void QosServantBase::clear_impls() {
  for (auto& impl : impls_) impl->detach();
  impls_.clear();
}

void QosServantBase::set_active_impl(std::shared_ptr<QosImpl> impl) {
  clear_impls();
  if (impl) install_impl(std::move(impl));
}

const std::shared_ptr<QosImpl>& QosServantBase::active_impl() const {
  static const std::shared_ptr<QosImpl> kNone;
  return impls_.empty() ? kNone : impls_.back();
}

std::shared_ptr<QosImpl> QosServantBase::impl_for(
    const std::string& characteristic) const {
  for (const auto& impl : impls_) {
    if (impl->characteristic() == characteristic) return impl;
  }
  return nullptr;
}

void QosServantBase::dispatch(const std::string& operation,
                              cdr::Decoder& args, cdr::Encoder& out,
                              orb::ServerContext& ctx) {
  // QoS operation? Only negotiated characteristics' are processed; the
  // rest of the assigned set raises the exception (Fig. 2).
  auto it = qos_ops_.find(operation);
  if (it != qos_ops_.end()) {
    if (std::shared_ptr<QosImpl> owner = impl_for(it->second)) {
      owner->dispatch_qos_op(operation, args, out, ctx);
      return;
    }
    throw orb::NotNegotiated("qos skeleton: operation '" + operation +
                             "' belongs to characteristic '" + it->second +
                             "', which is not negotiated");
  }
  // Application operation: prolog* / transform* / app / transform* /
  // epilog*. Argument transforms run in reverse installation order (the
  // client's mediator chain applied them in installation order, so the
  // last one is outermost on the wire); result transforms run in
  // installation order so the client chain can peel them back.
  if (impls_.empty()) {
    trace::SpanScope app_span("skeleton.app", operation);
    dispatch_app(operation, args, out, ctx);
    return;
  }
  // Each weaving stage gets its own span (detail = characteristic) so a
  // trace shows where the woven dispatch spends its time — prolog vs.
  // transform vs. the application itself.
  for (const auto& impl : impls_) {
    trace::SpanScope span("skeleton.prolog", impl->characteristic());
    impl->prolog(ctx);
  }
  util::Bytes raw_args = args.read_remaining();
  for (auto rit = impls_.rbegin(); rit != impls_.rend(); ++rit) {
    trace::SpanScope span("skeleton.transform_args", (*rit)->characteristic());
    raw_args = (*rit)->transform_args(std::move(raw_args), ctx);
  }
  cdr::Decoder transformed_args{util::BytesView(raw_args)};
  cdr::Encoder app_out;
  {
    trace::SpanScope app_span("skeleton.app", operation);
    dispatch_app(operation, transformed_args, app_out, ctx);
  }
  util::Bytes result = app_out.take();
  for (const auto& impl : impls_) {
    trace::SpanScope span("skeleton.transform_result", impl->characteristic());
    result = impl->transform_result(std::move(result), ctx);
  }
  out.write_raw(result);
  for (auto rit = impls_.rbegin(); rit != impls_.rend(); ++rit) {
    trace::SpanScope span("skeleton.epilog", (*rit)->characteristic());
    (*rit)->epilog(ctx);
  }
}

WovenServant::WovenServant(std::shared_ptr<orb::Servant> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw QosError("woven servant: null inner servant");
}

StateAccess* WovenServant::state_access() {
  return dynamic_cast<StateAccess*>(inner_.get());
}

void WovenServant::dispatch_app(const std::string& operation,
                                cdr::Decoder& args, cdr::Encoder& out,
                                orb::ServerContext& ctx) {
  inner_->dispatch(operation, args, out, ctx);
}

}  // namespace maqs::core

// QoS characteristic catalog renderer.
//
// §6: "We think, that a catalog similar to those for design patterns is
// an appropriate way to document QoS implementations." — targeted at two
// audiences: application developers (how to use a characteristic, which
// adaptation to provide) and QoS implementors (which mechanisms are
// reusable). This renderer turns a ProviderRegistry into that catalog as
// Markdown: per characteristic its category, negotiable parameters with
// defaults/ranges, the three QoS-operation groups, the transport module
// it reuses (the §4 hierarchy) and which sides it weaves into.
#pragma once

#include <string>

#include "core/provider.hpp"

namespace maqs::core {

/// Renders one descriptor as a catalog entry.
std::string catalog_entry_markdown(const CharacteristicDescriptor& descriptor);

/// Renders the full registry as a catalog document.
std::string catalog_markdown(const ProviderRegistry& providers);

}  // namespace maqs::core

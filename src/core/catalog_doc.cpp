#include "core/catalog_doc.hpp"

#include <sstream>

namespace maqs::core {

namespace {
const char* op_kind_label(QosOpKind kind) {
  switch (kind) {
    case QosOpKind::kMechanism: return "mechanism";
    case QosOpKind::kPeer: return "peer (QoS-to-QoS)";
    case QosOpKind::kAspect: return "aspect (application cross-cut)";
  }
  return "?";
}
}  // namespace

std::string catalog_entry_markdown(
    const CharacteristicDescriptor& descriptor) {
  std::ostringstream out;
  out << "## " << descriptor.name() << "\n\n";
  out << "*Category:* " << qos_category_name(descriptor.category())
      << "\n\n";
  if (!descriptor.params().empty()) {
    out << "| parameter | type | default | range |\n";
    out << "|---|---|---|---|\n";
    for (const ParamDesc& param : descriptor.params()) {
      out << "| `" << param.name << "` | " << param.type->to_string()
          << " | " << param.default_value.to_string() << " | ";
      if (param.min.has_value() || param.max.has_value()) {
        out << (param.min.has_value() ? std::to_string(*param.min) : "")
            << " .. "
            << (param.max.has_value() ? std::to_string(*param.max) : "");
      } else {
        out << "—";
      }
      out << " |\n";
    }
    out << "\n";
  }
  if (!descriptor.dimensions().empty()) {
    out << "| dimension | preference lattice (best first) | degrade rank "
           "|\n";
    out << "|---|---|---|\n";
    for (const DimensionDesc& dim : descriptor.dimensions()) {
      out << "| `" << dim.name << "` | ";
      for (std::size_t i = 0; i < dim.ranked.size(); ++i) {
        if (i != 0) out << " > ";
        out << dim.ranked[i].to_string();
      }
      out << " | " << dim.degrade_rank << " |\n";
    }
    out << "\n";
  }
  if (!descriptor.operations().empty()) {
    out << "QoS operations:\n\n";
    for (const QosOpDesc& op : descriptor.operations()) {
      out << "- `" << op.name << "` — " << op_kind_label(op.kind) << "\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string catalog_markdown(const ProviderRegistry& providers) {
  std::ostringstream out;
  out << "# QoS Characteristic Catalog\n\n";
  out << "Generated from the provider registry (paper Sec. 6: \"a catalog "
         "similar to those for design patterns\").\n\n";
  for (const std::string& name : providers.catalog().names()) {
    const CharacteristicProvider& provider = providers.get(name);
    out << catalog_entry_markdown(provider.descriptor);
    out << "*Weaving:* ";
    if (provider.make_mediator) out << "client mediator";
    if (provider.make_mediator && provider.make_impl) out << " + ";
    if (provider.make_impl) out << "server QoS implementation";
    if (!provider.make_mediator && !provider.make_impl) {
      out << "transport only";
    }
    out << ".\n\n";
    if (!provider.module.empty()) {
      out << "*Reuses transport module:* `" << provider.module
          << "` (two-layer hierarchy, paper Sec. 4).\n\n";
    }
    if (provider.client_setup) {
      out << "*Bootstrap:* client-side setup handshake on agreement "
             "(QoS-to-QoS over the plain path).\n\n";
    }
  }
  return out.str();
}

}  // namespace maqs::core

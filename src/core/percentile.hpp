// Streaming fixed-bucket latency percentile sketch (HDR-histogram style).
//
// The latency harness feeds millions of samples per QoS class and then
// asks for p50/p99/p999; storing raw samples is out (memory grows with
// the population) and sorting is out (quantiles are needed streaming).
// The sketch buckets each integer sample log-linearly: exact buckets for
// small values, then 32 sub-buckets per octave — every bucket spans at
// most ~3.1% of its lower edge, so any reported quantile is within that
// relative error of the true order statistic.
//
// Everything is integer arithmetic on purpose. Percentile ranks are
// rationals (permille), bucket indexing is bit twiddling, and reported
// values are bucket upper edges — so the same sample stream produces the
// same bytes in BENCH_latency.json on every run, every platform, every
// optimization level. No doubles anywhere near the data path.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace maqs::core {

class PercentileSketch {
 public:
  /// Sub-buckets per octave above the exact range: 5 bits of mantissa,
  /// worst-case relative bucket width 1/32 (~3.1%).
  static constexpr std::uint32_t kMantissaBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kMantissaBits;
  /// Values < 2*kSubBuckets land in exact unit-width buckets.
  static constexpr std::uint64_t kExactLimit = 2 * kSubBuckets;
  /// 64 exact buckets + 32 per octave for the remaining 58 octaves.
  static constexpr std::size_t kBucketCount =
      kExactLimit + (63 - kMantissaBits) * kSubBuckets;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_index(value)];
    ++count_;
    if (value < min_ || count_ == 1) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Number of recorded samples.
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }

  /// Value at the q = permille/1000 quantile: the upper edge of the
  /// bucket holding the ceil(q * count)-th smallest sample (1-based), so
  /// at least a q-fraction of samples are <= the returned value. The
  /// extremes are exact: permille 0 reports min(), 1000 reports max().
  /// Returns 0 on an empty sketch.
  std::uint64_t value_at_permille(std::uint32_t permille) const noexcept;

  /// Convenience spellings for the harness columns.
  std::uint64_t p50() const noexcept { return value_at_permille(500); }
  std::uint64_t p99() const noexcept { return value_at_permille(990); }
  std::uint64_t p999() const noexcept { return value_at_permille(999); }

  /// Bucket-wise accumulate, for merging per-shard sketches. Merge order
  /// cannot matter: integer adds commute.
  void merge(const PercentileSketch& other) noexcept;

  /// "count=… min=… p50=… p99=… p999=… max=…" for logs and debugging.
  std::string to_string() const;

 private:
  static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kExactLimit) return static_cast<std::size_t>(value);
    // Octave = position of the highest bit beyond the exact range; the
    // next kMantissaBits bits pick the sub-bucket within it.
    const std::uint32_t msb =
        static_cast<std::uint32_t>(std::bit_width(value)) - 1;
    const std::uint32_t octave = msb - (kMantissaBits + 1);
    const std::uint64_t sub =
        (value >> (msb - kMantissaBits)) - kSubBuckets;
    return kExactLimit + octave * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to `index` (the reported representative).
  static std::uint64_t bucket_upper_edge(std::size_t index) noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace maqs::core

// Streaming zero-copy payload transform pipeline.
//
// The characteristic transforms (compress, encrypt, ...) originally moved
// the marshaled body through one fresh util::Bytes per stage and per
// direction — for a woven Compression+Encryption pair that is four full
// materializations per request plus the codec's own scratch. This layer
// replaces the copy-per-stage shape with borrowed buffers:
//
//   - TransformArena: a per-chain bump allocator over slabs recycled via
//     util::BufferPool. reset() retains capacity, so steady-state requests
//     allocate nothing.
//   - ChainBuf: the payload cursor handed from stage to stage. It borrows
//     the caller's body, an arena region, or a stage-owned scratch buffer;
//     stages transform in place, prepend headers into pre-reserved
//     headroom, or emit into a fresh arena region — never into a
//     temporary vector.
//   - StreamingTransform: one characteristic's forward (outbound) and
//     reverse (inbound) transform over a ChainBuf. Implemented by the
//     compression/encryption characteristics; wire bytes are identical to
//     the legacy Bytes-in/Bytes-out hooks they replace.
//   - TransformChain: runs the stages (forward in installation order,
//     reverse reversed — the paper's mediator/skeleton nesting), computes
//     per-stage headroom so every downstream header prepends in place,
//     and materializes the result back into the caller's body, reusing
//     its capacity or swapping storage outright.
//
// Client mediators, server QoS skeletons and the network-centered QoS
// modules all run their transforms through this one pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/characteristic.hpp"
#include "util/bytes.hpp"

namespace maqs::core {

/// Per-invocation facts a transform may key on (nonces, direction).
struct TransformContext {
  std::uint64_t request_id = 0;
  bool reply = false;
  /// Agreement version the inbound frame was sealed under, published by
  /// the first reverse stage that learns it (the encryption stage reads
  /// it out of the [epoch|mac] header) for downstream stages that rebind
  /// per version (e.g. the compression codec). -1 = unknown: stages use
  /// their current binding. Mutable: the context is shared read-mostly
  /// across a chain run and this is the one cross-stage channel.
  mutable std::int64_t frame_version = -1;
};

/// Bump allocator over BufferPool-recycled slabs. Regions are stable for
/// the lifetime of one chain run; reset() recycles them wholesale.
class TransformArena {
 public:
  TransformArena() = default;
  ~TransformArena();
  TransformArena(const TransformArena&) = delete;
  TransformArena& operator=(const TransformArena&) = delete;

  std::span<std::uint8_t> allocate(std::size_t n);
  void reset() noexcept;

 private:
  static constexpr std::size_t kMinSlab = 16 * 1024;

  std::vector<util::Bytes> slabs_;
  std::size_t active_ = 0;
  std::size_t used_ = 0;
};

/// The payload as it travels down/up a transform chain: a view plus
/// headroom bookkeeping over storage the buffer does not own.
class ChainBuf {
 public:
  ChainBuf(TransformArena& arena, std::size_t reserve_front) noexcept
      : arena_(&arena), reserve_front_(reserve_front) {}

  /// Storage for further allocations (fresh output regions).
  TransformArena& arena() noexcept { return *arena_; }

  /// Headroom stages after the current one still need in front of any
  /// region the current stage creates (sum of their header sizes). Set by
  /// the chain before each stage runs.
  std::size_t reserve_front() const noexcept { return reserve_front_; }
  void set_reserve_front(std::size_t n) noexcept { reserve_front_ = n; }

  /// Rebinds to an external body (offset 0, no headroom).
  void borrow(util::Bytes& body) noexcept;
  /// Rebinds to an arena region; payload is [offset, offset + size).
  void adopt(std::span<std::uint8_t> region, std::size_t offset,
             std::size_t size) noexcept;
  /// Rebinds to a stage-owned buffer wholesale (enables swap on
  /// materialize; `owner` must outlive the chain run).
  void adopt_bytes(util::Bytes& owner) noexcept;

  util::BytesView view() const noexcept { return {data() + offset_, size_}; }
  std::span<std::uint8_t> mutable_span() noexcept {
    return {data() + offset_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Writable bytes available in front of the payload.
  std::size_t headroom() const noexcept { return offset_; }

  /// Grows the payload `n` bytes to the front (requires headroom() >= n);
  /// returns the new front for the caller to fill.
  std::uint8_t* prepend(std::size_t n);
  /// Drops `n` bytes off the front (requires size() >= n).
  void drop_front(std::size_t n);

  /// Copies the payload into `body` (or swaps storage when the payload
  /// already owns a whole stage buffer), reusing capacity where possible.
  void materialize_into(util::Bytes& body);

 private:
  enum class Storage : std::uint8_t { kBorrowed, kArena, kStageBytes };

  std::uint8_t* data() const noexcept {
    return storage_ == Storage::kArena ? region_ : bytes_->data();
  }

  TransformArena* arena_;
  std::size_t reserve_front_ = 0;
  Storage storage_ = Storage::kBorrowed;
  util::Bytes* bytes_ = nullptr;   // borrowed body or stage-owned scratch
  std::uint8_t* region_ = nullptr;  // arena region
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

/// One characteristic's streaming payload transform. forward() is the
/// outbound direction (what the client mediator does to requests and the
/// server skeleton to results); reverse() undoes it.
class StreamingTransform {
 public:
  virtual ~StreamingTransform() = default;

  /// Characteristic name, used as trace-span detail.
  virtual const std::string& label() const = 0;

  /// Upper bound on bytes forward() prepends in front of its input (its
  /// header); the chain pre-reserves this as headroom upstream.
  virtual std::size_t forward_overhead() const noexcept = 0;

  virtual void forward(ChainBuf& buf, const TransformContext& ctx) = 0;
  virtual void reverse(ChainBuf& buf, const TransformContext& ctx) = 0;
};

/// An ordered set of streaming transforms plus the arena they share.
/// Stage pointers are non-owning: stages live in the mediator / QoS impl /
/// module that contributed them, which outlives the chain.
class TransformChain {
 public:
  /// Span names emitted per stage (nullptr = no tracing): the mediator
  /// chain uses "mediator.outbound"/"mediator.inbound", the skeleton chain
  /// "skeleton.transform_result"/"skeleton.transform_args".
  TransformChain(const char* forward_span, const char* reverse_span) noexcept
      : forward_span_(forward_span), reverse_span_(reverse_span) {}
  TransformChain() noexcept : TransformChain(nullptr, nullptr) {}

  void add(StreamingTransform* stage);
  void clear() noexcept;
  bool empty() const noexcept { return stages_.empty(); }
  std::size_t size() const noexcept { return stages_.size(); }

  /// Applies every stage to `body` in installation order and materializes
  /// the result back into `body`.
  void run_forward(util::Bytes& body, const TransformContext& ctx);
  /// Undoes the stages in reverse installation order.
  void run_reverse(util::Bytes& body, const TransformContext& ctx);

 private:
  const char* forward_span_;
  const char* reverse_span_;
  std::vector<StreamingTransform*> stages_;
  /// headroom_after_[i] = sum of forward_overhead() of stages after i.
  std::vector<std::size_t> headroom_after_;
  TransformArena arena_;
};

}  // namespace maqs::core

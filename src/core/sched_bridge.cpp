#include "core/sched_bridge.hpp"

#include <string>

namespace maqs::core {

void attach_overload_renegotiation(sched::RequestScheduler& scheduler,
                                   NegotiationService& negotiation) {
  scheduler.set_overload_handler(
      [&scheduler, &negotiation](const std::string& class_name,
                                 const std::string& object_key,
                                 const std::string& cause) {
        // Name the violated budget so the client's lattice policy can
        // pick the cheapest step that relieves exactly this resource.
        std::string resource;
        for (std::size_t i = 0; i < scheduler.classifier().class_count();
             ++i) {
          const sched::ClassConfig& config = scheduler.class_config(i);
          if (config.name == class_name && !config.resource.empty()) {
            resource = ":resource=" + config.resource;
            break;
          }
        }
        const std::string reason =
            "overload:class=" + class_name + resource + ": " + cause;
        for (Agreement* agreement :
             negotiation.agreements().by_object(object_key)) {
          negotiation.notify_violation(agreement->id, reason);
        }
      });
}

void attach_class_budgets(sched::RequestScheduler& scheduler,
                          ResourceManager& resources) {
  const std::size_t count = scheduler.classifier().class_count();
  for (std::size_t i = 0; i < count; ++i) {
    const sched::ClassConfig& config = scheduler.class_config(i);
    if (config.resource.empty() || !resources.is_declared(config.resource)) {
      continue;
    }
    scheduler.set_class_rate(config.name,
                             resources.capacity(config.resource));
  }
  resources.subscribe([&scheduler](const std::string& resource,
                                   double capacity, double /*reserved*/) {
    const std::size_t classes = scheduler.classifier().class_count();
    for (std::size_t i = 0; i < classes; ++i) {
      const sched::ClassConfig& config = scheduler.class_config(i);
      if (config.resource == resource) {
        scheduler.set_class_rate(config.name, capacity);
      }
    }
  });
}

bool bind_agreement_class(sched::RequestScheduler& scheduler,
                          const Agreement& agreement,
                          std::string_view class_name) {
  return scheduler.classifier().bind_object(agreement.object_key, class_name);
}

std::function<double()> make_load_probe(
    const sched::RequestScheduler& scheduler) {
  return [&scheduler] { return static_cast<double>(scheduler.queue_depth()); };
}

std::function<double()> make_load_probe(
    const sched::RequestScheduler& scheduler, std::string class_name) {
  return [&scheduler, class_name = std::move(class_name)] {
    return static_cast<double>(scheduler.queue_depth(class_name));
  };
}

}  // namespace maqs::core

#include "core/qos_transport.hpp"

#include "core/characteristic.hpp"
#include "orb/dii.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace maqs::core {

// ---- QosModule defaults ----

orb::ReplyMessage QosModule::invoke(orb::RequestMessage req,
                                    const orb::ObjRef& target) {
  req.context[kModuleContextKey] = util::to_bytes(name_);
  transform_request(req);
  orb::ReplyMessage rep =
      context().orb().invoke_plain(target.endpoint, std::move(req));
  restore_reply(rep);
  return rep;
}

cdr::Any QosModule::command(const std::string& op,
                            const std::vector<cdr::Any>& args) {
  (void)args;
  throw QosError("module " + name_ + ": unknown command '" + op + "'");
}

ModuleContext& QosModule::context() {
  if (ctx_ == nullptr) {
    throw QosError("module " + name_ + ": not started");
  }
  return *ctx_;
}

// ---- ModuleFactoryRegistry ----

ModuleFactoryRegistry& ModuleFactoryRegistry::instance() {
  static ModuleFactoryRegistry registry;
  return registry;
}

void ModuleFactoryRegistry::register_factory(const std::string& name,
                                             Factory factory) {
  if (!factory) throw QosError("module registry: null factory for " + name);
  auto [_, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    throw QosError("module registry: duplicate factory '" + name + "'");
  }
}

bool ModuleFactoryRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::unique_ptr<QosModule> ModuleFactoryRegistry::create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw QosError("module registry: no factory for '" + name + "'");
  }
  std::unique_ptr<QosModule> module = it->second();
  if (!module || module->name() != name) {
    throw QosError("module registry: factory for '" + name +
                   "' produced a mismatched module");
  }
  return module;
}

std::vector<std::string> ModuleFactoryRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

void ModuleFactoryRegistry::unregister(const std::string& name) {
  factories_.erase(name);
}

// ---- transport pseudo-object ----

namespace {

/// The static interface "modelled as a pseudo object and therefore can be
/// accessed like any other object" (§4): a plain servant delegating to
/// the transport's administration API.
class TransportPseudoServant final : public orb::Servant {
 public:
  explicit TransportPseudoServant(QosTransport& transport)
      : transport_(transport) {}

  const std::string& repo_id() const override {
    static const std::string kId = "IDL:maqs/QosTransport:1.0";
    return kId;
  }

  void dispatch(const std::string& operation, cdr::Decoder& args,
                cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "load_module") {
      const std::string name = args.read_string();
      args.expect_end();
      transport_.load_module(name);
    } else if (operation == "unload_module") {
      const std::string name = args.read_string();
      args.expect_end();
      transport_.unload_module(name);
    } else if (operation == "list_modules") {
      args.expect_end();
      const auto names = transport_.loaded_modules();
      out.write_u32(static_cast<std::uint32_t>(names.size()));
      for (const auto& name : names) out.write_string(name);
    } else if (operation == "is_loaded") {
      const std::string name = args.read_string();
      args.expect_end();
      out.write_bool(transport_.is_loaded(name));
    } else {
      throw orb::BadOperation("QosTransport: unknown operation " + operation);
    }
  }

 private:
  QosTransport& transport_;
};

}  // namespace

// ---- QosTransport ----

const std::string& QosTransport::pseudo_object_key() {
  static const std::string kKey = "maqs/qos-transport";
  return kKey;
}

QosTransport::QosTransport(orb::Orb& orb) : orb_(orb), context_(orb, *this) {
  orb_.set_router(this);
  orb_.adapter().activate(pseudo_object_key(),
                          std::make_shared<TransportPseudoServant>(*this));
}

QosTransport::~QosTransport() {
  for (auto& [_, module] : modules_) module->stop();
  orb_.adapter().deactivate(pseudo_object_key());
  orb_.set_router(nullptr);
}

QosModule& QosTransport::load_module(const std::string& name) {
  auto it = modules_.find(name);
  if (it != modules_.end()) return *it->second;
  std::unique_ptr<QosModule> module =
      ModuleFactoryRegistry::instance().create(name);
  module->start(context_);
  ++stats_.modules_loaded;
  auto [inserted_it, _] = modules_.emplace(name, std::move(module));
  MAQS_DEBUG() << "qos-transport " << orb_.endpoint().to_string()
               << ": loaded module " << name;
  return *inserted_it->second;
}

void QosTransport::unload_module(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return;
  it->second->stop();
  modules_.erase(it);
  std::erase_if(assignments_, [&](const auto& entry) {
    if (entry.second != name) return false;
    health_.erase(entry.first);
    return true;
  });
}

void QosTransport::crash_module(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return;
  it->second->stop();
  modules_.erase(it);
}

QosModule* QosTransport::find_module(std::string_view name) {
  auto it = modules_.find(name);
  return it != modules_.end() ? it->second.get() : nullptr;
}

bool QosTransport::is_loaded(const std::string& name) const {
  return modules_.contains(name);
}

std::vector<std::string> QosTransport::loaded_modules() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, _] : modules_) out.push_back(name);
  return out;
}

void QosTransport::assign(const std::string& object_key,
                          const std::string& module) {
  load_module(module);
  assignments_[object_key] = module;
  // A (re)assignment is a fresh contract: forget the old failure streak
  // and lift any quarantine so the new binding gets a clean start.
  health_.erase(object_key);
}

void QosTransport::unassign(const std::string& object_key) {
  assignments_.erase(object_key);
  health_.erase(object_key);
}

std::optional<std::string> QosTransport::assignment(
    const std::string& object_key) const {
  auto it = assignments_.find(object_key);
  if (it == assignments_.end()) return std::nullopt;
  return it->second;
}

orb::ReplyMessage QosTransport::route(const orb::ObjRef& target,
                                      orb::RequestMessage req) {
  auto it = assignments_.find(target.object_key);
  if (it != assignments_.end()) {
    if (degradation_.has_value() && quarantined_now(target.object_key)) {
      // Graceful degradation: the assigned mechanism keeps failing, so
      // traffic takes the plain path until the quarantine lifts (or the
      // adaptation engine renegotiates the agreement).
      ++stats_.requests_degraded;
      trace::SpanScope span("transport.degraded", it->second);
      return orb_.invoke_plain(target.endpoint, std::move(req));
    }
    QosModule* module = find_module(it->second);
    if (module != nullptr) {
      if (!degradation_.has_value()) {
        ++stats_.requests_via_module;
        trace::SpanScope span("transport.module", it->second);
        return module->invoke(std::move(req), target);
      }
      // Failure tracking needs the pristine request for the plain-path
      // fallback: the module may have partially transformed (or consumed)
      // `req` before throwing. One copy, only while degradation is on.
      // A request whose module attempt fails counts as degraded, not as
      // via_module — each request lands in exactly one counter.
      orb::RequestMessage pristine = req;
      try {
        trace::SpanScope span("transport.module", it->second);
        orb::ReplyMessage rep = module->invoke(std::move(req), target);
        health_.erase(target.object_key);
        ++stats_.requests_via_module;
        return rep;
      } catch (const Error& e) {
        trace::note_error(e.what());
        on_module_failure(target.object_key, it->second, e.what());
        ++stats_.requests_degraded;
        trace::SpanScope fallback("transport.degraded", it->second);
        return orb_.invoke_plain(target.endpoint, std::move(pristine));
      }
    }
    // An *assigned* module missing from the table is a broken binding —
    // not the deliberate unassigned fallback below. Count it apart so it
    // cannot hide in fallback noise.
    ++stats_.requests_module_missing;
    MAQS_WARN() << "qos-transport " << orb_.endpoint().to_string()
                << ": assigned module '" << it->second << "' for "
                << target.object_key
                << " is not loaded; routing plain";
    trace::SpanScope span("transport.plain", it->second);
    return orb_.invoke_plain(target.endpoint, std::move(req));
  }
  // "If a QoS module is not assigned to a client server relationship the
  // GIOP/IIOP module is used" — the bootstrap path for negotiation and
  // QoS-to-QoS traffic.
  ++stats_.requests_fallback_plain;
  trace::SpanScope span("transport.plain");
  return orb_.invoke_plain(target.endpoint, std::move(req));
}

void QosTransport::set_degradation(std::optional<DegradationConfig> config) {
  degradation_ = config;
  health_.clear();
}

bool QosTransport::is_quarantined(const std::string& object_key) const {
  auto it = health_.find(object_key);
  return it != health_.end() && it->second.quarantined &&
         orb_.loop().now() < it->second.release_at;
}

bool QosTransport::quarantined_now(const std::string& object_key) {
  auto it = health_.find(object_key);
  if (it == health_.end() || !it->second.quarantined) return false;
  if (orb_.loop().now() < it->second.release_at) return true;
  // Quarantine expired: give the module a fresh (zero-streak) chance.
  health_.erase(it);
  return false;
}

void QosTransport::on_module_failure(const std::string& object_key,
                                     const std::string& module,
                                     const std::string& reason) {
  ModuleHealth& health = health_[object_key];
  ++health.consecutive_failures;
  if (health.quarantined ||
      health.consecutive_failures < degradation_->failure_threshold) {
    return;
  }
  health.quarantined = true;
  health.release_at = orb_.loop().now() + degradation_->quarantine_period;
  ++stats_.modules_quarantined;
  MAQS_WARN() << "qos-transport " << orb_.endpoint().to_string()
              << ": quarantining module '" << module << "' for "
              << object_key << " after " << health.consecutive_failures
              << " consecutive failures: " << reason;
  if (trace::tracing_active()) {
    trace::point("transport.quarantine", module + " for " + object_key);
  }
  if (degradation_handler_) {
    // Fresh tick: the handler renegotiates (nested pumping) and must not
    // run inside the failing invocation's stack.
    orb_.loop().schedule(
        0, [this, module, object_key, reason] {
          if (degradation_handler_) {
            degradation_handler_(module, object_key, reason);
          }
        });
  }
}

std::optional<orb::ReplyMessage> QosTransport::inbound(
    orb::RequestMessage& req, const net::Address& from) {
  if (req.kind == orb::RequestKind::kCommand) {
    // Module-command or transport-command ("Modul-Command" vs
    // "Transport-Command" in Fig. 3).
    trace::SpanScope span("transport.command", req.operation);
    try {
      const std::vector<cdr::Any> args = orb::decode_command_args(req.body);
      if (req.target_module.empty()) {
        ++stats_.commands_to_transport;
        return command_reply(req.request_id,
                             transport_command(req.operation, args));
      }
      if (auto handler = command_handlers_.find(req.target_module);
          handler != command_handlers_.end()) {
        ++stats_.commands_to_transport;
        return command_reply(req.request_id,
                             handler->second(req.operation, args, from));
      }
      ++stats_.commands_to_module;
      // Dynamic loading on request: a command addressed to an unloaded
      // module loads it first.
      QosModule& module = load_module(req.target_module);
      return command_reply(req.request_id, module.command(req.operation, args));
    } catch (const Error& e) {
      trace::note_error(e.what());
      return command_error(req.request_id, e.what());
    }
  }

  // QoS-aware service request: undo the peer module's payload transform.
  auto tag = req.context.find(kModuleContextKey);
  if (tag != req.context.end()) {
    // Probe the module table straight from the tag bytes; only the first
    // frame from a not-yet-loaded module pays a string allocation.
    const std::string_view module_name(
        reinterpret_cast<const char*>(tag->second.data()),
        tag->second.size());
    try {
      QosModule* module = find_module(module_name);
      if (module == nullptr) module = &load_module(std::string(module_name));
      module->restore_request(req);
      ++stats_.inbound_module_transforms;
    } catch (const Error& e) {
      trace::note_error(e.what());
      return command_error(req.request_id,
                           std::string("qos-transport inbound: ") + e.what());
    }
  }
  return std::nullopt;
}

void QosTransport::outbound(const orb::RequestMessage& req,
                            orb::ReplyMessage& rep) {
  auto tag = req.context.find(kModuleContextKey);
  if (tag == req.context.end()) return;
  const std::string_view module_name(
      reinterpret_cast<const char*>(tag->second.data()), tag->second.size());
  if (QosModule* module = find_module(module_name)) {
    module->transform_reply(req, rep);
  }
}

cdr::Any QosTransport::transport_command(const std::string& op,
                                         const std::vector<cdr::Any>& args) {
  auto string_arg = [&](std::size_t i) -> const std::string& {
    if (i >= args.size()) {
      throw QosError("transport command " + op + ": missing argument " +
                     std::to_string(i));
    }
    return args[i].as_string();
  };
  if (op == "ping") {
    return cdr::Any::from_string("pong");
  }
  if (op == "load_module") {
    load_module(string_arg(0));
    return cdr::Any::make_void();
  }
  if (op == "unload_module") {
    unload_module(string_arg(0));
    return cdr::Any::make_void();
  }
  if (op == "list_modules") {
    std::vector<cdr::Any> names;
    for (const auto& name : loaded_modules()) {
      names.push_back(cdr::Any::from_string(name));
    }
    return cdr::Any::from_sequence(cdr::TypeCode::string_tc(),
                                   std::move(names));
  }
  if (op == "assign") {
    assign(string_arg(0), string_arg(1));
    return cdr::Any::make_void();
  }
  if (op == "unassign") {
    unassign(string_arg(0));
    return cdr::Any::make_void();
  }
  throw QosError("qos-transport: unknown transport command '" + op + "'");
}

void QosTransport::set_command_handler(const std::string& target,
                                       CommandHandler handler) {
  if (handler) {
    command_handlers_[target] = std::move(handler);
  } else {
    command_handlers_.erase(target);
  }
}

orb::ReplyMessage QosTransport::command_reply(std::uint64_t request_id,
                                              const cdr::Any& result) {
  orb::ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = orb::ReplyStatus::kOk;
  if (result.kind() != cdr::TCKind::kVoid) {
    cdr::Encoder enc;
    result.encode(enc);
    rep.body = enc.take();
  }
  return rep;
}

orb::ReplyMessage QosTransport::command_error(std::uint64_t request_id,
                                              const std::string& what) {
  orb::ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = orb::ReplyStatus::kSystemException;
  rep.exception = what;
  return rep;
}

}  // namespace maqs::core

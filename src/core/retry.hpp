// Fault classification and retry policy for the invocation layer.
//
// The paper's framework promises that QoS mechanisms degrade gracefully:
// when a mechanism fails, the framework falls back and renegotiates rather
// than surfacing every transient fault to the application. The first step
// of that story is knowing *what* failed. A locally synthesized fault
// (timeout, circuit-breaker rejection) tells us the delivery state — a
// timeout means "unknown whether the server executed", a breaker fast-fail
// means "provably never sent" — while a remote exception proves the request
// executed (or was rejected) server-side. classify_fault() reads that
// provenance off ReplyMessage::synthesized_locally; RetryPolicy decides
// which classes are safe to retry; RetryGovernor implements the ORB's
// RetryAdvisor hook with deterministic (seeded) exponential backoff that
// never exceeds the caller's deadline budget.
#pragma once

#include <cstdint>
#include <optional>

#include "orb/orb.hpp"
#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace maqs::core {

/// What a SYSTEM_EXCEPTION reply actually tells us about the attempt.
enum class FaultKind : std::uint8_t {
  kNone,             ///< not a fault (reply is not a SYSTEM_EXCEPTION)
  kLocalTimeout,     ///< local timer fired; server may or may not have run
  kCircuitOpen,      ///< breaker fast-fail; request provably never sent
  kLocalFault,       ///< other locally synthesized transport fault
  kRemoteException,  ///< server-raised; the request reached the server
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// Classifies a reply by provenance (synthesized_locally) and exception id.
FaultKind classify_fault(const orb::ReplyMessage& rep) noexcept;

/// Declarative retry policy. Defaults model an idempotent operation.
struct RetryPolicy {
  /// Total attempts, including the first (1 = never retry).
  int max_attempts = 4;
  /// Backoff before attempt 2; doubles (times `multiplier`) per attempt.
  sim::Duration initial_backoff = 2 * sim::kMillisecond;
  double multiplier = 2.0;
  /// Upper clamp on any single backoff.
  sim::Duration max_backoff = 200 * sim::kMillisecond;
  /// Jitter fraction: each backoff is scaled by a factor drawn uniformly
  /// from [1 - jitter, 1 + jitter] (deterministic for a fixed seed).
  double jitter = 0.2;
  /// Hard budget on elapsed-plus-backoff virtual time; 0 = unlimited.
  /// A retry whose backoff would push past the budget is not attempted.
  sim::Duration deadline_budget = 0;

  // Which fault classes are worth another attempt.
  bool retry_local_timeouts = true;
  bool retry_circuit_open = true;
  bool retry_remote = false;

  bool should_retry(FaultKind kind) const noexcept;

  /// Safe default for idempotent operations: retries timeouts and breaker
  /// rejections, never remote exceptions.
  static RetryPolicy idempotent();
  /// At-most-once semantics: retries only faults where the request
  /// provably never left this process (circuit open). A timeout leaves
  /// the server-side execution state unknown, so it is surfaced.
  static RetryPolicy at_most_once();
};

/// The core-side implementation of orb::RetryAdvisor: install on an ORB
/// with orb.set_retry_advisor(&governor). One governor serves every
/// endpoint; the backoff schedule is a pure function of (policy, seed,
/// consult sequence), so a fixed seed reproduces identical schedules.
class RetryGovernor final : public orb::RetryAdvisor {
 public:
  explicit RetryGovernor(RetryPolicy policy, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  std::optional<sim::Duration> on_attempt_failed(
      const net::Address& dest, const orb::RequestMessage& req,
      const orb::ReplyMessage& rep, int attempt,
      sim::Duration elapsed) override;

  const RetryPolicy& policy() const noexcept { return policy_; }
  /// Retries granted over this governor's lifetime.
  std::uint64_t retries_granted() const noexcept { return retries_granted_; }
  /// Retries denied by policy class, attempt cap, or deadline budget.
  std::uint64_t retries_denied() const noexcept { return retries_denied_; }

  /// The backoff (before jitter) for the retry following `attempt`.
  sim::Duration base_backoff(int attempt) const noexcept;

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  std::uint64_t retries_granted_ = 0;
  std::uint64_t retries_denied_ = 0;
};

}  // namespace maqs::core

#include "core/negotiation.hpp"

#include <algorithm>

#include "core/adaptation.hpp"
#include "orb/dii.hpp"
#include "util/log.hpp"

namespace maqs::core {

namespace {

/// Heterogeneous tuple as a self-describing struct Any (member names are
/// positional; only structure matters on the wire).
cdr::Any make_tuple_any(std::vector<cdr::Any> items) {
  std::vector<std::pair<std::string, cdr::TypeCodePtr>> members;
  members.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    members.emplace_back("f" + std::to_string(i), items[i].type());
  }
  return cdr::Any::from_struct(
      cdr::TypeCode::struct_tc("tuple", std::move(members)),
      std::move(items));
}

const std::string& arg_string(const std::vector<cdr::Any>& args,
                              std::size_t i) {
  if (i >= args.size()) {
    throw QosError("negotiation: missing argument " + std::to_string(i));
  }
  return args[i].as_string();
}

std::int64_t arg_int(const std::vector<cdr::Any>& args, std::size_t i) {
  if (i >= args.size()) {
    throw QosError("negotiation: missing argument " + std::to_string(i));
  }
  return args[i].as_integer();
}

}  // namespace

std::vector<cdr::Any> encode_params(
    const std::map<std::string, cdr::Any>& params) {
  std::vector<cdr::Any> out;
  out.reserve(params.size() * 2);
  for (const auto& [name, value] : params) {
    out.push_back(cdr::Any::from_string(name));
    out.push_back(value);
  }
  return out;
}

std::map<std::string, cdr::Any> decode_params(
    const std::vector<cdr::Any>& anys, std::size_t offset) {
  if ((anys.size() - offset) % 2 != 0) {
    throw QosError("negotiation: odd param list");
  }
  std::map<std::string, cdr::Any> out;
  for (std::size_t i = offset; i + 1 < anys.size(); i += 2) {
    out[anys[i].as_string()] = anys[i + 1];
  }
  return out;
}

// ---- NegotiationService ----

const std::string& NegotiationService::command_target() {
  static const std::string kTarget = "maqs.negotiator";
  return kTarget;
}

NegotiationService::NegotiationService(QosTransport& transport,
                                       const ProviderRegistry& providers,
                                       ResourceManager& resources)
    : transport_(transport), providers_(providers), resources_(resources) {
  transport_.set_command_handler(
      command_target(),
      [this](const std::string& op, const std::vector<cdr::Any>& args,
             const net::Address& from) {
        return handle_command(op, args, from);
      });
}

NegotiationService::~NegotiationService() {
  transport_.set_command_handler(command_target(), nullptr);
}

cdr::Any NegotiationService::handle_command(const std::string& op,
                                            const std::vector<cdr::Any>& args,
                                            const net::Address& from) {
  if (op == "negotiate") return handle_negotiate(args, from);
  if (op == "renegotiate") return handle_renegotiate(args);
  if (op == "terminate") return handle_terminate(args);
  throw QosError("negotiation: unknown command '" + op + "'");
}

cdr::Any NegotiationService::result_any(
    bool accepted, std::uint64_t agreement_id, const std::string& message,
    const std::map<std::string, cdr::Any>& params) {
  std::vector<cdr::Any> items;
  items.push_back(cdr::Any::from_string(accepted ? "accepted" : message));
  items.push_back(
      cdr::Any::from_longlong(static_cast<std::int64_t>(agreement_id)));
  for (cdr::Any& any : encode_params(params)) items.push_back(std::move(any));
  return make_tuple_any(std::move(items));
}

AdmissionDecision NegotiationService::admit(
    const CharacteristicProvider& provider,
    const std::map<std::string, cdr::Any>& params) {
  if (policy_) return policy_(provider, params, resources_);

  // Default policy: reserve the declared demand; when it does not fit,
  // counter-offer the characteristic's minimal integral levels.
  if (!provider.resource_demand) return {};
  const ResourceDemand demand = provider.resource_demand(params);
  for (const auto& [resource, _] : demand) {
    if (!resources_.is_declared(resource)) {
      return {AdmissionDecision::Kind::kReject,
              {},
              "undeclared resource '" + resource + "'"};
    }
  }
  if (resources_.try_reserve(demand)) {
    // The reservation is recorded by the caller (needs the agreement id);
    // release here and let the caller re-reserve would be racy in a
    // threaded world but is fine single-threaded. Keep it reserved and
    // hand the demand back through the decision.
    AdmissionDecision decision;
    decision.kind = AdmissionDecision::Kind::kAccept;
    return decision;
  }
  // Degrade toward minimal levels.
  std::map<std::string, cdr::Any> counter = params;
  bool degraded = false;
  for (const ParamDesc& param : provider.descriptor.params()) {
    if (!param.min.has_value()) continue;
    auto it = counter.find(param.name);
    if (it == counter.end()) continue;
    if (it->second.as_integer() > *param.min) {
      // Preserve the declared parameter type when lowering the level.
      switch (param.type->kind()) {
        case cdr::TCKind::kShort:
          it->second =
              cdr::Any::from_short(static_cast<std::int16_t>(*param.min));
          break;
        case cdr::TCKind::kLong:
          it->second =
              cdr::Any::from_long(static_cast<std::int32_t>(*param.min));
          break;
        default:
          it->second = cdr::Any::from_longlong(*param.min);
          break;
      }
      degraded = true;
    }
  }
  if (degraded) {
    const ResourceDemand degraded_demand = provider.resource_demand(counter);
    bool fits = true;
    for (const auto& [resource, amount] : degraded_demand) {
      if (!resources_.is_declared(resource) ||
          resources_.available(resource) < amount) {
        fits = false;
        break;
      }
    }
    if (fits) {
      return {AdmissionDecision::Kind::kCounter, std::move(counter), ""};
    }
  }
  return {AdmissionDecision::Kind::kReject, {}, "insufficient resources"};
}

void NegotiationService::apply_server_binding(Agreement& agreement) {
  const CharacteristicProvider& provider =
      providers_.get(agreement.characteristic);
  orb::Orb& orb = transport_.orb();
  std::shared_ptr<orb::Servant> servant =
      orb.adapter().find(agreement.object_key);
  if (!servant) {
    throw NegotiationFailed("negotiation: no such object '" +
                            agreement.object_key + "'");
  }
  auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get());
  if (qos_servant == nullptr) {
    throw NegotiationFailed("negotiation: object '" + agreement.object_key +
                            "' is not QoS-enabled");
  }
  if (!qos_servant->is_assigned(agreement.characteristic)) {
    throw NegotiationFailed("negotiation: characteristic '" +
                            agreement.characteristic +
                            "' is not assigned to interface of '" +
                            agreement.object_key + "'");
  }
  if (provider.module.empty() == false) {
    transport_.load_module(provider.module);
  }
  if (provider.make_impl) {
    std::shared_ptr<QosImpl> impl =
        provider.make_impl(agreement, orb, transport_);
    impl->bind_agreement(agreement);
    // Per-characteristic delegate exchange: other negotiated
    // characteristics on the same object keep their delegates.
    qos_servant->install_impl(std::move(impl));
  }
}

cdr::Any NegotiationService::handle_negotiate(
    const std::vector<cdr::Any>& args, const net::Address& from) {
  const std::string characteristic = arg_string(args, 0);
  const std::string object_key = arg_string(args, 1);
  const CharacteristicProvider* provider = providers_.find(characteristic);
  if (provider == nullptr) {
    return result_any(false, 0, "unknown characteristic", {});
  }
  std::map<std::string, cdr::Any> params;
  try {
    params = provider->descriptor.validate_params(decode_params(args, 2));
  } catch (const QosError& e) {
    return result_any(false, 0, e.what(), {});
  }

  AdmissionDecision decision = admit(*provider, params);
  switch (decision.kind) {
    case AdmissionDecision::Kind::kReject:
      return result_any(false, 0,
                        decision.reason.empty() ? "rejected"
                                                : decision.reason,
                        {});
    case AdmissionDecision::Kind::kCounter:
      return result_any(false, 0, "counter", decision.counter_params);
    case AdmissionDecision::Kind::kAccept:
      break;
  }

  Agreement draft;
  draft.characteristic = characteristic;
  draft.object_key = object_key;
  draft.client = from.to_string();
  draft.params = params;
  draft.state = AgreementState::kActive;
  Agreement& agreement = agreements_.create(std::move(draft));
  try {
    apply_server_binding(agreement);
  } catch (const Error& e) {
    if (provider->resource_demand) {
      resources_.release(provider->resource_demand(params));
    }
    agreements_.terminate(agreement.id);
    return result_any(false, 0, e.what(), {});
  }
  client_endpoints_[agreement.id] = from;
  if (provider->resource_demand) {
    reservations_[agreement.id] = provider->resource_demand(params);
  }
  MAQS_INFO() << "negotiated agreement " << agreement.id << " ("
              << characteristic << ") for " << object_key;
  return result_any(true, agreement.id, "", agreement.params);
}

cdr::Any NegotiationService::handle_renegotiate(
    const std::vector<cdr::Any>& args) {
  const std::uint64_t id = static_cast<std::uint64_t>(arg_int(args, 0));
  Agreement* agreement = agreements_.find(id);
  if (agreement == nullptr ||
      agreement->state == AgreementState::kTerminated) {
    return result_any(false, id, "unknown agreement", {});
  }
  const CharacteristicProvider& provider =
      providers_.get(agreement->characteristic);
  std::map<std::string, cdr::Any> params;
  try {
    params = provider.descriptor.validate_params(decode_params(args, 1));
  } catch (const QosError& e) {
    return result_any(false, id, e.what(), {});
  }

  // Swap the reservation: release the old demand, admit the new one.
  const auto old_reservation = reservations_.find(id);
  if (old_reservation != reservations_.end()) {
    resources_.release(old_reservation->second);
  }
  AdmissionDecision decision = admit(provider, params);
  if (decision.kind != AdmissionDecision::Kind::kAccept) {
    // Restore the previous reservation; the old level keeps running
    // (unless this renegotiation was violation-driven, in which case the
    // client will try again or terminate).
    if (old_reservation != reservations_.end()) {
      resources_.try_reserve(old_reservation->second);
    }
    return result_any(false, id,
                      decision.kind == AdmissionDecision::Kind::kCounter
                          ? "counter"
                          : decision.reason,
                      decision.counter_params);
  }
  agreement->params = params;
  agreement->state = AgreementState::kActive;
  if (provider.resource_demand) {
    reservations_[id] = provider.resource_demand(params);
  }
  // Rebind the server-side implementation at the new level.
  if (auto servant = transport_.orb().adapter().find(agreement->object_key)) {
    if (auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get())) {
      if (auto impl = qos_servant->impl_for(agreement->characteristic)) {
        impl->bind_agreement(*agreement);
      }
    }
  }
  return result_any(true, id, "", agreement->params);
}

cdr::Any NegotiationService::handle_terminate(
    const std::vector<cdr::Any>& args) {
  const std::uint64_t id = static_cast<std::uint64_t>(arg_int(args, 0));
  Agreement* agreement = agreements_.find(id);
  if (agreement == nullptr ||
      agreement->state == AgreementState::kTerminated) {
    return cdr::Any::make_void();
  }
  auto reservation = reservations_.find(id);
  if (reservation != reservations_.end()) {
    resources_.release(reservation->second);
    reservations_.erase(reservation);
  }
  // Remove the server-side delegate if it belongs to this agreement.
  if (auto servant = transport_.orb().adapter().find(agreement->object_key)) {
    if (auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get())) {
      auto impl = qos_servant->impl_for(agreement->characteristic);
      if (impl && impl->agreement().id == id) {
        qos_servant->remove_impl(agreement->characteristic);
      }
    }
  }
  client_endpoints_.erase(id);
  agreements_.terminate(id);
  return cdr::Any::make_void();
}

void NegotiationService::notify_violation(std::uint64_t agreement_id,
                                          const std::string& reason) {
  Agreement* agreement = agreements_.find(agreement_id);
  if (agreement == nullptr) {
    throw QosError("negotiation: violation on unknown agreement " +
                   std::to_string(agreement_id));
  }
  agreement->state = AgreementState::kViolated;
  auto endpoint = client_endpoints_.find(agreement_id);
  if (endpoint == client_endpoints_.end()) return;

  // Push asynchronously over the middleware: a command addressed to the
  // client transport's adaptation handler (QoS-to-QoS, §3.2).
  orb::RequestMessage cmd;
  cmd.kind = orb::RequestKind::kCommand;
  cmd.qos_aware = true;
  cmd.target_module = AdaptationManager::command_target();
  cmd.operation = "violation";
  cmd.body = orb::encode_command_args(
      {cdr::Any::from_longlong(static_cast<std::int64_t>(agreement_id)),
       cdr::Any::from_string(agreement->characteristic),
       cdr::Any::from_string(reason)});
  transport_.orb().send_request(endpoint->second, std::move(cmd),
                                [](const orb::ReplyMessage&) {});
}

std::vector<std::uint64_t> NegotiationService::shed_overload(
    const std::string& resource) {
  std::vector<std::uint64_t> violated;
  while (resources_.is_declared(resource) &&
         resources_.reserved(resource) > resources_.capacity(resource)) {
    // Newest agreement holding this resource loses first.
    std::uint64_t victim = 0;
    for (const auto& [id, demand] : reservations_) {
      auto it = demand.find(resource);
      if (it == demand.end() || it->second <= 0) continue;
      const Agreement* agreement = agreements_.find(id);
      if (agreement == nullptr ||
          agreement->state != AgreementState::kActive) {
        continue;
      }
      victim = std::max(victim, id);
    }
    if (victim == 0) break;
    resources_.release(reservations_[victim]);
    reservations_.erase(victim);
    notify_violation(victim, "resource overload: " + resource);
    violated.push_back(victim);
  }
  return violated;
}

// ---- ClientPreferences ----

bool ClientPreferences::acceptable(
    const std::map<std::string, cdr::Any>& params) const {
  for (const auto& [name, bound] : bounds) {
    auto it = params.find(name);
    if (it == params.end()) continue;
    const std::int64_t v = it->second.as_integer();
    if (bound.min.has_value() && v < *bound.min) return false;
    if (bound.max.has_value() && v > *bound.max) return false;
  }
  return true;
}

// ---- Negotiator ----

Negotiator::Negotiator(QosTransport& transport,
                       const ProviderRegistry& providers)
    : transport_(transport), providers_(providers) {}

namespace {
struct NegotiationResult {
  std::string kind;  // "accepted" | "counter" | reject reason
  std::uint64_t agreement_id = 0;
  std::map<std::string, cdr::Any> params;
};

NegotiationResult parse_result(const cdr::Any& any) {
  const std::vector<cdr::Any>& items = any.as_elements();
  if (items.size() < 2) throw QosError("negotiation: malformed result");
  NegotiationResult result;
  result.kind = items[0].as_string();
  result.agreement_id =
      static_cast<std::uint64_t>(items[1].as_longlong());
  result.params = decode_params(items, 2);
  return result;
}
}  // namespace

Agreement Negotiator::negotiate(orb::StubBase& stub,
                                const std::string& characteristic,
                                const std::map<std::string, cdr::Any>& params,
                                const ClientPreferences* prefs) {
  const orb::ObjRef& ref = stub.ref();
  std::vector<cdr::Any> args{cdr::Any::from_string(characteristic),
                             cdr::Any::from_string(ref.object_key)};
  for (cdr::Any& any : encode_params(params)) args.push_back(std::move(any));

  NegotiationResult result = parse_result(
      orb::send_command(stub.orb(), ref.endpoint,
                        NegotiationService::command_target(), "negotiate",
                        args));

  if (result.kind == "counter") {
    if (prefs != nullptr && !prefs->acceptable(result.params)) {
      throw NegotiationFailed(
          "negotiation: counter-offer outside client preferences for " +
          characteristic);
    }
    // Confirmation round at the server's counter level.
    std::vector<cdr::Any> confirm{cdr::Any::from_string(characteristic),
                                  cdr::Any::from_string(ref.object_key)};
    for (cdr::Any& any : encode_params(result.params)) {
      confirm.push_back(std::move(any));
    }
    result = parse_result(
        orb::send_command(stub.orb(), ref.endpoint,
                          NegotiationService::command_target(), "negotiate",
                          confirm));
  }
  if (result.kind != "accepted") {
    throw NegotiationFailed("negotiation rejected for " + characteristic +
                            ": " + result.kind);
  }

  Agreement agreement;
  agreement.id = result.agreement_id;
  agreement.characteristic = characteristic;
  agreement.object_key = ref.object_key;
  agreement.client = stub.orb().endpoint().to_string();
  agreement.params = std::move(result.params);
  agreement.state = AgreementState::kActive;
  apply_client_binding(stub, agreement);
  return agreement;
}

Agreement Negotiator::renegotiate(
    orb::StubBase& stub, const Agreement& agreement,
    const std::map<std::string, cdr::Any>& params) {
  std::vector<cdr::Any> args{
      cdr::Any::from_longlong(static_cast<std::int64_t>(agreement.id))};
  for (cdr::Any& any : encode_params(params)) args.push_back(std::move(any));
  NegotiationResult result = parse_result(orb::send_command(
      stub.orb(), stub.ref().endpoint, NegotiationService::command_target(),
      "renegotiate", args));
  if (result.kind != "accepted") {
    throw NegotiationFailed("renegotiation rejected for agreement " +
                            std::to_string(agreement.id) + ": " +
                            result.kind);
  }
  Agreement updated = agreement;
  updated.params = std::move(result.params);
  updated.state = AgreementState::kActive;
  // Rebind the installed mediator at the new level.
  if (auto composite =
          std::dynamic_pointer_cast<CompositeMediator>(stub.mediator())) {
    if (auto mediator = composite->find(agreement.characteristic)) {
      mediator->bind_agreement(updated);
    }
  }
  return updated;
}

void Negotiator::terminate(orb::StubBase& stub, const Agreement& agreement) {
  orb::send_command(
      stub.orb(), stub.ref().endpoint, NegotiationService::command_target(),
      "terminate",
      {cdr::Any::from_longlong(static_cast<std::int64_t>(agreement.id))});
  if (auto composite =
          std::dynamic_pointer_cast<CompositeMediator>(stub.mediator())) {
    composite->remove(agreement.characteristic);
  }
  const CharacteristicProvider* provider =
      providers_.find(agreement.characteristic);
  if (provider != nullptr && !provider->module.empty()) {
    transport_.unassign(agreement.object_key);
  }
}

void Negotiator::apply_client_binding(orb::StubBase& stub,
                                      const Agreement& agreement) {
  const CharacteristicProvider& provider =
      providers_.get(agreement.characteristic);
  if (provider.make_mediator) {
    std::shared_ptr<Mediator> mediator =
        provider.make_mediator(agreement, stub.orb(), transport_);
    mediator->bind_agreement(agreement);
    std::shared_ptr<CompositeMediator> composite =
        std::dynamic_pointer_cast<CompositeMediator>(stub.mediator());
    if (!composite) {
      if (stub.mediator()) {
        throw QosError(
            "negotiator: stub already carries a non-composite mediator");
      }
      composite = std::make_shared<CompositeMediator>();
      stub.set_mediator(composite);
    }
    composite->remove(agreement.characteristic);
    composite->add(std::move(mediator));
  }
  if (!provider.module.empty()) {
    transport_.assign(agreement.object_key, provider.module);
  }
  if (provider.client_setup) {
    provider.client_setup(agreement, stub.ref(), stub.orb(), transport_);
  }
}

}  // namespace maqs::core

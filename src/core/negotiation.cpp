#include "core/negotiation.hpp"

#include <algorithm>

#include "core/adaptation.hpp"
#include "orb/dii.hpp"
#include "util/log.hpp"

namespace maqs::core {

namespace {

const std::string& arg_string(const std::vector<cdr::Any>& args,
                              std::size_t i) {
  if (i >= args.size()) {
    throw QosError("negotiation: missing argument " + std::to_string(i));
  }
  return args[i].as_string();
}

std::int64_t arg_int(const std::vector<cdr::Any>& args, std::size_t i) {
  if (i >= args.size()) {
    throw QosError("negotiation: missing argument " + std::to_string(i));
  }
  return args[i].as_integer();
}

const cdr::Any& arg_any(const std::vector<cdr::Any>& args, std::size_t i) {
  if (i >= args.size()) {
    throw QosError("negotiation: missing argument " + std::to_string(i));
  }
  return args[i];
}

/// scalars + chosen dimension values, dimension values winning.
std::map<std::string, cdr::Any> flatten_point(
    const std::map<std::string, cdr::Any>& scalars,
    const CapabilityMatrix& matrix) {
  std::map<std::string, cdr::Any> out = scalars;
  for (auto& [name, value] : matrix.chosen_params()) {
    out[name] = std::move(value);
  }
  return out;
}

bool demand_fits(const ResourceManager& resources,
                 const ResourceDemand& demand) {
  for (const auto& [resource, amount] : demand) {
    if (!resources.is_declared(resource) ||
        resources.available(resource) < amount) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<cdr::Any> encode_params(
    const std::map<std::string, cdr::Any>& params) {
  std::vector<cdr::Any> out;
  out.reserve(params.size() * 2);
  for (const auto& [name, value] : params) {
    out.push_back(cdr::Any::from_string(name));
    out.push_back(value);
  }
  return out;
}

std::map<std::string, cdr::Any> decode_params(
    const std::vector<cdr::Any>& anys, std::size_t offset) {
  if ((anys.size() - offset) % 2 != 0) {
    throw QosError("negotiation: odd param list");
  }
  std::map<std::string, cdr::Any> out;
  for (std::size_t i = offset; i + 1 < anys.size(); i += 2) {
    out[anys[i].as_string()] = anys[i + 1];
  }
  return out;
}

// ---- shared offer review ----

OfferReview review_offer(const CharacteristicProvider& provider,
                         ResourceManager& resources,
                         const AdmissionPolicy& policy,
                         CapabilityMatrix offer,
                         const std::map<std::string, cdr::Any>& proposed) {
  OfferReview review;
  review.scalars = provider.descriptor.validate_params(proposed);
  provider.descriptor.validate_matrix(offer);

  if (policy) {
    AdmissionDecision decision =
        policy(provider, flatten_point(review.scalars, offer), resources);
    review.kind = decision.kind;
    review.reason = std::move(decision.reason);
    review.matrix = std::move(offer);
    if (decision.kind == AdmissionDecision::Kind::kCounter) {
      for (const auto& [name, value] : decision.counter_params) {
        if (!review.matrix.choose(name, value)) {
          review.scalars[name] = value;
        }
      }
    }
    review.flattened = flatten_point(review.scalars, review.matrix);
    if (decision.kind == AdmissionDecision::Kind::kAccept &&
        provider.resource_demand) {
      // An accepting policy reserved its own demand; record it.
      review.demand = provider.resource_demand(review.flattened);
      review.reserved = true;
    }
    return review;
  }

  if (!provider.resource_demand) {
    review.kind = AdmissionDecision::Kind::kAccept;
    review.matrix = std::move(offer);
    review.flattened = flatten_point(review.scalars, review.matrix);
    return review;
  }

  // Walk the offered lattice from the chosen point down: the first point
  // whose demand both names only declared resources and fits the budget
  // wins. Fitting at the offered point itself is an accept (and the
  // demand stays reserved); anything lower is a counter-offer.
  CapabilityMatrix candidate = offer;
  while (true) {
    const std::map<std::string, cdr::Any> flat =
        flatten_point(review.scalars, candidate);
    const ResourceDemand demand = provider.resource_demand(flat);
    for (const auto& [resource, _] : demand) {
      if (!resources.is_declared(resource)) {
        review.kind = AdmissionDecision::Kind::kReject;
        review.reason = "undeclared resource '" + resource + "'";
        return review;
      }
    }
    if (resources.try_reserve(demand)) {
      if (candidate.same_point(offer)) {
        review.kind = AdmissionDecision::Kind::kAccept;
        review.matrix = std::move(candidate);
        review.flattened = flat;
        review.demand = demand;
        review.reserved = true;
      } else {
        // Counter: the client has to confirm before anything is held.
        resources.release(demand);
        review.kind = AdmissionDecision::Kind::kCounter;
        review.matrix = std::move(candidate);
        review.flattened = flat;
      }
      return review;
    }
    if (!candidate.degrade_step().has_value()) break;
  }

  // Lattice exhausted: fall back to degrading integral scalar params
  // toward their minima (the legacy scalar counter).
  std::map<std::string, cdr::Any> counter = review.scalars;
  bool degraded = false;
  for (const ParamDesc& param : provider.descriptor.params()) {
    if (!param.min.has_value()) continue;
    auto it = counter.find(param.name);
    if (it == counter.end()) continue;
    if (it->second.as_integer() > *param.min) {
      // Preserve the declared parameter type when lowering the level.
      switch (param.type->kind()) {
        case cdr::TCKind::kShort:
          it->second =
              cdr::Any::from_short(static_cast<std::int16_t>(*param.min));
          break;
        case cdr::TCKind::kLong:
          it->second =
              cdr::Any::from_long(static_cast<std::int32_t>(*param.min));
          break;
        default:
          it->second = cdr::Any::from_longlong(*param.min);
          break;
      }
      degraded = true;
    }
  }
  if (degraded) {
    const std::map<std::string, cdr::Any> flat =
        flatten_point(counter, candidate);
    if (demand_fits(resources, provider.resource_demand(flat))) {
      review.kind = AdmissionDecision::Kind::kCounter;
      review.matrix = std::move(candidate);
      review.scalars = std::move(counter);
      review.flattened = flat;
      return review;
    }
  }
  review.kind = AdmissionDecision::Kind::kReject;
  review.reason = "insufficient resources";
  return review;
}

// ---- NegotiationService ----

const std::string& NegotiationService::command_target() {
  static const std::string kTarget = "maqs.negotiator";
  return kTarget;
}

NegotiationService::NegotiationService(QosTransport& transport,
                                       const ProviderRegistry& providers,
                                       ResourceManager& resources)
    : transport_(transport), providers_(providers), resources_(resources) {
  transport_.set_command_handler(
      command_target(),
      [this](const std::string& op, const std::vector<cdr::Any>& args,
             const net::Address& from) {
        return handle_command(op, args, from);
      });
}

NegotiationService::~NegotiationService() {
  transport_.set_command_handler(command_target(), nullptr);
}

cdr::Any NegotiationService::handle_command(const std::string& op,
                                            const std::vector<cdr::Any>& args,
                                            const net::Address& from) {
  if (op == "negotiate") return handle_negotiate(args, from);
  if (op == "renegotiate") return handle_renegotiate(args);
  if (op == "terminate") return handle_terminate(args);
  throw QosError("negotiation: unknown command '" + op + "'");
}

cdr::Any NegotiationService::result_any(
    bool accepted, std::uint64_t agreement_id, const std::string& message,
    const CapabilityMatrix& matrix,
    const std::map<std::string, cdr::Any>& params) {
  std::vector<cdr::Any> items;
  items.push_back(cdr::Any::from_string(accepted ? "accepted" : message));
  items.push_back(
      cdr::Any::from_longlong(static_cast<std::int64_t>(agreement_id)));
  items.push_back(matrix.to_any());
  for (cdr::Any& any : encode_params(params)) items.push_back(std::move(any));
  return make_tuple_any(std::move(items));
}

void NegotiationService::apply_server_binding(Agreement& agreement) {
  const CharacteristicProvider& provider =
      providers_.get(agreement.characteristic);
  orb::Orb& orb = transport_.orb();
  std::shared_ptr<orb::Servant> servant =
      orb.adapter().find(agreement.object_key);
  if (!servant) {
    throw NegotiationFailed("negotiation: no such object '" +
                            agreement.object_key + "'");
  }
  auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get());
  if (qos_servant == nullptr) {
    throw NegotiationFailed("negotiation: object '" + agreement.object_key +
                            "' is not QoS-enabled");
  }
  if (!qos_servant->is_assigned(agreement.characteristic)) {
    throw NegotiationFailed("negotiation: characteristic '" +
                            agreement.characteristic +
                            "' is not assigned to interface of '" +
                            agreement.object_key + "'");
  }
  if (provider.module.empty() == false) {
    transport_.load_module(provider.module);
  }
  if (provider.make_impl) {
    std::shared_ptr<QosImpl> impl =
        provider.make_impl(agreement, orb, transport_);
    impl->bind_agreement(agreement);
    // Per-characteristic delegate exchange: other negotiated
    // characteristics on the same object keep their delegates.
    qos_servant->install_impl(std::move(impl));
  }
}

cdr::Any NegotiationService::handle_negotiate(
    const std::vector<cdr::Any>& args, const net::Address& from) {
  const std::string characteristic = arg_string(args, 0);
  const std::string object_key = arg_string(args, 1);
  const std::string phase = arg_string(args, 2);  // "offer" | "accept"
  if (phase != "offer" && phase != "accept") {
    return result_any(false, 0, "unknown negotiation phase '" + phase + "'",
                      {}, {});
  }
  const CharacteristicProvider* provider = providers_.find(characteristic);
  if (provider == nullptr) {
    return result_any(false, 0, "unknown characteristic", {}, {});
  }
  OfferReview review;
  try {
    review = review_offer(*provider, resources_, policy_,
                          CapabilityMatrix::from_any(arg_any(args, 3)),
                          decode_params(args, 4));
  } catch (const QosError& e) {
    return result_any(false, 0, e.what(), {}, {});
  }
  switch (review.kind) {
    case AdmissionDecision::Kind::kReject:
      return result_any(
          false, 0, review.reason.empty() ? "rejected" : review.reason, {},
          {});
    case AdmissionDecision::Kind::kCounter:
      return result_any(false, 0, "counter", review.matrix, review.flattened);
    case AdmissionDecision::Kind::kAccept:
      break;
  }

  Agreement draft;
  draft.characteristic = characteristic;
  draft.object_key = object_key;
  draft.client = from.to_string();
  draft.params = review.flattened;
  draft.matrix = review.matrix;
  draft.matrix.set_version(1);
  draft.state = AgreementState::kActive;
  Agreement& agreement = agreements_.create(std::move(draft));
  try {
    apply_server_binding(agreement);
  } catch (const Error& e) {
    if (review.reserved) resources_.release(review.demand);
    agreements_.terminate(agreement.id);
    return result_any(false, 0, e.what(), {}, {});
  }
  client_endpoints_[agreement.id] = from;
  if (provider->resource_demand) {
    reservations_[agreement.id] = review.demand;
  }
  MAQS_INFO() << "negotiated agreement " << agreement.id << " ("
              << characteristic << ") v" << agreement.version() << " for "
              << object_key;
  return result_any(true, agreement.id, "", agreement.matrix,
                    agreement.params);
}

cdr::Any NegotiationService::handle_renegotiate(
    const std::vector<cdr::Any>& args) {
  const std::uint64_t id = static_cast<std::uint64_t>(arg_int(args, 0));
  const std::int64_t expected_version = arg_int(args, 1);
  Agreement* agreement = agreements_.find(id);
  if (agreement == nullptr ||
      agreement->state == AgreementState::kTerminated) {
    return result_any(false, id, "unknown agreement", {}, {});
  }
  if (expected_version != agreement->matrix.version()) {
    // Stale renegotiation: the client is talking about a superseded
    // agreement generation. Nothing changes on this side.
    return result_any(false, id,
                      "version conflict: agreement at v" +
                          std::to_string(agreement->matrix.version()) +
                          ", request names v" +
                          std::to_string(expected_version),
                      agreement->matrix, agreement->params);
  }
  const CharacteristicProvider& provider =
      providers_.get(agreement->characteristic);

  // Snapshot the current generation; every failure path below restores it
  // exactly (matrix, params, state, reservation).
  const Agreement snapshot = *agreement;
  const auto old_reservation = reservations_.find(id);
  const bool had_reservation = old_reservation != reservations_.end();
  const ResourceDemand old_demand =
      had_reservation ? old_reservation->second : ResourceDemand{};
  if (had_reservation) resources_.release(old_demand);

  auto restore_reservation = [&] {
    if (had_reservation) resources_.try_reserve(old_demand);
  };

  OfferReview review;
  try {
    review = review_offer(provider, resources_, policy_,
                          CapabilityMatrix::from_any(arg_any(args, 2)),
                          decode_params(args, 3));
  } catch (const QosError& e) {
    restore_reservation();
    return result_any(false, id, e.what(), {}, {});
  }
  if (review.kind != AdmissionDecision::Kind::kAccept) {
    // The previous version keeps running untouched.
    restore_reservation();
    return result_any(false, id,
                      review.kind == AdmissionDecision::Kind::kCounter
                          ? "counter"
                          : review.reason,
                      review.matrix, review.flattened);
  }
  agreement->params = review.flattened;
  agreement->matrix = review.matrix;
  agreement->matrix.set_version(snapshot.matrix.version() + 1);
  agreement->state = AgreementState::kActive;
  if (provider.resource_demand) {
    reservations_[id] = review.demand;
  }
  // Rebind the server-side implementation at the new point (via the
  // servant so the woven channel version redistributes across every
  // installed delegate). A rebind failure rolls the whole renegotiation
  // back to the snapshot version.
  try {
    if (auto servant =
            transport_.orb().adapter().find(agreement->object_key)) {
      if (auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get())) {
        qos_servant->rebind_impl(agreement->characteristic, *agreement);
      }
    }
  } catch (const Error& e) {
    if (review.reserved) resources_.release(review.demand);
    agreement->params = snapshot.params;
    agreement->matrix = snapshot.matrix;
    agreement->state = snapshot.state;
    if (had_reservation) {
      reservations_[id] = old_demand;
      resources_.try_reserve(old_demand);
    } else {
      reservations_.erase(id);
    }
    // Re-arm the server impl at the restored generation (the channel
    // version falls back to the pre-renegotiation sum with it).
    if (auto servant =
            transport_.orb().adapter().find(agreement->object_key)) {
      if (auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get())) {
        qos_servant->rebind_impl(agreement->characteristic, *agreement);
      }
    }
    return result_any(false, id,
                      std::string("rebind failed, rolled back: ") + e.what(),
                      agreement->matrix, agreement->params);
  }
  MAQS_INFO() << "renegotiated agreement " << id << " to v"
              << agreement->version();
  return result_any(true, id, "", agreement->matrix, agreement->params);
}

cdr::Any NegotiationService::handle_terminate(
    const std::vector<cdr::Any>& args) {
  const std::uint64_t id = static_cast<std::uint64_t>(arg_int(args, 0));
  Agreement* agreement = agreements_.find(id);
  if (agreement == nullptr ||
      agreement->state == AgreementState::kTerminated) {
    return cdr::Any::make_void();
  }
  auto reservation = reservations_.find(id);
  if (reservation != reservations_.end()) {
    resources_.release(reservation->second);
    reservations_.erase(reservation);
  }
  // Remove the server-side delegate if it belongs to this agreement.
  if (auto servant = transport_.orb().adapter().find(agreement->object_key)) {
    if (auto* qos_servant = dynamic_cast<QosServantBase*>(servant.get())) {
      auto impl = qos_servant->impl_for(agreement->characteristic);
      if (impl && impl->agreement().id == id) {
        qos_servant->remove_impl(agreement->characteristic);
      }
    }
  }
  client_endpoints_.erase(id);
  agreements_.terminate(id);
  return cdr::Any::make_void();
}

void NegotiationService::notify_violation(std::uint64_t agreement_id,
                                          const std::string& reason) {
  Agreement* agreement = agreements_.find(agreement_id);
  if (agreement == nullptr) {
    throw QosError("negotiation: violation on unknown agreement " +
                   std::to_string(agreement_id));
  }
  agreement->state = AgreementState::kViolated;
  auto endpoint = client_endpoints_.find(agreement_id);
  if (endpoint == client_endpoints_.end()) return;

  // Push asynchronously over the middleware: a command addressed to the
  // client transport's adaptation handler (QoS-to-QoS, §3.2).
  orb::RequestMessage cmd;
  cmd.kind = orb::RequestKind::kCommand;
  cmd.qos_aware = true;
  cmd.target_module = AdaptationManager::command_target();
  cmd.operation = "violation";
  cmd.body = orb::encode_command_args(
      {cdr::Any::from_longlong(static_cast<std::int64_t>(agreement_id)),
       cdr::Any::from_string(agreement->characteristic),
       cdr::Any::from_string(reason)});
  transport_.orb().send_request(endpoint->second, std::move(cmd),
                                [](const orb::ReplyMessage&) {});
}

std::vector<std::uint64_t> NegotiationService::shed_overload(
    const std::string& resource) {
  std::vector<std::uint64_t> violated;
  while (resources_.is_declared(resource) &&
         resources_.reserved(resource) > resources_.capacity(resource)) {
    // Newest agreement holding this resource loses first.
    std::uint64_t victim = 0;
    for (const auto& [id, demand] : reservations_) {
      auto it = demand.find(resource);
      if (it == demand.end() || it->second <= 0) continue;
      const Agreement* agreement = agreements_.find(id);
      if (agreement == nullptr ||
          agreement->state != AgreementState::kActive) {
        continue;
      }
      victim = std::max(victim, id);
    }
    if (victim == 0) break;
    resources_.release(reservations_[victim]);
    reservations_.erase(victim);
    notify_violation(victim, "resource overload: " + resource);
    violated.push_back(victim);
  }
  return violated;
}

// ---- ClientPreferences ----

bool ClientPreferences::acceptable(
    const std::map<std::string, cdr::Any>& params) const {
  for (const auto& [name, bound] : bounds) {
    auto it = params.find(name);
    if (it == params.end()) continue;
    const std::int64_t v = it->second.as_integer();
    if (bound.min.has_value() && v < *bound.min) return false;
    if (bound.max.has_value() && v > *bound.max) return false;
  }
  for (const auto& [name, values] : allowed) {
    auto it = params.find(name);
    if (it == params.end()) continue;
    if (std::find(values.begin(), values.end(), it->second) == values.end()) {
      return false;
    }
  }
  return true;
}

// ---- Negotiator ----

Negotiator::Negotiator(QosTransport& transport,
                       const ProviderRegistry& providers)
    : transport_(transport), providers_(providers) {}

namespace {
struct NegotiationResult {
  std::string kind;  // "accepted" | "counter" | reject reason
  std::uint64_t agreement_id = 0;
  CapabilityMatrix matrix;
  std::map<std::string, cdr::Any> params;
};

NegotiationResult parse_result(const cdr::Any& any) {
  const std::vector<cdr::Any>& items = any.as_elements();
  if (items.size() < 3) throw QosError("negotiation: malformed result");
  NegotiationResult result;
  result.kind = items[0].as_string();
  result.agreement_id =
      static_cast<std::uint64_t>(items[1].as_longlong());
  result.matrix = CapabilityMatrix::from_any(items[2]);
  result.params = decode_params(items, 3);
  return result;
}

/// Drops entries naming a matrix dimension: what remains are scalars.
std::map<std::string, cdr::Any> scalars_of(
    const std::map<std::string, cdr::Any>& params,
    const CapabilityMatrix& matrix) {
  std::map<std::string, cdr::Any> out;
  for (const auto& [name, value] : params) {
    if (matrix.find_dimension(name) == CapabilityMatrix::npos) {
      out[name] = value;
    }
  }
  return out;
}
}  // namespace

Agreement Negotiator::negotiate(orb::StubBase& stub,
                                const std::string& characteristic,
                                const std::map<std::string, cdr::Any>& params,
                                const ClientPreferences* prefs) {
  // Unknown characteristics still go on the wire with an empty matrix:
  // the server is the authority and rejects them (NegotiationFailed),
  // exactly as for any other refused offer.
  const CharacteristicProvider* provider = providers_.find(characteristic);
  CapabilityMatrix offer =
      provider != nullptr ? provider->descriptor.default_matrix()
                          : CapabilityMatrix{};
  std::map<std::string, cdr::Any> scalars;
  for (const auto& [name, value] : params) {
    if (offer.find_dimension(name) != CapabilityMatrix::npos) {
      if (!offer.restrict_to(name, value)) {
        throw NegotiationFailed("negotiation: '" + value.type()->to_string() +
                                "' value is not in dimension '" + name +
                                "' of " + characteristic);
      }
    } else {
      scalars[name] = value;
    }
  }
  return negotiate_offer(stub, characteristic, std::move(offer),
                         std::move(scalars), prefs);
}

Agreement Negotiator::negotiate_offer(orb::StubBase& stub,
                                      const std::string& characteristic,
                                      CapabilityMatrix offer,
                                      std::map<std::string, cdr::Any> scalars,
                                      const ClientPreferences* prefs) {
  const orb::ObjRef& ref = stub.ref();
  // Offer -> (counter -> accept)*: a fixed-capacity server counters at
  // most once (its best feasible point is feasible next round), and every
  // further counter is strictly lower in the lattice, so dimensions+1
  // rounds always suffice.
  const std::size_t max_rounds =
      std::max<std::size_t>(2, offer.dimensions().size() + 1);
  std::string phase = "offer";
  NegotiationResult result;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::vector<cdr::Any> args{cdr::Any::from_string(characteristic),
                               cdr::Any::from_string(ref.object_key),
                               cdr::Any::from_string(phase),
                               offer.to_any()};
    for (cdr::Any& any : encode_params(scalars)) {
      args.push_back(std::move(any));
    }
    result = parse_result(
        orb::send_command(stub.orb(), ref.endpoint,
                          NegotiationService::command_target(), "negotiate",
                          args));
    if (result.kind == "accepted") {
      Agreement agreement;
      agreement.id = result.agreement_id;
      agreement.characteristic = characteristic;
      agreement.object_key = ref.object_key;
      agreement.client = stub.orb().endpoint().to_string();
      agreement.params = std::move(result.params);
      agreement.matrix = std::move(result.matrix);
      agreement.state = AgreementState::kActive;
      apply_client_binding(stub, agreement);
      return agreement;
    }
    if (result.kind != "counter") {
      throw NegotiationFailed("negotiation rejected for " + characteristic +
                              ": " + result.kind);
    }
    if (prefs != nullptr && !prefs->acceptable(result.params)) {
      throw NegotiationFailed(
          "negotiation: counter-offer outside client preferences for " +
          characteristic);
    }
    // Confirmation round at the server's counter point.
    scalars = scalars_of(result.params, result.matrix);
    offer = std::move(result.matrix);
    phase = "accept";
  }
  throw NegotiationFailed("negotiation for " + characteristic +
                          " did not converge");
}

Agreement Negotiator::renegotiate(
    orb::StubBase& stub, const Agreement& agreement,
    const std::map<std::string, cdr::Any>& params) {
  CapabilityMatrix offer = agreement.matrix;
  std::map<std::string, cdr::Any> scalars =
      scalars_of(agreement.params, offer);
  for (const auto& [name, value] : params) {
    if (offer.find_dimension(name) != CapabilityMatrix::npos) {
      if (!offer.choose(name, value)) {
        throw NegotiationFailed("renegotiation: value is not in dimension '" +
                                name + "' of " + agreement.characteristic);
      }
    } else {
      scalars[name] = value;
    }
  }
  std::vector<cdr::Any> args{
      cdr::Any::from_longlong(static_cast<std::int64_t>(agreement.id)),
      cdr::Any::from_longlong(agreement.matrix.version()), offer.to_any()};
  for (cdr::Any& any : encode_params(scalars)) args.push_back(std::move(any));
  NegotiationResult result = parse_result(orb::send_command(
      stub.orb(), stub.ref().endpoint, NegotiationService::command_target(),
      "renegotiate", args));
  if (result.kind != "accepted") {
    throw NegotiationFailed("renegotiation rejected for agreement " +
                            std::to_string(agreement.id) + ": " +
                            result.kind);
  }
  Agreement updated = agreement;
  updated.params = std::move(result.params);
  updated.matrix = std::move(result.matrix);
  updated.state = AgreementState::kActive;
  // Rebind the installed mediator at the new point through the composite
  // so the woven channel version redistributes across every member.
  if (auto composite =
          std::dynamic_pointer_cast<CompositeMediator>(stub.mediator())) {
    composite->rebind(agreement.characteristic, updated);
  }
  // Module-based mechanisms re-arm through the provider's setup hook so
  // an agreed algorithm/key change reaches both transports.
  const CharacteristicProvider* provider =
      providers_.find(agreement.characteristic);
  if (provider != nullptr && provider->client_setup) {
    provider->client_setup(updated, stub.ref(), stub.orb(), transport_);
  }
  return updated;
}

void Negotiator::terminate(orb::StubBase& stub, const Agreement& agreement) {
  orb::send_command(
      stub.orb(), stub.ref().endpoint, NegotiationService::command_target(),
      "terminate",
      {cdr::Any::from_longlong(static_cast<std::int64_t>(agreement.id))});
  if (auto composite =
          std::dynamic_pointer_cast<CompositeMediator>(stub.mediator())) {
    composite->remove(agreement.characteristic);
  }
  const CharacteristicProvider* provider =
      providers_.find(agreement.characteristic);
  if (provider != nullptr && !provider->module.empty()) {
    transport_.unassign(agreement.object_key);
  }
}

void Negotiator::apply_client_binding(orb::StubBase& stub,
                                      const Agreement& agreement) {
  const CharacteristicProvider& provider =
      providers_.get(agreement.characteristic);
  if (provider.make_mediator) {
    std::shared_ptr<Mediator> mediator =
        provider.make_mediator(agreement, stub.orb(), transport_);
    mediator->bind_agreement(agreement);
    std::shared_ptr<CompositeMediator> composite =
        std::dynamic_pointer_cast<CompositeMediator>(stub.mediator());
    if (!composite) {
      if (stub.mediator()) {
        throw QosError(
            "negotiator: stub already carries a non-composite mediator");
      }
      composite = std::make_shared<CompositeMediator>();
      stub.set_mediator(composite);
    }
    composite->remove(agreement.characteristic);
    composite->add(std::move(mediator));
  }
  if (!provider.module.empty()) {
    transport_.assign(agreement.object_key, provider.module);
  }
  if (provider.client_setup) {
    provider.client_setup(agreement, stub.ref(), stub.orb(), transport_);
  }
}

}  // namespace maqs::core

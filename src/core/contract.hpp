// QoS agreements (contracts).
//
// "Each QoS agreement has to be negotiated independently" (§3): an
// Agreement binds one client/server relationship to one characteristic at
// one negotiated parameter level. There is deliberately no system-wide QoS
// state — the AgreementRepository is per-ORB-side bookkeeping only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "core/characteristic.hpp"

namespace maqs::core {

enum class AgreementState : std::uint8_t {
  kProposed = 0,
  kActive,
  kViolated,       // monitoring detected a breach; adaptation pending
  kRenegotiating,
  kTerminated,
};

const char* agreement_state_name(AgreementState state) noexcept;

struct Agreement {
  /// Unique per server ORB; 0 = invalid.
  std::uint64_t id = 0;
  /// Characteristic this agreement instantiates.
  std::string characteristic;
  /// Interface (object key) the agreement is bound to.
  std::string object_key;
  /// Peer identity (client endpoint string) for bookkeeping.
  std::string client;
  /// Negotiated parameter values: the flat union of the characteristic's
  /// scalar params and the matrix's chosen dimension values.
  std::map<std::string, cdr::Any> params;
  /// Negotiated capability matrix (chosen point + preference lattice +
  /// version). Empty with version 0 for hand-built or dimensionless
  /// agreements.
  CapabilityMatrix matrix;
  AgreementState state = AgreementState::kProposed;

  /// Agreement generation: matrix.version(). 0 = unnegotiated.
  std::int64_t version() const noexcept { return matrix.version(); }

  /// Typed param accessors (throw QosError when missing).
  std::int64_t int_param(const std::string& name) const;
  std::string string_param(const std::string& name) const;
  bool bool_param(const std::string& name) const;

  /// Tolerant accessors for dimension-backed values: the param when
  /// present, otherwise `fallback` (hand-built agreements may omit
  /// dimensions entirely).
  std::int64_t int_param_or(const std::string& name,
                            std::int64_t fallback) const;
  std::string string_param_or(const std::string& name,
                              std::string fallback) const;
  bool bool_param_or(const std::string& name, bool fallback) const;
  const cdr::Any* find_param(const std::string& name) const;
};

/// Per-side store of agreements.
class AgreementRepository {
 public:
  /// Registers a new agreement and assigns its id.
  Agreement& create(Agreement agreement);
  Agreement* find(std::uint64_t id);
  const Agreement* find(std::uint64_t id) const;
  /// Throws QosError when absent.
  Agreement& get(std::uint64_t id);
  void terminate(std::uint64_t id);

  /// All non-terminated agreements for a characteristic.
  std::vector<Agreement*> by_characteristic(const std::string& name);
  /// All non-terminated agreements on an object.
  std::vector<Agreement*> by_object(const std::string& object_key);
  std::size_t active_count() const;

 private:
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Agreement> agreements_;
};

}  // namespace maqs::core

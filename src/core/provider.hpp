// Characteristic providers: the implementation catalog.
//
// The paper's outlook proposes documenting QoS implementations in "a
// catalog similar to those for design patterns". ProviderRegistry is that
// catalog made executable: for each characteristic it bundles the QIDL
// descriptor with the factories that produce the client-side mediator and
// the server-side QoS implementation, the transport module the mechanism
// relies on (if any — the two-layer hierarchy of §4), an optional
// client-side setup step (module handshakes such as key exchange or group
// join), and the resource-demand function used by admission control.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/characteristic.hpp"
#include "core/contract.hpp"
#include "core/mediator.hpp"
#include "core/qos_skeleton.hpp"
#include "core/qos_transport.hpp"
#include "core/resource.hpp"

namespace maqs::core {

struct CharacteristicProvider {
  CharacteristicDescriptor descriptor;

  /// Client side: builds the mediator for a fresh agreement. May be null
  /// for server-only mechanisms.
  std::function<std::shared_ptr<Mediator>(const Agreement&, orb::Orb&,
                                          QosTransport&)>
      make_mediator;

  /// Server side: builds the QoS implementation delegate. May be null for
  /// client-only mechanisms (e.g. pure caching).
  std::function<std::shared_ptr<QosImpl>(const Agreement&, orb::Orb&,
                                         QosTransport&)>
      make_impl;

  /// Transport module this characteristic reuses ("" = application layer
  /// only). The client transport assigns it to the object on agreement.
  std::string module;

  /// Optional client-side post-agreement setup (QoS-to-QoS bootstrap:
  /// key exchange, group discovery, ...).
  std::function<void(const Agreement&, const orb::ObjRef& target, orb::Orb&,
                     QosTransport&)>
      client_setup;

  /// Resource demand of an agreement at given parameters (admission).
  std::function<ResourceDemand(const std::map<std::string, cdr::Any>&)>
      resource_demand;
};

class ProviderRegistry {
 public:
  /// Throws QosError on duplicate characteristic names.
  void add(CharacteristicProvider provider);
  bool contains(const std::string& characteristic) const;
  const CharacteristicProvider& get(const std::string& characteristic) const;
  const CharacteristicProvider* find(
      const std::string& characteristic) const;

  /// Descriptor view as a catalog.
  CharacteristicCatalog catalog() const;

 private:
  std::map<std::string, CharacteristicProvider> providers_;
};

}  // namespace maqs::core

// Capability matrices: multi-dimensional negotiable QoS capabilities.
//
// A characteristic no longer negotiates a single scalar level but a
// *matrix* of named dimensions (compression algorithm, cipher key size,
// integrity, ...), each with a ranked preference order (best first). A
// negotiated agreement pins one point in that lattice and carries a
// monotonically increasing version so both peers can tell frames and
// renegotiations of different agreement generations apart.
//
// The preference lattice also drives adaptation: `degrade_step()` walks
// to the next-cheaper point by degrading the dimension with the lowest
// `degrade_rank` first (drop the compression algorithm before shrinking
// the cipher; drop integrity last).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cdr/any.hpp"
#include "util/error.hpp"

namespace maqs::core {

/// One negotiable dimension: a name plus its value lattice, best first.
struct DimensionDesc {
  std::string name;
  /// Ranked values, most preferred first. Never empty for a valid matrix.
  std::vector<cdr::Any> ranked;
  /// Degradation priority across dimensions: lower ranks degrade first.
  int degrade_rank = 0;
};

/// A point in the preference lattice of a set of dimensions, plus the
/// lattice itself and the agreement version it belongs to.
///
/// Version semantics: 0 = unnegotiated (hand-built bindings, default
/// constructions); the first negotiated agreement is version 1 and every
/// accepted renegotiation increments it by exactly one.
class CapabilityMatrix {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  CapabilityMatrix() = default;
  /// Chooses every dimension's most preferred value.
  explicit CapabilityMatrix(std::vector<DimensionDesc> dimensions);

  bool empty() const noexcept { return dimensions_.empty(); }
  const std::vector<DimensionDesc>& dimensions() const noexcept {
    return dimensions_;
  }
  /// chosen()[i] indexes dimensions()[i].ranked.
  const std::vector<std::size_t>& chosen() const noexcept { return chosen_; }

  std::int64_t version() const noexcept { return version_; }
  void set_version(std::int64_t version) noexcept { version_ = version; }

  std::size_t find_dimension(const std::string& name) const noexcept;
  /// Chosen value of dimension `i` (throws QosError out of range).
  const cdr::Any& value(std::size_t i) const;
  /// Chosen value of the named dimension; nullptr when undeclared.
  const cdr::Any* find_value(const std::string& name) const;

  /// Pins the named dimension to `value` (which must be one of its ranked
  /// values). Returns false when the dimension or value is unknown.
  bool choose(const std::string& name, const cdr::Any& value);
  /// Re-ranks the named dimension to start at `value`: the chosen point
  /// and every less-preferred value stay reachable for degradation, the
  /// more-preferred prefixes are cut. Returns false when unknown.
  bool restrict_to(const std::string& name, const cdr::Any& value);

  /// True when every dimension sits at its least preferred value.
  bool at_floor() const noexcept;
  /// Degrades one dimension by one rank: the not-yet-floored dimension
  /// with the lowest degrade_rank. Returns its name, or nullopt at floor.
  std::optional<std::string> degrade_step();
  /// Degrades dimension `i` by one rank; false when already at its floor.
  bool degrade_dimension(std::size_t i);

  /// Chosen point flattened to a param map (dimension name -> value).
  std::map<std::string, cdr::Any> chosen_params() const;

  /// Lattice distance from the top: sum over dimensions of the chosen
  /// rank index. 0 = every dimension at its most preferred value.
  std::size_t rank_distance() const noexcept;

  bool same_point(const CapabilityMatrix& other) const;

  /// Wire form: a self-describing tuple Any (see capability.cpp).
  cdr::Any to_any() const;
  static CapabilityMatrix from_any(const cdr::Any& any);

 private:
  std::vector<DimensionDesc> dimensions_;
  std::vector<std::size_t> chosen_;
  std::int64_t version_ = 0;
};

/// Heterogeneous tuple as a self-describing struct Any (member names are
/// positional; only structure matters on the wire). Shared by the
/// negotiation protocol and the matrix encoding.
cdr::Any make_tuple_any(std::vector<cdr::Any> items);

}  // namespace maqs::core

#include "core/adaptation.hpp"

#include "util/log.hpp"

namespace maqs::core {

const std::string& AdaptationManager::command_target() {
  static const std::string kTarget = "maqs.adaptation";
  return kTarget;
}

AdaptationManager::AdaptationManager(QosTransport& transport,
                                     Negotiator& negotiator)
    : transport_(transport), negotiator_(negotiator) {
  transport_.set_command_handler(
      command_target(),
      [this](const std::string& op, const std::vector<cdr::Any>& args,
             const net::Address&) { return handle_command(op, args); });
  // Mechanism failure is a QoS violation like any other: when the
  // transport quarantines an assignment's module, renegotiate the managed
  // agreement down instead of silently serving best-effort forever.
  transport_.set_degradation_handler(
      [this](const std::string& module, const std::string& object_key,
             const std::string& reason) {
        on_mechanism_failure(module, object_key, reason);
      });
}

AdaptationManager::~AdaptationManager() {
  transport_.set_command_handler(command_target(), nullptr);
  transport_.set_degradation_handler(nullptr);
}

void AdaptationManager::on_mechanism_failure(const std::string& module,
                                             const std::string& object_key,
                                             const std::string& reason) {
  // Collect ids first: adapt() pumps the event loop and may mutate the
  // entry map mid-iteration.
  std::vector<std::uint64_t> matching;
  for (const auto& [id, entry] : entries_) {
    if (entry.agreement.object_key == object_key) matching.push_back(id);
  }
  for (std::uint64_t id : matching) {
    adapt(id, "mechanism:" + module + ": " + reason);
  }
}

void AdaptationManager::manage(orb::StubBase& stub,
                               const Agreement& agreement, Policy policy) {
  entries_[agreement.id] = Entry{&stub, agreement, std::move(policy), false};
}

void AdaptationManager::unmanage(std::uint64_t agreement_id) {
  entries_.erase(agreement_id);
}

const Agreement* AdaptationManager::managed_agreement(
    std::uint64_t agreement_id) const {
  auto it = entries_.find(agreement_id);
  return it != entries_.end() ? &it->second.agreement : nullptr;
}

cdr::Any AdaptationManager::handle_command(
    const std::string& op, const std::vector<cdr::Any>& args) {
  if (op != "violation") {
    throw QosError("adaptation: unknown command '" + op + "'");
  }
  if (args.size() < 3) {
    throw QosError("adaptation: malformed violation notification");
  }
  const auto agreement_id = static_cast<std::uint64_t>(args[0].as_integer());
  const std::string reason = args[2].as_string();
  adapt(agreement_id, reason);
  return cdr::Any::make_void();
}

void AdaptationManager::adapt(std::uint64_t agreement_id,
                              const std::string& reason) {
  auto it = entries_.find(agreement_id);
  if (it == entries_.end()) return;  // unmanaged: nothing to do
  Entry& entry = it->second;
  if (entry.adapting) return;  // collapse violation storms
  entry.adapting = true;
  try {
    std::optional<std::map<std::string, cdr::Any>> proposal =
        entry.policy ? entry.policy(entry.agreement, reason) : std::nullopt;
    if (proposal.has_value()) {
      entry.agreement =
          negotiator_.renegotiate(*entry.stub, entry.agreement, *proposal);
      ++adaptations_;
      MAQS_INFO() << "adapted agreement " << agreement_id << " after '"
                  << reason << "'";
    } else {
      negotiator_.terminate(*entry.stub, entry.agreement);
      ++terminations_;
      entries_.erase(agreement_id);
      return;  // entry is gone; do not touch it below
    }
  } catch (const Error& e) {
    MAQS_WARN() << "adaptation of agreement " << agreement_id
                << " failed: " << e.what();
  }
  // Renegotiation pumps the event loop, which may deliver commands that
  // unmanage this agreement; re-find instead of trusting `entry`.
  if (auto again = entries_.find(agreement_id); again != entries_.end()) {
    again->second.adapting = false;
  }
}

void AdaptationManager::watch_metric(Monitor& monitor,
                                     const std::string& metric,
                                     Threshold threshold,
                                     std::uint64_t agreement_id) {
  monitor.set_threshold(metric, threshold);
  monitor.subscribe([this, metric, agreement_id](const Violation& violation) {
    if (violation.metric != metric) return;
    adapt(agreement_id, "monitor:" + metric);
  });
}

}  // namespace maqs::core

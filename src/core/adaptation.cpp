#include "core/adaptation.hpp"

#include "util/log.hpp"

namespace maqs::core {

const std::string& AdaptationManager::command_target() {
  static const std::string kTarget = "maqs.adaptation";
  return kTarget;
}

AdaptationManager::AdaptationManager(QosTransport& transport,
                                     Negotiator& negotiator)
    : transport_(transport), negotiator_(negotiator) {
  transport_.set_command_handler(
      command_target(),
      [this](const std::string& op, const std::vector<cdr::Any>& args,
             const net::Address&) { return handle_command(op, args); });
  // Mechanism failure is a QoS violation like any other: when the
  // transport quarantines an assignment's module, renegotiate the managed
  // agreement down instead of silently serving best-effort forever.
  transport_.set_degradation_handler(
      [this](const std::string& module, const std::string& object_key,
             const std::string& reason) {
        on_mechanism_failure(module, object_key, reason);
      });
}

AdaptationManager::~AdaptationManager() {
  transport_.set_command_handler(command_target(), nullptr);
  transport_.set_degradation_handler(nullptr);
}

void AdaptationManager::on_mechanism_failure(const std::string& module,
                                             const std::string& object_key,
                                             const std::string& reason) {
  // Collect ids first: adapt() pumps the event loop and may mutate the
  // entry map mid-iteration.
  std::vector<std::uint64_t> matching;
  for (const auto& [id, entry] : entries_) {
    if (entry.agreement.object_key == object_key) matching.push_back(id);
  }
  for (std::uint64_t id : matching) {
    adapt(id, "mechanism:" + module + ": " + reason);
  }
}

void AdaptationManager::manage(orb::StubBase& stub,
                               const Agreement& agreement, Policy policy) {
  entries_[agreement.id] = Entry{&stub, agreement, std::move(policy), false};
}

void AdaptationManager::unmanage(std::uint64_t agreement_id) {
  entries_.erase(agreement_id);
}

const Agreement* AdaptationManager::managed_agreement(
    std::uint64_t agreement_id) const {
  auto it = entries_.find(agreement_id);
  return it != entries_.end() ? &it->second.agreement : nullptr;
}

cdr::Any AdaptationManager::handle_command(
    const std::string& op, const std::vector<cdr::Any>& args) {
  if (op != "violation") {
    throw QosError("adaptation: unknown command '" + op + "'");
  }
  if (args.size() < 3) {
    throw QosError("adaptation: malformed violation notification");
  }
  const auto agreement_id = static_cast<std::uint64_t>(args[0].as_integer());
  const std::string reason = args[2].as_string();
  adapt(agreement_id, reason);
  return cdr::Any::make_void();
}

void AdaptationManager::adapt(std::uint64_t agreement_id,
                              const std::string& reason) {
  auto it = entries_.find(agreement_id);
  if (it == entries_.end()) return;  // unmanaged: nothing to do
  Entry& entry = it->second;
  if (entry.adapting) return;  // collapse violation storms
  entry.adapting = true;
  try {
    std::optional<std::map<std::string, cdr::Any>> proposal =
        entry.policy ? entry.policy(entry.agreement, reason) : std::nullopt;
    if (proposal.has_value()) {
      entry.agreement =
          negotiator_.renegotiate(*entry.stub, entry.agreement, *proposal);
      ++adaptations_;
      MAQS_INFO() << "adapted agreement " << agreement_id << " after '"
                  << reason << "'";
    } else {
      negotiator_.terminate(*entry.stub, entry.agreement);
      ++terminations_;
      entries_.erase(agreement_id);
      return;  // entry is gone; do not touch it below
    }
  } catch (const Error& e) {
    MAQS_WARN() << "adaptation of agreement " << agreement_id
                << " failed: " << e.what();
  }
  // Renegotiation pumps the event loop, which may deliver commands that
  // unmanage this agreement; re-find instead of trusting `entry`.
  if (auto again = entries_.find(agreement_id); again != entries_.end()) {
    again->second.adapting = false;
  }
}

// ---- lattice policies ----

std::string violation_resource(const std::string& reason) {
  // shed_overload: "resource overload: <r>"; sched_bridge:
  // "...resource=<r>:..." or trailing "resource=<r>".
  static const std::string kOverload = "resource overload: ";
  static const std::string kTagged = "resource=";
  std::string out;
  if (auto at = reason.find(kOverload); at != std::string::npos) {
    out = reason.substr(at + kOverload.size());
  } else if (auto tag = reason.find(kTagged); tag != std::string::npos) {
    out = reason.substr(tag + kTagged.size());
  } else {
    return {};
  }
  const auto end = out.find_first_of(": ");
  if (end != std::string::npos) out.resize(end);
  return out;
}

namespace {

std::optional<std::map<std::string, cdr::Any>> flatten_step(
    const Agreement& agreement, CapabilityMatrix stepped) {
  std::map<std::string, cdr::Any> proposal = agreement.params;
  for (auto& [name, value] : stepped.chosen_params()) {
    proposal[name] = std::move(value);
  }
  return proposal;
}

}  // namespace

AdaptationManager::Policy make_lattice_policy() {
  return [](const Agreement& agreement,
            const std::string&) -> std::optional<std::map<std::string,
                                                          cdr::Any>> {
    CapabilityMatrix stepped = agreement.matrix;
    if (!stepped.degrade_step().has_value()) return std::nullopt;
    return flatten_step(agreement, std::move(stepped));
  };
}

AdaptationManager::Policy make_lattice_policy(
    const ProviderRegistry& providers) {
  return [&providers](const Agreement& agreement, const std::string& reason)
             -> std::optional<std::map<std::string, cdr::Any>> {
    const std::string resource = violation_resource(reason);
    const CharacteristicProvider* provider =
        providers.find(agreement.characteristic);
    if (!resource.empty() && provider != nullptr &&
        provider->resource_demand && !agreement.matrix.empty()) {
      const ResourceDemand current =
          provider->resource_demand(agreement.params);
      const auto current_at = current.find(resource);
      const double base =
          current_at != current.end() ? current_at->second : 0.0;
      // Cheapest single-dimension step that strictly relieves the
      // violated budget: minimal total demand given up, ties to the
      // lattice's own degradation order.
      std::size_t best = CapabilityMatrix::npos;
      double best_cost = 0.0;
      for (std::size_t i = 0; i < agreement.matrix.dimensions().size();
           ++i) {
        CapabilityMatrix stepped = agreement.matrix;
        if (!stepped.degrade_dimension(i)) continue;
        const ResourceDemand demand =
            provider->resource_demand(*flatten_step(agreement, stepped));
        const auto at = demand.find(resource);
        const double relieved =
            base - (at != demand.end() ? at->second : 0.0);
        if (relieved <= 0.0) continue;
        double cost = 0.0;
        for (const auto& [name, amount] : current) {
          const auto after = demand.find(name);
          cost += amount - (after != demand.end() ? after->second : 0.0);
        }
        const bool better =
            best == CapabilityMatrix::npos || cost < best_cost ||
            (cost == best_cost &&
             agreement.matrix.dimensions()[i].degrade_rank <
                 agreement.matrix.dimensions()[best].degrade_rank);
        if (better) {
          best = i;
          best_cost = cost;
        }
      }
      if (best != CapabilityMatrix::npos) {
        CapabilityMatrix stepped = agreement.matrix;
        stepped.degrade_dimension(best);
        return flatten_step(agreement, std::move(stepped));
      }
    }
    CapabilityMatrix stepped = agreement.matrix;
    if (!stepped.degrade_step().has_value()) return std::nullopt;
    return flatten_step(agreement, std::move(stepped));
  };
}

void AdaptationManager::watch_metric(Monitor& monitor,
                                     const std::string& metric,
                                     Threshold threshold,
                                     std::uint64_t agreement_id) {
  monitor.set_threshold(metric, threshold);
  monitor.subscribe([this, metric, agreement_id](const Violation& violation) {
    if (violation.metric != metric) return;
    adapt(agreement_id, "monitor:" + metric);
  });
}

}  // namespace maqs::core

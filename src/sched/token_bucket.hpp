// Per-class admission gate on the virtual clock.
//
// "The possible level of a QoS characteristic depends on the resource
// availability in the system" (paper §3): the token rate is the per-class
// request budget the ResourceManager grants, and the bucket is the
// mechanism that enforces it per request. Refill is a pure function of the
// virtual clock — no wall time, no randomness — so seeded runs replay the
// same admit/shed decisions byte-identically.
#pragma once

#include "sim/clock.hpp"

namespace maqs::sched {

/// Deterministic token bucket: `rate` tokens per virtual second, depth
/// bounded by `burst`. A bucket starts full.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst,
              sim::TimePoint start = 0) noexcept;

  /// Refills up to `now`, then takes one token if a whole one is there.
  bool try_take(sim::TimePoint now) noexcept;

  /// Tokens on hand after refilling up to `now`.
  double available(sim::TimePoint now) noexcept;

  /// Re-budgets the bucket (ResourceManager capacity change). Tokens
  /// accrued at the old rate up to `now` are banked first; the on-hand
  /// balance is clamped into the new burst.
  void set_rate(double rate_per_sec, sim::TimePoint now) noexcept;

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void refill(sim::TimePoint now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  sim::TimePoint last_refill_;
};

}  // namespace maqs::sched

#include "sched/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "orb/orb.hpp"
#include "trace/trace.hpp"

namespace maqs::sched {
namespace {

/// Guarantees a best_effort class and a concrete global bound.
SchedulerConfig normalize(SchedulerConfig config) {
  const bool has_best_effort = std::any_of(
      config.classes.begin(), config.classes.end(),
      [](const ClassConfig& c) { return c.name == kBestEffortClassName; });
  if (!has_best_effort) {
    ClassConfig best_effort;
    best_effort.name = kBestEffortClassName;
    config.classes.push_back(std::move(best_effort));
  }
  if (config.total_limit == 0) {
    for (const ClassConfig& c : config.classes) {
      config.total_limit += c.queue_limit;
    }
  }
  return config;
}

std::vector<std::string> class_names(const SchedulerConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.classes.size());
  for (const ClassConfig& c : config.classes) names.push_back(c.name);
  return names;
}

template <typename States>
std::vector<double> class_weights(const States& states) {
  std::vector<double> weights;
  weights.reserve(states.size());
  for (const auto& state : states) weights.push_back(state.config.weight);
  return weights;
}

std::size_t best_effort_index(const SchedulerConfig& config) {
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    if (config.classes[i].name == kBestEffortClassName) return i;
  }
  return 0;  // unreachable after normalize()
}

}  // namespace

RequestScheduler::RequestScheduler(orb::Orb& orb, SchedulerConfig config)
    : RequestScheduler(orb, normalize(std::move(config)), NormalizedTag{}) {}

RequestScheduler::RequestScheduler(orb::Orb& orb, SchedulerConfig config,
                                   NormalizedTag)
    : orb_(orb),
      classifier_(class_names(config), best_effort_index(config)),
      classes_([&] {
        std::vector<ClassState> states;
        states.reserve(config.classes.size());
        const sim::TimePoint now = orb.loop().now();
        for (ClassConfig& c : config.classes) {
          ClassState state;
          if (c.rate_rps > 0) state.bucket.emplace(c.rate_rps, c.burst, now);
          state.config = std::move(c);
          states.push_back(std::move(state));
        }
        return states;
      }()),
      // classes_ is initialized above (member order), so read the weights
      // back out of it rather than the moved-from config.
      queue_(class_weights(classes_)),
      service_time_(config.service_rate_rps > 0
                        ? sim::from_seconds(1.0 / config.service_rate_rps)
                        : 0),
      total_limit_(config.total_limit) {
  stats_.classes.reserve(classes_.size());
  for (const ClassState& state : classes_) {
    ClassStats cs;
    cs.name = state.config.name;
    stats_.classes.push_back(std::move(cs));
  }
  orb_.register_server_interceptor(this, orb::priorities::kServerSched);
  orb_.loop().set_drain_hook([this] { return flush_all(); });
}

RequestScheduler::~RequestScheduler() {
  orb_.loop().set_drain_hook(nullptr);
  orb_.unregister_server_interceptor(this);
}

bool RequestScheduler::set_class_rate(std::string_view class_name,
                                      double rate_rps) {
  auto id = classifier_.class_id(class_name);
  if (!id) return false;
  ClassState& cs = classes_[*id];
  cs.config.rate_rps = rate_rps;
  const sim::TimePoint now = orb_.loop().now();
  if (rate_rps <= 0) {
    cs.bucket.reset();
  } else if (cs.bucket) {
    cs.bucket->set_rate(rate_rps, now);
  } else {
    cs.bucket.emplace(rate_rps, cs.config.burst, now);
  }
  return true;
}

std::size_t RequestScheduler::queue_depth(std::string_view class_name) const {
  auto id = classifier_.class_id(class_name);
  return id ? queue_.class_size(*id) : 0;
}

void RequestScheduler::receive_request(orb::ServerRequestInfo& info) {
  orb::RequestMessage& req = *info.request;
  if (info.resumed) {
    // Continuation of a request this scheduler dequeued: pass it through
    // to dispatch.
    if (trace::tracing_active()) {
      trace::point("sched.dispatch",
                   point_detail(classifier_.classify(req), nullptr));
    }
    return;
  }
  if (req.kind == orb::RequestKind::kCommand) {
    // Control plane (negotiation, adaptation, module commands): never
    // queued — renegotiation under overload must not wait behind the
    // backlog it is meant to relieve.
    ++stats_.commands_bypassed;
    return;
  }
  const std::size_t cls = classifier_.classify(req);
  ClassState& cs = classes_[cls];
  ++stats_.classes[cls].arrived;
  const sim::TimePoint now = orb_.loop().now();
  if (cs.bucket && !cs.bucket->try_take(now)) {
    ++stats_.shed_no_tokens;
    shed_arrival(info, cls, "no_tokens");
    return;
  }
  if (queue_.empty() && now >= busy_until_) {
    // Work conservation: an idle server serves the arrival on the spot —
    // the walk descends to dispatch as if no scheduler were armed.
    begin_service(now);
    ++stats_.dispatched_inline;
    ++stats_.classes[cls].dispatched;
    if (any_episode_open_) reset_drained_episodes();
    if (trace::tracing_active()) {
      trace::point("sched.dispatch", point_detail(cls, nullptr));
    }
    return;
  }
  if (queue_.class_size(cls) >= cs.config.queue_limit) {
    ++stats_.shed_queue_full;
    shed_arrival(info, cls, "queue_full");
    return;
  }
  if (queue_.size() >= total_limit_ && !evict_best_effort(cls)) {
    ++stats_.shed_queue_full;
    shed_arrival(info, cls, "queue_full");
    return;
  }
  Parked parked;
  parked.request = std::move(req);
  parked.from = *info.from;
  queue_.push(cls, now + cs.config.deadline_budget, std::move(parked));
  ++stats_.parked;
  info.parked = true;
  if (trace::tracing_active()) {
    trace::point("sched.enqueue", point_detail(cls, nullptr));
  }
  arm_drain();
}

void RequestScheduler::begin_service(sim::TimePoint now) noexcept {
  if (service_time_ > 0) busy_until_ = now + service_time_;
}

void RequestScheduler::arm_drain() {
  if (drain_armed_ || queue_.empty()) return;
  drain_armed_ = true;
  orb_.loop().schedule_at(std::max(orb_.loop().now(), busy_until_),
                          [this] { on_drain(); });
}

void RequestScheduler::on_drain() {
  drain_armed_ = false;
  const sim::TimePoint now = orb_.loop().now();
  while (!queue_.empty()) {
    Queue::Popped item = queue_.pop();
    if (item.deadline < now) {
      // Too late to be worth serving; the client gets a classified
      // rejection instead of a reply it stopped waiting for.
      ++stats_.shed_deadline;
      shed_parked(item, "deadline");
      continue;
    }
    // One request per drain tick is the service-rate pacing; shedding
    // expired entries above consumed no service time.
    begin_service(now);
    ++stats_.dispatched_queued;
    ++stats_.classes[item.cls].dispatched;
    orb_.resume_request(std::move(item.payload.request), item.payload.from);
    break;
  }
  if (any_episode_open_) reset_drained_episodes();
  arm_drain();
}

bool RequestScheduler::flush_all() {
  if (queue_.empty()) return false;
  // The loop is going idle with parked work: pacing no longer matters,
  // so serve (or shed) everything now rather than strand a request a
  // client is still pumping for.
  while (!queue_.empty()) {
    Queue::Popped item = queue_.pop();
    if (item.deadline < orb_.loop().now()) {
      ++stats_.shed_deadline;
      shed_parked(item, "deadline");
      continue;
    }
    ++stats_.dispatched_queued;
    ++stats_.classes[item.cls].dispatched;
    orb_.resume_request(std::move(item.payload.request), item.payload.from);
  }
  if (any_episode_open_) reset_drained_episodes();
  return true;
}

void RequestScheduler::shed_arrival(orb::ServerRequestInfo& info,
                                    std::size_t cls, const char* cause) {
  const orb::RequestMessage& req = *info.request;
  note_shed(cls, req.object_key, cause);
  if (trace::tracing_active()) {
    trace::point("sched.shed", point_detail(cls, cause));
  }
  // Answer through the normal chain unwind: wire.reply sends it.
  info.reply = make_overload_reply(req.request_id, cls, cause);
  info.completed = true;
}

void RequestScheduler::shed_parked(Queue::Popped& item, const char* cause) {
  const orb::RequestMessage& req = item.payload.request;
  note_shed(item.cls, req.object_key, cause);
  // The arrival walk is long unwound; re-attach the span to the trace
  // context the request carried across the wire.
  trace::TraceRecorder* rec = orb_.trace_recorder();
  if (rec != nullptr && rec->enabled()) {
    if (auto tag = req.context.find(trace::kTraceContextKey);
        tag != req.context.end()) {
      if (auto ctx = trace::decode_context(tag->second)) {
        trace::point_under(*rec, *ctx, "sched.shed",
                           point_detail(item.cls, cause));
      }
    }
  }
  orb_.send_reply_frame(item.payload.from,
                        make_overload_reply(req.request_id, item.cls, cause));
}

bool RequestScheduler::evict_best_effort(std::size_t incoming_cls) {
  const std::size_t best_effort = classifier_.best_effort();
  if (incoming_cls == best_effort) return false;
  std::optional<Queue::Popped> victim = queue_.evict_latest(best_effort);
  if (!victim) return false;
  ++stats_.shed_evicted;
  shed_parked(*victim, "evicted");
  return true;
}

void RequestScheduler::note_shed(std::size_t cls,
                                 const std::string& object_key,
                                 const char* cause) {
  ++stats_.classes[cls].shed;
  // Best-effort traffic has no agreement to renegotiate.
  if (cls == classifier_.best_effort()) return;
  ClassState& cs = classes_[cls];
  if (cs.overload_signaled || !overload_handler_) return;
  cs.overload_signaled = true;
  any_episode_open_ = true;
  ++stats_.overload_signals;
  // Fresh tick: the handler sends negotiation commands and must not run
  // inside the arrival walk that is shedding.
  orb_.loop().schedule(
      0, [this, cls, object_key, cause_str = std::string(cause)] {
        if (overload_handler_) {
          overload_handler_(classifier_.class_name(cls), object_key,
                            cause_str);
        }
      });
}

void RequestScheduler::reset_drained_episodes() {
  any_episode_open_ = false;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (!classes_[i].overload_signaled) continue;
    if (queue_.class_size(i) == 0) {
      classes_[i].overload_signaled = false;
    } else {
      any_episode_open_ = true;
    }
  }
}

orb::ReplyMessage RequestScheduler::make_overload_reply(
    std::uint64_t request_id, std::size_t cls, const char* cause) const {
  orb::ReplyMessage rep;
  rep.request_id = request_id;
  rep.status = orb::ReplyStatus::kSystemException;
  rep.exception = kOverloadException + ": class=" +
                  classifier_.class_name(cls) + " cause=" + cause;
  return rep;
}

std::string RequestScheduler::point_detail(std::size_t cls,
                                           const char* cause) const {
  std::string detail = "class=" + classifier_.class_name(cls) +
                       " depth=" + std::to_string(queue_.size());
  if (cause != nullptr) {
    detail += " cause=";
    detail += cause;
  }
  return detail;
}

}  // namespace maqs::sched

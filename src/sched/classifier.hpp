// Request -> QoS-class mapping for the server-side scheduler.
//
// The class of an inbound request is derived from its negotiated binding:
// either the client stamps the class name on the wire (the "qos.class"
// service-context entry), or the server binds the negotiated object /
// mechanism module to a class when the agreement is made
// (core::bind_agreement_class). Untagged GIOP traffic lands in the
// `best_effort` class, so plain peers need no scheduler awareness at all.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "orb/message.hpp"

namespace maqs::sched {

/// Service-context key carrying an explicit class name — the
/// highest-precedence classification rule, stamped by clients that know
/// the class their agreement bought.
inline const std::string kClassContextKey = "qos.class";

/// Wire tag stamped by the QoS transport on module-routed requests
/// (protocol constant; mirrors core::QosTransport's module context key —
/// the scheduler reads the wire, it does not link against core).
inline const std::string kModuleContextKey = "qos.module";

/// The default class every scheduler owns; untagged/unbound traffic and
/// the first shedding victim under global pressure.
inline const std::string kBestEffortClassName = "best_effort";

class RequestClassifier {
 public:
  /// `names` become class ids 0..n-1; `best_effort` indexes the default
  /// class (constructed by RequestScheduler from its config).
  RequestClassifier(std::vector<std::string> names, std::size_t best_effort);

  std::size_t class_count() const noexcept { return names_.size(); }
  const std::string& class_name(std::size_t id) const { return names_[id]; }
  std::optional<std::size_t> class_id(std::string_view name) const;
  std::size_t best_effort() const noexcept { return best_effort_; }

  /// Binds a servant's object key to a class (agreement granularity:
  /// the paper binds QoS to interfaces, and an object key names one).
  /// Unknown class names are ignored and return false.
  bool bind_object(std::string_view object_key, std::string_view class_name);
  /// Binds requests routed through a QoS mechanism module (the
  /// "qos.module" wire tag) to a class.
  bool bind_module(std::string_view module, std::string_view class_name);
  /// Class for qos_aware requests no explicit rule matched (defaults to
  /// best_effort).
  bool set_qos_default(std::string_view class_name);

  /// Classification, first rule wins:
  ///   1. "qos.class" context entry naming a known class
  ///   2. object-key binding
  ///   3. "qos.module" context entry binding
  ///   4. qos_aware flag -> the configured QoS default class
  ///   5. best_effort
  /// Deterministic and allocation-free.
  std::size_t classify(const orb::RequestMessage& req) const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::map<std::string, std::size_t, std::less<>> by_object_;
  std::map<std::string, std::size_t, std::less<>> by_module_;
  std::size_t best_effort_ = 0;
  std::size_t qos_default_ = 0;
};

}  // namespace maqs::sched

// Server-side QoS-class request scheduler.
//
// The missing mechanism layer between agreement-time admission (the
// ResourceManager) and per-request dispatch: without it the server serves
// every inbound request immediately, FIFO, and a negotiated characteristic
// buys nothing once offered load exceeds capacity. The scheduler sits on
// the ORB's server interceptor chain at priority 175 — below the wire
// stages (trace re-attach 100, wire.reply 150), above the QoS transforms
// (qos.server 200) — and turns dispatch into a scheduled, virtual-time-
// driven activity:
//
//   arrival --> classify --> token-bucket admit --> bounded queue (park)
//                                  |                      |
//                                  v                      v  EventLoop
//                            maqs/OVERLOAD           WFQ + deadline pop
//                          (never a silent drop)          |
//                                                         v
//                                            Orb::resume_request (full
//                                            chain re-entry, wire reply)
//
// Policy, mechanism, and their separation (the RAFDA argument): the
// scheduler is pure mechanism. Which class a binding maps to, what budget
// a class gets, and what renegotiation means on overload are policy,
// injected through the classifier bindings, the class configs, and the
// overload handler (wired to the negotiation/adaptation layer by
// core/sched_bridge.hpp).
//
// Overload contract: a request that cannot be served is *answered* with a
// classified SYSTEM_EXCEPTION ("maqs/OVERLOAD: class=<c> cause=<why>") —
// never silently dropped — and for non-best-effort classes the first shed
// of an overload episode signals the overload handler exactly once, so
// the client side can renegotiate the class downward before further
// rejections. Shedding prefers best-effort: under global queue pressure a
// queued best-effort request (latest deadline first) is evicted to make
// room for a higher-class arrival.
//
// Determinism: arrivals are ordered by the event loop, queues by
// (virtual-time WFQ tag, deadline, admission seq), token refill by the
// virtual clock. A fixed-seed run replays every admit/park/shed/dispatch
// decision — and therefore every trace span — byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.hpp"
#include "orb/interceptor.hpp"
#include "orb/message.hpp"
#include "sched/classifier.hpp"
#include "sched/token_bucket.hpp"
#include "sched/wfq.hpp"
#include "sim/clock.hpp"

namespace maqs::orb {
class Orb;
}

namespace maqs::sched {

/// Exception-id prefix of every shed reply.
inline const std::string kOverloadException = "maqs/OVERLOAD";

/// One QoS class the scheduler differentiates.
struct ClassConfig {
  std::string name;
  /// WFQ share relative to the other backlogged classes.
  double weight = 1.0;
  /// Deadline = arrival + budget; queued requests past it are shed.
  sim::Duration deadline_budget = 100 * sim::kMillisecond;
  /// Bound on this class's queue; arrivals beyond it are shed.
  std::size_t queue_limit = 64;
  /// Token-bucket admission rate (requests per virtual second);
  /// 0 disables the gate for this class.
  double rate_rps = 0.0;
  /// Bucket depth for rate_rps.
  double burst = 8.0;
  /// Optional ResourceManager coupling: names a declared resource whose
  /// capacity drives rate_rps at runtime (core::attach_class_budgets).
  std::string resource;
};

struct SchedulerConfig {
  /// A "best_effort" class is appended when the list does not name one.
  std::vector<ClassConfig> classes;
  /// Service (drain) rate in requests per virtual second. 0 = unpaced:
  /// an idle server dispatches arrivals inline (classification and
  /// admission still apply) and the queues never build.
  double service_rate_rps = 0.0;
  /// Global bound across all class queues; 0 derives it from the sum of
  /// the per-class limits.
  std::size_t total_limit = 0;
};

struct ClassStats {
  std::string name;
  std::uint64_t arrived = 0;     ///< classified service requests
  std::uint64_t dispatched = 0;  ///< served (inline or from the queue)
  std::uint64_t shed = 0;        ///< answered with maqs/OVERLOAD
};

struct SchedStats {
  std::uint64_t dispatched_inline = 0;  ///< served on arrival (idle server)
  std::uint64_t parked = 0;             ///< queued for deferred dispatch
  std::uint64_t dispatched_queued = 0;  ///< served from the queue
  std::uint64_t shed_no_tokens = 0;     ///< token-bucket admission refusals
  std::uint64_t shed_queue_full = 0;    ///< class/global bound refusals
  std::uint64_t shed_deadline = 0;      ///< queued past their deadline
  std::uint64_t shed_evicted = 0;       ///< best-effort victims evicted
  std::uint64_t overload_signals = 0;   ///< renegotiate-once callbacks fired
  std::uint64_t commands_bypassed = 0;  ///< control plane passed through
  std::vector<ClassStats> classes;

  std::uint64_t total_shed() const noexcept {
    return shed_no_tokens + shed_queue_full + shed_deadline + shed_evicted;
  }
  std::uint64_t total_dispatched() const noexcept {
    return dispatched_inline + dispatched_queued;
  }
};

/// The scheduler. Construction registers it on `orb`'s server chain at
/// priorities::kServerSched and installs the event-loop drain hook;
/// destruction undoes both. Commands (the negotiation/adaptation control
/// plane) always bypass the queues — renegotiation under overload must not
/// wait behind the very backlog it is meant to relieve. Note that
/// Orb::dispatch (the QoS transport's collocated entry) enters the chain
/// above this priority and is likewise never queued.
class RequestScheduler final : public orb::ServerInterceptor {
 public:
  RequestScheduler(orb::Orb& orb, SchedulerConfig config);
  ~RequestScheduler() override;
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  RequestClassifier& classifier() noexcept { return classifier_; }
  const RequestClassifier& classifier() const noexcept { return classifier_; }

  /// First shed of an overload episode for a non-best-effort class, on a
  /// fresh event-loop tick (the handler talks to the negotiation layer).
  /// An episode ends when the class's queue drains.
  using OverloadHandler = std::function<void(
      const std::string& class_name, const std::string& object_key,
      const std::string& cause)>;
  void set_overload_handler(OverloadHandler handler) {
    overload_handler_ = std::move(handler);
  }

  /// Re-budgets a class's admission rate (ResourceManager coupling);
  /// false for unknown classes. Rate 0 removes the gate.
  bool set_class_rate(std::string_view class_name, double rate_rps);

  const SchedStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  std::size_t queue_depth(std::string_view class_name) const;
  const ClassConfig& class_config(std::size_t cls) const {
    return classes_[cls].config;
  }

  // -- orb::ServerInterceptor --
  const char* name() const noexcept override { return "sched"; }
  void receive_request(orb::ServerRequestInfo& info) override;

 private:
  struct NormalizedTag {};
  RequestScheduler(orb::Orb& orb, SchedulerConfig config, NormalizedTag);

  struct Parked {
    orb::RequestMessage request;
    net::Address from;
  };
  using Queue = WeightedFairQueue<Parked>;

  struct ClassState {
    ClassConfig config;
    std::optional<TokenBucket> bucket;
    /// Set when this episode's renegotiation signal fired; reset when the
    /// class's queue drains.
    bool overload_signaled = false;
  };

  void begin_service(sim::TimePoint now) noexcept;
  void arm_drain();
  void on_drain();
  /// EventLoop drain hook: flushes every parked request (pacing no longer
  /// matters on a loop going idle) so none is ever stranded.
  bool flush_all();
  /// Sheds an arriving request through the normal chain unwind: fills an
  /// OVERLOAD reply, sets info.completed.
  void shed_arrival(orb::ServerRequestInfo& info, std::size_t cls,
                    const char* cause);
  /// Sheds a previously parked request: the reply goes straight onto the
  /// wire (Orb::send_reply_frame), the span re-attaches to the parked
  /// request's trace context.
  void shed_parked(Queue::Popped& item, const char* cause);
  /// Evicts the latest-deadline best-effort entry to admit a higher-class
  /// arrival; false when there is no such victim.
  bool evict_best_effort(std::size_t incoming_cls);
  /// Shed accounting + the renegotiate-once overload signal.
  void note_shed(std::size_t cls, const std::string& object_key,
                 const char* cause);
  void reset_drained_episodes();
  orb::ReplyMessage make_overload_reply(std::uint64_t request_id,
                                        std::size_t cls,
                                        const char* cause) const;
  std::string point_detail(std::size_t cls, const char* cause) const;

  orb::Orb& orb_;
  RequestClassifier classifier_;
  std::vector<ClassState> classes_;
  Queue queue_;
  sim::Duration service_time_ = 0;  // 0 = unpaced
  std::size_t total_limit_ = 0;
  sim::TimePoint busy_until_ = 0;
  bool drain_armed_ = false;
  bool any_episode_open_ = false;
  OverloadHandler overload_handler_;
  SchedStats stats_;
};

}  // namespace maqs::sched

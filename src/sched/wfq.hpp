// Weighted-fair queueing across QoS classes with per-class deadline order.
//
// Virtual-time WFQ at request granularity (start-time-fair-queueing
// shaped): each class carries a finish tag; a class becoming backlogged
// gets tag = max(virtual clock, its last finish) + 1/weight, each service
// advances the tag by 1/weight, and pop() always serves the backlogged
// class with the smallest tag. Over any backlogged interval class i
// therefore receives service proportional to weight_i, and no class can
// be starved: a waiting class's tag stands still while every service of a
// competitor advances the clock toward it. Within a class, requests are
// served earliest-deadline-first (deadline = arrival + class budget).
//
// Tags are 64-bit fixed-point (kTagOne = 1.0), not doubles: a double
// virtual clock grows with every service until adding a small stride
// (1/weight for a heavily weighted class) falls below the clock's ulp and
// fairness silently drifts — exactly the regime a population run with
// millions of services enters. Integer tags make every tag update exact,
// and renormalization is exact too: whenever the queue goes idle the
// clock and all per-class history reset to zero, and during an unbounded
// busy period the common base (the clock) is subtracted out of every tag
// once the clock crosses a threshold — backlogged finish tags are always
// >= the clock, so the subtraction preserves every comparison bit-for-bit
// and tags never approach overflow.
//
// Everything is deterministic: ties on the finish tag break by class id,
// ties on the deadline by a global admission sequence number, and tag
// arithmetic is integer arithmetic over the same inputs each run — a
// fixed-seed simulation replays the exact service order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace maqs::sched {

template <typename Payload>
class WeightedFairQueue {
 public:
  /// Fixed-point tag arithmetic: kTagOne represents a virtual-time unit of
  /// 1.0, so a class of weight w advances by ~kTagOne/w per service.
  using Tag = std::uint64_t;
  static constexpr Tag kTagOne = Tag{1} << 20;
  /// Stride bounds: a zero/degenerate weight must not produce a zero
  /// stride (the class would freeze the clock) nor one so large that a
  /// few strides overflow. 2^44 supports weight ratios beyond 10^7 while
  /// leaving ~2^19 services of headroom below the renorm threshold.
  static constexpr Tag kMaxStride = Tag{1} << 44;
  /// Renormalize (subtract the clock out of every tag) once the clock
  /// crosses this; far below overflow, far above any single stride.
  static constexpr Tag kRenormThreshold = Tag{1} << 62;

  explicit WeightedFairQueue(std::vector<double> weights) {
    classes_.reserve(weights.size());
    for (double w : weights) {
      ClassQueue q;
      const double stride =
          std::ceil(static_cast<double>(kTagOne) / std::max(w, 1e-9));
      q.stride = static_cast<Tag>(
          std::clamp(stride, 1.0, static_cast<double>(kMaxStride)));
      classes_.push_back(std::move(q));
    }
  }

  struct Popped {
    std::size_t cls = 0;
    sim::TimePoint deadline = 0;
    std::uint64_t seq = 0;
    Payload payload;
  };

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t class_count() const noexcept { return classes_.size(); }
  std::size_t class_size(std::size_t cls) const noexcept {
    return classes_[cls].items.size();
  }
  /// Current virtual clock (fixed-point; observability and tests).
  Tag virtual_clock() const noexcept { return virtual_clock_; }

  void push(std::size_t cls, sim::TimePoint deadline, Payload payload) {
    ClassQueue& q = classes_[cls];
    if (q.items.empty()) {
      // Becoming backlogged: never earlier than the virtual clock (no
      // credit for idle time), never earlier than its own last finish.
      q.finish_tag = std::max(virtual_clock_, q.last_finish) + q.stride;
    }
    q.items.push_back(Item{deadline, next_seq_++, std::move(payload)});
    std::push_heap(q.items.begin(), q.items.end(), LaterFirst{});
    ++size_;
  }

  /// Serves the WFQ pick: smallest finish tag across backlogged classes
  /// (class id breaks ties), earliest deadline within it. Precondition:
  /// !empty().
  Popped pop() {
    std::size_t pick = classes_.size();
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      if (classes_[i].items.empty()) continue;
      if (pick == classes_.size() ||
          classes_[i].finish_tag < classes_[pick].finish_tag) {
        pick = i;
      }
    }
    ClassQueue& q = classes_[pick];
    virtual_clock_ = std::max(virtual_clock_, q.finish_tag);
    q.last_finish = q.finish_tag;
    q.finish_tag += q.stride;
    if (virtual_clock_ >= kRenormThreshold) renormalize();
    return take(pick, 0);
  }

  /// Sheds the entry of `cls` with the latest deadline (newest seq breaks
  /// ties) — the victim losing the least by being dropped. Not a service:
  /// the class's tags are untouched. nullopt when the class is idle.
  std::optional<Popped> evict_latest(std::size_t cls) {
    ClassQueue& q = classes_[cls];
    if (q.items.empty()) return std::nullopt;
    std::size_t victim = 0;
    for (std::size_t i = 1; i < q.items.size(); ++i) {
      if (LaterFirst{}(q.items[victim], q.items[i])) continue;
      victim = i;
    }
    return take(cls, victim);
  }

 private:
  struct Item {
    sim::TimePoint deadline = 0;
    std::uint64_t seq = 0;
    Payload payload;
  };
  /// Heap order: the *earliest* (deadline, seq) floats to the front.
  struct LaterFirst {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };
  struct ClassQueue {
    std::vector<Item> items;  // heap via LaterFirst (min on front)
    Tag stride = kTagOne;     // ~kTagOne/weight, in [1, kMaxStride]
    Tag finish_tag = 0;       // valid while backlogged
    Tag last_finish = 0;
  };

  /// Subtracts the virtual clock out of every tag. Exact: backlogged
  /// finish tags are >= the clock by construction (the clock only ever
  /// rises to a popped minimum tag), so their differences — the only thing
  /// pop() compares — are preserved untouched; last-finish values are
  /// <= the clock and saturate to 0, which leaves max(clock, last_finish)
  /// unchanged at the new origin. Idle classes' stale finish tags are
  /// dead values (recomputed on the next push) and just saturate.
  void renormalize() noexcept {
    const Tag base = virtual_clock_;
    virtual_clock_ = 0;
    for (ClassQueue& q : classes_) {
      q.finish_tag = q.finish_tag > base ? q.finish_tag - base : 0;
      q.last_finish = q.last_finish > base ? q.last_finish - base : 0;
    }
  }

  Popped take(std::size_t cls, std::size_t index) {
    ClassQueue& q = classes_[cls];
    Popped out;
    out.cls = cls;
    if (index == 0) {
      std::pop_heap(q.items.begin(), q.items.end(), LaterFirst{});
    } else if (index + 1 != q.items.size()) {
      // Removing from the middle (eviction): swap-out then re-heapify.
      std::swap(q.items[index], q.items.back());
    }
    out.deadline = q.items.back().deadline;
    out.seq = q.items.back().seq;
    out.payload = std::move(q.items.back().payload);
    q.items.pop_back();
    if (index != 0 && index != q.items.size()) {
      std::make_heap(q.items.begin(), q.items.end(), LaterFirst{});
    }
    --size_;
    // The queue going fully idle ends the busy period: no class deserves
    // credit or debt across the gap, so the virtual clock and all history
    // reset — the precision-preserving twin of the busy-period renorm.
    if (size_ == 0) {
      virtual_clock_ = 0;
      for (ClassQueue& queue : classes_) {
        queue.finish_tag = 0;
        queue.last_finish = 0;
      }
    }
    return out;
  }

  std::vector<ClassQueue> classes_;
  Tag virtual_clock_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace maqs::sched

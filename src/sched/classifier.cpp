#include "sched/classifier.hpp"

namespace maqs::sched {
namespace {

std::string_view as_view(const util::Bytes& bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace

RequestClassifier::RequestClassifier(std::vector<std::string> names,
                                     std::size_t best_effort)
    : names_(std::move(names)),
      best_effort_(best_effort),
      qos_default_(best_effort) {
  for (std::size_t i = 0; i < names_.size(); ++i) by_name_[names_[i]] = i;
}

std::optional<std::size_t> RequestClassifier::class_id(
    std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool RequestClassifier::bind_object(std::string_view object_key,
                                    std::string_view class_name) {
  auto id = class_id(class_name);
  if (!id) return false;
  by_object_[std::string(object_key)] = *id;
  return true;
}

bool RequestClassifier::bind_module(std::string_view module,
                                    std::string_view class_name) {
  auto id = class_id(class_name);
  if (!id) return false;
  by_module_[std::string(module)] = *id;
  return true;
}

bool RequestClassifier::set_qos_default(std::string_view class_name) {
  auto id = class_id(class_name);
  if (!id) return false;
  qos_default_ = *id;
  return true;
}

std::size_t RequestClassifier::classify(const orb::RequestMessage& req) const {
  if (auto tag = req.context.find(kClassContextKey);
      tag != req.context.end()) {
    if (auto it = by_name_.find(as_view(tag->second)); it != by_name_.end()) {
      return it->second;
    }
  }
  if (!by_object_.empty()) {
    if (auto it = by_object_.find(req.object_key); it != by_object_.end()) {
      return it->second;
    }
  }
  if (!by_module_.empty()) {
    if (auto tag = req.context.find(kModuleContextKey);
        tag != req.context.end()) {
      if (auto it = by_module_.find(as_view(tag->second));
          it != by_module_.end()) {
        return it->second;
      }
    }
  }
  return req.qos_aware ? qos_default_ : best_effort_;
}

}  // namespace maqs::sched

#include "sched/token_bucket.hpp"

#include <algorithm>

namespace maqs::sched {

TokenBucket::TokenBucket(double rate_per_sec, double burst,
                         sim::TimePoint start) noexcept
    : rate_(rate_per_sec),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_refill_(start) {}

void TokenBucket::refill(sim::TimePoint now) noexcept {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_,
                     tokens_ + rate_ * sim::to_seconds(now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::try_take(sim::TimePoint now) noexcept {
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(sim::TimePoint now) noexcept {
  refill(now);
  return tokens_;
}

void TokenBucket::set_rate(double rate_per_sec, sim::TimePoint now) noexcept {
  refill(now);
  rate_ = rate_per_sec;
  tokens_ = std::min(tokens_, burst_);
}

}  // namespace maqs::sched

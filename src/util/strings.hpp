// Small string helpers used by the QIDL front-end and diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace maqs::util {

/// Splits `s` on the separator character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins pieces with the separator string.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

}  // namespace maqs::util

#include "util/bytes.hpp"

#include <stdexcept>

namespace maqs::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::string to_hex(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0F]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 +
                                            hex_value(hex[i + 1])));
  }
  return out;
}

std::uint64_t fnv1a(BytesView b) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : b) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace maqs::util

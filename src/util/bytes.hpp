// Byte-buffer utilities shared by marshaling, networking and codecs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace maqs::util {

/// The universal octet buffer used across the stack (CDR streams, network
/// payloads, codec input/output).
using Bytes = std::vector<std::uint8_t>;

/// Read-only view of a byte buffer.
using BytesView = std::span<const std::uint8_t>;

/// Converts an arbitrary string into a byte buffer (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Converts a byte buffer back into a std::string (no encoding applied).
std::string to_string(BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Lower-case hex encoding, e.g. {0xDE, 0xAD} -> "dead".
std::string to_hex(BytesView b);

/// Parses a lower/upper-case hex string. Throws std::invalid_argument on
/// malformed input (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// FNV-1a 64-bit hash; used for content fingerprints and cheap MACs in the
/// simulated security substrate (not cryptographically strong).
std::uint64_t fnv1a(BytesView b) noexcept;

}  // namespace maqs::util

#include "util/buffer_pool.hpp"

namespace maqs::util {

BufferPool& BufferPool::instance() {
  static BufferPool pool;
  return pool;
}

Bytes BufferPool::acquire(std::size_t size_hint) {
  // Newest-first: the most recently released buffer is the most likely to
  // be cache-warm and correctly sized for the current traffic pattern.
  for (std::size_t i = free_.size(); i-- > 0;) {
    if (free_[i].capacity() >= size_hint) {
      Bytes out = std::move(free_[i]);
      if (i + 1 != free_.size()) free_[i] = std::move(free_.back());
      free_.pop_back();
      ++hits_;
      return out;
    }
  }
  ++misses_;
  Bytes out;
  out.reserve(size_hint);
  return out;
}

void BufferPool::release(Bytes&& buf) noexcept {
  if (buf.capacity() < kMinUseful || free_.size() >= kMaxPooled) return;
  buf.clear();
  free_.push_back(std::move(buf));
}

void BufferPool::clear() noexcept {
  free_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace maqs::util

#include "util/buffer_pool.hpp"

namespace maqs::util {

BufferPool& BufferPool::instance() {
  static thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::acquire(std::size_t size_hint) {
  // Best-fit, newest among equals: the smallest pooled buffer that still
  // fits. Newest-first capacity-fit looks attractive (cache-warm), but it
  // hands the largest buffers to the smallest requests; on a request cycle
  // whose one big acquire runs *after* several small ones, the big buffers
  // are always checked out by the time the big acquire arrives and it
  // mallocs afresh every request. Best-fit keeps large capacities alive
  // for large hints at the cost of scanning all (<= kMaxPooled) entries.
  std::size_t best = free_.size();
  for (std::size_t i = free_.size(); i-- > 0;) {
    const std::size_t cap = free_[i].capacity();
    if (cap < size_hint) continue;
    if (best == free_.size() || cap < free_[best].capacity()) best = i;
  }
  if (best != free_.size()) {
    Bytes out = std::move(free_[best]);
    if (best + 1 != free_.size()) free_[best] = std::move(free_.back());
    free_.pop_back();
    ++hits_;
    return out;
  }
  ++misses_;
  Bytes out;
  out.reserve(size_hint);
  return out;
}

void BufferPool::release(Bytes&& buf) noexcept {
  if (buf.capacity() < kMinUseful || free_.size() >= kMaxPooled) return;
  buf.clear();
  free_.push_back(std::move(buf));
}

void BufferPool::clear() noexcept {
  free_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace maqs::util

// Per-thread recycling pool for byte buffers.
//
// The invocation hot path creates and destroys one util::Bytes per layer
// crossing (wire frames, decoded bodies, transform arena slabs). Payload
// sizes are stable in steady state, so a small free list turns nearly all
// of that churn into capacity reuse. instance() is thread-local: each
// simulation shard is its own single-threaded world, so pools need no
// locks and buffers never migrate between shards.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace maqs::util {

class BufferPool {
 public:
  /// This thread's pool (one per thread — see file comment).
  static BufferPool& instance();

  /// Returns an empty buffer with capacity >= size_hint — recycled when a
  /// pooled buffer is big enough, freshly reserved otherwise.
  Bytes acquire(std::size_t size_hint);

  /// Donates a dead buffer's storage back to the pool. Tiny buffers and
  /// overflow beyond the pool bound are simply freed.
  void release(Bytes&& buf) noexcept;

  // Observability (bench + tests).
  std::size_t pooled() const noexcept { return free_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Drops all pooled storage (test isolation between scenarios).
  void clear() noexcept;

 private:
  BufferPool() { free_.reserve(kMaxPooled); }

  static constexpr std::size_t kMaxPooled = 32;
  static constexpr std::size_t kMinUseful = 64;

  std::vector<Bytes> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace maqs::util

// Minimal leveled logger.
//
// The library is deliberately quiet by default (benchmarks must not pay for
// I/O); tests raise the level when diagnosing failures. Sinks are pluggable
// so tests can capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace maqs::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the printable name of a level ("TRACE", "DEBUG", ...).
const char* log_level_name(LogLevel level) noexcept;

/// Global logging configuration. Not thread-safe by design: the whole stack
/// is single-threaded (discrete-event core, see DESIGN.md D1).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Replaces the sink; pass nullptr to restore the default (stderr).
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const noexcept { return level >= level_; }
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style log statement builder.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().write(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace maqs::util

#define MAQS_LOG(level)                                             \
  if (!::maqs::util::Logger::instance().enabled(level)) {           \
  } else                                                            \
    ::maqs::util::LogStatement(level)

#define MAQS_TRACE() MAQS_LOG(::maqs::util::LogLevel::kTrace)
#define MAQS_DEBUG() MAQS_LOG(::maqs::util::LogLevel::kDebug)
#define MAQS_INFO() MAQS_LOG(::maqs::util::LogLevel::kInfo)
#define MAQS_WARN() MAQS_LOG(::maqs::util::LogLevel::kWarn)
#define MAQS_ERROR() MAQS_LOG(::maqs::util::LogLevel::kError)

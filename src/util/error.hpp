// Root of the library's exception hierarchy.
//
// Per the C++ Core Guidelines (I.10, E.2) errors that prevent a function
// from doing its job are reported as exceptions. Every MAQS-specific
// exception derives from maqs::Error so callers can catch the whole family.
#pragma once

#include <stdexcept>
#include <string>

namespace maqs {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace maqs

// Root of the library's exception hierarchy.
//
// Per the C++ Core Guidelines (I.10, E.2) errors that prevent a function
// from doing its job are reported as exceptions. Every MAQS-specific
// exception derives from maqs::Error so callers can catch the whole family.
//
// Every Error is stamped with the causal trace id active at construction
// (0 when none), so failed negotiations and module faults are attributable
// to a trace in the recorder's dump. The slot lives here — not in the
// trace library — because util sits below trace in the layering;
// trace::SpanScope maintains it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace maqs {

namespace trace_detail {

/// Trace id of the innermost recording span scope (0 when none).
std::uint64_t active_trace_id() noexcept;

/// Maintained by trace::SpanScope; not for application use.
void set_active_trace_id(std::uint64_t id) noexcept;

}  // namespace trace_detail

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), trace_id_(trace_detail::active_trace_id()) {}

  /// Trace under which this error was raised; 0 when none was active.
  std::uint64_t trace_id() const noexcept { return trace_id_; }

 private:
  std::uint64_t trace_id_;
};

}  // namespace maqs

// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (message loss, jitter, workload
// generation, fault injection) draws from explicitly seeded generators so
// that every test and benchmark run is reproducible.
#pragma once

#include <cstdint>

namespace maqs::util {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and decoupled
/// from the platform's std::mt19937 implementation details.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace maqs::util

#include "util/log.hpp"

#include <iostream>

namespace maqs::util {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  set_sink(nullptr);
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::cerr << "[maqs:" << log_level_name(level) << "] " << message
                << '\n';
    };
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace maqs::util

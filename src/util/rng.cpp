#include "util/rng.hpp"

#include <cmath>

namespace maqs::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection-free approximation is fine here; the
  // slight modulo bias of a plain % would also be acceptable for simulation,
  // but this is cheap and better.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace maqs::util

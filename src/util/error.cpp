#include "util/error.hpp"

namespace maqs::trace_detail {

namespace {
// Single-threaded discrete-event simulator: one process-wide slot.
std::uint64_t g_active_trace_id = 0;
}  // namespace

std::uint64_t active_trace_id() noexcept { return g_active_trace_id; }

void set_active_trace_id(std::uint64_t id) noexcept {
  g_active_trace_id = id;
}

}  // namespace maqs::trace_detail

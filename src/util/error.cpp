#include "util/error.hpp"

namespace maqs::trace_detail {

namespace {
// One slot per thread: each simulation shard runs its own event loop on
// its own thread, and an error raised on shard 3 must not stamp shard 5's
// trace id.
thread_local std::uint64_t g_active_trace_id = 0;
}  // namespace

std::uint64_t active_trace_id() noexcept { return g_active_trace_id; }

void set_active_trace_id(std::uint64_t id) noexcept {
  g_active_trace_id = id;
}

}  // namespace maqs::trace_detail

// HTTP/1.1 subset for the edge gateway.
//
// The gateway terminates HTTP at the boundary of the simulated network:
// each net::Network payload is one TCP-segment-like chunk, so the parser
// is incremental and tolerant of torn reads — a request may arrive split
// at any byte position across any number of payloads, or several
// pipelined requests may arrive in one. Supported subset:
//
//   - request line + headers (case-insensitive names, stored folded to
//     lowercase), terminated by CRLF CRLF
//   - bodies via Content-Length or Transfer-Encoding: chunked
//   - keep-alive (HTTP/1.1 default) and "Connection: close"
//   - pipelining: feed() accumulates, poll() yields requests in order
//
// Anything outside the subset (bad request line, oversized headers or
// body, malformed chunk framing) poisons the parser: poll() reports
// kError once and the connection must be answered 400 and dropped. The
// parser never throws on wire input — malformed bytes are a state, not an
// exception.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace maqs::gateway {

/// One parsed request. Header names are folded to lowercase; values keep
/// their bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;   // origin-form path, e.g. "/api/Echo/add"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;
  bool keep_alive = true;

  /// First header named `name` (lowercase); nullopt when absent.
  std::optional<std::string_view> header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;
  bool close_connection = false;

  void set_header(std::string name, std::string value);
  std::optional<std::string_view> header(std::string_view name) const;

  /// Serializes status line + headers + Content-Length + body.
  util::Bytes encode() const;
};

/// Canonical reason phrase for the subset of status codes the gateway
/// emits; "Unknown" otherwise.
std::string_view status_reason(int status) noexcept;

class HttpParser {
 public:
  enum class Result {
    kNeedMore,  // no complete request buffered yet
    kRequest,   // one request extracted into the out-parameter
    kError,     // framing violation; parser is poisoned
  };

  /// Hard limits; exceeding either poisons the parser (the gateway
  /// answers 400/413-as-400 and drops the connection).
  static constexpr std::size_t kMaxHeaderBytes = 8 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

  /// Appends one torn read. No parsing happens here; feed() never fails.
  void feed(util::BytesView data);

  /// Extracts the next complete request, if any. Call repeatedly until
  /// kNeedMore (pipelining). After kError the parser stays poisoned.
  Result poll(HttpRequest& out);

  bool poisoned() const noexcept { return poisoned_; }
  /// Diagnostic for the 400 fault body after kError.
  const std::string& error() const noexcept { return error_; }
  /// Bytes buffered but not yet consumed (mid-request).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  enum class State { kHeaders, kBody, kChunkHeader, kChunkData, kChunkTrailer };

  Result fail(std::string what);
  bool parse_head(HttpRequest& out);

  util::Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already parsed away
  State state_ = State::kHeaders;
  HttpRequest pending_;        // request whose body is being accumulated
  std::size_t body_remaining_ = 0;
  std::size_t chunk_remaining_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

/// Client-side twin of HttpParser: parses responses (status line instead
/// of request line; same torn-read tolerance). Used by tests and the
/// bench HTTP client.
class HttpResponseParser {
 public:
  enum class Result { kNeedMore, kResponse, kError };

  void feed(util::BytesView data);
  Result poll(HttpResponse& out);
  const std::string& error() const noexcept { return error_; }

 private:
  Result fail(std::string what);

  util::Bytes buffer_;
  std::size_t consumed_ = 0;
  bool in_body_ = false;
  HttpResponse pending_;
  std::size_t body_remaining_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace maqs::gateway

// MTOM-style out-of-band payload carriage: multipart/related containers
// whose root part is the JSON document and whose binary parts carry blob
// (sequence<octet>) values referenced by cid.
//
// Wire shape (a strict, deterministic subset of RFC 2387 + MTOM):
//
//   Content-Type: multipart/related; boundary=B; type="application/json"
//
//   --B\r\n
//   content-type: application/json\r\n
//   \r\n
//   {"data":{"$blob":"cid:part0"}}\r\n
//   --B\r\n
//   content-id: <part0>\r\n
//   content-type: application/octet-stream\r\n
//   \r\n
//   <raw bytes>\r\n
//   --B--\r\n
//
// Parsing is zero-copy: each part's data is a BytesView into the
// container body (which the gateway keeps alive until the DII request is
// encoded), so a 4KiB blob crosses from HTTP body to CDR request body
// with exactly one copy — and none at all on the reply side, where the
// part is a borrowed ChainBuf region over the reply buffer.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace maqs::gateway {

struct MtomPart {
  std::string content_id;    // without the <> brackets
  std::string content_type;  // lowercase
  util::BytesView data;      // view into the container body
};

/// A parsed multipart/related container: the root (JSON) part plus the
/// binary parts keyed by cid.
struct MtomContainer {
  util::BytesView root;  // the JSON document
  std::vector<MtomPart> parts;

  /// Part for "cid:<id>" or bare "<id>"; nullptr when absent.
  const MtomPart* find(std::string_view cid_url) const;
};

/// Extracts the media type (lowercased, e.g. "multipart/related") and the
/// boundary parameter from a Content-Type header value. The boundary is
/// empty when the parameter is absent.
struct ContentType {
  std::string media_type;
  std::string boundary;
};
ContentType parse_content_type(std::string_view header_value);

/// Parses a multipart/related body. Returns nullopt on any framing
/// violation (the gateway answers 400). Views point into `body`.
std::optional<MtomContainer> parse_multipart_related(util::BytesView body,
                                                     std::string_view boundary);

/// Builds a multipart/related response container. Deterministic: the
/// caller supplies the boundary; parts are laid out in add order.
class MultipartBuilder {
 public:
  explicit MultipartBuilder(std::string boundary);

  /// The Content-Type header value announcing this container.
  std::string content_type() const;

  void add_json_root(std::string_view json);
  void add_blob_part(std::string_view cid, util::BytesView data);

  /// Total byte size of finish()'s output (for exact pre-sizing).
  std::size_t encoded_size() const noexcept;

  /// Assembles the container; the builder is spent afterwards.
  util::Bytes finish();

 private:
  struct Piece {
    std::string head;      // "--B\r\n" + part headers + blank line
    util::BytesView data;  // part payload (borrowed)
    std::string owned;     // root JSON is owned; blob parts borrow
  };

  std::string boundary_;
  std::vector<Piece> pieces_;
};

}  // namespace maqs::gateway

#include "gateway/binding.hpp"

#include <algorithm>

namespace maqs::gateway {

RouteTable RouteTable::build(const qidl::InterfaceRepository& repo,
                             std::string_view prefix) {
  RouteTable table;
  for (const std::string& name : repo.interface_names()) {
    const qidl::InterfaceEntry* entry = repo.find_interface(name);
    for (const qidl::OperationSignature& op : entry->operations) {
      Route route;
      route.path = std::string(prefix) + "/" + entry->name + "/" + op.name;
      route.interface = entry;
      route.operation = &op;
      table.routes_.push_back(std::move(route));
    }
  }
  std::sort(table.routes_.begin(), table.routes_.end(),
            [](const Route& a, const Route& b) { return a.path < b.path; });
  return table;
}

const Route* RouteTable::find(std::string_view path) const {
  const auto it = std::lower_bound(
      routes_.begin(), routes_.end(), path,
      [](const Route& route, std::string_view p) { return route.path < p; });
  if (it == routes_.end() || it->path != path) return nullptr;
  return &*it;
}

}  // namespace maqs::gateway

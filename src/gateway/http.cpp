#include "gateway/http.hpp"

#include <algorithm>
#include <cctype>

namespace maqs::gateway {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<std::string_view> find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (key == name) return std::string_view(value);
  }
  return std::nullopt;
}

/// Parses a decimal size; nullopt on garbage or overflow.
std::optional<std::size_t> parse_size(std::string_view s) {
  if (s.empty() || s.size() > 12) return std::nullopt;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

/// Parses a hex chunk size (chunk extensions after ';' are ignored).
std::optional<std::size_t> parse_chunk_size(std::string_view s) {
  if (const auto semi = s.find(';'); semi != std::string_view::npos) {
    s = s.substr(0, semi);
  }
  s = trim(s);
  if (s.empty() || s.size() > 8) return std::nullopt;
  std::size_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + static_cast<std::size_t>(digit);
  }
  return value;
}

/// Splits header lines out of `head` (which excludes the final empty
/// line). Returns false on a malformed line.
bool parse_header_lines(std::string_view head,
                        std::vector<std::pair<std::string, std::string>>& out) {
  while (!head.empty()) {
    const auto eol = head.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    head = eol == std::string_view::npos ? std::string_view{}
                                         : head.substr(eol + 2);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    const std::string_view name = line.substr(0, colon);
    // Obsolete line folding and spaces inside field names are rejected.
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return false;
    }
    out.emplace_back(to_lower(name), std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

std::optional<std::string_view> HttpRequest::header(
    std::string_view name) const {
  return find_header(headers, name);
}

void HttpResponse::set_header(std::string name, std::string value) {
  headers.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> HttpResponse::header(
    std::string_view name) const {
  return find_header(headers, name);
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

util::Bytes HttpResponse::encode() const {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     std::string(status_reason(status)) + "\r\n";
  for (const auto& [name, value] : headers) {
    head += name;
    head += ": ";
    head += value;
    head += "\r\n";
  }
  head += "content-length: " + std::to_string(body.size()) + "\r\n";
  if (close_connection) head += "connection: close\r\n";
  head += "\r\n";
  util::Bytes out;
  out.reserve(head.size() + body.size());
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

// ---- HttpParser ----

void HttpParser::feed(util::BytesView data) {
  if (poisoned_) return;
  // Compact once the parsed prefix dominates the buffer, so a long-lived
  // keep-alive connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

HttpParser::Result HttpParser::fail(std::string what) {
  poisoned_ = true;
  error_ = std::move(what);
  return Result::kError;
}

/// Parses the request line + header block at the consumed_ offset, if the
/// CRLF CRLF terminator has arrived. Leaves consumed_ past the blank line
/// and fills pending_. Returns false when more bytes are needed (or the
/// parser was poisoned).
bool HttpParser::parse_head(HttpRequest& out) {
  const std::string_view view(
      reinterpret_cast<const char*>(buffer_.data()) + consumed_,
      buffer_.size() - consumed_);
  const auto head_end = view.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (view.size() > kMaxHeaderBytes) {
      fail("header block exceeds " + std::to_string(kMaxHeaderBytes) +
           " bytes");
    }
    return false;
  }
  if (head_end > kMaxHeaderBytes) {
    fail("header block exceeds " + std::to_string(kMaxHeaderBytes) + " bytes");
    return false;
  }
  const std::string_view head = view.substr(0, head_end);
  const auto line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  const auto sp1 = request_line.find(' ');
  const auto sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 == sp1 + 1) {
    fail("malformed request line");
    return false;
  }
  out = HttpRequest{};
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (out.method.empty() || out.target.empty() || out.target[0] != '/' ||
      (out.version != "HTTP/1.1" && out.version != "HTTP/1.0")) {
    fail("malformed request line");
    return false;
  }
  const std::string_view header_block =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  if (!parse_header_lines(header_block, out.headers)) {
    fail("malformed header line");
    return false;
  }
  out.keep_alive = out.version == "HTTP/1.1";
  if (const auto conn = out.header("connection")) {
    const std::string folded = to_lower(*conn);
    if (folded == "close") out.keep_alive = false;
    if (folded == "keep-alive") out.keep_alive = true;
  }
  consumed_ += head_end + 4;
  return true;
}

HttpParser::Result HttpParser::poll(HttpRequest& out) {
  if (poisoned_) return Result::kError;
  for (;;) {
    switch (state_) {
      case State::kHeaders: {
        if (!parse_head(pending_)) {
          return poisoned_ ? Result::kError : Result::kNeedMore;
        }
        const auto te = pending_.header("transfer-encoding");
        const auto cl = pending_.header("content-length");
        if (te.has_value()) {
          if (to_lower(*te) != "chunked" || cl.has_value()) {
            return fail("unsupported transfer-encoding");
          }
          state_ = State::kChunkHeader;
          break;
        }
        std::size_t length = 0;
        if (cl.has_value()) {
          const auto parsed = parse_size(trim(*cl));
          if (!parsed.has_value()) return fail("malformed content-length");
          length = *parsed;
        }
        if (length > kMaxBodyBytes) return fail("body exceeds limit");
        if (length == 0) {
          out = std::move(pending_);
          pending_ = HttpRequest{};
          return Result::kRequest;
        }
        body_remaining_ = length;
        pending_.body.reserve(length);
        state_ = State::kBody;
        break;
      }
      case State::kBody: {
        const std::size_t available = buffer_.size() - consumed_;
        const std::size_t take = std::min(available, body_remaining_);
        pending_.body.insert(pending_.body.end(),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(
                                                   consumed_),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(
                                                   consumed_ + take));
        consumed_ += take;
        body_remaining_ -= take;
        if (body_remaining_ > 0) return Result::kNeedMore;
        state_ = State::kHeaders;
        out = std::move(pending_);
        pending_ = HttpRequest{};
        return Result::kRequest;
      }
      case State::kChunkHeader: {
        const std::string_view view(
            reinterpret_cast<const char*>(buffer_.data()) + consumed_,
            buffer_.size() - consumed_);
        const auto eol = view.find("\r\n");
        if (eol == std::string_view::npos) {
          if (view.size() > 64) return fail("malformed chunk size line");
          return Result::kNeedMore;
        }
        const auto size = parse_chunk_size(view.substr(0, eol));
        if (!size.has_value()) return fail("malformed chunk size line");
        consumed_ += eol + 2;
        if (pending_.body.size() + *size > kMaxBodyBytes) {
          return fail("body exceeds limit");
        }
        if (*size == 0) {
          state_ = State::kChunkTrailer;
        } else {
          chunk_remaining_ = *size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        // The chunk's data plus its trailing CRLF must be consumed; the
        // CRLF is validated once fully buffered.
        const std::size_t available = buffer_.size() - consumed_;
        const std::size_t take = std::min(available, chunk_remaining_);
        pending_.body.insert(pending_.body.end(),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(
                                                   consumed_),
                             buffer_.begin() + static_cast<std::ptrdiff_t>(
                                                   consumed_ + take));
        consumed_ += take;
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) return Result::kNeedMore;
        if (buffer_.size() - consumed_ < 2) return Result::kNeedMore;
        if (buffer_[consumed_] != '\r' || buffer_[consumed_ + 1] != '\n') {
          return fail("chunk data not CRLF-terminated");
        }
        consumed_ += 2;
        state_ = State::kChunkHeader;
        break;
      }
      case State::kChunkTrailer: {
        // Trailer section: zero or more header lines, then a blank line.
        // The gateway ignores trailer fields.
        const std::string_view view(
            reinterpret_cast<const char*>(buffer_.data()) + consumed_,
            buffer_.size() - consumed_);
        const auto end = view.find("\r\n");
        if (end == std::string_view::npos) {
          if (view.size() > kMaxHeaderBytes) return fail("trailer too large");
          return Result::kNeedMore;
        }
        consumed_ += end + 2;
        if (end != 0) break;  // a trailer field; keep scanning for blank
        state_ = State::kHeaders;
        out = std::move(pending_);
        pending_ = HttpRequest{};
        return Result::kRequest;
      }
    }
  }
}

// ---- HttpResponseParser ----

void HttpResponseParser::feed(util::BytesView data) {
  if (poisoned_) return;
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

HttpResponseParser::Result HttpResponseParser::fail(std::string what) {
  poisoned_ = true;
  error_ = std::move(what);
  return Result::kError;
}

HttpResponseParser::Result HttpResponseParser::poll(HttpResponse& out) {
  if (poisoned_) return Result::kError;
  for (;;) {
    if (!in_body_) {
      const std::string_view view(
          reinterpret_cast<const char*>(buffer_.data()) + consumed_,
          buffer_.size() - consumed_);
      const auto head_end = view.find("\r\n\r\n");
      if (head_end == std::string_view::npos) return Result::kNeedMore;
      const std::string_view head = view.substr(0, head_end);
      const auto line_end = head.find("\r\n");
      const std::string_view status_line =
          line_end == std::string_view::npos ? head : head.substr(0, line_end);
      // "HTTP/1.1 NNN Reason"
      const auto sp1 = status_line.find(' ');
      if (sp1 == std::string_view::npos ||
          status_line.substr(0, 5) != "HTTP/") {
        return fail("malformed status line");
      }
      const std::string_view code = status_line.substr(sp1 + 1);
      if (code.size() < 3) return fail("malformed status line");
      int status = 0;
      for (int i = 0; i < 3; ++i) {
        if (code[static_cast<std::size_t>(i)] < '0' ||
            code[static_cast<std::size_t>(i)] > '9') {
          return fail("malformed status line");
        }
        status = status * 10 + (code[static_cast<std::size_t>(i)] - '0');
      }
      pending_ = HttpResponse{};
      pending_.status = status;
      const std::string_view header_block =
          line_end == std::string_view::npos ? std::string_view{}
                                             : head.substr(line_end + 2);
      if (!parse_header_lines(header_block, pending_.headers)) {
        return fail("malformed header line");
      }
      consumed_ += head_end + 4;
      std::size_t length = 0;
      if (const auto cl = pending_.header("content-length")) {
        const auto parsed = parse_size(trim(*cl));
        if (!parsed.has_value()) return fail("malformed content-length");
        length = *parsed;
      }
      if (length == 0) {
        out = std::move(pending_);
        return Result::kResponse;
      }
      body_remaining_ = length;
      pending_.body.reserve(length);
      in_body_ = true;
    }
    const std::size_t available = buffer_.size() - consumed_;
    const std::size_t take = std::min(available, body_remaining_);
    pending_.body.insert(
        pending_.body.end(),
        buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_),
        buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + take));
    consumed_ += take;
    body_remaining_ -= take;
    if (body_remaining_ > 0) return Result::kNeedMore;
    in_body_ = false;
    out = std::move(pending_);
    return Result::kResponse;
  }
}

}  // namespace maqs::gateway

#include "gateway/mtom.hpp"

#include <algorithm>
#include <cctype>

namespace maqs::gateway {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view as_view(util::BytesView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Strips optional surrounding quotes or <> brackets.
std::string_view unwrap(std::string_view s, char open, char close) {
  if (s.size() >= 2 && s.front() == open && s.back() == close) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

const MtomPart* MtomContainer::find(std::string_view cid_url) const {
  std::string_view id = cid_url;
  if (id.substr(0, 4) == "cid:") id.remove_prefix(4);
  for (const MtomPart& part : parts) {
    if (part.content_id == id) return &part;
  }
  return nullptr;
}

ContentType parse_content_type(std::string_view header_value) {
  ContentType out;
  const auto semi = header_value.find(';');
  out.media_type = to_lower(trim(header_value.substr(0, semi)));
  std::string_view rest =
      semi == std::string_view::npos ? std::string_view{}
                                     : header_value.substr(semi + 1);
  while (!rest.empty()) {
    const auto next = rest.find(';');
    std::string_view param = trim(rest.substr(0, next));
    rest = next == std::string_view::npos ? std::string_view{}
                                          : rest.substr(next + 1);
    const auto eq = param.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string name = to_lower(trim(param.substr(0, eq)));
    if (name == "boundary") {
      out.boundary = std::string(unwrap(trim(param.substr(eq + 1)), '"', '"'));
    }
  }
  return out;
}

std::optional<MtomContainer> parse_multipart_related(
    util::BytesView body, std::string_view boundary) {
  if (boundary.empty()) return std::nullopt;
  const std::string_view text = as_view(body);
  const std::string delimiter = "--" + std::string(boundary);

  // The container must open with the first dash-boundary (a preamble is
  // not part of this subset).
  if (text.substr(0, delimiter.size()) != delimiter) return std::nullopt;
  std::size_t pos = delimiter.size();

  MtomContainer container;
  bool have_root = false;
  for (;;) {
    if (text.substr(pos, 2) == "--") {
      // Closing delimiter; optional trailing CRLF.
      if (!have_root) return std::nullopt;
      return container;
    }
    if (text.substr(pos, 2) != "\r\n") return std::nullopt;
    pos += 2;

    // Part headers up to the blank line.
    const auto head_end = text.find("\r\n\r\n", pos);
    if (head_end == std::string_view::npos) return std::nullopt;
    std::string_view head = text.substr(pos, head_end - pos);
    std::string content_id;
    std::string content_type = "application/octet-stream";
    while (!head.empty()) {
      const auto eol = head.find("\r\n");
      const std::string_view line =
          eol == std::string_view::npos ? head : head.substr(0, eol);
      head = eol == std::string_view::npos ? std::string_view{}
                                           : head.substr(eol + 2);
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      const std::string name = to_lower(trim(line.substr(0, colon)));
      const std::string_view value = trim(line.substr(colon + 1));
      if (name == "content-id") {
        content_id = std::string(unwrap(value, '<', '>'));
      } else if (name == "content-type") {
        content_type = to_lower(value);
      }
    }
    pos = head_end + 4;

    // Part data runs to the next CRLF + dash-boundary.
    const std::string closing = "\r\n" + delimiter;
    const auto data_end = text.find(closing, pos);
    if (data_end == std::string_view::npos) return std::nullopt;
    const util::BytesView data = body.subspan(pos, data_end - pos);
    pos = data_end + closing.size();

    if (!have_root) {
      // First part is the root JSON document regardless of cid.
      container.root = data;
      have_root = true;
    } else {
      if (content_id.empty()) return std::nullopt;
      container.parts.push_back(
          MtomPart{std::move(content_id), std::move(content_type), data});
    }
  }
}

MultipartBuilder::MultipartBuilder(std::string boundary)
    : boundary_(std::move(boundary)) {}

std::string MultipartBuilder::content_type() const {
  return "multipart/related; boundary=" + boundary_ +
         "; type=\"application/json\"";
}

void MultipartBuilder::add_json_root(std::string_view json) {
  Piece piece;
  piece.head =
      "--" + boundary_ + "\r\ncontent-type: application/json\r\n\r\n";
  piece.owned = std::string(json);
  pieces_.push_back(std::move(piece));
}

void MultipartBuilder::add_blob_part(std::string_view cid,
                                     util::BytesView data) {
  Piece piece;
  piece.head = "--" + boundary_ + "\r\ncontent-id: <" + std::string(cid) +
               ">\r\ncontent-type: application/octet-stream\r\n\r\n";
  piece.data = data;
  pieces_.push_back(std::move(piece));
}

std::size_t MultipartBuilder::encoded_size() const noexcept {
  std::size_t total = 0;
  for (const Piece& piece : pieces_) {
    total += piece.head.size() +
             (piece.owned.empty() ? piece.data.size() : piece.owned.size()) +
             2;  // part-terminating CRLF
  }
  return total + 2 + boundary_.size() + 4;  // "--B--\r\n"
}

util::Bytes MultipartBuilder::finish() {
  util::Bytes out;
  out.reserve(encoded_size());
  auto append = [&out](std::string_view s) {
    out.insert(out.end(), s.begin(), s.end());
  };
  for (const Piece& piece : pieces_) {
    append(piece.head);
    if (!piece.owned.empty()) {
      append(piece.owned);
    } else {
      out.insert(out.end(), piece.data.begin(), piece.data.end());
    }
    append("\r\n");
  }
  append("--" + boundary_ + "--\r\n");
  pieces_.clear();
  return out;
}

}  // namespace maqs::gateway

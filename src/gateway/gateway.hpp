// The edge gateway: an HTTP/1.1 + JSON front-end node that translates
// web requests into DII invocations through the full client interceptor
// chain, so HTTP tenants inherit every QoS concern — tracing, mediation,
// replica selection/failover, retry, circuit breaking, and server-side
// WFQ scheduling/admission — without the gateway re-implementing any of
// them (the paper's separation-of-concerns claim at the protocol
// boundary).
//
// Flow per request:
//
//   net payload -> HttpParser (torn-read tolerant, pipelined)
//     -> route table (POST /api/<Interface>/<operation>)
//     -> body: application/json or multipart/related (MTOM blobs by cid)
//     -> args marshaled per the repository signature (JSON -> Any -> CDR;
//        sequence<octet> blobs bypass Any: one write_bytes straight off
//        the borrowed multipart view)
//     -> orb.invoke_with() through the client chain (a gateway.request
//        span is active, so the invocation's spans nest under it and the
//        trace id round-trips via the X-Trace-Id header)
//     -> reply status mapped to HTTP (see exception table below)
//     -> result as JSON, or multipart/related when a large blob result
//        goes out-of-band (assembled in a borrowed ChainBuf region).
//
// Exception -> status mapping:
//
//   maqs/TIMEOUT (local)        504  code maqs/TIMEOUT
//   maqs/CIRCUIT_OPEN (local)   503  + Retry-After
//   maqs/OVERLOAD (scheduler)   503  + Retry-After
//   NO_SUCH_OBJECT / BAD_OP     404
//   unknown route / bad body    404 / 400
//   user exception, others      500
//
// QoS classification: the per-tenant header X-Maqs-Tenant (mapped via
// set_tenant_class) or the direct X-Qos-Class header becomes the
// "qos.class" service-context tag, so the server's scheduler governs
// HTTP traffic exactly like native traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/transform.hpp"
#include "gateway/binding.hpp"
#include "gateway/http.hpp"
#include "gateway/mtom.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "qidl/repository.hpp"
#include "sim/event_loop.hpp"

namespace maqs::gateway {

/// Request headers the gateway interprets (lowercase, as parsed).
inline const std::string kTenantHeader = "x-maqs-tenant";
inline const std::string kClassHeader = "x-qos-class";
inline const std::string kTraceHeader = "x-trace-id";

struct GatewayConfig {
  /// Route prefix; must match the json_binding emitter's prefix.
  std::string api_prefix = "/api";
  /// Blob results at or above this size go out-of-band (multipart) when
  /// the client sent "Accept: multipart/related"; below it they inline as
  /// a JSON array.
  std::size_t mtom_threshold = 1024;
  /// Connections idle longer than this are reaped by sweep_idle() (the
  /// mid-body-disconnect defense; sweeps run lazily on later traffic).
  sim::Duration idle_timeout = 30 * sim::kSecond;
  /// Retry-After header value on 503 responses.
  int retry_after_seconds = 1;
  /// Class tag applied when no tenant/class header matches; empty = no
  /// tag (the server's classifier falls through to its own rules).
  std::string default_class;
};

struct GatewayStats {
  std::uint64_t requests = 0;          ///< complete requests parsed
  std::uint64_t ok = 0;                ///< 200 responses
  std::uint64_t bad_request = 0;       ///< 400 (bad body / malformed HTTP)
  std::uint64_t not_found = 0;         ///< 404 (route or object)
  std::uint64_t unavailable = 0;       ///< 503 (overload / circuit open)
  std::uint64_t gateway_timeout = 0;   ///< 504
  std::uint64_t server_fault = 0;      ///< 500
  std::uint64_t malformed = 0;         ///< connections poisoned by framing
  std::uint64_t mtom_parts_in = 0;     ///< blob parts consumed
  std::uint64_t mtom_parts_out = 0;    ///< blob parts produced
  std::uint64_t connections = 0;       ///< connections seen
  std::uint64_t idle_reaped = 0;       ///< connections dropped by sweep
};

class Gateway {
 public:
  /// Binds the HTTP listener to (orb node, `port`) on the ORB's network.
  /// `orb` is the gateway's client-side ORB: every HTTP request becomes a
  /// DII invocation through its interceptor chain. `repo` supplies the
  /// route table and marshaling signatures; both must outlive the
  /// gateway.
  Gateway(orb::Orb& orb, const qidl::InterfaceRepository& repo,
          std::uint16_t port, GatewayConfig config = {});
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Maps a repository interface to a target object. Routes for an
  /// unexposed interface answer 404. The optional mediator delegate is
  /// installed per invocation (the woven client path: its transform
  /// chain borrows the request body as a ChainBuf region, so MTOM blobs
  /// ride the streaming pipeline).
  void expose(const std::string& interface_name, orb::ObjRef target,
              orb::ClientDelegate* mediator = nullptr);

  /// Maps an X-Maqs-Tenant header value to a QoS class name.
  void set_tenant_class(std::string tenant, std::string qos_class);

  const net::Address& endpoint() const noexcept { return listen_; }
  const RouteTable& routes() const noexcept { return routes_; }
  const GatewayStats& stats() const noexcept { return stats_; }
  std::size_t open_connections() const noexcept {
    return connections_.size();
  }

  /// Drops connections idle past config.idle_timeout. Runs lazily on
  /// every arriving payload; exposed for tests and embedders.
  void sweep_idle();

 private:
  struct Connection {
    HttpParser parser;
    sim::TimePoint last_activity = 0;
    bool handling = false;  ///< a nested invoke is pumping the loop
    bool closed = false;
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  struct Exposure {
    orb::ObjRef target;
    orb::ClientDelegate* mediator = nullptr;
  };

  void on_payload(const net::Address& from, const util::Bytes& payload);
  void drain(const net::Address& from, const ConnectionPtr& conn);
  /// Handles one parsed request; sends the response frame(s) itself.
  void handle(const net::Address& from, HttpRequest& req);

  /// Builds + sends a structured JSON fault response.
  void send_fault(const net::Address& from, const HttpRequest& req,
                  int status, std::string_view code, std::string_view detail,
                  std::uint64_t trace_id);
  void send_response(const net::Address& from, const HttpRequest& req,
                     HttpResponse&& resp, std::uint64_t trace_id);
  /// Assembles head + multipart container in one borrowed ChainBuf
  /// region (blob part copied exactly once, straight off the reply
  /// buffer) and sends the frame.
  void send_mtom_response(const net::Address& from, const HttpRequest& req,
                          std::string_view root_json, util::BytesView blob,
                          std::uint64_t trace_id);

  void count_status(int status);
  std::string qos_class_for(const HttpRequest& req) const;

  orb::Orb& orb_;
  const qidl::InterfaceRepository& repo_;
  GatewayConfig config_;
  net::Address listen_;
  RouteTable routes_;
  std::unordered_map<std::string, Exposure> exposures_;  // by interface name
  std::unordered_map<std::string, std::string> tenants_;
  std::unordered_map<net::Address, ConnectionPtr> connections_;
  core::TransformArena arena_;  ///< MTOM response assembly regions
  GatewayStats stats_;
  std::uint64_t next_cid_ = 0;
};

}  // namespace maqs::gateway

#include "gateway/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace maqs::gateway {

double JsonValue::as_number() const {
  if (is_integer()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (is_double()) return std::get<double>(value_);
  throw JsonError("json: not a number");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : std::get<JsonObject>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

// ---- parser ----

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw JsonError("json: trailing bytes");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected member name");
      std::string name = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(name), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return JsonValue(std::move(members));
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return JsonValue(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Strings are byte sequences in this stack: code points up to
          // 0xFF map to one byte, larger ones to their UTF-8 encoding.
          if (code < 0x100) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("bad number");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void write_string(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (b < 0x20 || b >= 0x80) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", b);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(double v, std::string& out) {
  if (!std::isfinite(v)) throw JsonError("json: non-finite number");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

void write_json(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_integer()) {
    out += std::to_string(value.as_integer());
  } else if (value.is_double()) {
    write_number(value.as_number(), out);
  } else if (value.is_string()) {
    write_string(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const JsonValue& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      write_json(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [name, member] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      write_string(name, out);
      out.push_back(':');
      write_json(member, out);
    }
    out.push_back('}');
  }
}

std::string write_json(const JsonValue& value) {
  std::string out;
  write_json(value, out);
  return out;
}

// ---- Any <-> JSON ----

JsonValue any_to_json(const cdr::Any& value) {
  switch (value.kind()) {
    case cdr::TCKind::kVoid: return JsonValue(nullptr);
    case cdr::TCKind::kBoolean: return JsonValue(value.as_bool());
    case cdr::TCKind::kOctet:
    case cdr::TCKind::kShort:
    case cdr::TCKind::kLong:
    case cdr::TCKind::kLongLong:
      return JsonValue(value.as_integer());
    case cdr::TCKind::kFloat:
      return JsonValue(static_cast<double>(value.as_float()));
    case cdr::TCKind::kDouble: return JsonValue(value.as_double());
    case cdr::TCKind::kString: return JsonValue(value.as_string());
    case cdr::TCKind::kEnum: return JsonValue(value.as_enum_name());
    case cdr::TCKind::kSequence: {
      JsonArray items;
      items.reserve(value.as_elements().size());
      for (const cdr::Any& element : value.as_elements()) {
        items.push_back(any_to_json(element));
      }
      return JsonValue(std::move(items));
    }
    case cdr::TCKind::kStruct: {
      const auto& members = value.type()->members();
      const auto& fields = value.as_elements();
      JsonObject object;
      object.reserve(fields.size());
      for (std::size_t i = 0; i < fields.size(); ++i) {
        object.emplace_back(members[i].first, any_to_json(fields[i]));
      }
      return JsonValue(std::move(object));
    }
    case cdr::TCKind::kAny:
    case cdr::TCKind::kObjRef:
      break;
  }
  throw JsonError(std::string("json: no JSON mapping for ") +
                  cdr::tc_kind_name(value.kind()));
}

namespace {

std::int64_t integer_in_range(const JsonValue& value, std::int64_t lo,
                              std::int64_t hi, const char* what) {
  if (!value.is_integer()) {
    throw JsonError(std::string("json: expected integer for ") + what);
  }
  const std::int64_t v = value.as_integer();
  if (v < lo || v > hi) {
    throw JsonError(std::string("json: value out of range for ") + what);
  }
  return v;
}

}  // namespace

cdr::Any json_to_any(const JsonValue& value, const cdr::TypeCodePtr& type) {
  switch (type->kind()) {
    case cdr::TCKind::kVoid:
      if (!value.is_null()) throw JsonError("json: expected null for void");
      return cdr::Any::make_void();
    case cdr::TCKind::kBoolean:
      if (!value.is_bool()) throw JsonError("json: expected boolean");
      return cdr::Any::from_bool(value.as_bool());
    case cdr::TCKind::kOctet:
      return cdr::Any::from_octet(static_cast<std::uint8_t>(
          integer_in_range(value, 0, 255, "octet")));
    case cdr::TCKind::kShort:
      return cdr::Any::from_short(static_cast<std::int16_t>(
          integer_in_range(value, -32768, 32767, "short")));
    case cdr::TCKind::kLong:
      return cdr::Any::from_long(static_cast<std::int32_t>(integer_in_range(
          value, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max(), "long")));
    case cdr::TCKind::kLongLong:
      if (!value.is_integer()) {
        throw JsonError("json: expected integer for long long");
      }
      return cdr::Any::from_longlong(value.as_integer());
    case cdr::TCKind::kFloat:
      if (!value.is_number()) throw JsonError("json: expected number");
      return cdr::Any::from_float(static_cast<float>(value.as_number()));
    case cdr::TCKind::kDouble:
      if (!value.is_number()) throw JsonError("json: expected number");
      return cdr::Any::from_double(value.as_number());
    case cdr::TCKind::kString:
      if (!value.is_string()) throw JsonError("json: expected string");
      return cdr::Any::from_string(value.as_string());
    case cdr::TCKind::kEnum: {
      if (value.is_string()) {
        const auto& names = type->enumerators();
        for (std::size_t i = 0; i < names.size(); ++i) {
          if (names[i] == value.as_string()) {
            return cdr::Any::from_enum(type,
                                       static_cast<std::uint32_t>(i));
          }
        }
        throw JsonError("json: unknown enumerator \"" + value.as_string() +
                        "\" for " + type->name());
      }
      const std::int64_t ordinal = integer_in_range(
          value, 0,
          static_cast<std::int64_t>(type->enumerators().size()) - 1,
          "enum ordinal");
      return cdr::Any::from_enum(type, static_cast<std::uint32_t>(ordinal));
    }
    case cdr::TCKind::kSequence: {
      if (!value.is_array()) throw JsonError("json: expected array");
      std::vector<cdr::Any> items;
      items.reserve(value.as_array().size());
      for (const JsonValue& item : value.as_array()) {
        items.push_back(json_to_any(item, type->element()));
      }
      return cdr::Any::from_sequence(type->element(), std::move(items));
    }
    case cdr::TCKind::kStruct: {
      if (!value.is_object()) throw JsonError("json: expected object");
      const auto& members = type->members();
      if (value.as_object().size() != members.size()) {
        throw JsonError("json: struct " + type->name() + " wants " +
                        std::to_string(members.size()) + " fields, got " +
                        std::to_string(value.as_object().size()));
      }
      std::vector<cdr::Any> fields;
      fields.reserve(members.size());
      for (const auto& [name, member_type] : members) {
        const JsonValue* field = value.find(name);
        if (field == nullptr) {
          throw JsonError("json: struct " + type->name() +
                          " missing field \"" + name + "\"");
        }
        fields.push_back(json_to_any(*field, member_type));
      }
      return cdr::Any::from_struct(type, std::move(fields));
    }
    case cdr::TCKind::kAny:
    case cdr::TCKind::kObjRef:
      break;
  }
  throw JsonError(std::string("json: no JSON mapping for ") +
                  cdr::tc_kind_name(type->kind()));
}

}  // namespace maqs::gateway

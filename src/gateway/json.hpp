// Minimal JSON document model plus the Any⇄JSON conversion rules of the
// maqs JSON binding (emitted by qidlc --json-binding, consumed by the
// gateway).
//
// Conversion rules (docs/qidl.md "JSON binding"):
//
//   boolean            <-> true / false
//   octet/short/long/
//   long long          <-> number (integer)
//   float/double       <-> number (an integral-valued float may print
//                          without a fraction; json_to_any re-widens)
//   string             <-> string (control and non-ASCII bytes \u00XX)
//   enum               <-> enumerator name string (ordinal also accepted)
//   sequence<T>        <-> array
//   struct             <-> object keyed by field name (order-insensitive,
//                          all fields required, unknown keys rejected)
//   void               <-> null
//
// sequence<octet> additionally accepts/produces the MTOM reference form
// {"$blob": "cid:<id>"} at the gateway layer (gateway.cpp); json.cpp
// itself maps it as a plain array of integers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "cdr/any.hpp"
#include "util/error.hpp"

namespace maqs::gateway {

/// Malformed JSON text or a value that does not fit the target TypeCode.
class JsonError : public Error {
 public:
  using Error::Error;
};

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Object members keep insertion order (deterministic writer output).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool v) : value_(v) {}
  JsonValue(std::int64_t v) : value_(v) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(std::string v) : value_(std::move(v)) {}
  JsonValue(const char* v) : value_(std::string(v)) {}
  JsonValue(JsonArray v) : value_(std::move(v)) {}
  JsonValue(JsonObject v) : value_(std::move(v)) {}

  bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  bool is_bool() const noexcept { return holds<bool>(); }
  bool is_integer() const noexcept { return holds<std::int64_t>(); }
  bool is_double() const noexcept { return holds<double>(); }
  bool is_number() const noexcept { return is_integer() || is_double(); }
  bool is_string() const noexcept { return holds<std::string>(); }
  bool is_array() const noexcept { return holds<JsonArray>(); }
  bool is_object() const noexcept { return holds<JsonObject>(); }

  bool as_bool() const { return get<bool>("boolean"); }
  std::int64_t as_integer() const { return get<std::int64_t>("integer"); }
  /// Any number as double (integers widen).
  double as_number() const;
  const std::string& as_string() const { return get<std::string>("string"); }
  const JsonArray& as_array() const { return get<JsonArray>("array"); }
  const JsonObject& as_object() const { return get<JsonObject>("object"); }

  /// First member named `key`; nullptr when absent (objects are small —
  /// linear scan).
  const JsonValue* find(std::string_view key) const;

  bool operator==(const JsonValue& other) const = default;

 private:
  template <typename T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  template <typename T>
  const T& get(const char* what) const {
    if (!holds<T>()) throw JsonError(std::string("json: not a ") + what);
    return std::get<T>(value_);
  }

  Storage value_;
};

/// Strict parser (no comments, no trailing commas); throws JsonError.
JsonValue parse_json(std::string_view text);

/// Deterministic writer: same value, same bytes. No added whitespace.
std::string write_json(const JsonValue& value);
void write_json(const JsonValue& value, std::string& out);

/// Any -> JSON per the binding table; throws JsonError for kinds with no
/// JSON mapping (any, objref).
JsonValue any_to_json(const cdr::Any& value);

/// JSON -> Any of exactly `type`; throws JsonError when the value does
/// not fit (wrong shape, out-of-range integer, unknown enum name,
/// missing/unknown struct field).
cdr::Any json_to_any(const JsonValue& value, const cdr::TypeCodePtr& type);

}  // namespace maqs::gateway

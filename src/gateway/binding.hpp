// HTTP route table derived from the QIDL interface repository.
//
// One route per (interface, operation):
//
//   POST <prefix>/<Interface>/<operation>
//
// with the request body keyed by parameter name and the response keyed
// "result". The same scheme is what the qidlc json_binding emitter
// documents statically (src/qidl/json_binding.cpp); a repository test
// pins the two against each other so the emitted contract can never
// drift from the routes the gateway actually serves.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "qidl/repository.hpp"

namespace maqs::gateway {

struct Route {
  std::string path;  // "<prefix>/<Interface>/<operation>"
  const qidl::InterfaceEntry* interface = nullptr;
  const qidl::OperationSignature* operation = nullptr;
};

class RouteTable {
 public:
  /// Builds routes for every interface in the repository. The repository
  /// must outlive the table.
  static RouteTable build(const qidl::InterfaceRepository& repo,
                          std::string_view prefix = "/api");

  /// Route for `path`, nullptr when unknown. Only POST routes exist; the
  /// caller checks the method.
  const Route* find(std::string_view path) const;

  const std::vector<Route>& routes() const noexcept { return routes_; }

 private:
  std::vector<Route> routes_;  // sorted by path
};

}  // namespace maqs::gateway

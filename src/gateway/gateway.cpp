#include "gateway/gateway.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "gateway/json.hpp"
#include "orb/exceptions.hpp"
#include "sched/classifier.hpp"
#include "sched/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/buffer_pool.hpp"

namespace maqs::gateway {

namespace {

/// True for sequence<octet> — the blob kind that bypasses Any marshaling.
bool is_blob(const cdr::TypeCodePtr& type) {
  return type->kind() == cdr::TCKind::kSequence &&
         type->element()->kind() == cdr::TCKind::kOctet;
}

/// 1..16 hex chars -> u64; nullopt on garbage.
std::optional<std::uint64_t> parse_hex_id(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::string hex_id(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, id);
  return buf;
}

/// Structured fault body: {"error":{"status":N,"code":...,"detail":...}}.
std::string fault_body(int status, std::string_view code,
                       std::string_view detail) {
  JsonObject error;
  error.emplace_back("status", JsonValue(static_cast<std::int64_t>(status)));
  error.emplace_back("code", JsonValue(std::string(code)));
  error.emplace_back("detail", JsonValue(std::string(detail)));
  JsonObject root;
  root.emplace_back("error", JsonValue(std::move(error)));
  return write_json(JsonValue(std::move(root)));
}

bool wants_multipart(const HttpRequest& req) {
  const auto accept = req.header("accept");
  return accept.has_value() &&
         accept->find("multipart/related") != std::string_view::npos;
}

}  // namespace

Gateway::Gateway(orb::Orb& orb, const qidl::InterfaceRepository& repo,
                 std::uint16_t port, GatewayConfig config)
    : orb_(orb),
      repo_(repo),
      config_(std::move(config)),
      listen_{orb.endpoint().node, port},
      routes_(RouteTable::build(repo, config_.api_prefix)) {
  orb_.network().bind(listen_,
                      [this](const net::Address& from,
                             const util::Bytes& payload) {
                        on_payload(from, payload);
                      });
}

Gateway::~Gateway() { orb_.network().unbind(listen_); }

void Gateway::expose(const std::string& interface_name, orb::ObjRef target,
                     orb::ClientDelegate* mediator) {
  if (repo_.find_interface(interface_name) == nullptr) {
    throw Error("gateway: unknown interface " + interface_name);
  }
  exposures_[interface_name] = Exposure{std::move(target), mediator};
}

void Gateway::set_tenant_class(std::string tenant, std::string qos_class) {
  tenants_[std::move(tenant)] = std::move(qos_class);
}

void Gateway::sweep_idle() {
  const sim::TimePoint now = orb_.loop().now();
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (!it->second->handling &&
        now - it->second->last_activity > config_.idle_timeout) {
      it->second->closed = true;
      ++stats_.idle_reaped;
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Gateway::on_payload(const net::Address& from,
                         const util::Bytes& payload) {
  sweep_idle();
  ConnectionPtr& slot = connections_[from];
  if (slot == nullptr) {
    slot = std::make_shared<Connection>();
    ++stats_.connections;
  }
  const ConnectionPtr conn = slot;  // pin across nested pumping
  conn->last_activity = orb_.loop().now();
  conn->parser.feed(payload);
  // A nested invoke below is already pumping the loop for this
  // connection: just buffer; the outer drain picks the bytes up in order
  // (pipelined responses must not interleave).
  if (conn->handling) return;
  drain(from, conn);
}

void Gateway::drain(const net::Address& from, const ConnectionPtr& conn) {
  conn->handling = true;
  HttpRequest req;
  for (;;) {
    const HttpParser::Result result = conn->parser.poll(req);
    if (result == HttpParser::Result::kNeedMore) break;
    if (result == HttpParser::Result::kError) {
      // Framing violation: answer 400 once, then drop the connection —
      // never crash, never hang, never ignore.
      ++stats_.malformed;
      ++stats_.bad_request;
      HttpResponse resp;
      resp.status = 400;
      resp.set_header("content-type", "application/json");
      const std::string body =
          fault_body(400, "maqs/BAD_REQUEST", conn->parser.error());
      resp.body.assign(body.begin(), body.end());
      resp.close_connection = true;
      orb_.network().send(listen_, from, resp.encode());
      conn->closed = true;
      break;
    }
    ++stats_.requests;
    handle(from, req);
    if (conn->closed || !req.keep_alive) {
      conn->closed = true;
      break;
    }
  }
  conn->handling = false;
  if (conn->closed) connections_.erase(from);
}

std::string Gateway::qos_class_for(const HttpRequest& req) const {
  if (const auto cls = req.header(kClassHeader)) return std::string(*cls);
  if (const auto tenant = req.header(kTenantHeader)) {
    const auto it = tenants_.find(std::string(*tenant));
    if (it != tenants_.end()) return it->second;
  }
  return config_.default_class;
}

void Gateway::count_status(int status) {
  switch (status) {
    case 200: ++stats_.ok; break;
    case 400: ++stats_.bad_request; break;
    case 404: ++stats_.not_found; break;
    case 503: ++stats_.unavailable; break;
    case 504: ++stats_.gateway_timeout; break;
    default: ++stats_.server_fault; break;
  }
}

void Gateway::send_response(const net::Address& from, const HttpRequest& req,
                            HttpResponse&& resp, std::uint64_t trace_id) {
  count_status(resp.status);
  if (trace_id != 0) resp.set_header(kTraceHeader, hex_id(trace_id));
  if (resp.status == 503) {
    resp.set_header("retry-after",
                    std::to_string(config_.retry_after_seconds));
  }
  resp.close_connection = !req.keep_alive;
  orb_.network().send(listen_, from, resp.encode());
}

void Gateway::send_fault(const net::Address& from, const HttpRequest& req,
                         int status, std::string_view code,
                         std::string_view detail, std::uint64_t trace_id) {
  HttpResponse resp;
  resp.status = status;
  resp.set_header("content-type", "application/json");
  const std::string body = fault_body(status, code, detail);
  resp.body.assign(body.begin(), body.end());
  send_response(from, req, std::move(resp), trace_id);
}

void Gateway::send_mtom_response(const net::Address& from,
                                 const HttpRequest& req,
                                 std::string_view root_json,
                                 util::BytesView blob,
                                 std::uint64_t trace_id) {
  ++stats_.mtom_parts_out;
  count_status(200);
  const std::string cid = "r" + std::to_string(next_cid_++);
  const std::string boundary = "maqs-" + cid;

  // Container layout, sized exactly so the whole response frame is
  // assembled in one borrowed arena region: the blob part is copied once,
  // straight off the reply buffer, and the HTTP head is prepended into
  // headroom — the ChainBuf materializes directly into the wire frame.
  const std::string root_head =
      "--" + boundary + "\r\ncontent-type: application/json\r\n\r\n";
  const std::string blob_head = "--" + boundary + "\r\ncontent-id: <" + cid +
                                ">\r\ncontent-type: "
                                "application/octet-stream\r\n\r\n";
  const std::string closing = "--" + boundary + "--\r\n";
  const std::size_t container_size = root_head.size() + root_json.size() + 2 +
                                     blob_head.size() + blob.size() + 2 +
                                     closing.size();

  std::string head = "HTTP/1.1 200 OK\r\ncontent-type: multipart/related; "
                     "boundary=" +
                     boundary + "; type=\"application/json\"\r\n";
  if (trace_id != 0) head += "x-trace-id: " + hex_id(trace_id) + "\r\n";
  head += "content-length: " + std::to_string(container_size) + "\r\n";
  if (!req.keep_alive) head += "connection: close\r\n";
  head += "\r\n";

  arena_.reset();
  const std::span<std::uint8_t> region =
      arena_.allocate(head.size() + container_size);
  std::uint8_t* cursor = region.data() + head.size();
  auto put = [&cursor](const void* data, std::size_t n) {
    std::memcpy(cursor, data, n);
    cursor += n;
  };
  put(root_head.data(), root_head.size());
  put(root_json.data(), root_json.size());
  put("\r\n", 2);
  put(blob_head.data(), blob_head.size());
  put(blob.data(), blob.size());
  put("\r\n", 2);
  put(closing.data(), closing.size());

  core::ChainBuf buf(arena_, 0);
  buf.adopt(region, head.size(), container_size);
  std::memcpy(buf.prepend(head.size()), head.data(), head.size());
  util::Bytes frame = util::BufferPool::instance().acquire(region.size());
  buf.materialize_into(frame);
  orb_.network().send(listen_, from, std::move(frame));
}

void Gateway::handle(const net::Address& from, HttpRequest& req) {
  // ---- trace: adopt the caller's id or mint one; the gateway.request
  // span stays active across the whole translation, so the DII
  // invocation's client.request span nests under it.
  trace::TraceRecorder* recorder = orb_.trace_recorder();
  trace::TraceContext parent;
  if (const auto header = req.header(kTraceHeader)) {
    if (const auto id = parse_hex_id(*header)) {
      parent.trace_id = *id;
      parent.flags = trace::kSampledFlag;
    }
  }
  std::optional<trace::SpanScope> span;
  if (recorder != nullptr && recorder->enabled()) {
    if (!parent.valid()) parent = recorder->make_trace();
    if (parent.sampled()) {
      span.emplace(*recorder, parent, "gateway.request",
                   req.method + " " + req.target);
    }
  }
  const std::uint64_t trace_id = parent.valid() ? parent.trace_id : 0;

  // ---- route ----
  const Route* route = routes_.find(req.target);
  if (route == nullptr) {
    send_fault(from, req, 404, "maqs/NO_ROUTE",
               "no route for " + req.target, trace_id);
    return;
  }
  if (req.method != "POST") {
    send_fault(from, req, 400, "maqs/BAD_METHOD",
               "route " + req.target + " requires POST", trace_id);
    return;
  }
  const auto exposure = exposures_.find(route->interface->name);
  if (exposure == exposures_.end()) {
    send_fault(from, req, 404, "maqs/NOT_EXPOSED",
               "interface " + route->interface->name + " is not exposed",
               trace_id);
    return;
  }

  // ---- body: JSON document, possibly inside a multipart container ----
  MtomContainer container;
  std::string_view json_text;
  ContentType content_type;
  if (const auto ct = req.header("content-type")) {
    content_type = parse_content_type(*ct);
  } else {
    content_type.media_type = "application/json";
  }
  if (content_type.media_type == "multipart/related") {
    auto parsed = parse_multipart_related(req.body, content_type.boundary);
    if (!parsed.has_value()) {
      send_fault(from, req, 400, "maqs/BAD_MULTIPART",
                 "malformed multipart/related container", trace_id);
      return;
    }
    container = *std::move(parsed);
    json_text = {reinterpret_cast<const char*>(container.root.data()),
                 container.root.size()};
  } else if (content_type.media_type == "application/json" ||
             content_type.media_type.empty()) {
    json_text = {reinterpret_cast<const char*>(req.body.data()),
                 req.body.size()};
    if (json_text.empty()) json_text = "{}";
  } else {
    send_fault(from, req, 400, "maqs/BAD_CONTENT_TYPE",
               "unsupported content type " + content_type.media_type,
               trace_id);
    return;
  }

  // ---- marshal arguments per the repository signature ----
  const qidl::OperationSignature& op = *route->operation;
  cdr::Encoder args = cdr::Encoder::pooled();
  try {
    const JsonValue body = parse_json(json_text);
    if (!body.is_object()) throw JsonError("request body must be an object");
    std::size_t matched = 0;
    for (const auto& [name, type] : op.params) {
      const JsonValue* value = body.find(name);
      if (value == nullptr) {
        throw JsonError("missing parameter \"" + name + "\"");
      }
      ++matched;
      const JsonValue* blob_ref =
          value->is_object() ? value->find("$blob") : nullptr;
      if (blob_ref != nullptr) {
        // MTOM reference: the part's bytes go straight onto the CDR
        // stream (borrowed view, one copy, no per-octet Anys).
        if (!is_blob(type) || !blob_ref->is_string()) {
          throw JsonError("parameter \"" + name +
                          "\" cannot take a $blob reference");
        }
        const MtomPart* part = container.find(blob_ref->as_string());
        if (part == nullptr) {
          throw JsonError("unresolved blob reference " +
                          blob_ref->as_string());
        }
        ++stats_.mtom_parts_in;
        args.write_bytes(part->data);
      } else {
        json_to_any(*value, type).encode_value(args);
      }
    }
    if (matched != body.as_object().size()) {
      for (const auto& [name, value] : body.as_object()) {
        bool known = false;
        for (const auto& [param, type] : op.params) {
          known = known || param == name;
        }
        if (!known) throw JsonError("unknown parameter \"" + name + "\"");
      }
    }
  } catch (const Error& e) {
    send_fault(from, req, 400, "maqs/BAD_BODY", e.what(), trace_id);
    return;
  }

  // ---- the DII bridge: full client interceptor chain ----
  orb::ClientRequestInfo info{orb_};
  info.target = &exposure->second.target;
  info.mediator = exposure->second.mediator;
  info.request.request_id = orb_.next_request_id();
  info.request.kind = orb::RequestKind::kServiceRequest;
  info.request.object_key = exposure->second.target.object_key;
  info.request.operation = op.name;
  info.request.body = args.take();
  const std::string qos_class = qos_class_for(req);
  if (!qos_class.empty()) {
    info.request.context.set(sched::kClassContextKey,
                             util::Bytes(qos_class.begin(), qos_class.end()));
  }

  try {
    orb_.invoke_with(info);
  } catch (const orb::TransportError&) {
    // Locally synthesized faults: the local_fault stage converted the
    // reply on the unwind; info.reply still names the cause.
    if (info.reply.exception == "maqs/CIRCUIT_OPEN") {
      send_fault(from, req, 503, "maqs/CIRCUIT_OPEN",
                 "circuit breaker open for " + op.name, trace_id);
    } else {
      send_fault(from, req, 504, "maqs/TIMEOUT",
                 "upstream timed out on " + op.name, trace_id);
    }
    return;
  } catch (const Error& e) {
    send_fault(from, req, 500, "maqs/GATEWAY_FAULT", e.what(), trace_id);
    return;
  }
  util::BufferPool::instance().release(std::move(info.request.body));

  // ---- reply status -> HTTP ----
  const orb::ReplyMessage& reply = info.reply;
  switch (reply.status) {
    case orb::ReplyStatus::kOk:
      break;
    case orb::ReplyStatus::kUserException: {
      std::string detail;
      try {
        cdr::Decoder dec(reply.body);
        detail = dec.read_string();
      } catch (const cdr::CdrError&) {
        detail = "<unreadable exception body>";
      }
      send_fault(from, req, 500, reply.exception, detail, trace_id);
      return;
    }
    case orb::ReplyStatus::kNoSuchObject:
    case orb::ReplyStatus::kBadOperation:
      send_fault(from, req, 404, reply.exception, "no such object/operation",
                 trace_id);
      return;
    case orb::ReplyStatus::kSystemException:
      if (reply.exception.rfind(sched::kOverloadException, 0) == 0) {
        send_fault(from, req, 503, sched::kOverloadException,
                   reply.exception, trace_id);
        return;
      }
      [[fallthrough]];
    default:
      send_fault(from, req, 500, reply.exception, "upstream fault",
                 trace_id);
      return;
  }

  // ---- result -> JSON (or multipart for large blobs) ----
  try {
    const cdr::TypeCodePtr& result_type = op.result;
    if (is_blob(result_type)) {
      // Blob results bypass Any entirely: a borrowed view off the reply
      // buffer, handed either to the multipart assembler (zero
      // intermediate copies) or inlined as a JSON array.
      cdr::Decoder dec(reply.body);
      const util::BytesView blob = dec.read_bytes_view();
      dec.expect_end();
      if (wants_multipart(req) && blob.size() >= config_.mtom_threshold) {
        const std::string cid = "r" + std::to_string(next_cid_);
        JsonObject ref;
        ref.emplace_back("$blob", JsonValue("cid:" + cid));
        JsonObject root;
        root.emplace_back("result", JsonValue(std::move(ref)));
        send_mtom_response(from, req, write_json(JsonValue(std::move(root))),
                           blob, trace_id);
        return;
      }
      JsonArray items;
      items.reserve(blob.size());
      for (const std::uint8_t b : blob) {
        items.push_back(JsonValue(static_cast<std::int64_t>(b)));
      }
      JsonObject root;
      root.emplace_back("result", JsonValue(std::move(items)));
      HttpResponse resp;
      resp.set_header("content-type", "application/json");
      const std::string body = write_json(JsonValue(std::move(root)));
      resp.body.assign(body.begin(), body.end());
      send_response(from, req, std::move(resp), trace_id);
      return;
    }
    JsonValue result(nullptr);
    if (result_type->kind() != cdr::TCKind::kVoid) {
      cdr::Decoder dec(reply.body);
      result = any_to_json(cdr::Any::decode_value(dec, result_type));
      dec.expect_end();
    }
    JsonObject root;
    root.emplace_back("result", std::move(result));
    HttpResponse resp;
    resp.set_header("content-type", "application/json");
    const std::string body = write_json(JsonValue(std::move(root)));
    resp.body.assign(body.begin(), body.end());
    send_response(from, req, std::move(resp), trace_id);
  } catch (const Error& e) {
    send_fault(from, req, 500, "maqs/BAD_REPLY", e.what(), trace_id);
  }
}

}  // namespace maqs::gateway

// Runtime type descriptions (CORBA TypeCode equivalent).
//
// TypeCodes describe the shape of marshaled values. They power the DII
// (dynamic requests carry self-describing Any arguments), the QoS-module
// command interface (Fig. 3: module-specific "dynamic interface" driven via
// DII), and the interface repository built by the QIDL front-end.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace maqs::cdr {

class Encoder;
class Decoder;

enum class TCKind : std::uint8_t {
  kVoid = 0,
  kBoolean,
  kOctet,
  kShort,
  kLong,      // 32-bit, CORBA naming
  kLongLong,  // 64-bit
  kFloat,
  kDouble,
  kString,
  kSequence,
  kStruct,
  kEnum,
  kAny,
  kObjRef,
};

const char* tc_kind_name(TCKind kind) noexcept;

class TypeCode;
using TypeCodePtr = std::shared_ptr<const TypeCode>;

/// Immutable, structurally comparable type description. Construct through
/// the static factories; shared via TypeCodePtr.
class TypeCode {
 public:
  // ---- factories ----
  static TypeCodePtr void_tc();
  static TypeCodePtr boolean_tc();
  static TypeCodePtr octet_tc();
  static TypeCodePtr short_tc();
  static TypeCodePtr long_tc();
  static TypeCodePtr longlong_tc();
  static TypeCodePtr float_tc();
  static TypeCodePtr double_tc();
  static TypeCodePtr string_tc();
  static TypeCodePtr any_tc();
  static TypeCodePtr sequence_tc(TypeCodePtr element);
  static TypeCodePtr struct_tc(
      std::string name,
      std::vector<std::pair<std::string, TypeCodePtr>> members);
  static TypeCodePtr enum_tc(std::string name,
                             std::vector<std::string> enumerators);
  /// Object reference typed by its repository id (e.g. "IDL:demo/Hello:1.0").
  static TypeCodePtr objref_tc(std::string repo_id);

  // ---- inspection ----
  TCKind kind() const noexcept { return kind_; }
  /// Struct/enum name or objref repository id; empty otherwise.
  const std::string& name() const noexcept { return name_; }
  /// Sequence element type; null otherwise.
  const TypeCodePtr& element() const noexcept { return element_; }
  const std::vector<std::pair<std::string, TypeCodePtr>>& members() const
      noexcept {
    return members_;
  }
  const std::vector<std::string>& enumerators() const noexcept {
    return enumerators_;
  }

  /// Structural equality.
  bool equal(const TypeCode& other) const;

  /// Human-readable form, e.g. "sequence<long>".
  std::string to_string() const;

  // ---- marshaling (for self-describing Anys) ----
  void encode(Encoder& enc) const;
  static TypeCodePtr decode(Decoder& dec);

 protected:
  // Construct through the factories; protected so the factory helpers can
  // derive locally.
  explicit TypeCode(TCKind kind) : kind_(kind) {}

 private:
  TCKind kind_;
  std::string name_;
  TypeCodePtr element_;
  std::vector<std::pair<std::string, TypeCodePtr>> members_;
  std::vector<std::string> enumerators_;
};

inline bool operator==(const TypeCode& a, const TypeCode& b) {
  return a.equal(b);
}

}  // namespace maqs::cdr

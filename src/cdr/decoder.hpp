// Compact-CDR decoder (see encoder.hpp for the format).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace maqs::cdr {

/// Thrown on malformed or truncated streams. Marshaling errors from remote
/// peers must never crash the process (untrusted input).
class CdrError : public Error {
 public:
  using Error::Error;
};

class Decoder {
 public:
  /// Non-owning view; the buffer must outlive the decoder.
  explicit Decoder(util::BytesView data) : data_(data) {}

  /// Owning variant (rvalues only): expressions like
  /// `Decoder dec(stub.invoke(...))` are safe because the returned
  /// temporary is moved into the decoder instead of dangling. Lvalue
  /// buffers keep using the zero-copy view overload.
  explicit Decoder(util::Bytes&& owned)
      : owned_(std::move(owned)), data_(owned_) {}

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  std::uint8_t read_u8() {
    require(1);
    return data_[pos_++];
  }

  bool read_bool() { return read_u8() != 0; }

  std::uint16_t read_u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t read_u32() {
    const std::uint32_t lo = read_u16();
    const std::uint32_t hi = read_u16();
    return lo | (hi << 16);
  }

  std::uint64_t read_u64() {
    const std::uint64_t lo = read_u32();
    const std::uint64_t hi = read_u32();
    return lo | (hi << 32);
  }

  std::int16_t read_i16() { return static_cast<std::int16_t>(read_u16()); }
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  float read_f32() { return std::bit_cast<float>(read_u32()); }
  double read_f64() { return std::bit_cast<double>(read_u64()); }

  std::string read_string() {
    const std::uint32_t n = read_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  util::Bytes read_bytes() {
    const std::uint32_t n = read_u32();
    require(n);
    util::Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  /// Remaining unread octets.
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  /// Consumes and returns the unread rest of the stream (no length
  /// prefix). QoS skeletons use this to lift the raw argument stream out
  /// for aspect transforms (decompression, decryption).
  util::Bytes read_remaining() {
    util::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    data_.end());
    pos_ = data_.size();
    return out;
  }
  bool at_end() const noexcept { return remaining() == 0; }

  /// Throws CdrError unless the stream is fully consumed; skeletons call
  /// this after unmarshaling arguments to reject trailing garbage.
  void expect_end() const {
    if (!at_end()) throw CdrError("cdr: trailing bytes in stream");
  }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CdrError("cdr: stream underflow");
  }

  util::Bytes owned_;  // only used by the owning constructor
  util::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace maqs::cdr

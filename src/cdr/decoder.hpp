// Compact-CDR decoder (see encoder.hpp for the format).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/buffer_pool.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace maqs::cdr {

/// Thrown on malformed or truncated streams. Marshaling errors from remote
/// peers must never crash the process (untrusted input).
class CdrError : public Error {
 public:
  using Error::Error;
};

class Decoder {
 public:
  /// Non-owning view; the buffer must outlive the decoder.
  explicit Decoder(util::BytesView data) : data_(data) {}

  /// Owning variant (rvalues only): expressions like
  /// `Decoder dec(stub.invoke(...))` are safe because the returned
  /// temporary is moved into the decoder instead of dangling. Lvalue
  /// buffers keep using the zero-copy view overload.
  explicit Decoder(util::Bytes&& owned)
      : owned_(std::move(owned)), data_(owned_) {}

  /// An owned buffer is a dead frame once decoding ends — recycle its
  /// storage instead of freeing it (no-op for the view constructor).
  ~Decoder() {
    if (owned_.capacity() > 0) {
      util::BufferPool::instance().release(std::move(owned_));
    }
  }

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  std::uint8_t read_u8() {
    require(1);
    return data_[pos_++];
  }

  bool read_bool() { return read_u8() != 0; }

  std::uint16_t read_u16() { return read_le<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }

  std::int16_t read_i16() { return static_cast<std::int16_t>(read_u16()); }
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  float read_f32() { return std::bit_cast<float>(read_u32()); }
  double read_f64() { return std::bit_cast<double>(read_u64()); }

  std::string read_string() { return std::string(read_string_view()); }

  /// Zero-copy string read: the view aliases the decoder's buffer and is
  /// valid only while that buffer lives (for the owning constructor, while
  /// the decoder itself lives). Use when the caller doesn't keep the value.
  std::string_view read_string_view() {
    const std::uint32_t n = read_u32();
    require(n);
    std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  util::Bytes read_bytes() {
    const util::BytesView v = read_bytes_view();
    return util::Bytes(v.begin(), v.end());
  }

  /// Zero-copy octet-sequence read; same lifetime rule as
  /// read_string_view().
  util::BytesView read_bytes_view() {
    const std::uint32_t n = read_u32();
    require(n);
    const util::BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  /// Remaining unread octets.
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  /// Consumes and returns the unread rest of the stream (no length
  /// prefix). QoS skeletons use this to lift the raw argument stream out
  /// for aspect transforms (decompression, decryption).
  util::Bytes read_remaining() {
    const util::BytesView v = read_remaining_view();
    return util::Bytes(v.begin(), v.end());
  }

  /// Zero-copy variant of read_remaining(); same lifetime rule as
  /// read_string_view().
  util::BytesView read_remaining_view() {
    const util::BytesView v = data_.subspan(pos_);
    pos_ = data_.size();
    return v;
  }

  bool at_end() const noexcept { return remaining() == 0; }

  /// Throws CdrError unless the stream is fully consumed; skeletons call
  /// this after unmarshaling arguments to reject trailing garbage.
  void expect_end() const {
    if (!at_end()) throw CdrError("cdr: trailing bytes in stream");
  }

 private:
  template <typename T>
  T read_le() {
    require(sizeof(T));
    T v;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
    } else {
      v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
      }
    }
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CdrError("cdr: stream underflow");
  }

  util::Bytes owned_;  // only used by the owning constructor
  util::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace maqs::cdr

// Self-describing values (CORBA Any equivalent).
//
// An Any pairs a TypeCode with a value. The DII sends operation arguments
// as Anys; QoS-module commands (Fig. 3) are DII requests whose payload is a
// sequence of Anys; negotiation exchanges QoS parameter values as Anys.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cdr/typecode.hpp"
#include "util/error.hpp"

namespace maqs::cdr {

class Encoder;
class Decoder;

/// Thrown when an Any is accessed as the wrong type.
class TypeMismatch : public Error {
 public:
  using Error::Error;
};

class Any {
 public:
  /// Default-constructed Any is void.
  Any();

  // ---- factories ----
  static Any make_void();
  static Any from_bool(bool v);
  static Any from_octet(std::uint8_t v);
  static Any from_short(std::int16_t v);
  static Any from_long(std::int32_t v);
  static Any from_longlong(std::int64_t v);
  static Any from_float(float v);
  static Any from_double(double v);
  static Any from_string(std::string v);
  /// Enum value by ordinal; throws if ordinal out of range.
  static Any from_enum(TypeCodePtr enum_type, std::uint32_t ordinal);
  /// Homogeneous sequence; element types are not re-verified per element
  /// beyond count (callers marshal through typed APIs).
  static Any from_sequence(TypeCodePtr element_type, std::vector<Any> items);
  /// Struct value; field count must match the TypeCode.
  static Any from_struct(TypeCodePtr struct_type, std::vector<Any> fields);
  /// Object reference as a stringified IOR.
  static Any from_objref(std::string repo_id, std::string stringified_ior);

  const TypeCodePtr& type() const noexcept { return type_; }
  TCKind kind() const noexcept { return type_->kind(); }

  // ---- typed accessors (throw TypeMismatch on wrong kind) ----
  bool as_bool() const;
  std::uint8_t as_octet() const;
  std::int16_t as_short() const;
  std::int32_t as_long() const;
  std::int64_t as_longlong() const;
  float as_float() const;
  double as_double() const;
  const std::string& as_string() const;
  std::uint32_t as_enum_ordinal() const;
  const std::string& as_enum_name() const;
  const std::vector<Any>& as_elements() const;  // sequence or struct fields
  const std::string& as_objref_ior() const;

  /// Widening numeric view: any integral kind as int64.
  std::int64_t as_integer() const;

  bool operator==(const Any& other) const;

  /// Debug form, e.g. `long(42)` or `sequence<octet>[3]`.
  std::string to_string() const;

  // ---- marshaling ----
  /// Value only; the receiver must know the TypeCode.
  void encode_value(Encoder& enc) const;
  static Any decode_value(Decoder& dec, const TypeCodePtr& type);
  /// TypeCode + value (self-describing, used by DII).
  void encode(Encoder& enc) const;
  static Any decode(Decoder& dec);

 private:
  using Value = std::variant<std::monostate, bool, std::uint8_t, std::int16_t,
                             std::int32_t, std::int64_t, float, double,
                             std::string, std::uint32_t, std::vector<Any>>;

  Any(TypeCodePtr type, Value value)
      : type_(std::move(type)), value_(std::move(value)) {}

  void require(TCKind kind) const;

  TypeCodePtr type_;
  Value value_;
};

}  // namespace maqs::cdr

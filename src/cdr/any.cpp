#include "cdr/any.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::cdr {

Any::Any() : type_(TypeCode::void_tc()), value_(std::monostate{}) {}

Any Any::make_void() { return Any{}; }

Any Any::from_bool(bool v) { return Any(TypeCode::boolean_tc(), v); }
Any Any::from_octet(std::uint8_t v) { return Any(TypeCode::octet_tc(), v); }
Any Any::from_short(std::int16_t v) { return Any(TypeCode::short_tc(), v); }
Any Any::from_long(std::int32_t v) { return Any(TypeCode::long_tc(), v); }
Any Any::from_longlong(std::int64_t v) {
  return Any(TypeCode::longlong_tc(), v);
}
Any Any::from_float(float v) { return Any(TypeCode::float_tc(), v); }
Any Any::from_double(double v) { return Any(TypeCode::double_tc(), v); }
Any Any::from_string(std::string v) {
  return Any(TypeCode::string_tc(), std::move(v));
}

Any Any::from_enum(TypeCodePtr enum_type, std::uint32_t ordinal) {
  if (!enum_type || enum_type->kind() != TCKind::kEnum) {
    throw TypeMismatch("any: from_enum requires an enum TypeCode");
  }
  if (ordinal >= enum_type->enumerators().size()) {
    throw TypeMismatch("any: enum ordinal out of range for " +
                       enum_type->name());
  }
  return Any(std::move(enum_type), ordinal);
}

Any Any::from_sequence(TypeCodePtr element_type, std::vector<Any> items) {
  return Any(TypeCode::sequence_tc(std::move(element_type)),
             std::move(items));
}

Any Any::from_struct(TypeCodePtr struct_type, std::vector<Any> fields) {
  if (!struct_type || struct_type->kind() != TCKind::kStruct) {
    throw TypeMismatch("any: from_struct requires a struct TypeCode");
  }
  if (fields.size() != struct_type->members().size()) {
    throw TypeMismatch("any: field count mismatch for struct " +
                       struct_type->name());
  }
  return Any(std::move(struct_type), std::move(fields));
}

Any Any::from_objref(std::string repo_id, std::string stringified_ior) {
  return Any(TypeCode::objref_tc(std::move(repo_id)),
             std::move(stringified_ior));
}

void Any::require(TCKind kind) const {
  if (type_->kind() != kind) {
    throw TypeMismatch(std::string("any: expected ") + tc_kind_name(kind) +
                       ", found " + tc_kind_name(type_->kind()));
  }
}

bool Any::as_bool() const {
  require(TCKind::kBoolean);
  return std::get<bool>(value_);
}

std::uint8_t Any::as_octet() const {
  require(TCKind::kOctet);
  return std::get<std::uint8_t>(value_);
}

std::int16_t Any::as_short() const {
  require(TCKind::kShort);
  return std::get<std::int16_t>(value_);
}

std::int32_t Any::as_long() const {
  require(TCKind::kLong);
  return std::get<std::int32_t>(value_);
}

std::int64_t Any::as_longlong() const {
  require(TCKind::kLongLong);
  return std::get<std::int64_t>(value_);
}

float Any::as_float() const {
  require(TCKind::kFloat);
  return std::get<float>(value_);
}

double Any::as_double() const {
  require(TCKind::kDouble);
  return std::get<double>(value_);
}

const std::string& Any::as_string() const {
  require(TCKind::kString);
  return std::get<std::string>(value_);
}

std::uint32_t Any::as_enum_ordinal() const {
  require(TCKind::kEnum);
  return std::get<std::uint32_t>(value_);
}

const std::string& Any::as_enum_name() const {
  return type_->enumerators().at(as_enum_ordinal());
}

const std::vector<Any>& Any::as_elements() const {
  if (type_->kind() != TCKind::kSequence &&
      type_->kind() != TCKind::kStruct) {
    throw TypeMismatch(std::string("any: expected sequence/struct, found ") +
                       tc_kind_name(type_->kind()));
  }
  return std::get<std::vector<Any>>(value_);
}

const std::string& Any::as_objref_ior() const {
  require(TCKind::kObjRef);
  return std::get<std::string>(value_);
}

std::int64_t Any::as_integer() const {
  switch (type_->kind()) {
    case TCKind::kOctet: return std::get<std::uint8_t>(value_);
    case TCKind::kShort: return std::get<std::int16_t>(value_);
    case TCKind::kLong: return std::get<std::int32_t>(value_);
    case TCKind::kLongLong: return std::get<std::int64_t>(value_);
    case TCKind::kEnum: return std::get<std::uint32_t>(value_);
    case TCKind::kBoolean: return std::get<bool>(value_) ? 1 : 0;
    default:
      throw TypeMismatch(std::string("any: expected integral kind, found ") +
                         tc_kind_name(type_->kind()));
  }
}

bool Any::operator==(const Any& other) const {
  return type_->equal(*other.type_) && value_ == other.value_;
}

std::string Any::to_string() const {
  switch (type_->kind()) {
    case TCKind::kVoid: return "void";
    case TCKind::kBoolean: return as_bool() ? "true" : "false";
    case TCKind::kOctet:
      return "octet(" + std::to_string(as_octet()) + ")";
    case TCKind::kShort:
      return "short(" + std::to_string(as_short()) + ")";
    case TCKind::kLong: return "long(" + std::to_string(as_long()) + ")";
    case TCKind::kLongLong:
      return "longlong(" + std::to_string(as_longlong()) + ")";
    case TCKind::kFloat: return "float(" + std::to_string(as_float()) + ")";
    case TCKind::kDouble:
      return "double(" + std::to_string(as_double()) + ")";
    case TCKind::kString: return "\"" + as_string() + "\"";
    case TCKind::kEnum: return type_->name() + "::" + as_enum_name();
    case TCKind::kSequence:
      return type_->to_string() + "[" +
             std::to_string(as_elements().size()) + "]";
    case TCKind::kStruct: {
      std::string out = type_->to_string() + "{";
      const auto& fields = as_elements();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += type_->members()[i].first + "=" + fields[i].to_string();
      }
      return out + "}";
    }
    case TCKind::kAny: return "any";
    case TCKind::kObjRef: return type_->to_string();
  }
  return "?";
}

void Any::encode_value(Encoder& enc) const {
  switch (type_->kind()) {
    case TCKind::kVoid: break;
    case TCKind::kBoolean: enc.write_bool(std::get<bool>(value_)); break;
    case TCKind::kOctet: enc.write_u8(std::get<std::uint8_t>(value_)); break;
    case TCKind::kShort: enc.write_i16(std::get<std::int16_t>(value_)); break;
    case TCKind::kLong: enc.write_i32(std::get<std::int32_t>(value_)); break;
    case TCKind::kLongLong:
      enc.write_i64(std::get<std::int64_t>(value_));
      break;
    case TCKind::kFloat: enc.write_f32(std::get<float>(value_)); break;
    case TCKind::kDouble: enc.write_f64(std::get<double>(value_)); break;
    case TCKind::kString:
    case TCKind::kObjRef:
      enc.write_string(std::get<std::string>(value_));
      break;
    case TCKind::kEnum: enc.write_u32(std::get<std::uint32_t>(value_)); break;
    case TCKind::kSequence: {
      const auto& items = std::get<std::vector<Any>>(value_);
      enc.write_u32(static_cast<std::uint32_t>(items.size()));
      for (const Any& item : items) item.encode_value(enc);
      break;
    }
    case TCKind::kStruct:
      for (const Any& field : std::get<std::vector<Any>>(value_)) {
        field.encode_value(enc);
      }
      break;
    case TCKind::kAny:
      throw Error("any: nested any marshaling unsupported");
  }
}

Any Any::decode_value(Decoder& dec, const TypeCodePtr& type) {
  switch (type->kind()) {
    case TCKind::kVoid: return make_void();
    case TCKind::kBoolean: return from_bool(dec.read_bool());
    case TCKind::kOctet: return from_octet(dec.read_u8());
    case TCKind::kShort: return from_short(dec.read_i16());
    case TCKind::kLong: return from_long(dec.read_i32());
    case TCKind::kLongLong: return from_longlong(dec.read_i64());
    case TCKind::kFloat: return from_float(dec.read_f32());
    case TCKind::kDouble: return from_double(dec.read_f64());
    case TCKind::kString: return from_string(dec.read_string());
    case TCKind::kObjRef:
      return Any(type, dec.read_string());
    case TCKind::kEnum: {
      const std::uint32_t ordinal = dec.read_u32();
      if (ordinal >= type->enumerators().size()) {
        throw CdrError("any: enum ordinal out of range on the wire");
      }
      return Any(type, ordinal);
    }
    case TCKind::kSequence: {
      const std::uint32_t n = dec.read_u32();
      std::vector<Any> items;
      items.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        items.push_back(decode_value(dec, type->element()));
      }
      return Any(type, std::move(items));
    }
    case TCKind::kStruct: {
      std::vector<Any> fields;
      fields.reserve(type->members().size());
      for (const auto& [_, member_tc] : type->members()) {
        fields.push_back(decode_value(dec, member_tc));
      }
      return Any(type, std::move(fields));
    }
    case TCKind::kAny:
      throw CdrError("any: nested any unmarshaling unsupported");
  }
  throw CdrError("any: bad typecode kind");
}

void Any::encode(Encoder& enc) const {
  type_->encode(enc);
  encode_value(enc);
}

Any Any::decode(Decoder& dec) {
  TypeCodePtr type = TypeCode::decode(dec);
  return decode_value(dec, type);
}

}  // namespace maqs::cdr

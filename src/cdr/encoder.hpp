// Compact-CDR encoder.
//
// Marshaling format for all GIOP-style messages, stub/skeleton argument
// streams and Any values. Relative to OMG CDR we fix little-endian byte
// order and drop alignment padding ("compact CDR"); both simplifications
// are transparent to the layers above, which only see the Encoder/Decoder
// API, and are called out in DESIGN.md §2.
//
// Hot-path discipline: integers and strings are appended in bulk (one
// capacity check per write, memcpy-able ranges), and callers that know the
// frame size ahead of time pre-size the buffer via the reserve-aware
// constructor so a whole message encodes with a single allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "util/buffer_pool.hpp"
#include "util/bytes.hpp"

namespace maqs::cdr {

class Encoder {
 public:
  Encoder() = default;

  /// Pre-sizes the buffer; callers with a size hint (message encoders,
  /// generated stubs) avoid all regrowth reallocations.
  explicit Encoder(std::size_t reserve_hint) { buf_.reserve(reserve_hint); }

  /// Encodes into a recycled buffer (e.g. from util::BufferPool): the
  /// encoder appends after whatever the buffer already holds — pass it
  /// cleared. take() hands the storage back for the caller to release.
  explicit Encoder(util::Bytes&& recycled) : buf_(std::move(recycled)) {}

  /// Encoder over a pool-recycled buffer: generated stubs marshal argument
  /// streams without touching the allocator in steady state. The storage
  /// returns to the pool when the frame dies (the wire layer and the
  /// owning Decoder both release there).
  static Encoder pooled(std::size_t size_hint = 64) {
    return Encoder(util::BufferPool::instance().acquire(size_hint));
  }

  /// Reserves room for `n` more octets on top of what is already written.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_u16(std::uint16_t v) { append_le(v); }
  void write_u32(std::uint32_t v) { append_le(v); }
  void write_u64(std::uint64_t v) { append_le(v); }

  void write_i16(std::int16_t v) { write_u16(static_cast<std::uint16_t>(v)); }
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }

  void write_f32(float v) { write_u32(std::bit_cast<std::uint32_t>(v)); }
  void write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) string, no terminator.
  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed (u32) octet sequence.
  void write_bytes(util::BytesView b) {
    write_u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw octets, no length prefix (for nested pre-encoded buffers).
  void write_raw(util::BytesView b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }

  const util::Bytes& buffer() const noexcept { return buf_; }
  util::Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void append_le(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
      buf_.insert(buf_.end(), p, p + sizeof(T));
    } else {
      std::uint8_t le[sizeof(T)];
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        le[i] = static_cast<std::uint8_t>(v >> (8 * i));
      }
      buf_.insert(buf_.end(), le, le + sizeof(T));
    }
  }

  util::Bytes buf_;
};

}  // namespace maqs::cdr

// Compact-CDR encoder.
//
// Marshaling format for all GIOP-style messages, stub/skeleton argument
// streams and Any values. Relative to OMG CDR we fix little-endian byte
// order and drop alignment padding ("compact CDR"); both simplifications
// are transparent to the layers above, which only see the Encoder/Decoder
// API, and are called out in DESIGN.md §2.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace maqs::cdr {

class Encoder {
 public:
  Encoder() = default;

  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_u16(std::uint16_t v) {
    write_u8(static_cast<std::uint8_t>(v));
    write_u8(static_cast<std::uint8_t>(v >> 8));
  }

  void write_u32(std::uint32_t v) {
    write_u16(static_cast<std::uint16_t>(v));
    write_u16(static_cast<std::uint16_t>(v >> 16));
  }

  void write_u64(std::uint64_t v) {
    write_u32(static_cast<std::uint32_t>(v));
    write_u32(static_cast<std::uint32_t>(v >> 32));
  }

  void write_i16(std::int16_t v) { write_u16(static_cast<std::uint16_t>(v)); }
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }

  void write_f32(float v) { write_u32(std::bit_cast<std::uint32_t>(v)); }
  void write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) string, no terminator.
  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    util::append(buf_, util::Bytes(s.begin(), s.end()));
  }

  /// Length-prefixed (u32) octet sequence.
  void write_bytes(util::BytesView b) {
    write_u32(static_cast<std::uint32_t>(b.size()));
    util::append(buf_, b);
  }

  /// Raw octets, no length prefix (for nested pre-encoded buffers).
  void write_raw(util::BytesView b) { util::append(buf_, b); }

  std::size_t size() const noexcept { return buf_.size(); }

  const util::Bytes& buffer() const noexcept { return buf_; }
  util::Bytes take() { return std::move(buf_); }

 private:
  util::Bytes buf_;
};

}  // namespace maqs::cdr

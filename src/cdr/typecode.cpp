#include "cdr/typecode.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"

namespace maqs::cdr {

const char* tc_kind_name(TCKind kind) noexcept {
  switch (kind) {
    case TCKind::kVoid: return "void";
    case TCKind::kBoolean: return "boolean";
    case TCKind::kOctet: return "octet";
    case TCKind::kShort: return "short";
    case TCKind::kLong: return "long";
    case TCKind::kLongLong: return "long long";
    case TCKind::kFloat: return "float";
    case TCKind::kDouble: return "double";
    case TCKind::kString: return "string";
    case TCKind::kSequence: return "sequence";
    case TCKind::kStruct: return "struct";
    case TCKind::kEnum: return "enum";
    case TCKind::kAny: return "any";
    case TCKind::kObjRef: return "objref";
  }
  return "?";
}

namespace {
TypeCodePtr make_basic(TCKind kind) {
  struct Access : TypeCode {
    explicit Access(TCKind k) : TypeCode(k) {}
  };
  return std::make_shared<const Access>(kind);
}

// Basic kinds are singletons; composite factories build fresh nodes.
TypeCodePtr basic_singleton(TCKind kind) {
  switch (kind) {
    case TCKind::kVoid: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kBoolean: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kOctet: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kShort: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kLong: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kLongLong: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kFloat: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kDouble: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kString: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    case TCKind::kAny: {
      static const TypeCodePtr tc = make_basic(kind);
      return tc;
    }
    default:
      throw Error("typecode: not a basic kind");
  }
}
}  // namespace

TypeCodePtr TypeCode::void_tc() { return basic_singleton(TCKind::kVoid); }
TypeCodePtr TypeCode::boolean_tc() { return basic_singleton(TCKind::kBoolean); }
TypeCodePtr TypeCode::octet_tc() { return basic_singleton(TCKind::kOctet); }
TypeCodePtr TypeCode::short_tc() { return basic_singleton(TCKind::kShort); }
TypeCodePtr TypeCode::long_tc() { return basic_singleton(TCKind::kLong); }
TypeCodePtr TypeCode::longlong_tc() {
  return basic_singleton(TCKind::kLongLong);
}
TypeCodePtr TypeCode::float_tc() { return basic_singleton(TCKind::kFloat); }
TypeCodePtr TypeCode::double_tc() { return basic_singleton(TCKind::kDouble); }
TypeCodePtr TypeCode::string_tc() { return basic_singleton(TCKind::kString); }
TypeCodePtr TypeCode::any_tc() { return basic_singleton(TCKind::kAny); }

TypeCodePtr TypeCode::sequence_tc(TypeCodePtr element) {
  if (!element) throw Error("typecode: sequence of null element");
  struct Access : TypeCode {
    explicit Access() : TypeCode(TCKind::kSequence) {}
  };
  auto tc = std::make_shared<Access>();
  tc->element_ = std::move(element);
  return tc;
}

TypeCodePtr TypeCode::struct_tc(
    std::string name,
    std::vector<std::pair<std::string, TypeCodePtr>> members) {
  for (const auto& [member_name, member_tc] : members) {
    if (!member_tc) {
      throw Error("typecode: struct member '" + member_name + "' is null");
    }
  }
  struct Access : TypeCode {
    explicit Access() : TypeCode(TCKind::kStruct) {}
  };
  auto tc = std::make_shared<Access>();
  tc->name_ = std::move(name);
  tc->members_ = std::move(members);
  return tc;
}

TypeCodePtr TypeCode::enum_tc(std::string name,
                              std::vector<std::string> enumerators) {
  if (enumerators.empty()) throw Error("typecode: empty enum");
  struct Access : TypeCode {
    explicit Access() : TypeCode(TCKind::kEnum) {}
  };
  auto tc = std::make_shared<Access>();
  tc->name_ = std::move(name);
  tc->enumerators_ = std::move(enumerators);
  return tc;
}

TypeCodePtr TypeCode::objref_tc(std::string repo_id) {
  struct Access : TypeCode {
    explicit Access() : TypeCode(TCKind::kObjRef) {}
  };
  auto tc = std::make_shared<Access>();
  tc->name_ = std::move(repo_id);
  return tc;
}

bool TypeCode::equal(const TypeCode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TCKind::kSequence:
      return element_->equal(*other.element_);
    case TCKind::kStruct: {
      if (name_ != other.name_ || members_.size() != other.members_.size()) {
        return false;
      }
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (members_[i].first != other.members_[i].first ||
            !members_[i].second->equal(*other.members_[i].second)) {
          return false;
        }
      }
      return true;
    }
    case TCKind::kEnum:
      return name_ == other.name_ && enumerators_ == other.enumerators_;
    case TCKind::kObjRef:
      return name_ == other.name_;
    default:
      return true;  // basic kinds carry no structure
  }
}

std::string TypeCode::to_string() const {
  switch (kind_) {
    case TCKind::kSequence:
      return "sequence<" + element_->to_string() + ">";
    case TCKind::kStruct:
      return "struct " + name_;
    case TCKind::kEnum:
      return "enum " + name_;
    case TCKind::kObjRef:
      return "objref<" + name_ + ">";
    default:
      return tc_kind_name(kind_);
  }
}

void TypeCode::encode(Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case TCKind::kSequence:
      element_->encode(enc);
      break;
    case TCKind::kStruct:
      enc.write_string(name_);
      enc.write_u32(static_cast<std::uint32_t>(members_.size()));
      for (const auto& [member_name, member_tc] : members_) {
        enc.write_string(member_name);
        member_tc->encode(enc);
      }
      break;
    case TCKind::kEnum:
      enc.write_string(name_);
      enc.write_u32(static_cast<std::uint32_t>(enumerators_.size()));
      for (const auto& e : enumerators_) enc.write_string(e);
      break;
    case TCKind::kObjRef:
      enc.write_string(name_);
      break;
    default:
      break;
  }
}

TypeCodePtr TypeCode::decode(Decoder& dec) {
  const auto raw = dec.read_u8();
  if (raw > static_cast<std::uint8_t>(TCKind::kObjRef)) {
    throw CdrError("typecode: bad kind octet");
  }
  const TCKind kind = static_cast<TCKind>(raw);
  switch (kind) {
    case TCKind::kSequence:
      return sequence_tc(decode(dec));
    case TCKind::kStruct: {
      std::string name = dec.read_string();
      const std::uint32_t n = dec.read_u32();
      std::vector<std::pair<std::string, TypeCodePtr>> members;
      members.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string member_name = dec.read_string();
        members.emplace_back(std::move(member_name), decode(dec));
      }
      return struct_tc(std::move(name), std::move(members));
    }
    case TCKind::kEnum: {
      std::string name = dec.read_string();
      const std::uint32_t n = dec.read_u32();
      std::vector<std::string> enumerators;
      enumerators.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        enumerators.push_back(dec.read_string());
      }
      return enum_tc(std::move(name), std::move(enumerators));
    }
    case TCKind::kObjRef:
      return objref_tc(dec.read_string());
    default:
      return basic_singleton(kind);
  }
}

}  // namespace maqs::cdr

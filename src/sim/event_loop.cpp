#include "sim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace maqs::sim {

EventId EventLoop::schedule(Duration delay, Handler fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, Handler fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // We cannot remove from the middle of a priority queue; mark instead and
  // skip on pop.
  const bool inserted = cancelled_ids_.insert(id).second;
  // Tombstones are normally reclaimed on pop, but when virtual time never
  // reaches them (a tight loop arming and cancelling far-future timeouts,
  // as every blocking RPC does) they would accumulate without bound.
  // Compact once they dominate the queue; the rebuild amortizes to O(1)
  // per cancel. The threshold is deliberately high: compacting eagerly
  // keeps the heap vector tiny, which lets glibc return the arena's top
  // pages to the kernel between requests when the workload also cycles
  // large short-lived buffers — the resulting per-request page-fault churn
  // costs far more than the tombstones (observed 2.5x on the woven
  // bench_f4 path at a threshold of 64).
  // The ratio test alone is not enough: with a large *live* backlog (a
  // population world keeps one armed far-future timer per client) the
  // queue size drags the purge threshold up with it, and a long-horizon
  // schedule-and-cancel loop grows the set to half the population before
  // ever compacting. kMaxTombstones caps the set absolutely; the O(queue)
  // sweep then amortizes to O(queue / kMaxTombstones) per cancel.
  if (inserted && ((cancelled_ids_.size() > 1024 &&
                    cancelled_ids_.size() * 2 > queue_.size()) ||
                   cancelled_ids_.size() > kMaxTombstones)) {
    purge_cancelled();
  }
  return inserted;
}

void EventLoop::purge_cancelled() {
  std::vector<Entry>& entries = queue_.container();
  std::erase_if(entries, [this](const Entry& entry) {
    return cancelled_ids_.contains(entry.id);
  });
  std::make_heap(entries.begin(), entries.end(), Later{});
  // Anything left in the set refers to an event that already ran (cancel
  // after execution): stale either way.
  cancelled_ids_.clear();
}

bool EventLoop::step() {
  for (;;) {
    while (!queue_.empty()) {
      // Move, don't copy: the handler may own an in-flight message payload,
      // and top() only hands out a const ref. The moved-from entry keeps its
      // scalar ordering fields, so the pop's sift stays well-defined.
      Entry entry = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (auto it = cancelled_ids_.find(entry.id); it != cancelled_ids_.end()) {
        cancelled_ids_.erase(it);
        continue;
      }
      now_ = entry.when;
      entry.fn();
      return true;
    }
    // The queue is about to drain: give the owner one chance to flush
    // deferred work. The guard keeps a hook that pumps the loop itself
    // (e.g. a blocking dispatch) from re-entering its own flush.
    if (!drain_hook_ || in_drain_hook_) return false;
    in_drain_hook_ = true;
    const bool flushed = drain_hook_();
    in_drain_hook_ = false;
    if (!flushed || queue_.empty()) return false;
  }
}

std::size_t EventLoop::run_until_idle() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

bool EventLoop::run_until(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!step()) return pred();
  }
  return true;
}

void EventLoop::run_for(Duration duration) {
  const TimePoint deadline = now_ + duration;
  // step() would run the next *non-cancelled* event even when that event is
  // past the deadline (cancelled entries at the queue head hide it), so pop
  // explicitly here.
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_ids_.find(entry.id); it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      continue;
    }
    now_ = entry.when;
    entry.fn();
  }
  now_ = deadline;
}

}  // namespace maqs::sim

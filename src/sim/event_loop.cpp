#include "sim/event_loop.hpp"

#include <utility>

namespace maqs::sim {

EventId EventLoop::schedule(Duration delay, Handler fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(TimePoint when, Handler fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // We cannot remove from the middle of a priority queue; mark instead and
  // skip on pop. The set stays small because ids are erased when skipped.
  return cancelled_ids_.insert(id).second;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_ids_.find(entry.id); it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      continue;
    }
    now_ = entry.when;
    entry.fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until_idle() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

bool EventLoop::run_until(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!step()) return pred();
  }
  return true;
}

void EventLoop::run_for(Duration duration) {
  const TimePoint deadline = now_ + duration;
  // step() would run the next *non-cancelled* event even when that event is
  // past the deadline (cancelled entries at the queue head hide it), so pop
  // explicitly here.
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_ids_.find(entry.id); it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      continue;
    }
    now_ = entry.when;
    entry.fn();
  }
  now_ = deadline;
}

}  // namespace maqs::sim

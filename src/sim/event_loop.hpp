// Discrete-event loop with support for nested pumping.
//
// Blocking RPC on a single-threaded simulator works by "pumping": the caller
// schedules the request and then runs the loop until its reply arrives
// (EventLoop::run_until). Handlers may themselves issue blocking calls,
// which re-enter run_until; events keep draining from the same queue, so a
// server that calls another server mid-request behaves like a nested message
// loop. This mirrors how a CORBA ORB's work queue behaves for collocated
// re-entrant invocations.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.hpp"

namespace maqs::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class EventLoop {
 public:
  using Handler = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  EventId schedule(Duration delay, Handler fn);

  /// Schedules `fn` at an absolute virtual time (past times run "now").
  EventId schedule_at(TimePoint when, Handler fn);

  /// Cancels a pending event. Returns false if it already ran or never
  /// existed. Cancelling during execution of the event itself is a no-op.
  bool cancel(EventId id);

  /// Number of pending (non-cancelled) events. Clamped: cancelling ids
  /// that already ran leaves stale tombstones which may momentarily
  /// outnumber queue entries.
  std::size_t pending() const noexcept {
    const std::size_t tombs = cancelled_ids_.size();
    return queue_.size() > tombs ? queue_.size() - tombs : 0;
  }

  /// Cancelled-but-uncollected tombstones (observability; bounded by
  /// kMaxTombstones + 1 at all times).
  std::size_t cancelled_backlog() const noexcept {
    return cancelled_ids_.size();
  }

  /// Hard ceiling on tombstone accumulation: cancel() compacts whenever
  /// the set grows past this, independent of queue size, so a world with
  /// a huge *live* backlog (a million armed client timers) cannot drag
  /// the ratio-based purge threshold up with it.
  static constexpr std::size_t kMaxTombstones = 4096;

  /// Runs events until the queue is empty. Returns the number executed.
  std::size_t run_until_idle();

  /// Installs a hook consulted when the queue is about to drain empty
  /// (nullptr uninstalls). The hook returns true when it scheduled new
  /// work, in which case the loop keeps running instead of going idle.
  /// Schedulers that park requests for deferred dispatch use this as a
  /// backstop: no parked work can be stranded by a draining loop.
  void set_drain_hook(std::function<bool()> hook) {
    drain_hook_ = std::move(hook);
  }

  /// Runs events until `pred()` is true or the queue drains.
  /// Returns true if the predicate was satisfied. Re-entrant.
  bool run_until(const std::function<bool()>& pred);

  /// Runs events with timestamps <= now + duration; virtual time ends up
  /// advanced by exactly `duration` even if the queue drains earlier.
  void run_for(Duration duration);

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventId id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Exposes the underlying container so purge_cancelled() can compact it.
  struct Queue : std::priority_queue<Entry, std::vector<Entry>, Later> {
    std::vector<Entry>& container() noexcept { return c; }
  };

  /// Pops and runs the earliest event; returns false if the queue is empty.
  bool step();

  /// Removes cancelled entries still in the queue and rebuilds the heap.
  void purge_cancelled();

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  Queue queue_;
  std::unordered_set<EventId> cancelled_ids_;
  std::function<bool()> drain_hook_;
  bool in_drain_hook_ = false;
};

}  // namespace maqs::sim

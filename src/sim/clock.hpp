// Virtual time.
//
// The whole stack runs on a discrete-event virtual clock (DESIGN.md D1):
// network latency, bandwidth serialization delays, timers and timeouts all
// advance this clock, never the wall clock. Benchmarks that report
// "transfer took 120 ms on a 64 kbit/s link" read virtual time; CPU-bound
// overhead benchmarks use google-benchmark wall time on the same code.
#pragma once

#include <cstdint>

namespace maqs::sim {

/// Nanoseconds of virtual time.
using Duration = std::int64_t;

/// Absolute virtual time (nanoseconds since simulation start).
using TimePoint = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_millis(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

}  // namespace maqs::sim

// Replication QoS characteristic ("fault-tolerance through replica
// groups", paper §6).
//
// The mechanism reuses the network's multicast exactly as the paper
// motivates for the two-layer hierarchy (§4): the application-layer
// characteristic (k-availability) is implemented on top of a transport
// module that multicasts the request to a replica group and collects
// replies. Two delivery modes share the same multicast machinery —
// mechanism reuse across characteristics, the paper's own example of
// "a multicast on network layer can be used for k-availability as well as
// for diversity through majority votes on results" (§6, experiment E7):
//
//   - "failover": first successful reply wins (masks up to N-1 crashes),
//   - "voting":   wait for a majority of identical reply bodies (masks
//                 byzantine/faulty results, not just crashes).
//
// State initialization of new replicas ("new replicas need to be
// initialized to the same state as already running replicas", §3.1) uses
// the QoS-aspect-integration interface: ReplicationImpl exposes the QoS
// operations qos_get_state/qos_set_state, which reach the servant's
// StateAccess aspect. ReplicaGroup::add_replica performs the transfer.
#pragma once

#include <memory>
#include <vector>

#include "core/provider.hpp"

namespace maqs::characteristics {

const std::string& replication_name();         // "Replication"
const std::string& replication_module_name();  // "replication"

core::CharacteristicDescriptor replication_descriptor();
core::CharacteristicProvider make_replication_provider();
void register_replication_module();

/// Transport module: multicast invoke + reply collection.
class ReplicationModule final : public core::QosModule {
 public:
  ReplicationModule();

  orb::ReplyMessage invoke(orb::RequestMessage req,
                           const orb::ObjRef& target) override;

  /// Commands: configure(group, mode, quorum); info().
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override;

  /// Replies that arrived after the decision (observability).
  std::uint64_t late_replies() const noexcept { return late_replies_; }

 private:
  orb::ReplyMessage invoke_failover(orb::RequestMessage req);
  orb::ReplyMessage invoke_voting(orb::RequestMessage req);
  orb::ReplyMessage invoke_passive(orb::RequestMessage req,
                                   const orb::ObjRef& target);

  std::string group_;
  std::string mode_ = "failover";
  int quorum_ = 2;
  std::uint64_t late_replies_ = 0;
};

/// Server-side QoS implementation: state-transfer QoS operations through
/// the aspect-integration interface, plus the state epoch passive
/// replication advertises (directory heartbeats carry it; lookups order
/// profiles by it, so the most caught-up replica leads as primary).
class ReplicationImpl final : public core::QosImpl {
 public:
  ReplicationImpl();

  void attach(core::QosServerContext& ctx) override;
  void detach() override;
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext& ctx) override;

  /// State version of this replica; bumped by each qos_set_state transfer
  /// and by advance_epoch(). Readable over the wire via the qos_epoch
  /// aspect op; feed naming::HeartbeatAgent::Config::epoch_probe from it.
  std::uint64_t epoch() const noexcept { return epoch_; }
  /// Called by the primary after a local state mutation, so its epoch
  /// stays ahead of every backup's.
  void advance_epoch() noexcept { ++epoch_; }

 private:
  core::QosServerContext* host_ = nullptr;
  std::uint64_t epoch_ = 0;
};

/// Management helper that wires a replica group: activates each replica's
/// servant under a shared object key, joins the ORB endpoints to the
/// multicast group and performs state transfer to late joiners. In a full
/// deployment this is the group-management infrastructure service; here
/// it doubles as the test/bench harness for E1/E7.
class ReplicaGroup {
 public:
  /// `group` is the multicast group name; `object_key` the shared key.
  ReplicaGroup(net::Network& network, std::string group,
               std::string object_key);

  const std::string& group() const noexcept { return group_; }
  const std::string& object_key() const noexcept { return object_key_; }
  std::size_t size() const noexcept { return members_.size(); }

  /// Registers a replica hosted by `orb`. `servant` must derive from
  /// QosServantBase with Replication assigned. When the group already has
  /// live members, state is transferred from the first live one (via the
  /// qos_get_state/qos_set_state QoS operations over the wire).
  orb::ObjRef add_replica(orb::Orb& orb,
                          std::shared_ptr<core::QosServantBase> servant);

  /// Removes the replica hosted by `orb` from the multicast group.
  void remove_replica(orb::Orb& orb);

  /// A client-facing reference carrying the QoS tag (group name).
  orb::ObjRef group_reference() const;

 private:
  struct Member {
    orb::Orb* orb;
    std::shared_ptr<core::QosServantBase> servant;
  };

  net::Network& network_;
  std::string group_;
  std::string object_key_;
  std::string repo_id_;
  std::vector<Member> members_;
};

}  // namespace maqs::characteristics

// Encryption QoS characteristic ("privacy through encryption", paper §6).
//
// Network-centered mechanism: the "encryption" transport module encrypts
// message bodies with XTEA-CTR under keys negotiated via Diffie-Hellman.
// The DH handshake is the paper's flagship "QoS to QoS" example — "on the
// fly change of encryption keys" (§3.2) — and runs as module commands over
// the plain path before the module is armed:
//
//   client                           server module
//     dh_exchange(epoch, A=g^a) ------------>
//     <----------------------------- B=g^b   (derives K=A^b for epoch)
//     (derives K=B^a, installs locally)
//
// Keys are versioned by epoch; each frame carries its epoch so a key
// change under traffic never corrupts in-flight requests (E5 measures
// exactly that). An optional integrity tag (keyed MAC) detects tampering.
//
// QIDL (conceptually):
//   qos characteristic Encryption {
//     dimension long key_bits  = { 128, 64 }      degrade 1;
//     dimension bool integrity = { true, false }  degrade 2;
//     param string psk = "";
//     mechanism string qos_cipher_info();
//   };
//
// key_bits and integrity are negotiated capability dimensions; the
// agreement version doubles as the frame epoch (hand-built agreements are
// version 0, matching the legacy PSK frames), so a renegotiated cipher
// downgrade is just another epoch rotation: old-epoch frames still open
// under their original key/integrity binding, and the reverse stage
// publishes the frame's version for downstream stages (the compression
// codec) via TransformContext::frame_version.
//
// An application-centered variant (EncryptionMediator/EncryptionImpl)
// exists as well: it weaves the same cipher through the stub/skeleton
// layer using a pre-shared secret parameter, demonstrating that the
// characteristic can live at either layer of Fig. 1.
//
// Both variants drive one EncryptionTransform streaming stage that
// enciphers the payload in place over arena-owned storage and prepends
// the [epoch:i64][mac:u64] header into pre-reserved headroom — the frame
// bytes are identical to the legacy seal/open copy path.
#pragma once

#include <map>
#include <vector>

#include "core/provider.hpp"
#include "core/transform.hpp"
#include "crypto/dh.hpp"
#include "crypto/xtea.hpp"

namespace maqs::characteristics {

const std::string& encryption_name();          // "Encryption"
const std::string& encryption_module_name();   // "encryption"

core::CharacteristicDescriptor encryption_descriptor();

/// Module-based (DH) provider.
core::CharacteristicProvider make_encryption_provider();

/// Application-centered pre-shared-key provider (same descriptor).
core::CharacteristicProvider make_encryption_psk_provider();

void register_encryption_module();

/// Performs a DH exchange with the server's encryption module for `epoch`
/// and arms both sides with the derived key ("on the fly change of
/// encryption keys", §3.2). Returns the installed epoch.
std::int64_t encryption_rotate_key(orb::Orb& orb,
                                   core::QosTransport& transport,
                                   const orb::ObjRef& target,
                                   std::int64_t epoch,
                                   std::uint64_t client_seed);

/// Where the encryption stage gets key material and the integrity flag.
/// The module implements this over its epoch->key map; the PSK variant
/// over one fixed key (epoch 0).
class EncryptionKeySource {
 public:
  virtual ~EncryptionKeySource() = default;

  /// Epoch stamped on outbound frames; throws QosError when no key is
  /// armed yet ("encryption: no key installed").
  virtual std::int64_t seal_epoch() const = 0;
  /// Key for a frame's epoch; throws QosError for unknown epochs.
  virtual const crypto::Key128& key_for(std::int64_t epoch) const = 0;
  virtual bool integrity() const = 0;
  /// Integrity setting the given epoch was sealed under; defaults to the
  /// current setting for sources that do not version it.
  virtual bool integrity_for(std::int64_t /*epoch*/) const {
    return integrity();
  }
};

/// Streaming cipher stage. Frame: [epoch:i64][mac:u64][ciphertext...];
/// mac is 0 when integrity is off. The nonce binds the keystream to the
/// request id (reply direction flips it) so identical plaintexts never
/// share keystream.
class EncryptionTransform final : public core::StreamingTransform {
 public:
  explicit EncryptionTransform(const EncryptionKeySource& source) noexcept
      : source_(&source) {}

  const std::string& label() const override;
  /// 16-byte [epoch][mac] header.
  std::size_t forward_overhead() const noexcept override { return 16; }
  void forward(core::ChainBuf& buf,
               const core::TransformContext& ctx) override;
  void reverse(core::ChainBuf& buf,
               const core::TransformContext& ctx) override;

 private:
  const EncryptionKeySource* source_;
};

class EncryptionModule final : public core::QosModule,
                               public EncryptionKeySource {
 public:
  EncryptionModule();

  void transform_request(orb::RequestMessage& req) override;
  void restore_request(orb::RequestMessage& req) override;
  void transform_reply(const orb::RequestMessage& req,
                       orb::ReplyMessage& rep) override;
  void restore_reply(orb::ReplyMessage& rep) override;

  /// Commands: dh_exchange(epoch, peer_public) -> own public;
  /// install_key(epoch, secret-bytes) [local side];
  /// set_epoch(epoch); set_integrity(bool); set_key_bits(128|64);
  /// current_epoch() -> epoch.
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override;

  /// Local (in-process) key management used by client_setup.
  void install_key(std::int64_t epoch, util::BytesView secret);
  void set_current_epoch(std::int64_t epoch);
  std::int64_t current_epoch() const noexcept { return current_epoch_; }

  /// Effective key strength for keys installed from now on: 64 masks the
  /// upper half of the derived 128-bit key. Both DH peers must agree
  /// before the next exchange (client_setup sends it ahead of rotating).
  void set_key_bits(std::int64_t bits);
  std::int64_t key_bits() const noexcept { return key_bits_; }

  // EncryptionKeySource
  std::int64_t seal_epoch() const override;
  const crypto::Key128& key_for(std::int64_t epoch) const override;
  bool integrity() const override { return integrity_; }

 private:
  std::map<std::int64_t, crypto::Key128> keys_;
  std::int64_t current_epoch_ = -1;  // -1 = no key, refuse traffic
  bool integrity_ = true;
  std::int64_t key_bits_ = 128;
  std::uint64_t dh_private_seed_ = 0x5EED;
  EncryptionTransform stage_;
  core::TransformChain chain_;
};

/// Pre-shared-key source for the application-centered variant: frames are
/// sealed as the agreement's version (0 for hand-built bindings, matching
/// the legacy fixed-epoch frames). Bindings of recent versions stay
/// retained so cross-version frames in flight across a renegotiation
/// still open under the key/integrity pair they were sealed with.
class PskKeySource final : public EncryptionKeySource {
 public:
  /// Binds `key`/`integrity` for agreement `version` and makes it the
  /// seal version. Rebinding the current version replaces it in place.
  void configure(const crypto::Key128& key, bool integrity,
                 std::int64_t version = 0);

  std::int64_t seal_epoch() const override;
  const crypto::Key128& key_for(std::int64_t epoch) const override;
  bool integrity() const override;
  bool integrity_for(std::int64_t epoch) const override;

 private:
  struct VersionedKey {
    std::int64_t version = 0;
    crypto::Key128 key{};
    bool integrity = true;
  };
  static constexpr std::size_t kMaxRetained = 4;

  const VersionedKey& binding_for(std::int64_t epoch) const;

  std::vector<VersionedKey> bindings_;  // ascending version, newest last
};

/// Application-centered variant: same cipher woven at the stub/skeleton
/// layer, keyed by the agreement's "psk" parameter.
class EncryptionMediator final : public core::Mediator {
 public:
  EncryptionMediator();
  void bind_agreement(const core::Agreement& agreement) override;
  void outbound(orb::RequestMessage& req, orb::ObjRef& target) override;
  void inbound(const orb::RequestMessage& req,
               orb::ReplyMessage& rep) override;
  /// inbound() derives the reply nonce from request_id alone (a retained
  /// header field), so the ciphertext body need not be kept.
  bool needs_request_payload() const override { return false; }
  core::StreamingTransform* streaming_transform() override { return &stage_; }

 private:
  PskKeySource source_;
  EncryptionTransform stage_;
  core::TransformChain chain_;
};

class EncryptionImpl final : public core::QosImpl {
 public:
  EncryptionImpl();
  void bind_agreement(const core::Agreement& agreement) override;
  util::Bytes transform_args(util::Bytes args,
                             orb::ServerContext& ctx) override;
  util::Bytes transform_result(util::Bytes result,
                               orb::ServerContext& ctx) override;
  core::StreamingTransform* streaming_transform() override { return &stage_; }

 private:
  PskKeySource source_;
  EncryptionTransform stage_;
  core::TransformChain chain_;
  std::uint64_t request_nonce_ = 0;
};

}  // namespace maqs::characteristics

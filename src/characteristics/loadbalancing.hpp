// Load-balancing QoS characteristic ("performance by load-balancing",
// paper §6).
//
// An application-centered mechanism (the paper lists load balancing as
// feasible purely at the application layer, §4): the mediator redirects
// each intercepted call to one of a set of replica endpoints according to
// a policy; the server-side QoS implementation measures load in its
// prolog/epilog bracket and exposes it through the QoS operation
// qos_load, which the least-loaded policy polls periodically — a
// mechanism-management op in the paper's taxonomy.
//
//   param string policy = "round-robin";   // round-robin | random | least-loaded
//   param long   probe_interval = 16;       // poll qos_load every N calls
//   mechanism double qos_load();
#pragma once

#include <vector>

#include "core/provider.hpp"
#include "util/rng.hpp"

namespace maqs::characteristics {

const std::string& loadbalancing_name();  // "LoadBalancing"

core::CharacteristicDescriptor loadbalancing_descriptor();
core::CharacteristicProvider make_loadbalancing_provider();

class LoadBalancingMediator final : public core::Mediator {
 public:
  LoadBalancingMediator();

  void bind_agreement(const core::Agreement& agreement) override;
  void outbound(orb::RequestMessage& req, orb::ObjRef& target) override;

  /// Replica set management (also reachable via the "replicas" agreement
  /// parameter: ';'-joined stringified IORs).
  void set_replicas(std::vector<orb::ObjRef> replicas);
  const std::vector<orb::ObjRef>& replicas() const noexcept {
    return replicas_;
  }

  /// Calls routed to each replica index so far (distribution checks).
  const std::vector<std::uint64_t>& dispatch_counts() const noexcept {
    return counts_;
  }

  /// The ORB used for qos_load probes (least-loaded policy).
  void attach_orb(orb::Orb* orb) noexcept { orb_ = orb; }

 private:
  std::size_t pick();
  void probe_loads();

  std::string policy_ = "round-robin";
  std::int64_t probe_interval_ = 16;
  std::vector<orb::ObjRef> replicas_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> loads_;
  std::size_t next_ = 0;
  std::uint64_t calls_ = 0;
  util::Rng rng_;
  orb::Orb* orb_ = nullptr;
};

/// Server side: load measurement in the prolog/epilog bracket.
class LoadReportingImpl final : public core::QosImpl {
 public:
  LoadReportingImpl();

  void prolog(orb::ServerContext& ctx) override;
  void epilog(orb::ServerContext& ctx) override;
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext& ctx) override;

  /// Exponentially decayed request counter (the "load" figure).
  double load() const noexcept { return load_; }
  std::uint64_t served() const noexcept { return served_; }

  /// Extra synthetic load added externally (benchmarks model busy hosts).
  void add_synthetic_load(double load) { load_ += load; }

 private:
  double load_ = 0;
  std::uint64_t served_ = 0;
  int in_flight_ = 0;
};

}  // namespace maqs::characteristics

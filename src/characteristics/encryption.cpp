#include "characteristics/encryption.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "crypto/mac.hpp"
#include "orb/dii.hpp"
#include "util/rng.hpp"

namespace maqs::characteristics {

namespace {

std::uint64_t key_fingerprint(const crypto::Key128& key) {
  return (static_cast<std::uint64_t>(key[0]) << 32 | key[1]) ^
         (static_cast<std::uint64_t>(key[2]) << 32 | key[3]);
}

/// Frame: [epoch:i64][mac:u64][ciphertext...]. mac is 0 when integrity is
/// off. The nonce binds the keystream to the request id so identical
/// plaintexts never share keystream.
util::Bytes seal_frame(const crypto::Key128& key, std::int64_t epoch,
                       bool integrity, util::BytesView body,
                       std::uint64_t nonce) {
  const crypto::XteaCtr cipher(key, nonce);
  util::Bytes ciphertext = cipher.apply(body);
  cdr::Encoder enc;
  enc.write_i64(epoch);
  enc.write_u64(integrity
                    ? crypto::mac64(key_fingerprint(key), ciphertext)
                    : 0);
  enc.write_raw(ciphertext);
  return enc.take();
}

struct OpenedFrame {
  std::int64_t epoch;
  util::Bytes plaintext;
};

OpenedFrame open_frame(
    const std::function<const crypto::Key128&(std::int64_t)>& key_lookup,
    bool integrity, util::BytesView framed, std::uint64_t nonce) {
  cdr::Decoder dec(framed);
  const std::int64_t epoch = dec.read_i64();
  const std::uint64_t tag = dec.read_u64();
  util::Bytes ciphertext = dec.read_remaining();
  const crypto::Key128& key = key_lookup(epoch);
  if (integrity &&
      !crypto::mac_verify(key_fingerprint(key), ciphertext, tag)) {
    throw core::QosError("encryption: integrity check failed");
  }
  const crypto::XteaCtr cipher(key, nonce);
  return {epoch, cipher.apply(ciphertext)};
}

constexpr std::uint64_t kReplyNonceFlip = 0x8000000000000001ULL;

}  // namespace

const std::string& encryption_name() {
  static const std::string kName = "Encryption";
  return kName;
}

const std::string& encryption_module_name() {
  static const std::string kName = "encryption";
  return kName;
}

core::CharacteristicDescriptor encryption_descriptor() {
  return core::CharacteristicDescriptor(
      encryption_name(), core::QosCategory::kPrivacy,
      {
          core::ParamDesc{"integrity", cdr::TypeCode::boolean_tc(),
                          cdr::Any::from_bool(true), {}, {}},
          core::ParamDesc{"psk", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string(""), {}, {}},
      },
      {
          core::QosOpDesc{"qos_cipher_info", core::QosOpKind::kMechanism},
      });
}

// ---- module (DH) ----

EncryptionModule::EncryptionModule()
    : core::QosModule(encryption_module_name()) {}

const crypto::Key128& EncryptionModule::key_for(std::int64_t epoch) const {
  auto it = keys_.find(epoch);
  if (it == keys_.end()) {
    throw core::QosError("encryption: no key for epoch " +
                         std::to_string(epoch));
  }
  return it->second;
}

util::Bytes EncryptionModule::seal(util::BytesView body,
                                   std::uint64_t nonce) const {
  if (current_epoch_ < 0) {
    throw core::QosError("encryption: no key installed");
  }
  return seal_frame(key_for(current_epoch_), current_epoch_, integrity_,
                    body, nonce);
}

util::Bytes EncryptionModule::open(util::BytesView framed,
                                   std::uint64_t nonce) const {
  return open_frame(
             [this](std::int64_t epoch) -> const crypto::Key128& {
               return key_for(epoch);
             },
             integrity_, framed, nonce)
      .plaintext;
}

void EncryptionModule::transform_request(orb::RequestMessage& req) {
  req.body = seal(req.body, req.request_id);
}

void EncryptionModule::restore_request(orb::RequestMessage& req) {
  req.body = open(req.body, req.request_id);
}

void EncryptionModule::transform_reply(const orb::RequestMessage& req,
                                       orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  rep.body = seal(rep.body, req.request_id ^ kReplyNonceFlip);
}

void EncryptionModule::restore_reply(orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  rep.body = open(rep.body, rep.request_id ^ kReplyNonceFlip);
}

void EncryptionModule::install_key(std::int64_t epoch,
                                   util::BytesView secret) {
  keys_[epoch] = crypto::derive_key(secret);
  if (epoch > current_epoch_) current_epoch_ = epoch;
}

void EncryptionModule::set_current_epoch(std::int64_t epoch) {
  key_for(epoch);  // must exist
  current_epoch_ = epoch;
}

cdr::Any EncryptionModule::command(const std::string& op,
                                   const std::vector<cdr::Any>& args) {
  if (op == "dh_exchange") {
    if (args.size() < 2) {
      throw core::QosError("encryption: dh_exchange(epoch, peer_public)");
    }
    const std::int64_t epoch = args[0].as_integer();
    const auto peer_public =
        static_cast<std::uint64_t>(args[1].as_longlong());
    // Private exponent drawn from the module's seed, fresh per epoch.
    util::Rng rng(dh_private_seed_ ^ static_cast<std::uint64_t>(epoch));
    const crypto::DhGroup& group = crypto::default_group();
    crypto::DhParty party(group, 2 + rng.next_below(group.p - 4));
    install_key(epoch, party.shared_secret_bytes(peer_public));
    return cdr::Any::from_longlong(
        static_cast<std::int64_t>(party.public_value()));
  }
  if (op == "set_epoch") {
    if (args.empty()) throw core::QosError("encryption: set_epoch(epoch)");
    set_current_epoch(args[0].as_integer());
    return cdr::Any::make_void();
  }
  if (op == "set_integrity") {
    if (args.empty()) {
      throw core::QosError("encryption: set_integrity(bool)");
    }
    integrity_ = args[0].as_bool();
    return cdr::Any::make_void();
  }
  if (op == "current_epoch") {
    return cdr::Any::from_longlong(current_epoch_);
  }
  return core::QosModule::command(op, args);
}

void register_encryption_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(encryption_module_name())) {
    registry.register_factory(encryption_module_name(), [] {
      return std::make_unique<EncryptionModule>();
    });
  }
}

std::int64_t encryption_rotate_key(orb::Orb& orb,
                                   core::QosTransport& transport,
                                   const orb::ObjRef& target,
                                   std::int64_t epoch,
                                   std::uint64_t client_seed) {
  register_encryption_module();
  auto& module = dynamic_cast<EncryptionModule&>(
      transport.load_module(encryption_module_name()));
  util::Rng rng(client_seed ^ static_cast<std::uint64_t>(epoch));
  const crypto::DhGroup& group = crypto::default_group();
  crypto::DhParty party(group, 2 + rng.next_below(group.p - 4));
  // QoS-to-QoS: module command over the plain path (Fig. 3 dual use).
  const cdr::Any server_public = orb::send_command(
      orb, target.endpoint, encryption_module_name(), "dh_exchange",
      {cdr::Any::from_longlong(epoch),
       cdr::Any::from_longlong(
           static_cast<std::int64_t>(party.public_value()))});
  module.install_key(
      epoch, party.shared_secret_bytes(
                 static_cast<std::uint64_t>(server_public.as_longlong())));
  module.set_current_epoch(epoch);
  return epoch;
}

core::CharacteristicProvider make_encryption_provider() {
  // Any side holding the provider may have to load the module.
  register_encryption_module();
  core::CharacteristicProvider provider;
  provider.descriptor = encryption_descriptor();
  provider.module = encryption_module_name();
  provider.client_setup = [](const core::Agreement& agreement,
                             const orb::ObjRef& target, orb::Orb& orb,
                             core::QosTransport& transport) {
    register_encryption_module();
    const bool integrity = agreement.bool_param("integrity");
    transport.load_module(encryption_module_name())
        .command("set_integrity", {cdr::Any::from_bool(integrity)});
    orb::send_command(orb, target.endpoint, encryption_module_name(),
                      "set_integrity", {cdr::Any::from_bool(integrity)});
    // Initial key: epoch 1, client seed derived from the agreement id so
    // distinct agreements use distinct exponents.
    encryption_rotate_key(orb, transport, target, 1,
                          0xC11E27ULL ^ agreement.id);
  };
  provider.resource_demand = [](const std::map<std::string, cdr::Any>&) {
    return core::ResourceDemand{{"cpu", 8.0}};
  };
  return provider;
}

// ---- application-centered PSK variant ----

EncryptionMediator::EncryptionMediator()
    : core::Mediator(encryption_name()) {}

void EncryptionMediator::bind_agreement(const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  key_ = crypto::derive_key(util::to_bytes(agreement.string_param("psk")));
}

void EncryptionMediator::outbound(orb::RequestMessage& req,
                                  orb::ObjRef& target) {
  (void)target;
  req.body = seal_frame(key_, 0, agreement().bool_param("integrity"),
                        req.body, req.request_id);
}

void EncryptionMediator::inbound(const orb::RequestMessage& req,
                                 orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  rep.body =
      open_frame([this](std::int64_t) -> const crypto::Key128& {
                   return key_;
                 },
                 agreement().bool_param("integrity"), rep.body,
                 req.request_id ^ kReplyNonceFlip)
          .plaintext;
}

EncryptionImpl::EncryptionImpl() : core::QosImpl(encryption_name()) {}

void EncryptionImpl::bind_agreement(const core::Agreement& agreement) {
  core::QosImpl::bind_agreement(agreement);
  key_ = crypto::derive_key(util::to_bytes(agreement.string_param("psk")));
}

util::Bytes EncryptionImpl::transform_args(util::Bytes args,
                                           orb::ServerContext& ctx) {
  request_nonce_ = ctx.request().request_id;
  return open_frame([this](std::int64_t) -> const crypto::Key128& {
                      return key_;
                    },
                    agreement().bool_param("integrity"), args,
                    request_nonce_)
      .plaintext;
}

util::Bytes EncryptionImpl::transform_result(util::Bytes result,
                                             orb::ServerContext& ctx) {
  (void)ctx;
  return seal_frame(key_, 0, agreement().bool_param("integrity"), result,
                    request_nonce_ ^ kReplyNonceFlip);
}

core::CharacteristicProvider make_encryption_psk_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = encryption_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb&,
                              core::QosTransport&) {
    return std::make_shared<EncryptionMediator>();
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<EncryptionImpl>();
  };
  provider.resource_demand = [](const std::map<std::string, cdr::Any>&) {
    return core::ResourceDemand{{"cpu", 8.0}};
  };
  return provider;
}

}  // namespace maqs::characteristics

#include "characteristics/encryption.hpp"

#include <algorithm>
#include <cstring>

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "crypto/mac.hpp"
#include "orb/dii.hpp"
#include "util/rng.hpp"

namespace maqs::characteristics {

namespace {

std::uint64_t key_fingerprint(const crypto::Key128& key) {
  return (static_cast<std::uint64_t>(key[0]) << 32 | key[1]) ^
         (static_cast<std::uint64_t>(key[2]) << 32 | key[3]);
}

void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int b = 0; b < 8; ++b) {
    p[b] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

constexpr std::uint64_t kReplyNonceFlip = 0x8000000000000001ULL;

std::uint64_t frame_nonce(const core::TransformContext& ctx) noexcept {
  return ctx.reply ? ctx.request_id ^ kReplyNonceFlip : ctx.request_id;
}

/// key_bits 64 keeps the XTEA frame format but masks the upper half of
/// the derived key — the degraded point trades key strength for cheaper
/// key management, not a different cipher.
crypto::Key128 masked_key(crypto::Key128 key, std::int64_t key_bits) {
  if (key_bits <= 64) {
    key[2] = 0;
    key[3] = 0;
  }
  return key;
}

core::ResourceDemand encryption_demand(
    const std::map<std::string, cdr::Any>& params) {
  std::int64_t bits = 128;
  if (auto it = params.find("key_bits"); it != params.end()) {
    bits = it->second.as_integer();
  }
  bool integrity = true;
  if (auto it = params.find("integrity"); it != params.end()) {
    integrity = it->second.as_bool();
  }
  core::ResourceDemand demand;
  demand["cpu"] = static_cast<double>(bits) / 16.0 + (integrity ? 2.0 : 0.0);
  return demand;
}

}  // namespace

const std::string& encryption_name() {
  static const std::string kName = "Encryption";
  return kName;
}

const std::string& encryption_module_name() {
  static const std::string kName = "encryption";
  return kName;
}

core::CharacteristicDescriptor encryption_descriptor() {
  return core::CharacteristicDescriptor(
      encryption_name(), core::QosCategory::kPrivacy,
      {
          core::ParamDesc{"psk", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string(""), {}, {}},
      },
      {
          core::DimensionDesc{"key_bits",
                              {cdr::Any::from_long(128),
                               cdr::Any::from_long(64)},
                              1},
          core::DimensionDesc{"integrity",
                              {cdr::Any::from_bool(true),
                               cdr::Any::from_bool(false)},
                              2},
      },
      {
          core::QosOpDesc{"qos_cipher_info", core::QosOpKind::kMechanism},
      });
}

// ---- streaming stage ----

const std::string& EncryptionTransform::label() const {
  return encryption_name();
}

void EncryptionTransform::forward(core::ChainBuf& buf,
                                  const core::TransformContext& ctx) {
  const std::uint64_t nonce = frame_nonce(ctx);
  const std::int64_t epoch = source_->seal_epoch();
  const crypto::Key128& key = source_->key_for(epoch);
  if (buf.headroom() < 16) {
    // First stage over a borrowed body: move the payload into an arena
    // region once, with room for this header and all later ones.
    const std::size_t reserve = buf.reserve_front();
    const std::size_t n = buf.size();
    std::span<std::uint8_t> region = buf.arena().allocate(reserve + 16 + n);
    if (n != 0) {
      std::memcpy(region.data() + reserve + 16, buf.view().data(), n);
    }
    buf.adopt(region, reserve + 16, n);
  }
  crypto::XteaCtr(key, nonce).apply_in_place(buf.mutable_span());
  const std::uint64_t tag = source_->integrity_for(epoch)
                                ? crypto::mac64(key_fingerprint(key),
                                                buf.view())
                                : 0;
  // [epoch:i64 LE][mac:u64 LE] — byte-identical to the legacy
  // cdr::Encoder-built frame header.
  std::uint8_t* hdr = buf.prepend(16);
  store_le64(hdr, static_cast<std::uint64_t>(epoch));
  store_le64(hdr + 8, tag);
}

void EncryptionTransform::reverse(core::ChainBuf& buf,
                                  const core::TransformContext& ctx) {
  const std::uint64_t nonce = frame_nonce(ctx);
  // Decode via cdr for error parity with the legacy open path on
  // truncated frames.
  cdr::Decoder dec(buf.view());
  const std::int64_t epoch = dec.read_i64();
  const std::uint64_t tag = dec.read_u64();
  buf.drop_front(16);
  const crypto::Key128& key = source_->key_for(epoch);
  if (source_->integrity_for(epoch) &&
      !crypto::mac_verify(key_fingerprint(key), buf.view(), tag)) {
    throw core::QosError("encryption: integrity check failed");
  }
  crypto::XteaCtr(key, nonce).apply_in_place(buf.mutable_span());
  // Tell downstream reverse stages (the compression codec) which
  // agreement version sealed this frame.
  ctx.frame_version = epoch;
}

// ---- module (DH) ----

EncryptionModule::EncryptionModule()
    : core::QosModule(encryption_module_name()), stage_(*this) {
  chain_.add(&stage_);
}

std::int64_t EncryptionModule::seal_epoch() const {
  if (current_epoch_ < 0) {
    throw core::QosError("encryption: no key installed");
  }
  return current_epoch_;
}

const crypto::Key128& EncryptionModule::key_for(std::int64_t epoch) const {
  auto it = keys_.find(epoch);
  if (it == keys_.end()) {
    throw core::QosError("encryption: no key for epoch " +
                         std::to_string(epoch));
  }
  return it->second;
}

void EncryptionModule::transform_request(orb::RequestMessage& req) {
  chain_.run_forward(req.body, {req.request_id, false});
}

void EncryptionModule::restore_request(orb::RequestMessage& req) {
  chain_.run_reverse(req.body, {req.request_id, false});
}

void EncryptionModule::transform_reply(const orb::RequestMessage& req,
                                       orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  chain_.run_forward(rep.body, {req.request_id, true});
}

void EncryptionModule::restore_reply(orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  chain_.run_reverse(rep.body, {rep.request_id, true});
}

void EncryptionModule::install_key(std::int64_t epoch,
                                   util::BytesView secret) {
  keys_[epoch] = masked_key(crypto::derive_key(secret), key_bits_);
  if (epoch > current_epoch_) current_epoch_ = epoch;
}

void EncryptionModule::set_key_bits(std::int64_t bits) {
  if (bits != 128 && bits != 64) {
    throw core::QosError("encryption: key_bits must be 128 or 64");
  }
  key_bits_ = bits;
}

void EncryptionModule::set_current_epoch(std::int64_t epoch) {
  key_for(epoch);  // must exist
  current_epoch_ = epoch;
}

cdr::Any EncryptionModule::command(const std::string& op,
                                   const std::vector<cdr::Any>& args) {
  if (op == "dh_exchange") {
    if (args.size() < 2) {
      throw core::QosError("encryption: dh_exchange(epoch, peer_public)");
    }
    const std::int64_t epoch = args[0].as_integer();
    const auto peer_public =
        static_cast<std::uint64_t>(args[1].as_longlong());
    // Private exponent drawn from the module's seed, fresh per epoch.
    util::Rng rng(dh_private_seed_ ^ static_cast<std::uint64_t>(epoch));
    const crypto::DhGroup& group = crypto::default_group();
    crypto::DhParty party(group, 2 + rng.next_below(group.p - 4));
    install_key(epoch, party.shared_secret_bytes(peer_public));
    return cdr::Any::from_longlong(
        static_cast<std::int64_t>(party.public_value()));
  }
  if (op == "set_epoch") {
    if (args.empty()) throw core::QosError("encryption: set_epoch(epoch)");
    set_current_epoch(args[0].as_integer());
    return cdr::Any::make_void();
  }
  if (op == "set_integrity") {
    if (args.empty()) {
      throw core::QosError("encryption: set_integrity(bool)");
    }
    integrity_ = args[0].as_bool();
    return cdr::Any::make_void();
  }
  if (op == "set_key_bits") {
    if (args.empty()) {
      throw core::QosError("encryption: set_key_bits(128|64)");
    }
    set_key_bits(args[0].as_integer());
    return cdr::Any::make_void();
  }
  if (op == "current_epoch") {
    return cdr::Any::from_longlong(current_epoch_);
  }
  return core::QosModule::command(op, args);
}

void register_encryption_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(encryption_module_name())) {
    registry.register_factory(encryption_module_name(), [] {
      return std::make_unique<EncryptionModule>();
    });
  }
}

std::int64_t encryption_rotate_key(orb::Orb& orb,
                                   core::QosTransport& transport,
                                   const orb::ObjRef& target,
                                   std::int64_t epoch,
                                   std::uint64_t client_seed) {
  register_encryption_module();
  auto& module = dynamic_cast<EncryptionModule&>(
      transport.load_module(encryption_module_name()));
  util::Rng rng(client_seed ^ static_cast<std::uint64_t>(epoch));
  const crypto::DhGroup& group = crypto::default_group();
  crypto::DhParty party(group, 2 + rng.next_below(group.p - 4));
  // QoS-to-QoS: module command over the plain path (Fig. 3 dual use).
  const cdr::Any server_public = orb::send_command(
      orb, target.endpoint, encryption_module_name(), "dh_exchange",
      {cdr::Any::from_longlong(epoch),
       cdr::Any::from_longlong(
           static_cast<std::int64_t>(party.public_value()))});
  module.install_key(
      epoch, party.shared_secret_bytes(
                 static_cast<std::uint64_t>(server_public.as_longlong())));
  module.set_current_epoch(epoch);
  return epoch;
}

core::CharacteristicProvider make_encryption_provider() {
  // Any side holding the provider may have to load the module.
  register_encryption_module();
  core::CharacteristicProvider provider;
  provider.descriptor = encryption_descriptor();
  provider.module = encryption_module_name();
  provider.client_setup = [](const core::Agreement& agreement,
                             const orb::ObjRef& target, orb::Orb& orb,
                             core::QosTransport& transport) {
    register_encryption_module();
    const bool integrity = agreement.bool_param_or("integrity", true);
    const std::int64_t key_bits = agreement.int_param_or("key_bits", 128);
    auto& module = transport.load_module(encryption_module_name());
    module.command("set_integrity", {cdr::Any::from_bool(integrity)});
    orb::send_command(orb, target.endpoint, encryption_module_name(),
                      "set_integrity", {cdr::Any::from_bool(integrity)});
    // Both peers must mask the derived key the same way, so key_bits
    // travels before the exchange that installs the next key.
    module.command("set_key_bits", {cdr::Any::from_longlong(key_bits)});
    orb::send_command(orb, target.endpoint, encryption_module_name(),
                      "set_key_bits", {cdr::Any::from_longlong(key_bits)});
    // Key epoch = agreement version (min 1: the first negotiation), so a
    // renegotiated cipher change is an ordinary epoch rotation and
    // cross-version frames stay decodable. Client seed derived from the
    // agreement id so distinct agreements use distinct exponents.
    encryption_rotate_key(orb, transport, target,
                          std::max<std::int64_t>(1, agreement.version()),
                          0xC11E27ULL ^ agreement.id);
  };
  provider.resource_demand = encryption_demand;
  return provider;
}

// ---- application-centered PSK variant ----

void PskKeySource::configure(const crypto::Key128& key, bool integrity,
                             std::int64_t version) {
  if (!bindings_.empty() && bindings_.back().version == version) {
    bindings_.back() = VersionedKey{version, key, integrity};
    return;
  }
  bindings_.push_back(VersionedKey{version, key, integrity});
  if (bindings_.size() > kMaxRetained) {
    bindings_.erase(bindings_.begin());
  }
}

const PskKeySource::VersionedKey& PskKeySource::binding_for(
    std::int64_t epoch) const {
  for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
    if (it->version == epoch) return *it;
  }
  throw core::QosError("encryption: no key for epoch " +
                       std::to_string(epoch));
}

std::int64_t PskKeySource::seal_epoch() const {
  if (bindings_.empty()) {
    throw core::QosError("encryption: no key installed");
  }
  return bindings_.back().version;
}

const crypto::Key128& PskKeySource::key_for(std::int64_t epoch) const {
  return binding_for(epoch).key;
}

bool PskKeySource::integrity() const {
  return bindings_.empty() || bindings_.back().integrity;
}

bool PskKeySource::integrity_for(std::int64_t epoch) const {
  return binding_for(epoch).integrity;
}

namespace {

/// Key/integrity/version as one PSK binding from an agreement's point in
/// the capability lattice. `version` is the frame epoch to seal under:
/// the woven channel version when the stage shares a wire channel with
/// other characteristics, else the agreement's own version.
void configure_psk(PskKeySource& source, const core::Agreement& agreement,
                   std::int64_t version) {
  source.configure(
      masked_key(
          crypto::derive_key(
              util::to_bytes(agreement.string_param_or("psk", ""))),
          agreement.int_param_or("key_bits", 128)),
      agreement.bool_param_or("integrity", true), version);
}

}  // namespace

EncryptionMediator::EncryptionMediator()
    : core::Mediator(encryption_name()), stage_(source_) {
  chain_.add(&stage_);
}

void EncryptionMediator::bind_agreement(const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  configure_psk(source_, agreement, effective_version(agreement));
}

void EncryptionMediator::outbound(orb::RequestMessage& req,
                                  orb::ObjRef& target) {
  (void)target;
  chain_.run_forward(req.body, {req.request_id, false});
}

void EncryptionMediator::inbound(const orb::RequestMessage& req,
                                 orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  chain_.run_reverse(rep.body, {req.request_id, true});
}

EncryptionImpl::EncryptionImpl()
    : core::QosImpl(encryption_name()), stage_(source_) {
  chain_.add(&stage_);
}

void EncryptionImpl::bind_agreement(const core::Agreement& agreement) {
  core::QosImpl::bind_agreement(agreement);
  configure_psk(source_, agreement, effective_version(agreement));
}

util::Bytes EncryptionImpl::transform_args(util::Bytes args,
                                           orb::ServerContext& ctx) {
  request_nonce_ = ctx.request().request_id;
  chain_.run_reverse(args, {request_nonce_, false});
  return args;
}

util::Bytes EncryptionImpl::transform_result(util::Bytes result,
                                             orb::ServerContext& ctx) {
  (void)ctx;
  chain_.run_forward(result, {request_nonce_, true});
  return result;
}

core::CharacteristicProvider make_encryption_psk_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = encryption_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb&,
                              core::QosTransport&) {
    return std::make_shared<EncryptionMediator>();
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<EncryptionImpl>();
  };
  provider.resource_demand = encryption_demand;
  return provider;
}

}  // namespace maqs::characteristics

// Actuality-of-data QoS characteristic ("actuality of data", paper §6).
//
// A client-centered mechanism: the mediator answers reads from a local
// cache as long as the cached value is younger than the negotiated
// freshness bound; the server-side QoS implementation stamps every reply
// with the server's timestamp in its epilog (reply service context
// "qos.timestamp"), so staleness is measured against server time, not
// client receipt time. Writes (non-cacheable operations) invalidate the
// whole cache for the object.
//
//   dimension string freshness = { "tight", "normal", "loose" } degrade 0;
//   param long max_age_ms = 100;        // freshness bound at "tight"
//   param string cacheable_ops = "";    // ','-separated read operations
//   mechanism long qos_cache_hits();
//
// The freshness dimension scales the negotiated bound: "tight" serves
// max_age_ms as agreed, "normal" 4x and "loose" 16x. Degrading relaxes
// actuality — more cache hits, fewer server round trips — which is how
// this characteristic gives resources back under pressure.
#pragma once

#include <map>
#include <set>

#include "core/provider.hpp"

namespace maqs::characteristics {

const std::string& actuality_name();  // "Actuality"

core::CharacteristicDescriptor actuality_descriptor();
core::CharacteristicProvider make_actuality_provider();

/// Reply service-context key carrying the server timestamp (ns, i64).
const std::string& actuality_timestamp_key();

/// Multiplier the freshness dimension applies to max_age_ms
/// ("tight" 1, "normal" 4, "loose" 16).
std::int64_t freshness_scale(const std::string& freshness);

class ActualityMediator final : public core::Mediator {
 public:
  /// Needs the clock to judge freshness.
  explicit ActualityMediator(sim::EventLoop& loop);

  void bind_agreement(const core::Agreement& agreement) override;
  std::optional<orb::ReplyMessage> try_local(
      const orb::RequestMessage& req, const orb::ObjRef& target) override;
  void inbound(const orb::RequestMessage& req,
               orb::ReplyMessage& rep) override;
  cdr::Any qos_operation(const std::string& op,
                         const std::vector<cdr::Any>& args) override;

  std::uint64_t cache_hits() const noexcept { return hits_; }
  std::uint64_t cache_misses() const noexcept { return misses_; }
  /// Drops all cached entries.
  void invalidate() { cache_.clear(); }

  /// Observed staleness (ns) of the last cache hit.
  sim::Duration last_staleness() const noexcept { return last_staleness_; }

 private:
  struct CacheEntry {
    orb::ReplyMessage reply;
    sim::TimePoint server_timestamp = 0;
  };
  bool cacheable(const std::string& operation) const;
  static std::string cache_key(const orb::RequestMessage& req);

  sim::EventLoop& loop_;
  sim::Duration max_age_ = 0;
  std::set<std::string> cacheable_ops_;
  std::map<std::string, CacheEntry> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  sim::Duration last_staleness_ = 0;
};

/// Server side: timestamps every reply in the epilog.
class ActualityImpl final : public core::QosImpl {
 public:
  explicit ActualityImpl(sim::EventLoop& loop);

  void epilog(orb::ServerContext& ctx) override;
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  sim::EventLoop& loop_;
  std::uint64_t stamped_ = 0;
};

}  // namespace maqs::characteristics

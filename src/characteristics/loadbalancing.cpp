#include "characteristics/loadbalancing.hpp"

#include "orb/dii.hpp"
#include "util/strings.hpp"

namespace maqs::characteristics {

const std::string& loadbalancing_name() {
  static const std::string kName = "LoadBalancing";
  return kName;
}

core::CharacteristicDescriptor loadbalancing_descriptor() {
  return core::CharacteristicDescriptor(
      loadbalancing_name(), core::QosCategory::kPerformance,
      {
          core::ParamDesc{"policy", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string("round-robin"), {}, {}},
          core::ParamDesc{"probe_interval", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(16), 1, 1 << 16},
          core::ParamDesc{"replicas", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string(""), {}, {}},
      },
      {
          core::QosOpDesc{"qos_load", core::QosOpKind::kMechanism},
      });
}

// ---- mediator ----

LoadBalancingMediator::LoadBalancingMediator()
    : core::Mediator(loadbalancing_name()), rng_(0xB41A) {}

void LoadBalancingMediator::bind_agreement(
    const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  policy_ = agreement.string_param("policy");
  if (policy_ != "round-robin" && policy_ != "random" &&
      policy_ != "least-loaded") {
    throw core::QosError("load balancing: unknown policy '" + policy_ + "'");
  }
  probe_interval_ = agreement.int_param("probe_interval");
  const std::string replica_iors = agreement.string_param("replicas");
  if (!replica_iors.empty()) {
    std::vector<orb::ObjRef> replicas;
    for (const std::string& ior : util::split(replica_iors, ';')) {
      if (!ior.empty()) replicas.push_back(orb::ObjRef::from_string(ior));
    }
    set_replicas(std::move(replicas));
  }
}

void LoadBalancingMediator::set_replicas(std::vector<orb::ObjRef> replicas) {
  replicas_ = std::move(replicas);
  counts_.assign(replicas_.size(), 0);
  loads_.assign(replicas_.size(), 0.0);
  next_ = 0;
}

std::size_t LoadBalancingMediator::pick() {
  if (policy_ == "random") {
    return static_cast<std::size_t>(rng_.next_below(replicas_.size()));
  }
  if (policy_ == "least-loaded") {
    std::size_t best = 0;
    for (std::size_t i = 1; i < loads_.size(); ++i) {
      if (loads_[i] < loads_[best]) best = i;
    }
    return best;
  }
  const std::size_t choice = next_;
  next_ = (next_ + 1) % replicas_.size();
  return choice;
}

void LoadBalancingMediator::probe_loads() {
  if (orb_ == nullptr) return;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    // qos_load is a QoS operation on the replica's QoS skeleton.
    orb::RequestMessage probe;
    probe.object_key = replicas_[i].object_key;
    probe.operation = "qos_load";
    try {
      orb::ReplyMessage rep =
          orb_->invoke_plain(replicas_[i].endpoint, std::move(probe));
      if (rep.status == orb::ReplyStatus::kOk) {
        cdr::Decoder dec(rep.body);
        loads_[i] = dec.read_f64();
      }
    } catch (const orb::TransportError&) {
      loads_[i] = 1e18;  // unreachable replicas effectively drop out
    }
  }
}

void LoadBalancingMediator::outbound(orb::RequestMessage& req,
                                     orb::ObjRef& target) {
  (void)req;
  if (replicas_.empty()) return;  // degenerate: keep the original target
  if (policy_ == "least-loaded" && (calls_ % static_cast<std::uint64_t>(
                                        probe_interval_)) == 0) {
    probe_loads();
  }
  ++calls_;
  const std::size_t choice = pick();
  ++counts_[choice];
  target = replicas_[choice];
  // Local estimate: routing a call there makes it busier until reprobed.
  if (policy_ == "least-loaded") loads_[choice] += 1.0;
}

// ---- server impl ----

LoadReportingImpl::LoadReportingImpl()
    : core::QosImpl(loadbalancing_name()) {}

void LoadReportingImpl::prolog(orb::ServerContext& ctx) {
  (void)ctx;
  ++in_flight_;
  // Exponential decay toward the recent request rate.
  load_ = load_ * 0.9 + 1.0;
}

void LoadReportingImpl::epilog(orb::ServerContext& ctx) {
  (void)ctx;
  --in_flight_;
  ++served_;
}

void LoadReportingImpl::dispatch_qos_op(const std::string& op,
                                        cdr::Decoder& args,
                                        cdr::Encoder& out,
                                        orb::ServerContext& ctx) {
  if (op == "qos_load") {
    args.expect_end();
    out.write_f64(load_);
    return;
  }
  core::QosImpl::dispatch_qos_op(op, args, out, ctx);
}

// ---- provider ----

core::CharacteristicProvider make_loadbalancing_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = loadbalancing_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb& orb,
                              core::QosTransport&) {
    auto mediator = std::make_shared<LoadBalancingMediator>();
    mediator->attach_orb(&orb);
    return mediator;
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<LoadReportingImpl>();
  };
  provider.resource_demand = [](const std::map<std::string, cdr::Any>&) {
    return core::ResourceDemand{{"cpu", 1.0}};
  };
  return provider;
}

}  // namespace maqs::characteristics

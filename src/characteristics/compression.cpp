#include "characteristics/compression.hpp"

#include "compress/lz77.hpp"
#include "orb/dii.hpp"

namespace maqs::characteristics {

namespace {

// Self-framing compressed payload: one marker octet (0 = raw, 1 =
// compressed) followed by the (possibly compressed) stream. Framing at the
// payload level keeps the two integration layers independent — mediator
// and module framing nest without coordination.
constexpr std::uint8_t kRaw = 0x00;
constexpr std::uint8_t kCompressed = 0x01;

util::Bytes frame(const compress::Codec& codec, util::BytesView payload,
                  std::int64_t min_size) {
  util::Bytes out;
  if (static_cast<std::int64_t>(payload.size()) < min_size) {
    out.reserve(payload.size() + 1);
    out.push_back(kRaw);
    util::append(out, payload);
    return out;
  }
  util::Bytes compressed = codec.compress(payload);
  if (compressed.size() >= payload.size()) {
    // Incompressible: ship raw (bounded worst case).
    out.reserve(payload.size() + 1);
    out.push_back(kRaw);
    util::append(out, payload);
    return out;
  }
  out.reserve(compressed.size() + 1);
  out.push_back(kCompressed);
  util::append(out, compressed);
  return out;
}

util::Bytes unframe(const compress::Codec& codec, util::BytesView framed) {
  if (framed.empty()) {
    throw compress::CodecError("compression: empty framed payload");
  }
  const util::BytesView payload = framed.subspan(1);
  if (framed[0] == kRaw) {
    return util::Bytes(payload.begin(), payload.end());
  }
  if (framed[0] == kCompressed) {
    return codec.decompress(payload);
  }
  throw compress::CodecError("compression: bad frame marker");
}

std::unique_ptr<compress::Codec> codec_for(const std::string& name,
                                           std::int64_t level) {
  if (name == "lz77") {
    return std::make_unique<compress::Lz77Codec>(static_cast<int>(level));
  }
  return compress::make_codec(name);
}

void configure_from(const core::Agreement& agreement,
                    std::unique_ptr<compress::Codec>& codec,
                    std::int64_t& min_size) {
  codec = codec_for(agreement.string_param("codec"),
                    agreement.int_param("level"));
  min_size = agreement.int_param("min_size");
}

}  // namespace

const std::string& compression_name() {
  static const std::string kName = "Compression";
  return kName;
}

const std::string& compression_module_name() {
  static const std::string kName = "compression";
  return kName;
}

core::CharacteristicDescriptor compression_descriptor() {
  return core::CharacteristicDescriptor(
      compression_name(), core::QosCategory::kBandwidth,
      {
          core::ParamDesc{"codec", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string("lz77"), {}, {}},
          core::ParamDesc{"min_size", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(64), 0, 1 << 20},
          core::ParamDesc{"level", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(32), 1, 128},
      },
      {
          core::QosOpDesc{"qos_compression_ratio",
                          core::QosOpKind::kMechanism},
      });
}

// ---- application-centered ----

CompressionMediator::CompressionMediator()
    : core::Mediator(compression_name()),
      codec_(std::make_unique<compress::Lz77Codec>()) {}

void CompressionMediator::bind_agreement(const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  configure_from(agreement, codec_, min_size_);
}

void CompressionMediator::outbound(orb::RequestMessage& req,
                                   orb::ObjRef& target) {
  (void)target;
  bytes_in_ += req.body.size();
  req.body = frame(*codec_, req.body, min_size_);
  bytes_out_ += req.body.size();
}

void CompressionMediator::inbound(const orb::RequestMessage& req,
                                  orb::ReplyMessage& rep) {
  (void)req;
  if (rep.status != orb::ReplyStatus::kOk) return;  // exceptions ship raw
  rep.body = unframe(*codec_, rep.body);
}

double CompressionMediator::compression_ratio() const {
  if (bytes_in_ == 0) return 1.0;
  return static_cast<double>(bytes_out_) / static_cast<double>(bytes_in_);
}

cdr::Any CompressionMediator::qos_operation(
    const std::string& op, const std::vector<cdr::Any>& args) {
  if (op == "qos_compression_ratio") {
    return cdr::Any::from_double(compression_ratio());
  }
  return core::Mediator::qos_operation(op, args);
}

CompressionImpl::CompressionImpl()
    : core::QosImpl(compression_name()),
      codec_(std::make_unique<compress::Lz77Codec>()) {}

void CompressionImpl::bind_agreement(const core::Agreement& agreement) {
  core::QosImpl::bind_agreement(agreement);
  configure_from(agreement, codec_, min_size_);
}

util::Bytes CompressionImpl::transform_args(util::Bytes args,
                                            orb::ServerContext& ctx) {
  (void)ctx;
  bytes_in_ += args.size();
  return unframe(*codec_, args);
}

util::Bytes CompressionImpl::transform_result(util::Bytes result,
                                              orb::ServerContext& ctx) {
  (void)ctx;
  util::Bytes framed = frame(*codec_, result, min_size_);
  bytes_out_ += framed.size();
  return framed;
}

void CompressionImpl::dispatch_qos_op(const std::string& op,
                                      cdr::Decoder& args, cdr::Encoder& out,
                                      orb::ServerContext& ctx) {
  if (op == "qos_compression_ratio") {
    args.expect_end();
    const double ratio =
        bytes_in_ == 0 ? 1.0
                       : static_cast<double>(bytes_out_) /
                             static_cast<double>(bytes_in_);
    out.write_f64(ratio);
    return;
  }
  core::QosImpl::dispatch_qos_op(op, args, out, ctx);
}

// ---- network-centered ----

CompressionModule::CompressionModule()
    : core::QosModule(compression_module_name()),
      codec_(std::make_unique<compress::Lz77Codec>()) {}

void CompressionModule::transform_request(orb::RequestMessage& req) {
  req.body = frame(*codec_, req.body, min_size_);
}

void CompressionModule::restore_request(orb::RequestMessage& req) {
  req.body = unframe(*codec_, req.body);
}

void CompressionModule::transform_reply(const orb::RequestMessage& req,
                                        orb::ReplyMessage& rep) {
  (void)req;
  if (rep.status != orb::ReplyStatus::kOk) return;
  rep.body = frame(*codec_, rep.body, min_size_);
}

void CompressionModule::restore_reply(orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  rep.body = unframe(*codec_, rep.body);
}

cdr::Any CompressionModule::command(const std::string& op,
                                    const std::vector<cdr::Any>& args) {
  if (op == "set_codec") {
    if (args.size() < 2) {
      throw core::QosError("compression module: set_codec(codec, level)");
    }
    codec_ = codec_for(args[0].as_string(), args[1].as_integer());
    return cdr::Any::make_void();
  }
  if (op == "set_min_size") {
    if (args.empty()) {
      throw core::QosError("compression module: set_min_size(n)");
    }
    min_size_ = args[0].as_integer();
    return cdr::Any::make_void();
  }
  if (op == "info") {
    return cdr::Any::from_string(codec_->name() + "/min=" +
                                 std::to_string(min_size_));
  }
  return core::QosModule::command(op, args);
}

void register_compression_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(compression_module_name())) {
    registry.register_factory(compression_module_name(), [] {
      return std::make_unique<CompressionModule>();
    });
  }
}

core::CharacteristicProvider make_compression_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = compression_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb&,
                              core::QosTransport&) {
    return std::make_shared<CompressionMediator>();
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<CompressionImpl>();
  };
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        core::ResourceDemand demand;
        demand["cpu"] = static_cast<double>(params.at("level").as_integer());
        return demand;
      };
  return provider;
}

core::CharacteristicProvider make_compression_module_provider() {
  // Any side holding the provider may have to load the module.
  register_compression_module();
  core::CharacteristicProvider provider;
  provider.descriptor = compression_descriptor();
  provider.module = compression_module_name();
  provider.client_setup = [](const core::Agreement& agreement,
                             const orb::ObjRef& target, orb::Orb& orb,
                             core::QosTransport& transport) {
    register_compression_module();
    const std::vector<cdr::Any> config{
        cdr::Any::from_string(agreement.string_param("codec")),
        cdr::Any::from_longlong(agreement.int_param("level"))};
    // Configure both ends of the relationship: the local module directly,
    // the server's via a module command over the wire (Fig. 3).
    transport.load_module(compression_module_name()).command("set_codec",
                                                             config);
    orb::send_command(orb, target.endpoint, compression_module_name(),
                      "set_codec", config);
    const std::vector<cdr::Any> min_size{
        cdr::Any::from_longlong(agreement.int_param("min_size"))};
    transport.find_module(compression_module_name())
        ->command("set_min_size", min_size);
    orb::send_command(orb, target.endpoint, compression_module_name(),
                      "set_min_size", min_size);
  };
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        core::ResourceDemand demand;
        demand["cpu"] = static_cast<double>(params.at("level").as_integer());
        return demand;
      };
  return provider;
}

}  // namespace maqs::characteristics

#include "characteristics/compression.hpp"

#include <cstring>

#include "compress/lz77.hpp"
#include "orb/dii.hpp"

namespace maqs::characteristics {

namespace {

// Self-framing compressed payload: one marker octet (0 = raw, 1 =
// compressed) followed by the (possibly compressed) stream. Framing at the
// payload level keeps the two integration layers independent — mediator
// and module framing nest without coordination.
constexpr std::uint8_t kRaw = 0x00;
constexpr std::uint8_t kCompressed = 0x01;

std::unique_ptr<compress::Codec> codec_for(const std::string& name,
                                           std::int64_t level) {
  if (name == "lz77") {
    return std::make_unique<compress::Lz77Codec>(static_cast<int>(level));
  }
  return compress::make_codec(name);
}

/// `version` is the frame epoch to bind the codec under: the woven
/// channel version when the stage shares a wire channel with other
/// characteristics, else the agreement's own version.
void configure_from(const core::Agreement& agreement,
                    CompressionTransform& stage, std::int64_t version) {
  stage.set_algorithm(agreement.string_param_or("algorithm", "lz77"),
                      agreement.int_param_or("level", 32), version);
  stage.set_min_size(agreement.int_param_or("min_size", 64));
}

/// Demand at one lattice point: heavier algorithms burn more cpu (probe
/// depth) and more of the server's per-frame processing bandwidth.
core::ResourceDemand compression_demand(
    const std::map<std::string, cdr::Any>& params) {
  const auto algorithm_at = params.find("algorithm");
  const std::string algorithm = algorithm_at != params.end()
                                    ? algorithm_at->second.as_string()
                                    : "lz77";
  const auto level_at = params.find("level");
  const double level =
      level_at != params.end()
          ? static_cast<double>(level_at->second.as_integer())
          : 32.0;
  core::ResourceDemand demand;
  if (algorithm == "none") {
    demand["cpu"] = 1.0;
    demand["bandwidth"] = 4.0;
  } else if (algorithm == "rle") {
    demand["cpu"] = std::min(level, 8.0);
    demand["bandwidth"] = 16.0;
  } else {
    demand["cpu"] = level;
    demand["bandwidth"] = 48.0;
  }
  return demand;
}

}  // namespace

const std::string& compression_name() {
  static const std::string kName = "Compression";
  return kName;
}

const std::string& compression_module_name() {
  static const std::string kName = "compression";
  return kName;
}

core::CharacteristicDescriptor compression_descriptor() {
  return core::CharacteristicDescriptor(
      compression_name(), core::QosCategory::kBandwidth,
      {
          core::ParamDesc{"min_size", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(64), 0, 1 << 20},
          core::ParamDesc{"level", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(32), 1, 128},
      },
      {
          core::DimensionDesc{"algorithm",
                              {cdr::Any::from_string("lz77"),
                               cdr::Any::from_string("rle"),
                               cdr::Any::from_string("none")},
                              0},
      },
      {
          core::QosOpDesc{"qos_compression_ratio",
                          core::QosOpKind::kMechanism},
      });
}

// ---- streaming stage ----

CompressionTransform::CompressionTransform() {
  bindings_.push_back(
      VersionedCodec{0, "lz77", std::make_shared<compress::Lz77Codec>()});
}

const std::string& CompressionTransform::label() const {
  return compression_name();
}

const compress::Codec& CompressionTransform::codec() const noexcept {
  return *current().codec;
}

const std::string& CompressionTransform::algorithm() const noexcept {
  return current().algorithm;
}

std::int64_t CompressionTransform::current_version() const noexcept {
  return current().version;
}

const CompressionTransform::VersionedCodec& CompressionTransform::binding_for(
    std::int64_t version) const noexcept {
  if (version >= 0) {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->version == version) return *it;
    }
  }
  return current();
}

void CompressionTransform::set_codec(std::unique_ptr<compress::Codec> codec) {
  if (codec == nullptr) {
    throw compress::CodecError("compression: null codec");
  }
  current().algorithm = codec->name();
  current().codec = std::move(codec);
}

void CompressionTransform::set_algorithm(const std::string& algorithm,
                                         std::int64_t level,
                                         std::int64_t version) {
  std::shared_ptr<compress::Codec> codec;
  if (algorithm == "none") {
    // Passthrough point: every frame ships raw. Keep the previous codec
    // object so compressed frames of older versions still decode.
    codec = current().codec;
  } else {
    codec = codec_for(algorithm, level);
  }
  if (version == current().version) {
    current().algorithm = algorithm;
    current().codec = std::move(codec);
    return;
  }
  bindings_.push_back(VersionedCodec{version, algorithm, std::move(codec)});
  if (bindings_.size() > kMaxRetained) {
    bindings_.erase(bindings_.begin());
  }
}

void CompressionTransform::forward(core::ChainBuf& buf,
                                   const core::TransformContext& ctx) {
  (void)ctx;
  const std::size_t n = buf.size();
  fwd_in_ += n;
  const std::size_t reserve = buf.reserve_front();

  auto ship_raw = [&] {
    std::span<std::uint8_t> region = buf.arena().allocate(reserve + 1 + n);
    region[reserve] = kRaw;
    if (n != 0) std::memcpy(region.data() + reserve + 1, buf.view().data(), n);
    buf.adopt(region, reserve, 1 + n);
  };

  if (current().algorithm == "none" ||
      static_cast<std::int64_t>(n) < min_size_) {
    ship_raw();
    fwd_out_ += buf.size();
    return;
  }
  compress::Codec* codec = current().codec.get();
  const std::size_t bound = codec->max_compressed_size(n);
  if (bound == 0) {
    // Codec without an output bound (or empty input): cold one-shot path.
    const util::Bytes compressed = codec->compress(buf.view());
    if (compressed.size() >= n) {
      ship_raw();
    } else {
      std::span<std::uint8_t> region =
          buf.arena().allocate(reserve + 1 + compressed.size());
      region[reserve] = kCompressed;
      std::memcpy(region.data() + reserve + 1, compressed.data(),
                  compressed.size());
      buf.adopt(region, reserve, 1 + compressed.size());
    }
    fwd_out_ += buf.size();
    return;
  }
  // Hot path: compress directly into the arena region behind the marker.
  // The region is sized to also hold the raw payload so the
  // incompressible fallback needs no second allocation.
  std::span<std::uint8_t> region =
      buf.arena().allocate(reserve + 1 + std::max(bound, n));
  const std::size_t written = codec->compress_into(
      buf.view(), {region.data() + reserve + 1, bound});
  if (written >= n) {
    // Incompressible: ship raw (bounded worst case), same decision as the
    // legacy frame() which compared compressed.size() >= payload.size().
    region[reserve] = kRaw;
    std::memcpy(region.data() + reserve + 1, buf.view().data(), n);
    buf.adopt(region, reserve, 1 + n);
  } else {
    region[reserve] = kCompressed;
    buf.adopt(region, reserve, 1 + written);
  }
  fwd_out_ += buf.size();
}

void CompressionTransform::reverse(core::ChainBuf& buf,
                                   const core::TransformContext& ctx) {
  rev_in_ += buf.size();
  if (buf.empty()) {
    throw compress::CodecError("compression: empty framed payload");
  }
  const std::uint8_t marker = buf.view()[0];
  if (marker == kRaw) {
    buf.drop_front(1);
  } else if (marker == kCompressed) {
    // Decode with the codec of the version the frame was sealed under
    // (published by the encryption stage); an agreed algorithm switch
    // must not corrupt frames already in flight.
    const VersionedCodec& binding = binding_for(ctx.frame_version);
    scratch_.clear();
    binding.codec->decompress_append(buf.view().subspan(1), scratch_);
    buf.adopt_bytes(scratch_);
  } else {
    throw compress::CodecError("compression: bad frame marker");
  }
  rev_out_ += buf.size();
}

// ---- application-centered ----

CompressionMediator::CompressionMediator()
    : core::Mediator(compression_name()) {
  chain_.add(&stage_);
}

void CompressionMediator::bind_agreement(const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  configure_from(agreement, stage_, effective_version(agreement));
}

void CompressionMediator::outbound(orb::RequestMessage& req,
                                   orb::ObjRef& target) {
  (void)target;
  chain_.run_forward(req.body, {req.request_id, false});
}

void CompressionMediator::inbound(const orb::RequestMessage& req,
                                  orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;  // exceptions ship raw
  chain_.run_reverse(rep.body, {req.request_id, true});
}

double CompressionMediator::compression_ratio() const {
  if (stage_.forward_bytes_in() == 0) return 1.0;
  return static_cast<double>(stage_.forward_bytes_out()) /
         static_cast<double>(stage_.forward_bytes_in());
}

cdr::Any CompressionMediator::qos_operation(
    const std::string& op, const std::vector<cdr::Any>& args) {
  if (op == "qos_compression_ratio") {
    return cdr::Any::from_double(compression_ratio());
  }
  return core::Mediator::qos_operation(op, args);
}

CompressionImpl::CompressionImpl() : core::QosImpl(compression_name()) {
  chain_.add(&stage_);
}

void CompressionImpl::bind_agreement(const core::Agreement& agreement) {
  core::QosImpl::bind_agreement(agreement);
  configure_from(agreement, stage_, effective_version(agreement));
}

util::Bytes CompressionImpl::transform_args(util::Bytes args,
                                            orb::ServerContext& ctx) {
  (void)ctx;
  chain_.run_reverse(args, {0, false});
  return args;
}

util::Bytes CompressionImpl::transform_result(util::Bytes result,
                                              orb::ServerContext& ctx) {
  (void)ctx;
  chain_.run_forward(result, {0, true});
  return result;
}

void CompressionImpl::dispatch_qos_op(const std::string& op,
                                      cdr::Decoder& args, cdr::Encoder& out,
                                      orb::ServerContext& ctx) {
  if (op == "qos_compression_ratio") {
    args.expect_end();
    // Server-side ratio: framed bytes in (args direction) vs framed bytes
    // out (result direction), matching the legacy counters.
    const double ratio =
        stage_.reverse_bytes_in() == 0
            ? 1.0
            : static_cast<double>(stage_.forward_bytes_out()) /
                  static_cast<double>(stage_.reverse_bytes_in());
    out.write_f64(ratio);
    return;
  }
  core::QosImpl::dispatch_qos_op(op, args, out, ctx);
}

// ---- network-centered ----

CompressionModule::CompressionModule()
    : core::QosModule(compression_module_name()) {
  chain_.add(&stage_);
}

void CompressionModule::transform_request(orb::RequestMessage& req) {
  chain_.run_forward(req.body, {req.request_id, false});
}

void CompressionModule::restore_request(orb::RequestMessage& req) {
  chain_.run_reverse(req.body, {req.request_id, false});
}

void CompressionModule::transform_reply(const orb::RequestMessage& req,
                                        orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  chain_.run_forward(rep.body, {req.request_id, true});
}

void CompressionModule::restore_reply(orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  chain_.run_reverse(rep.body, {rep.request_id, true});
}

cdr::Any CompressionModule::command(const std::string& op,
                                    const std::vector<cdr::Any>& args) {
  if (op == "set_codec") {
    // set_codec(algorithm, level[, version]) — "none" ships raw but keeps
    // the prior codec bound for decoding cross-version frames.
    if (args.size() < 2) {
      throw core::QosError(
          "compression module: set_codec(algorithm, level[, version])");
    }
    const std::int64_t version =
        args.size() > 2 ? args[2].as_integer() : stage_.current_version();
    stage_.set_algorithm(args[0].as_string(), args[1].as_integer(), version);
    return cdr::Any::make_void();
  }
  if (op == "set_min_size") {
    if (args.empty()) {
      throw core::QosError("compression module: set_min_size(n)");
    }
    stage_.set_min_size(args[0].as_integer());
    return cdr::Any::make_void();
  }
  if (op == "info") {
    return cdr::Any::from_string(stage_.algorithm() + "/min=" +
                                 std::to_string(stage_.min_size()));
  }
  return core::QosModule::command(op, args);
}

void register_compression_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(compression_module_name())) {
    registry.register_factory(compression_module_name(), [] {
      return std::make_unique<CompressionModule>();
    });
  }
}

core::CharacteristicProvider make_compression_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = compression_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb&,
                              core::QosTransport&) {
    return std::make_shared<CompressionMediator>();
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<CompressionImpl>();
  };
  provider.resource_demand = compression_demand;
  return provider;
}

core::CharacteristicProvider make_compression_module_provider() {
  // Any side holding the provider may have to load the module.
  register_compression_module();
  core::CharacteristicProvider provider;
  provider.descriptor = compression_descriptor();
  provider.module = compression_module_name();
  provider.client_setup = [](const core::Agreement& agreement,
                             const orb::ObjRef& target, orb::Orb& orb,
                             core::QosTransport& transport) {
    register_compression_module();
    const std::vector<cdr::Any> config{
        cdr::Any::from_string(agreement.string_param_or("algorithm", "lz77")),
        cdr::Any::from_longlong(agreement.int_param_or("level", 32)),
        cdr::Any::from_longlong(agreement.version())};
    // Configure both ends of the relationship: the local module directly,
    // the server's via a module command over the wire (Fig. 3).
    transport.load_module(compression_module_name()).command("set_codec",
                                                             config);
    orb::send_command(orb, target.endpoint, compression_module_name(),
                      "set_codec", config);
    const std::vector<cdr::Any> min_size{
        cdr::Any::from_longlong(agreement.int_param_or("min_size", 64))};
    transport.find_module(compression_module_name())
        ->command("set_min_size", min_size);
    orb::send_command(orb, target.endpoint, compression_module_name(),
                      "set_min_size", min_size);
  };
  provider.resource_demand = compression_demand;
  return provider;
}

}  // namespace maqs::characteristics

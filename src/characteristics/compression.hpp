// Compression QoS characteristic ("compression for channels with small
// bandwidth", paper §6).
//
// Implemented at BOTH integration layers of Fig. 1, which is exactly what
// experiment F1 compares:
//   - application-centered: CompressionMediator (client stub delegate)
//     compresses the marshaled argument stream; CompressionImpl (server
//     QoS implementation) restores it via the QoS skeleton's aspect
//     transforms and compresses results on the way out.
//   - network-centered: CompressionModule, a QoS transport module that
//     rewrites message bodies below the ORB's invocation layer.
//
// All three run the same CompressionTransform streaming stage: the codec
// emits straight into an arena region behind the frame marker, so the hot
// path never materializes an intermediate vector (see core/transform.hpp).
//
// QIDL (conceptually):
//   qos characteristic Compression {
//     dimension string algorithm = { "lz77", "rle", "none" } degrade 0;
//     param long   min_size = 64;     // skip tiny payloads
//     param long   level = 32;        // LZ77 probe depth
//     mechanism double compression_ratio();
//   };
//
// The algorithm is a negotiated capability dimension: agreements pin one
// point in the {lz77, rle, none} preference lattice and renegotiations
// walk it down under pressure. The transform keeps the codec of recent
// agreement versions bound, keyed by the frame version the encryption
// stage publishes via TransformContext::frame_version, so an in-flight
// frame sealed under the previous version still decodes after an agreed
// algorithm switch.
#pragma once

#include <memory>

#include "compress/codec.hpp"
#include "core/provider.hpp"
#include "core/transform.hpp"

namespace maqs::characteristics {

/// Characteristic name: "Compression".
const std::string& compression_name();
/// Transport module name: "compression".
const std::string& compression_module_name();

/// Descriptor as qidlc would emit it.
core::CharacteristicDescriptor compression_descriptor();

/// Full provider wired for the application-centered implementation.
/// Registered into a ProviderRegistry on both client and server sides.
core::CharacteristicProvider make_compression_provider();

/// Same characteristic but delegating the mechanism to the transport
/// module (network-centered; for F1 and the hierarchy story of §4).
core::CharacteristicProvider make_compression_module_provider();

/// Registers the "compression" module factory (idempotent).
void register_compression_module();

/// The streaming compression stage shared by every integration layer.
///
/// Frame (wire-identical to the legacy copy path): one marker octet
/// (0 = raw, 1 = compressed) followed by the stream. forward() compresses
/// straight into an arena region sized by the codec's output bound and
/// ships raw when that would not shrink the payload; reverse() drops the
/// marker in place for raw frames and decompresses into a recycled
/// stage-owned scratch buffer otherwise.
class CompressionTransform final : public core::StreamingTransform {
 public:
  CompressionTransform();

  const std::string& label() const override;
  std::size_t forward_overhead() const noexcept override { return 1; }
  void forward(core::ChainBuf& buf,
               const core::TransformContext& ctx) override;
  void reverse(core::ChainBuf& buf,
               const core::TransformContext& ctx) override;

  /// Rebinds the current version slot to `codec` (legacy single-version
  /// API; the algorithm name follows the codec's).
  void set_codec(std::unique_ptr<compress::Codec> codec);
  /// Binds `algorithm` ("lz77", "rle" or "none" = ship raw) for agreement
  /// `version`. Earlier versions stay bound (bounded retention) so
  /// cross-version frames keep decoding after a renegotiated switch.
  void set_algorithm(const std::string& algorithm, std::int64_t level,
                     std::int64_t version);
  void set_min_size(std::int64_t min_size) noexcept { min_size_ = min_size; }
  const compress::Codec& codec() const noexcept;
  const std::string& algorithm() const noexcept;
  std::int64_t current_version() const noexcept;
  std::int64_t min_size() const noexcept { return min_size_; }

  /// Byte counters for the mechanism ops: forward counts unframed-in /
  /// framed-out, reverse counts framed-in / unframed-out.
  std::uint64_t forward_bytes_in() const noexcept { return fwd_in_; }
  std::uint64_t forward_bytes_out() const noexcept { return fwd_out_; }
  std::uint64_t reverse_bytes_in() const noexcept { return rev_in_; }
  std::uint64_t reverse_bytes_out() const noexcept { return rev_out_; }

 private:
  /// Codec bound for one agreement version. "none" keeps the previous
  /// codec object around purely for decoding older compressed frames.
  struct VersionedCodec {
    std::int64_t version = 0;
    std::string algorithm;
    std::shared_ptr<compress::Codec> codec;
  };
  static constexpr std::size_t kMaxRetained = 4;

  const VersionedCodec& current() const noexcept { return bindings_.back(); }
  VersionedCodec& current() noexcept { return bindings_.back(); }
  const VersionedCodec& binding_for(std::int64_t version) const noexcept;

  std::vector<VersionedCodec> bindings_;  // ascending version, newest last
  std::int64_t min_size_ = 64;
  util::Bytes scratch_;  // reverse-direction decompress target (recycled)
  std::uint64_t fwd_in_ = 0;
  std::uint64_t fwd_out_ = 0;
  std::uint64_t rev_in_ = 0;
  std::uint64_t rev_out_ = 0;
};

class CompressionMediator final : public core::Mediator {
 public:
  CompressionMediator();

  void bind_agreement(const core::Agreement& agreement) override;
  void outbound(orb::RequestMessage& req, orb::ObjRef& target) override;
  void inbound(const orb::RequestMessage& req,
               orb::ReplyMessage& rep) override;
  /// inbound() only decompresses the reply; the stub need not keep the
  /// compressed argument stream alive across the call.
  bool needs_request_payload() const override { return false; }
  core::StreamingTransform* streaming_transform() override { return &stage_; }
  cdr::Any qos_operation(const std::string& op,
                         const std::vector<cdr::Any>& args) override;

  /// Observed mean output/input size ratio (1.0 until data flows).
  double compression_ratio() const;

 private:
  CompressionTransform stage_;
  core::TransformChain chain_;  // single-stage chain for the unfused path
};

class CompressionImpl final : public core::QosImpl {
 public:
  CompressionImpl();

  void bind_agreement(const core::Agreement& agreement) override;
  util::Bytes transform_args(util::Bytes args,
                             orb::ServerContext& ctx) override;
  util::Bytes transform_result(util::Bytes result,
                               orb::ServerContext& ctx) override;
  core::StreamingTransform* streaming_transform() override { return &stage_; }
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  CompressionTransform stage_;
  core::TransformChain chain_;
};

/// Network-centered variant: body transforms at the transport layer.
class CompressionModule final : public core::QosModule {
 public:
  CompressionModule();

  void transform_request(orb::RequestMessage& req) override;
  void restore_request(orb::RequestMessage& req) override;
  void transform_reply(const orb::RequestMessage& req,
                       orb::ReplyMessage& rep) override;
  void restore_reply(orb::ReplyMessage& rep) override;
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override;

 private:
  CompressionTransform stage_;
  core::TransformChain chain_;
};

}  // namespace maqs::characteristics

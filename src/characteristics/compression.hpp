// Compression QoS characteristic ("compression for channels with small
// bandwidth", paper §6).
//
// Implemented at BOTH integration layers of Fig. 1, which is exactly what
// experiment F1 compares:
//   - application-centered: CompressionMediator (client stub delegate)
//     compresses the marshaled argument stream; CompressionImpl (server
//     QoS implementation) restores it via the QoS skeleton's aspect
//     transforms and compresses results on the way out.
//   - network-centered: CompressionModule, a QoS transport module that
//     rewrites message bodies below the ORB's invocation layer.
//
// QIDL (conceptually):
//   qos characteristic Compression {
//     param string codec = "lz77";
//     param long   min_size = 64;     // skip tiny payloads
//     param long   level = 32;        // LZ77 probe depth
//     mechanism double compression_ratio();
//   };
#pragma once

#include <memory>

#include "compress/codec.hpp"
#include "core/provider.hpp"

namespace maqs::characteristics {

/// Characteristic name: "Compression".
const std::string& compression_name();
/// Transport module name: "compression".
const std::string& compression_module_name();

/// Descriptor as qidlc would emit it.
core::CharacteristicDescriptor compression_descriptor();

/// Full provider wired for the application-centered implementation.
/// Registered into a ProviderRegistry on both client and server sides.
core::CharacteristicProvider make_compression_provider();

/// Same characteristic but delegating the mechanism to the transport
/// module (network-centered; for F1 and the hierarchy story of §4).
core::CharacteristicProvider make_compression_module_provider();

/// Registers the "compression" module factory (idempotent).
void register_compression_module();

class CompressionMediator final : public core::Mediator {
 public:
  CompressionMediator();

  void bind_agreement(const core::Agreement& agreement) override;
  void outbound(orb::RequestMessage& req, orb::ObjRef& target) override;
  void inbound(const orb::RequestMessage& req,
               orb::ReplyMessage& rep) override;
  /// inbound() only decompresses the reply; the stub need not keep the
  /// compressed argument stream alive across the call.
  bool needs_request_payload() const override { return false; }
  cdr::Any qos_operation(const std::string& op,
                         const std::vector<cdr::Any>& args) override;

  /// Observed mean output/input size ratio (1.0 until data flows).
  double compression_ratio() const;

 private:
  std::unique_ptr<compress::Codec> codec_;
  std::int64_t min_size_ = 64;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

class CompressionImpl final : public core::QosImpl {
 public:
  CompressionImpl();

  void bind_agreement(const core::Agreement& agreement) override;
  util::Bytes transform_args(util::Bytes args,
                             orb::ServerContext& ctx) override;
  util::Bytes transform_result(util::Bytes result,
                               orb::ServerContext& ctx) override;
  void dispatch_qos_op(const std::string& op, cdr::Decoder& args,
                       cdr::Encoder& out, orb::ServerContext& ctx) override;

 private:
  std::unique_ptr<compress::Codec> codec_;
  std::int64_t min_size_ = 64;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

/// Network-centered variant: body transforms at the transport layer.
class CompressionModule final : public core::QosModule {
 public:
  CompressionModule();

  void transform_request(orb::RequestMessage& req) override;
  void restore_request(orb::RequestMessage& req) override;
  void transform_reply(const orb::RequestMessage& req,
                       orb::ReplyMessage& rep) override;
  void restore_reply(orb::ReplyMessage& rep) override;
  cdr::Any command(const std::string& op,
                   const std::vector<cdr::Any>& args) override;

 private:
  std::unique_ptr<compress::Codec> codec_;
  std::int64_t min_size_ = 64;
};

}  // namespace maqs::characteristics

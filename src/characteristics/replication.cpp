#include "characteristics/replication.hpp"

#include <algorithm>
#include <map>

#include "orb/dii.hpp"
#include "orb/stub.hpp"
#include "util/log.hpp"

namespace maqs::characteristics {

const std::string& replication_name() {
  static const std::string kName = "Replication";
  return kName;
}

const std::string& replication_module_name() {
  static const std::string kName = "replication";
  return kName;
}

core::CharacteristicDescriptor replication_descriptor() {
  return core::CharacteristicDescriptor(
      replication_name(), core::QosCategory::kFaultTolerance,
      {
          core::ParamDesc{"group", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string(""), {}, {}},
          core::ParamDesc{"mode", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string("failover"), {}, {}},
          core::ParamDesc{"quorum", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(2), 1, 15},
      },
      {
          core::QosOpDesc{"qos_get_state", core::QosOpKind::kAspect},
          core::QosOpDesc{"qos_set_state", core::QosOpKind::kAspect},
          core::QosOpDesc{"qos_epoch", core::QosOpKind::kAspect},
      });
}

// ---- module ----

ReplicationModule::ReplicationModule()
    : core::QosModule(replication_module_name()) {}

cdr::Any ReplicationModule::command(const std::string& op,
                                    const std::vector<cdr::Any>& args) {
  if (op == "configure") {
    if (args.size() < 3) {
      throw core::QosError("replication: configure(group, mode, quorum)");
    }
    group_ = args[0].as_string();
    mode_ = args[1].as_string();
    quorum_ = static_cast<int>(args[2].as_integer());
    if (mode_ != "failover" && mode_ != "voting" && mode_ != "passive") {
      throw core::QosError("replication: unknown mode '" + mode_ + "'");
    }
    if (quorum_ < 1) throw core::QosError("replication: quorum must be >= 1");
    return cdr::Any::make_void();
  }
  if (op == "info") {
    return cdr::Any::from_string(group_ + "/" + mode_ + "/q=" +
                                 std::to_string(quorum_));
  }
  return core::QosModule::command(op, args);
}

orb::ReplyMessage ReplicationModule::invoke(orb::RequestMessage req,
                                            const orb::ObjRef& target) {
  if (mode_ != "passive" && group_.empty()) {
    throw core::QosError("replication: module not configured with a group");
  }
  req.context[core::kModuleContextKey] = util::to_bytes(name());
  if (mode_ == "passive") return invoke_passive(std::move(req), target);
  if (mode_ == "voting") return invoke_voting(std::move(req));
  return invoke_failover(std::move(req));
}

orb::ReplyMessage ReplicationModule::invoke_passive(
    orb::RequestMessage req, const orb::ObjRef& target) {
  // Primary-backup: only the primary (the reference's leading profile —
  // directory lookups order profiles by state epoch, and the replica
  // selector has already rewritten the target to the chosen one) executes
  // the request; backups catch up through state transfer and advertise
  // their epoch on directory heartbeats.
  orb::Orb& orb = context().orb();
  std::optional<orb::ReplyMessage> winner;
  orb.send_request(target.endpoint, std::move(req),
                   [&](orb::ReplyMessage rep) { winner = std::move(rep); });
  orb.run_until([&] { return winner.has_value(); });
  if (!winner.has_value()) {
    throw orb::TransportError("replication: event loop drained");
  }
  return *std::move(winner);
}

orb::ReplyMessage ReplicationModule::invoke_failover(
    orb::RequestMessage req) {
  orb::Orb& orb = context().orb();
  std::optional<orb::ReplyMessage> winner;
  std::uint64_t request_id = 0;
  request_id = orb.send_multicast_request(
      group_, std::move(req), [&](const orb::ReplyMessage& rep) {
        if (winner.has_value()) {
          ++late_replies_;
          return;
        }
        winner = rep;  // first reply (or the synthesized timeout) decides
        if (rep.exception != "maqs/TIMEOUT") {
          orb.cancel_request(request_id);
        }
      });
  orb.run_until([&] { return winner.has_value(); });
  if (!winner.has_value()) {
    orb.cancel_request(request_id);
    throw orb::TransportError("replication: event loop drained");
  }
  return *std::move(winner);
}

orb::ReplyMessage ReplicationModule::invoke_voting(orb::RequestMessage req) {
  orb::Orb& orb = context().orb();
  // Tally identical (status, body) pairs until one reaches the quorum.
  std::map<std::pair<std::uint8_t, util::Bytes>, int> tally;
  std::optional<orb::ReplyMessage> winner;
  bool timed_out = false;
  std::uint64_t request_id = 0;
  request_id = orb.send_multicast_request(
      group_, std::move(req), [&](const orb::ReplyMessage& rep) {
        if (winner.has_value() || timed_out) {
          ++late_replies_;
          return;
        }
        if (rep.exception == "maqs/TIMEOUT") {
          timed_out = true;
          return;
        }
        const int votes =
            ++tally[{static_cast<std::uint8_t>(rep.status), rep.body}];
        if (votes >= quorum_) {
          winner = rep;
          orb.cancel_request(request_id);
        }
      });
  orb.run_until([&] { return winner.has_value() || timed_out; });
  if (winner.has_value()) return *std::move(winner);
  orb.cancel_request(request_id);
  orb::ReplyMessage failure;
  failure.status = orb::ReplyStatus::kSystemException;
  failure.exception = "maqs/NO_QUORUM";
  return failure;
}

void register_replication_module() {
  auto& registry = core::ModuleFactoryRegistry::instance();
  if (!registry.contains(replication_module_name())) {
    registry.register_factory(replication_module_name(), [] {
      return std::make_unique<ReplicationModule>();
    });
  }
}

// ---- server-side impl (state aspect) ----

ReplicationImpl::ReplicationImpl() : core::QosImpl(replication_name()) {}

void ReplicationImpl::attach(core::QosServerContext& ctx) {
  host_ = &ctx;
}

void ReplicationImpl::detach() {
  host_ = nullptr;
}

void ReplicationImpl::dispatch_qos_op(const std::string& op,
                                      cdr::Decoder& args, cdr::Encoder& out,
                                      orb::ServerContext& ctx) {
  if (op == "qos_get_state" || op == "qos_set_state") {
    if (host_ == nullptr || host_->state_access() == nullptr) {
      throw core::QosError(
          "replication: servant exposes no state-access aspect");
    }
    if (op == "qos_get_state") {
      args.expect_end();
      out.write_bytes(host_->state_access()->get_state());
    } else {
      const util::Bytes state = args.read_bytes();
      args.expect_end();
      host_->state_access()->set_state(state);
      // A state transfer brings this replica up to a new version.
      ++epoch_;
    }
    return;
  }
  if (op == "qos_epoch") {
    args.expect_end();
    out.write_u64(epoch_);
    return;
  }
  core::QosImpl::dispatch_qos_op(op, args, out, ctx);
}

// ---- provider ----

core::CharacteristicProvider make_replication_provider() {
  // Any side holding the provider may have to load the module.
  register_replication_module();
  core::CharacteristicProvider provider;
  provider.descriptor = replication_descriptor();
  provider.module = replication_module_name();
  provider.make_impl = [](const core::Agreement&, orb::Orb&,
                          core::QosTransport&) {
    return std::make_shared<ReplicationImpl>();
  };
  provider.client_setup = [](const core::Agreement& agreement,
                             const orb::ObjRef& target, orb::Orb&,
                             core::QosTransport& transport) {
    register_replication_module();
    std::string group = agreement.string_param("group");
    if (group.empty()) {
      if (const orb::QosProfile* profile =
              target.find_profile(replication_name())) {
        if (auto it = profile->properties.find("group");
            it != profile->properties.end()) {
          group = it->second;
        }
      }
    }
    if (group.empty()) {
      throw core::QosError(
          "replication: no group in agreement or IOR profile");
    }
    transport.load_module(replication_module_name())
        .command("configure",
                 {cdr::Any::from_string(group),
                  cdr::Any::from_string(agreement.string_param("mode")),
                  cdr::Any::from_longlong(agreement.int_param("quorum"))});
  };
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        return core::ResourceDemand{
            {"replicas",
             static_cast<double>(params.at("quorum").as_integer())}};
      };
  return provider;
}

// ---- group management ----

ReplicaGroup::ReplicaGroup(net::Network& network, std::string group,
                           std::string object_key)
    : network_(network),
      group_(std::move(group)),
      object_key_(std::move(object_key)) {
  network_.create_group(group_);
}

orb::ObjRef ReplicaGroup::add_replica(
    orb::Orb& orb, std::shared_ptr<core::QosServantBase> servant) {
  if (!servant->is_assigned(replication_name())) {
    throw core::QosError(
        "replica group: servant has no Replication characteristic "
        "assigned");
  }
  // Arm the server half of the characteristic (group-managed binding).
  auto impl = std::make_shared<ReplicationImpl>();
  core::Agreement agreement;
  agreement.characteristic = replication_name();
  agreement.object_key = object_key_;
  agreement.params = replication_descriptor().default_params();
  agreement.state = core::AgreementState::kActive;
  impl->bind_agreement(agreement);
  servant->set_active_impl(impl);

  orb::QosProfile profile;
  profile.characteristic = replication_name();
  profile.properties = {{"group", group_},
                        {"module", replication_module_name()}};
  orb::ObjRef ref =
      orb.adapter().activate(object_key_, servant, {profile});
  if (repo_id_.empty()) repo_id_ = servant->repo_id();

  // State transfer from the first live member, over the wire through the
  // aspect-integration QoS operations.
  for (const Member& member : members_) {
    if (!network_.is_alive(member.orb->endpoint().node)) continue;
    orb::RequestMessage get_state;
    get_state.object_key = object_key_;
    get_state.operation = "qos_get_state";
    orb::ReplyMessage rep =
        orb.invoke_plain(member.orb->endpoint(), std::move(get_state));
    orb::raise_for_status(rep);
    cdr::Decoder dec(rep.body);
    const util::Bytes state = dec.read_bytes();
    if (core::StateAccess* access = servant->state_access()) {
      access->set_state(state);
      impl->advance_epoch();  // same bump a wire qos_set_state performs
    }
    break;
  }

  network_.join_group(group_, orb.endpoint());
  members_.push_back(Member{&orb, std::move(servant)});
  return ref;
}

void ReplicaGroup::remove_replica(orb::Orb& orb) {
  network_.leave_group(group_, orb.endpoint());
  std::erase_if(members_,
                [&](const Member& member) { return member.orb == &orb; });
}

orb::ObjRef ReplicaGroup::group_reference() const {
  if (members_.empty()) {
    throw core::QosError("replica group: empty group has no reference");
  }
  orb::QosProfile profile;
  profile.characteristic = replication_name();
  profile.properties = {{"group", group_},
                        {"module", replication_module_name()}};
  orb::ObjRef ref;
  ref.repo_id = repo_id_;
  ref.endpoint = members_.front().orb->endpoint();
  ref.object_key = object_key_;
  ref.qos = {profile};
  // Every member is an alternate profile: clients running a
  // naming::ReplicaSelector can re-target per invocation (passive mode);
  // without one the reference behaves exactly as before.
  for (std::size_t i = 1; i < members_.size(); ++i) {
    ref.alternates.push_back(
        orb::AltProfile{members_[i].orb->endpoint(), object_key_});
  }
  return ref;
}

}  // namespace maqs::characteristics

#include "characteristics/actuality.hpp"

#include "cdr/decoder.hpp"
#include "cdr/encoder.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace maqs::characteristics {

const std::string& actuality_name() {
  static const std::string kName = "Actuality";
  return kName;
}

const std::string& actuality_timestamp_key() {
  static const std::string kKey = "qos.timestamp";
  return kKey;
}

core::CharacteristicDescriptor actuality_descriptor() {
  return core::CharacteristicDescriptor(
      actuality_name(), core::QosCategory::kActuality,
      {
          core::ParamDesc{"max_age_ms", cdr::TypeCode::long_tc(),
                          cdr::Any::from_long(100), 0, 1 << 30},
          core::ParamDesc{"cacheable_ops", cdr::TypeCode::string_tc(),
                          cdr::Any::from_string(""), {}, {}},
      },
      {
          core::DimensionDesc{"freshness",
                              {cdr::Any::from_string("tight"),
                               cdr::Any::from_string("normal"),
                               cdr::Any::from_string("loose")},
                              0},
      },
      {
          core::QosOpDesc{"qos_cache_hits", core::QosOpKind::kMechanism},
          core::QosOpDesc{"qos_timestamped", core::QosOpKind::kMechanism},
      });
}

std::int64_t freshness_scale(const std::string& freshness) {
  if (freshness == "normal") return 4;
  if (freshness == "loose") return 16;
  return 1;  // "tight" and anything unknown: serve the bound as agreed
}

// ---- mediator ----

ActualityMediator::ActualityMediator(sim::EventLoop& loop)
    : core::Mediator(actuality_name()), loop_(loop) {}

void ActualityMediator::bind_agreement(const core::Agreement& agreement) {
  core::Mediator::bind_agreement(agreement);
  max_age_ = agreement.int_param_or("max_age_ms", 100) *
             freshness_scale(agreement.string_param_or("freshness", "tight")) *
             sim::kMillisecond;
  cacheable_ops_.clear();
  for (const std::string& op :
       util::split(agreement.string_param_or("cacheable_ops", ""), ',')) {
    if (!op.empty()) cacheable_ops_.insert(op);
  }
  // A renegotiated freshness bound must not resurrect stale entries.
  cache_.clear();
}

bool ActualityMediator::cacheable(const std::string& operation) const {
  return cacheable_ops_.contains(operation);
}

std::string ActualityMediator::cache_key(const orb::RequestMessage& req) {
  return req.operation + "#" +
         std::to_string(util::fnv1a(req.body)) + ":" +
         std::to_string(req.body.size());
}

std::optional<orb::ReplyMessage> ActualityMediator::try_local(
    const orb::RequestMessage& req, const orb::ObjRef& target) {
  (void)target;
  if (!cacheable(req.operation)) return std::nullopt;
  auto it = cache_.find(cache_key(req));
  if (it == cache_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const sim::Duration age = loop_.now() - it->second.server_timestamp;
  if (age > max_age_) {
    cache_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  last_staleness_ = age;
  orb::ReplyMessage rep = it->second.reply;
  rep.request_id = req.request_id;
  rep.context["qos.cache"] = util::to_bytes("hit");
  return rep;
}

void ActualityMediator::inbound(const orb::RequestMessage& req,
                                orb::ReplyMessage& rep) {
  if (rep.status != orb::ReplyStatus::kOk) return;
  if (!cacheable(req.operation)) {
    // Writes invalidate: the server state may have changed.
    cache_.clear();
    return;
  }
  auto stamp = rep.context.find(actuality_timestamp_key());
  sim::TimePoint server_time = loop_.now();
  if (stamp != rep.context.end()) {
    cdr::Decoder dec{util::BytesView(stamp->second)};
    server_time = dec.read_i64();
  }
  cache_[cache_key(req)] = CacheEntry{rep, server_time};
}

cdr::Any ActualityMediator::qos_operation(const std::string& op,
                                          const std::vector<cdr::Any>& args) {
  if (op == "qos_cache_hits") {
    return cdr::Any::from_longlong(static_cast<std::int64_t>(hits_));
  }
  return core::Mediator::qos_operation(op, args);
}

// ---- server impl ----

ActualityImpl::ActualityImpl(sim::EventLoop& loop)
    : core::QosImpl(actuality_name()), loop_(loop) {}

void ActualityImpl::epilog(orb::ServerContext& ctx) {
  cdr::Encoder enc;
  enc.write_i64(loop_.now());
  ctx.reply_context()[actuality_timestamp_key()] = enc.take();
  ++stamped_;
}

void ActualityImpl::dispatch_qos_op(const std::string& op,
                                    cdr::Decoder& args, cdr::Encoder& out,
                                    orb::ServerContext& ctx) {
  if (op == "qos_timestamped") {
    args.expect_end();
    out.write_i64(static_cast<std::int64_t>(stamped_));
    return;
  }
  core::QosImpl::dispatch_qos_op(op, args, out, ctx);
}

// ---- provider ----

core::CharacteristicProvider make_actuality_provider() {
  core::CharacteristicProvider provider;
  provider.descriptor = actuality_descriptor();
  provider.make_mediator = [](const core::Agreement&, orb::Orb& orb,
                              core::QosTransport&) {
    return std::make_shared<ActualityMediator>(orb.loop());
  };
  provider.make_impl = [](const core::Agreement&, orb::Orb& orb,
                          core::QosTransport&) {
    return std::make_shared<ActualityImpl>(orb.loop());
  };
  provider.resource_demand =
      [](const std::map<std::string, cdr::Any>& params) {
        // Tighter freshness means more server round trips.
        std::string freshness = "tight";
        if (auto it = params.find("freshness"); it != params.end()) {
          freshness = it->second.as_string();
        }
        const double cpu =
            freshness == "loose" ? 1.0 : (freshness == "normal" ? 2.0 : 4.0);
        return core::ResourceDemand{{"cpu", cpu}};
      };
  return provider;
}

}  // namespace maqs::characteristics

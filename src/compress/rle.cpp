#include "compress/rle.hpp"

namespace maqs::compress {

const std::string& RleCodec::name() const {
  static const std::string kName = "rle";
  return kName;
}

util::Bytes RleCodec::compress(util::BytesView input) const {
  util::Bytes out(max_compressed_size(input.size()));
  out.resize(compress_into(input, out));
  return out;
}

util::Bytes RleCodec::decompress(util::BytesView input) const {
  util::Bytes out;
  decompress_append(input, out);
  return out;
}

std::size_t RleCodec::max_compressed_size(std::size_t n) const { return 2 * n; }

std::size_t RleCodec::compress_into(util::BytesView input,
                                    std::span<std::uint8_t> out) const {
  if (out.size() < max_compressed_size(input.size())) {
    throw CodecError("rle: compress_into output buffer too small");
  }
  std::uint8_t* w = out.data();
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t byte = input[i];
    std::size_t run = 1;
    while (run < 255 && i + run < input.size() && input[i + run] == byte) {
      ++run;
    }
    *w++ = static_cast<std::uint8_t>(run);
    *w++ = byte;
    i += run;
  }
  return static_cast<std::size_t>(w - out.data());
}

void RleCodec::decompress_append(util::BytesView input, util::Bytes& out) const {
  if (input.size() % 2 != 0) {
    throw CodecError("rle: truncated stream");
  }
  for (std::size_t i = 0; i < input.size(); i += 2) {
    const std::uint8_t run = input[i];
    if (run == 0) throw CodecError("rle: zero-length run");
    out.insert(out.end(), run, input[i + 1]);
  }
}

}  // namespace maqs::compress

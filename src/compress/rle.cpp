#include "compress/rle.hpp"

namespace maqs::compress {

const std::string& RleCodec::name() const {
  static const std::string kName = "rle";
  return kName;
}

util::Bytes RleCodec::compress(util::BytesView input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 8);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t byte = input[i];
    std::size_t run = 1;
    while (run < 255 && i + run < input.size() && input[i + run] == byte) {
      ++run;
    }
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(byte);
    i += run;
  }
  return out;
}

util::Bytes RleCodec::decompress(util::BytesView input) const {
  if (input.size() % 2 != 0) {
    throw CodecError("rle: truncated stream");
  }
  util::Bytes out;
  for (std::size_t i = 0; i < input.size(); i += 2) {
    const std::uint8_t run = input[i];
    if (run == 0) throw CodecError("rle: zero-length run");
    out.insert(out.end(), run, input[i + 1]);
  }
  return out;
}

}  // namespace maqs::compress

// Lossless codecs for the compression QoS characteristic.
//
// The paper evaluates "compression for channels with small bandwidth"; we
// implement the codecs from scratch (offline build, DESIGN.md §2): RLE for
// highly redundant data and LZ77 as the general-purpose codec. Both are
// exact round-trip codecs; compress() never fails, decompress() throws
// CodecError on corrupt input.
#pragma once

#include <memory>
#include <string>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace maqs::compress {

class CodecError : public Error {
 public:
  using Error::Error;
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual const std::string& name() const = 0;
  virtual util::Bytes compress(util::BytesView input) const = 0;
  virtual util::Bytes decompress(util::BytesView input) const = 0;
};

/// Identity codec (baseline: "no compression" with the same call shape).
class IdentityCodec final : public Codec {
 public:
  const std::string& name() const override;
  util::Bytes compress(util::BytesView input) const override;
  util::Bytes decompress(util::BytesView input) const override;
};

/// Factory by codec name: "identity", "rle", "lz77".
/// Throws CodecError for unknown names.
std::unique_ptr<Codec> make_codec(const std::string& name);

}  // namespace maqs::compress

// Lossless codecs for the compression QoS characteristic.
//
// The paper evaluates "compression for channels with small bandwidth"; we
// implement the codecs from scratch (offline build, DESIGN.md §2): RLE for
// highly redundant data and LZ77 as the general-purpose codec. Both are
// exact round-trip codecs; compress() never fails, decompress() throws
// CodecError on corrupt input.
//
// Two call shapes coexist:
//   - the legacy one-shot API (compress/decompress returning fresh Bytes),
//     kept for tools and tests;
//   - the streaming API (max_compressed_size/compress_into/
//     decompress_append) used by the zero-copy transform chain: the caller
//     provides the output storage, so the hot path never materializes an
//     intermediate vector per stage.
// Both produce byte-identical streams; the one-shot entry points are thin
// wrappers over the streaming ones.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace maqs::compress {

class CodecError : public Error {
 public:
  using Error::Error;
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual const std::string& name() const = 0;
  virtual util::Bytes compress(util::BytesView input) const = 0;
  virtual util::Bytes decompress(util::BytesView input) const = 0;

  // ---- streaming API (zero-copy transform chain) ----

  /// Upper bound on compress_into() output for `n` input bytes, or 0 when
  /// the codec cannot bound its output (callers then fall back to the
  /// one-shot compress()). A bound of 0 for n == 0 is always correct.
  virtual std::size_t max_compressed_size(std::size_t n) const {
    (void)n;
    return 0;
  }

  /// Compresses `input` into caller-owned storage `out` and returns the
  /// number of bytes written. `out.size()` must be at least
  /// max_compressed_size(input.size()); throws CodecError otherwise.
  /// Default bridges through the one-shot compress().
  virtual std::size_t compress_into(util::BytesView input,
                                    std::span<std::uint8_t> out) const;

  /// Decompresses `input`, appending to `out` (existing content is
  /// preserved; back-references never reach across the append point).
  /// Default bridges through the one-shot decompress().
  virtual void decompress_append(util::BytesView input,
                                 util::Bytes& out) const;
};

/// Identity codec (baseline: "no compression" with the same call shape).
class IdentityCodec final : public Codec {
 public:
  const std::string& name() const override;
  util::Bytes compress(util::BytesView input) const override;
  util::Bytes decompress(util::BytesView input) const override;

  std::size_t max_compressed_size(std::size_t n) const override;
  std::size_t compress_into(util::BytesView input,
                            std::span<std::uint8_t> out) const override;
  void decompress_append(util::BytesView input,
                         util::Bytes& out) const override;
};

/// Factory by codec name: "identity", "rle", "lz77".
/// Throws CodecError for unknown names.
std::unique_ptr<Codec> make_codec(const std::string& name);

}  // namespace maqs::compress

// LZ77 with a hash-chain match finder.
//
// Token stream format (compact CDR-free, self-delimiting):
//   0x00 len:u16 <len literal bytes>      -- literal run, len >= 1
//   0x01 offset:u16 len:u16               -- back-reference, offset >= 1,
//                                            len >= kMinMatch, may overlap
// Window size 64 KiB (offset is u16). Greedy parse; match finder keeps
// hash chains over 3-byte prefixes, bounded probe depth.
#pragma once

#include "compress/codec.hpp"

namespace maqs::compress {

class Lz77Codec final : public Codec {
 public:
  /// max_probes bounds match-finder effort (compression level knob).
  explicit Lz77Codec(int max_probes = 32) : max_probes_(max_probes) {}

  const std::string& name() const override;
  util::Bytes compress(util::BytesView input) const override;
  util::Bytes decompress(util::BytesView input) const override;

 private:
  int max_probes_;
};

}  // namespace maqs::compress

// LZ77 with a hash-chain match finder.
//
// Token stream format (compact CDR-free, self-delimiting):
//   0x00 len:u16 <len literal bytes>      -- literal run, len >= 1
//   0x01 offset:u16 len:u16               -- back-reference, offset >= 1,
//                                            len >= kMinMatch, may overlap
// Window size 64 KiB (offset is u16). Greedy parse; match finder keeps
// hash chains over 3-byte prefixes, bounded probe depth.
//
// Worst-case expansion is bounded: whenever the greedy token stream would
// reach the stored form's size, compress emits the stored form instead
// (pure literal runs), so output never exceeds n + 3 * ceil(n / 65535)
// bytes. Callers sizing buffers with max_compressed_size() never see a
// mid-transform reallocation, even for incompressible input.
//
// The match-finder hash tables persist across calls on the codec instance
// (positions are kept in a rolling global coordinate space, so stale
// entries are recognized by range instead of a 384 KiB memset per call).
// This makes compress() non-reentrant per instance; codec instances are
// owned per-characteristic in the single-threaded simulator.
#pragma once

#include <vector>

#include "compress/codec.hpp"

namespace maqs::compress {

class Lz77Codec final : public Codec {
 public:
  /// max_probes bounds match-finder effort (compression level knob).
  explicit Lz77Codec(int max_probes = 32) : max_probes_(max_probes) {}

  const std::string& name() const override;
  util::Bytes compress(util::BytesView input) const override;
  util::Bytes decompress(util::BytesView input) const override;

  /// Stored-form bound: n + 3 bytes of framing per 64 KiB literal run.
  std::size_t max_compressed_size(std::size_t n) const override;
  std::size_t compress_into(util::BytesView input,
                            std::span<std::uint8_t> out) const override;
  void decompress_append(util::BytesView input,
                         util::Bytes& out) const override;

 private:
  /// Greedy token stream into out[0..cap); returns bytes written, or `cap`
  /// as a sentinel when the stream would reach/exceed the stored bound.
  std::size_t try_compress(util::BytesView input, std::uint8_t* out,
                           std::size_t cap) const;

  int max_probes_;

  // Persistent match-finder scratch. head_[h] / chain_[g % (window+1)]
  // store global positions + 1; entries <= base_ belong to earlier calls
  // and read as "none". base_ rolls forward per call and the tables are
  // zeroed only when the u32 position space would wrap.
  mutable std::vector<std::uint32_t> head_;
  mutable std::vector<std::uint32_t> chain_;
  mutable std::uint32_t base_ = 0;
  mutable std::uint32_t next_base_ = 0;
};

}  // namespace maqs::compress

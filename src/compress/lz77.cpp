#include "compress/lz77.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

namespace maqs::compress {

namespace {
constexpr std::size_t kWindow = 65535;   // max back-reference offset (u16)
constexpr std::size_t kMinMatch = 4;     // below this, literals are cheaper
constexpr std::size_t kMaxMatch = 65535;  // length field is u16
constexpr std::size_t kMaxLiteralRun = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kChainSize = kWindow + 1;
// Inside a long match only the first kMaxInsert covered positions enter
// the hash tables: later occurrences of the same data still match against
// these anchors, and insertion cost stays O(1) per long match instead of
// O(len).
constexpr std::size_t kMaxInsert = 8;
// A match this long is taken immediately instead of probing further
// candidates for a marginally longer one: on repetitive payloads the
// newest candidate already yields a near-maximal match, and the remaining
// probes are the bulk of the search cost.
constexpr std::size_t kGoodEnough = 64;

/// Length of the common prefix of a and b, capped at limit (word-wise).
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) noexcept {
  std::size_t len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      std::uint64_t wa;
      std::uint64_t wb;
      std::memcpy(&wa, a + len, 8);
      std::memcpy(&wb, b + len, 8);
      const std::uint64_t diff = wa ^ wb;
      if (diff != 0) {
        return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
      }
      len += 8;
    }
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

/// Stored form: the input as pure literal runs. Exactly
/// n + 3 * ceil(n / kMaxLiteralRun) bytes.
std::size_t write_stored(util::BytesView input, std::uint8_t* out) {
  std::size_t w = 0;
  std::size_t begin = 0;
  while (begin < input.size()) {
    const std::size_t chunk = std::min(input.size() - begin, kMaxLiteralRun);
    out[w++] = 0x00;
    put_u16(out + w, static_cast<std::uint16_t>(chunk));
    w += 2;
    std::memcpy(out + w, input.data() + begin, chunk);
    w += chunk;
    begin += chunk;
  }
  return w;
}
}  // namespace

const std::string& Lz77Codec::name() const {
  static const std::string kName = "lz77";
  return kName;
}

std::size_t Lz77Codec::max_compressed_size(std::size_t n) const {
  if (n == 0) return 0;
  return n + 3 * ((n + kMaxLiteralRun - 1) / kMaxLiteralRun);
}

util::Bytes Lz77Codec::compress(util::BytesView input) const {
  util::Bytes out(max_compressed_size(input.size()));
  out.resize(compress_into(input, out));
  return out;
}

util::Bytes Lz77Codec::decompress(util::BytesView input) const {
  util::Bytes out;
  decompress_append(input, out);
  return out;
}

std::size_t Lz77Codec::compress_into(util::BytesView input,
                                     std::span<std::uint8_t> out) const {
  const std::size_t n = input.size();
  const std::size_t bound = max_compressed_size(n);
  if (out.size() < bound) {
    throw CodecError("lz77: compress_into output buffer too small");
  }
  if (n == 0) return 0;
  if (n < kMinMatch) return write_stored(input, out.data());
  const std::size_t written = try_compress(input, out.data(), bound);
  // Expansion guard: an adversarial token stream can exceed the stored
  // form (a 5-byte match token may replace only 4 literal bytes). Fall
  // back to the stored form so output stays within the advertised bound.
  if (written >= bound) return write_stored(input, out.data());
  return written;
}

std::size_t Lz77Codec::try_compress(util::BytesView input, std::uint8_t* out,
                                    std::size_t cap) const {
  const std::size_t n = input.size();

  if (head_.empty()) {
    head_.assign(kHashSize, 0);
    chain_.assign(kChainSize, 0);
  }
  if (static_cast<std::uint64_t>(next_base_) + n + 1 >
      std::numeric_limits<std::uint32_t>::max()) {
    std::fill(head_.begin(), head_.end(), 0u);
    std::fill(chain_.begin(), chain_.end(), 0u);
    next_base_ = 0;
  }
  base_ = next_base_;
  next_base_ = base_ + static_cast<std::uint32_t>(n) + 1;
  const std::uint32_t base = base_;

  std::size_t w = 0;
  // Emits input[begin, end) as literal runs; false when out of room.
  auto flush_literals = [&](std::size_t begin, std::size_t end) -> bool {
    while (begin < end) {
      const std::size_t chunk = std::min(end - begin, kMaxLiteralRun);
      if (cap - w < 3 + chunk) return false;
      out[w++] = 0x00;
      put_u16(out + w, static_cast<std::uint16_t>(chunk));
      w += 2;
      std::memcpy(out + w, input.data() + begin, chunk);
      w += chunk;
      begin += chunk;
    }
    return true;
  };

  std::size_t literal_start = 0;
  std::size_t i = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash3(input.data() + i);
    std::size_t best_len = 0;
    std::size_t best_off = 0;

    // head_/chain_ store global positions + 1; values <= base are stale
    // leftovers from earlier inputs and terminate the probe like a null.
    std::uint32_t candidate = head_[h];
    int probes = max_probes_;
    const std::size_t limit = std::min(n - i, kMaxMatch);
    while (candidate > base && probes-- > 0) {
      const std::size_t pos = candidate - 1 - base;
      if (i - pos > kWindow) break;  // chain entries only get older
      // A candidate can only beat best_len if it also matches at index
      // best_len; checking that one byte first skips the extension for
      // most losing candidates without changing the outcome.
      if (best_len == 0 || input[pos + best_len] == input[i + best_len]) {
        const std::size_t len =
            match_length(input.data() + pos, input.data() + i, limit);
        if (len > best_len) {
          best_len = len;
          best_off = i - pos;
          if (len >= limit || len >= kGoodEnough) break;
        }
      }
      // The chain slot may have been overwritten by a position ~64K newer
      // (modulo indexing); accept only strictly older candidates to stay
      // acyclic.
      const std::uint32_t next = chain_[(candidate - 1) % kChainSize];
      if (next > base && next - 1 - base >= pos) break;
      candidate = next;
    }

    if (best_len >= kMinMatch) {
      if (!flush_literals(literal_start, i)) return cap;
      if (cap - w < 5) return cap;
      out[w++] = 0x01;
      put_u16(out + w, static_cast<std::uint16_t>(best_off));
      put_u16(out + w + 2, static_cast<std::uint16_t>(best_len));
      w += 4;
      // Insert hash anchors for the leading covered positions so later
      // matches can reference into this one (bounded per match).
      const std::size_t match_end = i + best_len;
      const std::size_t insert_end = std::min(match_end, i + kMaxInsert);
      while (i < insert_end && i + kMinMatch <= n) {
        const std::uint32_t hh = hash3(input.data() + i);
        chain_[(base + i) % kChainSize] = head_[hh];
        head_[hh] = base + static_cast<std::uint32_t>(i) + 1;
        ++i;
      }
      i = match_end;
      literal_start = i;
    } else {
      chain_[(base + i) % kChainSize] = head_[h];
      head_[h] = base + static_cast<std::uint32_t>(i) + 1;
      ++i;
    }
  }
  if (!flush_literals(literal_start, n)) return cap;
  return w;
}

void Lz77Codec::decompress_append(util::BytesView input,
                                  util::Bytes& out) const {
  const std::size_t start = out.size();
  std::size_t i = 0;
  auto read_u16 = [&]() -> std::uint16_t {
    if (input.size() - i < 2) throw CodecError("lz77: truncated stream");
    const std::uint16_t v = static_cast<std::uint16_t>(
        input[i] | (static_cast<std::uint16_t>(input[i + 1]) << 8));
    i += 2;
    return v;
  };
  while (i < input.size()) {
    const std::uint8_t tag = input[i++];
    if (tag == 0x00) {
      const std::uint16_t len = read_u16();
      if (len == 0) throw CodecError("lz77: zero-length literal run");
      if (input.size() - i < len) throw CodecError("lz77: truncated literals");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else if (tag == 0x01) {
      const std::uint16_t off = read_u16();
      const std::uint16_t len = read_u16();
      if (off == 0 || off > out.size() - start) {
        throw CodecError("lz77: back-reference out of window");
      }
      if (len < kMinMatch) throw CodecError("lz77: short match token");
      // Overlapping copies are legal (e.g. off=1 replicates one byte).
      // Disjoint ranges take one memcpy; overlapping ones replicate the
      // off-byte pattern by doubling — identical bytes to the naive
      // byte-at-a-time copy.
      const std::size_t old_size = out.size();
      out.resize(old_size + len);
      std::uint8_t* dst = out.data() + old_size;
      const std::uint8_t* src = dst - off;
      if (off >= len) {
        std::memcpy(dst, src, len);
      } else if (off == 1) {
        std::memset(dst, src[0], len);
      } else {
        std::size_t have = std::min<std::size_t>(off, len);
        std::memcpy(dst, src, have);
        while (have < len) {
          const std::size_t chunk = std::min(have, len - have);
          std::memcpy(dst + have, dst, chunk);
          have += chunk;
        }
      }
    } else {
      throw CodecError("lz77: bad token tag");
    }
  }
}

}  // namespace maqs::compress

#include "compress/lz77.hpp"

#include <array>
#include <cstring>

namespace maqs::compress {

namespace {
constexpr std::size_t kWindow = 65535;   // max back-reference offset (u16)
constexpr std::size_t kMinMatch = 4;     // below this, literals are cheaper
constexpr std::size_t kMaxMatch = 65535;  // length field is u16
constexpr std::size_t kMaxLiteralRun = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_u16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void flush_literals(util::Bytes& out, util::BytesView input,
                    std::size_t begin, std::size_t end) {
  while (begin < end) {
    const std::size_t chunk = std::min(end - begin, kMaxLiteralRun);
    out.push_back(0x00);
    put_u16(out, static_cast<std::uint16_t>(chunk));
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(begin),
               input.begin() + static_cast<std::ptrdiff_t>(begin + chunk));
    begin += chunk;
  }
}
}  // namespace

const std::string& Lz77Codec::name() const {
  static const std::string kName = "lz77";
  return kName;
}

util::Bytes Lz77Codec::compress(util::BytesView input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);

  const std::size_t n = input.size();
  if (n < kMinMatch) {
    flush_literals(out, input, 0, n);
    return out;
  }

  // head[h] = most recent position with hash h (+1, 0 = none);
  // chain[i % kWindow] = previous position with the same hash (+1).
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> chain(kWindow + 1, 0);

  std::size_t literal_start = 0;
  std::size_t i = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash3(input.data() + i);
    std::size_t best_len = 0;
    std::size_t best_off = 0;

    std::uint32_t candidate = head[h];
    int probes = max_probes_;
    while (candidate != 0 && probes-- > 0) {
      const std::size_t pos = candidate - 1;
      if (i - pos > kWindow) break;  // chain entries only get older
      std::size_t len = 0;
      const std::size_t limit = std::min(n - i, kMaxMatch);
      while (len < limit && input[pos + len] == input[i + len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_off = i - pos;
        if (len >= limit) break;
      }
      // The chain slot may have been overwritten by a position ~64K newer
      // (modulo indexing); accept only strictly older candidates to stay
      // acyclic.
      const std::uint32_t next = chain[pos % (kWindow + 1)];
      if (next != 0 && next - 1 >= pos) break;
      candidate = next;
    }

    if (best_len >= kMinMatch) {
      flush_literals(out, input, literal_start, i);
      out.push_back(0x01);
      put_u16(out, static_cast<std::uint16_t>(best_off));
      put_u16(out, static_cast<std::uint16_t>(best_len));
      // Insert hash entries for every covered position so later matches can
      // reference inside this one.
      const std::size_t match_end = i + best_len;
      while (i < match_end && i + kMinMatch <= n) {
        const std::uint32_t hh = hash3(input.data() + i);
        chain[i % (kWindow + 1)] = head[hh];
        head[hh] = static_cast<std::uint32_t>(i + 1);
        ++i;
      }
      i = match_end;
      literal_start = i;
    } else {
      chain[i % (kWindow + 1)] = head[h];
      head[h] = static_cast<std::uint32_t>(i + 1);
      ++i;
    }
  }
  flush_literals(out, input, literal_start, n);
  return out;
}

util::Bytes Lz77Codec::decompress(util::BytesView input) const {
  util::Bytes out;
  std::size_t i = 0;
  auto read_u16 = [&]() -> std::uint16_t {
    if (input.size() - i < 2) throw CodecError("lz77: truncated stream");
    const std::uint16_t v = static_cast<std::uint16_t>(
        input[i] | (static_cast<std::uint16_t>(input[i + 1]) << 8));
    i += 2;
    return v;
  };
  while (i < input.size()) {
    const std::uint8_t tag = input[i++];
    if (tag == 0x00) {
      const std::uint16_t len = read_u16();
      if (len == 0) throw CodecError("lz77: zero-length literal run");
      if (input.size() - i < len) throw CodecError("lz77: truncated literals");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else if (tag == 0x01) {
      const std::uint16_t off = read_u16();
      const std::uint16_t len = read_u16();
      if (off == 0 || off > out.size()) {
        throw CodecError("lz77: back-reference out of window");
      }
      if (len < kMinMatch) throw CodecError("lz77: short match token");
      // Overlapping copies are legal (e.g. off=1 replicates one byte);
      // byte-by-byte copy implements that semantics.
      std::size_t src = out.size() - off;
      for (std::uint16_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    } else {
      throw CodecError("lz77: bad token tag");
    }
  }
  return out;
}

}  // namespace maqs::compress

#include "compress/codec.hpp"

#include "compress/lz77.hpp"
#include "compress/rle.hpp"

namespace maqs::compress {

const std::string& IdentityCodec::name() const {
  static const std::string kName = "identity";
  return kName;
}

util::Bytes IdentityCodec::compress(util::BytesView input) const {
  return util::Bytes(input.begin(), input.end());
}

util::Bytes IdentityCodec::decompress(util::BytesView input) const {
  return util::Bytes(input.begin(), input.end());
}

std::unique_ptr<Codec> make_codec(const std::string& name) {
  if (name == "identity") return std::make_unique<IdentityCodec>();
  if (name == "rle") return std::make_unique<RleCodec>();
  if (name == "lz77") return std::make_unique<Lz77Codec>();
  throw CodecError("unknown codec: " + name);
}

}  // namespace maqs::compress

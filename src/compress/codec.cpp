#include "compress/codec.hpp"

#include <cstring>

#include "compress/lz77.hpp"
#include "compress/rle.hpp"

namespace maqs::compress {

std::size_t Codec::compress_into(util::BytesView input,
                                 std::span<std::uint8_t> out) const {
  const util::Bytes compressed = compress(input);
  if (compressed.size() > out.size()) {
    throw CodecError(name() + ": compress_into output buffer too small");
  }
  if (!compressed.empty()) {
    std::memcpy(out.data(), compressed.data(), compressed.size());
  }
  return compressed.size();
}

void Codec::decompress_append(util::BytesView input, util::Bytes& out) const {
  const util::Bytes plain = decompress(input);
  out.insert(out.end(), plain.begin(), plain.end());
}

const std::string& IdentityCodec::name() const {
  static const std::string kName = "identity";
  return kName;
}

util::Bytes IdentityCodec::compress(util::BytesView input) const {
  return util::Bytes(input.begin(), input.end());
}

util::Bytes IdentityCodec::decompress(util::BytesView input) const {
  return util::Bytes(input.begin(), input.end());
}

std::size_t IdentityCodec::max_compressed_size(std::size_t n) const {
  return n;
}

std::size_t IdentityCodec::compress_into(util::BytesView input,
                                         std::span<std::uint8_t> out) const {
  if (input.size() > out.size()) {
    throw CodecError("identity: compress_into output buffer too small");
  }
  if (!input.empty()) std::memcpy(out.data(), input.data(), input.size());
  return input.size();
}

void IdentityCodec::decompress_append(util::BytesView input,
                                      util::Bytes& out) const {
  out.insert(out.end(), input.begin(), input.end());
}

std::unique_ptr<Codec> make_codec(const std::string& name) {
  if (name == "identity") return std::make_unique<IdentityCodec>();
  if (name == "rle") return std::make_unique<RleCodec>();
  if (name == "lz77") return std::make_unique<Lz77Codec>();
  throw CodecError("unknown codec: " + name);
}

}  // namespace maqs::compress

// Byte-oriented run-length encoding.
//
// Format: a stream of (count:u8, byte) pairs for runs of length >= 1;
// count is the run length (1..255). Chosen for simplicity and worst-case
// predictability: expansion is bounded at 2x.
#pragma once

#include "compress/codec.hpp"

namespace maqs::compress {

class RleCodec final : public Codec {
 public:
  const std::string& name() const override;
  util::Bytes compress(util::BytesView input) const override;
  util::Bytes decompress(util::BytesView input) const override;

  /// Exact worst case: one (count, byte) pair per input byte.
  std::size_t max_compressed_size(std::size_t n) const override;
  std::size_t compress_into(util::BytesView input,
                            std::span<std::uint8_t> out) const override;
  void decompress_append(util::BytesView input,
                         util::Bytes& out) const override;
};

}  // namespace maqs::compress

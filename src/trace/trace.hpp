// Request-scoped causal tracing.
//
// The paper's framework "provides infrastructure services such as for the
// negotiation of QoS agreements and for monitoring them" (§2.1). The
// aggregated counters (OrbStats, TransportStats, NetStats) and the Monitor
// answer *whether* a QoS agreement holds; this subsystem answers *where* a
// woven request spent its time: mediator transform, transport dispatch,
// link serialization, prolog/epilog, reply.
//
// Model (OpenTelemetry-shaped, shrunk to the simulator):
//
//   - A TraceContext {trace id, span id, flags} is minted at the stub when
//     the ORB's TraceRecorder is enabled and the head-based sampler says
//     yes. It crosses the wire as the "qos.trace" ServiceContext entry
//     (17 fixed bytes) and is re-attached server-side, so client and
//     server spans share one trace. Peers without tracing support ignore
//     the entry; malformed entries decode to nullopt and are dropped.
//
//   - SpanScope is the RAII unit of attribution. Scopes form a stack
//     (single-threaded discrete-event simulator: plain globals, no TLS).
//     Layers that hold a recorder open *root* scopes (stub mint, server
//     re-attach); layers below (mediators, transport, network, skeleton)
//     open *child* scopes of whatever is active — or do nothing, at the
//     cost of one global load, when no trace is in flight. Anything sent
//     while a scope is active is causally part of that trace, which is
//     exactly what makes nested pumping attributable.
//
//   - The TraceRecorder keeps completed spans in a bounded ring buffer
//     (oldest evicted first), timestamps off the virtual clock (traces
//     from a fixed sim seed are byte-identical across runs), exports
//     chrome://tracing-loadable JSON and a human-readable tree, and can
//     feed span durations into a metrics sink (core::Monitor) so
//     thresholds and adaptation trigger off per-stage latency.
//
// Zero-cost-when-off discipline: every instrumentation point is a branch
// on a pointer (recorder installed + enabled, or active scope non-null)
// before any allocation happens. Span detail strings are materialized
// only once a scope is known to record.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_loop.hpp"
#include "util/bytes.hpp"

namespace maqs::trace {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Service-context key carrying the trace context across the wire.
inline const std::string kTraceContextKey = "qos.trace";

/// Context flag bits.
inline constexpr std::uint8_t kSampledFlag = 0x01;

/// The propagated slice of a trace: enough to re-attach on the far side.
struct TraceContext {
  TraceId trace_id = 0;
  /// Span the receiver should parent to (the sender's current span).
  SpanId span_id = 0;
  std::uint8_t flags = 0;

  bool valid() const noexcept { return trace_id != 0; }
  bool sampled() const noexcept { return (flags & kSampledFlag) != 0; }

  bool operator==(const TraceContext&) const = default;
};

/// Fixed 17-byte wire form: u64 trace id LE, u64 span id LE, u8 flags.
util::Bytes encode_context(const TraceContext& ctx);

/// Strict inverse of encode_context(). Returns nullopt for anything that
/// is not exactly 17 bytes or names trace id 0 — wire tolerance for peers
/// speaking a different (or no) tracing dialect.
std::optional<TraceContext> decode_context(util::BytesView data);

/// One completed span. `name` is a static stage-taxonomy string (see
/// docs/architecture.md "Observability"); `detail` carries the dynamic
/// part (operation, characteristic, link endpoints).
struct Span {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_id = 0;  // 0 = root
  /// Simulation shard that produced the span (recorder's shard id);
  /// shard 0 is the default single-world case.
  std::uint32_t shard = 0;
  const char* name = "";
  std::string detail;
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
  /// Non-empty when the spanned work failed (see note_error()).
  std::string error;

  sim::Duration duration() const noexcept { return end - start; }
};

/// Recorder counters, surfaced through core::StatsSnapshot.
struct RecorderStats {
  std::uint64_t traces_started = 0;   // make_trace() calls
  std::uint64_t traces_sampled = 0;   // of those, head-sampled in
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_evicted = 0;    // ring overwrote before export
  std::uint64_t span_errors = 0;      // spans recorded with an error
};

class TraceRecorder {
 public:
  /// `loop` supplies virtual-time timestamps; `capacity` bounds the span
  /// ring (oldest spans are evicted, never reallocated past capacity).
  explicit TraceRecorder(sim::EventLoop& loop, std::size_t capacity = 4096);

  /// Master switch. Disabled (the default) means instrumentation points
  /// compile down to branch-and-skip: no mint, no context entry, no span.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Head-based sampling: every n-th minted trace records (1 = all, the
  /// default; 0 = none). The decision is made once at the stub and rides
  /// the sampled flag, so a trace is recorded everywhere or nowhere.
  void set_sample_every(std::uint32_t n) noexcept { sample_every_ = n; }
  std::uint32_t sample_every() const noexcept { return sample_every_; }

  sim::TimePoint now() const noexcept { return loop_.now(); }

  /// Tags every span this recorder produces with a shard id. A sharded
  /// population run gives each parallel world its own recorder and a
  /// distinct shard id; the merge (trace/merge.hpp) then orders spans by
  /// shard regardless of thread completion order. Exported as the chrome
  /// pid (shard + 1), so each shard gets its own process row.
  void set_shard(std::uint32_t shard) noexcept { shard_ = shard; }
  std::uint32_t shard() const noexcept { return shard_; }

  /// Mints the context for a new trace (stub-side). The returned context
  /// has a fresh trace id and no parent span; check sampled() before
  /// paying for a root scope or a wire entry.
  TraceContext make_trace();

  /// Deterministic span id allocation (per-recorder counter).
  SpanId next_span_id() noexcept { return next_span_id_++; }

  /// Appends a completed span to the ring. `span_id` comes from
  /// next_span_id(); `parent_id` 0 marks a root.
  void record(TraceId trace_id, SpanId span_id, SpanId parent_id,
              const char* name, std::string detail, sim::TimePoint start,
              sim::TimePoint end, std::string error = {});

  /// Convenience for point instrumentation that never nests anything
  /// under the span (network transit): allocates the span id and parents
  /// to `parent`.
  void record_complete(const TraceContext& parent, const char* name,
                       std::string detail, sim::TimePoint start,
                       sim::TimePoint end, std::string error = {});

  const RecorderStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RecorderStats{}; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t span_count() const noexcept { return ring_.size(); }
  /// Retained spans, oldest first.
  std::vector<Span> spans() const;
  /// Drops retained spans (counters keep running).
  void clear();

  /// Duration sink invoked once per recorded span with the metric name
  /// ("span." + span name), the span's end time and its duration in
  /// milliseconds. core::attach_recorder() adapts this to the Monitor.
  using MetricsSink = std::function<void(const std::string& metric,
                                         sim::TimePoint at, double millis)>;
  void set_metrics_sink(MetricsSink sink) { metrics_sink_ = std::move(sink); }

  /// chrome://tracing / Perfetto loadable JSON ("X" complete events, one
  /// tid per trace). Deterministic: same spans, same bytes.
  void export_chrome_trace(std::ostream& os) const;

  /// Human-readable causal tree, one block per trace, children indented
  /// under their parents.
  void dump_tree(std::ostream& os) const;

 private:
  sim::EventLoop& loop_;
  std::size_t capacity_;
  std::vector<Span> ring_;   // ring once size() == capacity_
  std::size_t ring_head_ = 0;  // next slot to overwrite when full
  bool enabled_ = false;
  std::uint32_t shard_ = 0;
  std::uint32_t sample_every_ = 1;
  TraceId next_trace_id_ = 1;
  SpanId next_span_id_ = 1;
  RecorderStats stats_;
  MetricsSink metrics_sink_;
};

/// RAII span. Construction decides once whether this scope records; all
/// members stay empty otherwise.
class SpanScope {
 public:
  /// What the layers below see of the innermost recording scope.
  struct Active {
    TraceRecorder* recorder = nullptr;
    TraceContext ctx;  // trace id + *this scope's* span id + flags
  };

  /// Child scope of the active one; records nothing when no trace is in
  /// flight (one global load + branch, no allocation).
  explicit SpanScope(const char* name, std::string_view detail = {});

  /// Root / re-attached scope: starts recording under `recorder` iff the
  /// recorder is enabled and `parent` is a valid sampled context. The new
  /// span's parent is parent.span_id (0 from make_trace() = trace root).
  SpanScope(TraceRecorder& recorder, const TraceContext& parent,
            const char* name, std::string_view detail = {});

  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool recording() const noexcept { return recording_; }

  /// Context to propagate downward (trace id + this span as parent).
  /// Meaningful only when recording().
  const TraceContext& context() const noexcept { return active_.ctx; }

  /// Innermost recording scope, nullptr when none.
  static const Active* active() noexcept;

 private:
  void open(TraceRecorder& recorder, TraceId trace_id, SpanId parent,
            std::uint8_t flags, const char* name, std::string_view detail);

  Active active_;
  SpanScope* prev_ = nullptr;       // enclosing scope (stack link)
  std::uint64_t prev_error_id_ = 0; // saved maqs::trace_detail slot
  SpanId parent_id_ = 0;
  const char* name_ = "";
  std::string detail_;
  std::string error_;
  sim::TimePoint start_ = 0;
  bool recording_ = false;

  friend void note_error(std::string_view what);
};

/// True while any recording scope is active (cheap global check).
bool tracing_active() noexcept;

/// Context of the innermost recording scope; unsampled/invalid when none.
TraceContext current_context() noexcept;

/// Marks the innermost recording scope as failed. Catch sites call this
/// after unwinding destroyed the inner scopes, so the annotation lands on
/// the span that owns the failure handling (e.g. the server request span
/// that converts an exception into an error reply). No-op when no trace
/// is active; the last note before the scope closes wins.
void note_error(std::string_view what);

/// Records a zero-duration point span under the innermost recording scope
/// (no-op when no trace is in flight). Used for state-machine events that
/// have no extent of their own — retry backoffs, circuit-breaker
/// transitions, module quarantines — so resilience decisions are visible
/// inline in the causal tree. The detail string is only built by callers
/// after checking tracing_active(), preserving the zero-cost-when-off
/// discipline.
void point(const char* name, std::string detail);

namespace detail {
/// One chrome "X" event for `span` (no surrounding array punctuation).
/// Shared by TraceRecorder::export_chrome_trace and the multi-shard merge.
void write_chrome_event(std::ostream& os, const Span& span);
}  // namespace detail

/// The re-attach twin of point(): records a zero-duration span parented to
/// an explicit context (typically decoded off a request's "qos.trace" wire
/// entry) when the recorder is enabled and the context is sampled. Used
/// when the causal owner's scope is no longer on the stack — e.g. a
/// request scheduler shedding a parked request long after the arrival walk
/// unwound.
void point_under(TraceRecorder& recorder, const TraceContext& parent,
                 const char* name, std::string detail);

}  // namespace maqs::trace

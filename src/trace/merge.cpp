#include "trace/merge.hpp"

#include <algorithm>
#include <ostream>

namespace maqs::trace {

std::vector<Span> merge_spans(
    const std::vector<const TraceRecorder*>& shards) {
  std::vector<Span> all;
  std::size_t total = 0;
  for (const TraceRecorder* recorder : shards) {
    if (recorder != nullptr) total += recorder->span_count();
  }
  all.reserve(total);
  for (const TraceRecorder* recorder : shards) {
    if (recorder == nullptr) continue;
    for (Span& span : recorder->spans()) {
      all.push_back(std::move(span));
    }
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.span_id < b.span_id;
  });
  return all;
}

void export_merged_chrome_trace(
    const std::vector<const TraceRecorder*>& shards, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : merge_spans(shards)) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    detail::write_chrome_event(os, span);
  }
  os << "\n]}\n";
}

}  // namespace maqs::trace

// Deterministic merge of per-shard trace recorders.
//
// A sharded population run gives every parallel world its own
// TraceRecorder (tagged via set_shard()); each one is deterministic in
// isolation because it timestamps off its shard's virtual clock and
// allocates ids from per-recorder counters. The only nondeterminism left
// is *completion order* — which thread finishes first. The merge erases
// it: spans are ordered by a canonical key that depends only on recorded
// data, never on wall-clock arrival, so a fixed-seed run exports byte-
// identical merged traces no matter how the OS schedules the shards.
//
// Canonical order: (start time, shard, span id). Start-time-major keeps
// the merged file a readable global timeline; shard and span id (unique
// within a shard) make the key total. Within one shard this refines to
// the shard's own causal order, since span ids are allocated
// monotonically.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/trace.hpp"

namespace maqs::trace {

/// Retained spans of all `shards`, in canonical merged order. Recorder
/// pointers may arrive in any order (e.g. thread completion order); the
/// result does not depend on it.
std::vector<Span> merge_spans(const std::vector<const TraceRecorder*>& shards);

/// chrome://tracing JSON of the canonical merge: each shard is a pid
/// (shard + 1), each trace a tid within it. Byte-deterministic for a
/// fixed set of recorded spans.
void export_merged_chrome_trace(
    const std::vector<const TraceRecorder*>& shards, std::ostream& os);

}  // namespace maqs::trace

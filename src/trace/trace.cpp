#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <unordered_map>

#include "util/error.hpp"

namespace maqs::trace {

// ---- wire codec ----

namespace {
constexpr std::size_t kWireSize = 17;  // u64 + u64 + u8

void put_u64_le(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64_le(util::BytesView data, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[at + i]) << (8 * i);
  }
  return v;
}
}  // namespace

util::Bytes encode_context(const TraceContext& ctx) {
  util::Bytes out;
  out.reserve(kWireSize);
  put_u64_le(out, ctx.trace_id);
  put_u64_le(out, ctx.span_id);
  out.push_back(ctx.flags);
  return out;
}

std::optional<TraceContext> decode_context(util::BytesView data) {
  if (data.size() != kWireSize) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = get_u64_le(data, 0);
  ctx.span_id = get_u64_le(data, 8);
  ctx.flags = data[16];
  if (!ctx.valid()) return std::nullopt;
  return ctx;
}

// ---- TraceRecorder ----

TraceRecorder::TraceRecorder(sim::EventLoop& loop, std::size_t capacity)
    : loop_(loop), capacity_(capacity) {
  ring_.reserve(capacity_);
}

TraceContext TraceRecorder::make_trace() {
  ++stats_.traces_started;
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  // Head sampling: the whole trace records or none of it does; the bit
  // rides the wire so the server never second-guesses the decision.
  if (sample_every_ != 0 &&
      (stats_.traces_started - 1) % sample_every_ == 0) {
    ctx.flags = kSampledFlag;
    ++stats_.traces_sampled;
  }
  return ctx;
}

void TraceRecorder::record(TraceId trace_id, SpanId span_id, SpanId parent_id,
                           const char* name, std::string detail,
                           sim::TimePoint start, sim::TimePoint end,
                           std::string error) {
  ++stats_.spans_recorded;
  if (!error.empty()) ++stats_.span_errors;
  if (metrics_sink_) {
    metrics_sink_(std::string("span.") + name, end,
                  sim::to_millis(end - start));
  }
  if (capacity_ == 0) {
    ++stats_.spans_evicted;
    return;
  }
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.shard = shard_;
  span.name = name;
  span.detail = std::move(detail);
  span.start = start;
  span.end = end;
  span.error = std::move(error);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[ring_head_] = std::move(span);
    ring_head_ = (ring_head_ + 1) % capacity_;
    ++stats_.spans_evicted;
  }
}

void TraceRecorder::record_complete(const TraceContext& parent,
                                    const char* name, std::string detail,
                                    sim::TimePoint start, sim::TimePoint end,
                                    std::string error) {
  record(parent.trace_id, next_span_id(), parent.span_id, name,
         std::move(detail), start, end, std::move(error));
}

std::vector<Span> TraceRecorder::spans() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring wrapped, ring_head_ is the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  ring_head_ = 0;
}

// ---- exports ----

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars);
/// span names and details are ASCII by construction.
void write_json_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Virtual nanoseconds -> chrome trace microseconds, fixed 3 decimals so
/// the export is byte-deterministic.
void write_micros(std::ostream& os, sim::TimePoint t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", t / 1000,
                static_cast<int>(t % 1000));
  os << buf;
}

}  // namespace

namespace detail {

void write_chrome_event(std::ostream& os, const Span& span) {
  os << "{\"name\":\"";
  write_json_escaped(os, span.name);
  os << "\",\"cat\":\"maqs\",\"ph\":\"X\",\"ts\":";
  write_micros(os, span.start);
  os << ",\"dur\":";
  write_micros(os, span.duration());
  // One chrome "process" per shard and one "thread" per trace keeps
  // shards and concurrent traces on separate rows of the timeline.
  os << ",\"pid\":" << span.shard + 1 << ",\"tid\":" << span.trace_id;
  os << ",\"args\":{\"trace\":" << span.trace_id
     << ",\"span\":" << span.span_id << ",\"parent\":" << span.parent_id;
  if (span.shard != 0) {
    os << ",\"shard\":" << span.shard;
  }
  if (!span.detail.empty()) {
    os << ",\"detail\":\"";
    write_json_escaped(os, span.detail);
    os << "\"";
  }
  if (!span.error.empty()) {
    os << ",\"error\":\"";
    write_json_escaped(os, span.error);
    os << "\"";
  }
  os << "}}";
}

}  // namespace detail

void TraceRecorder::export_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans()) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    detail::write_chrome_event(os, span);
  }
  os << "\n]}\n";
}

void TraceRecorder::dump_tree(std::ostream& os) const {
  const std::vector<Span> all = spans();
  // Group spans by trace in order of first appearance; within a trace,
  // children hang under their parent sorted by start time.
  std::vector<TraceId> trace_order;
  std::unordered_map<TraceId, std::vector<std::size_t>> by_trace;
  for (std::size_t i = 0; i < all.size(); ++i) {
    auto [it, inserted] = by_trace.try_emplace(all[i].trace_id);
    if (inserted) trace_order.push_back(all[i].trace_id);
    it->second.push_back(i);
  }

  for (TraceId trace_id : trace_order) {
    const std::vector<std::size_t>& members = by_trace[trace_id];
    std::unordered_map<SpanId, std::vector<std::size_t>> children;
    std::unordered_map<SpanId, bool> present;
    for (std::size_t i : members) present[all[i].span_id] = true;
    std::vector<std::size_t> roots;
    for (std::size_t i : members) {
      // Spans whose parent was evicted (or lives in another recorder)
      // surface as roots instead of vanishing.
      if (all[i].parent_id != 0 && present.count(all[i].parent_id) != 0) {
        children[all[i].parent_id].push_back(i);
      } else {
        roots.push_back(i);
      }
    }
    auto by_start = [&](std::size_t a, std::size_t b) {
      if (all[a].start != all[b].start) return all[a].start < all[b].start;
      return all[a].span_id < all[b].span_id;
    };
    std::sort(roots.begin(), roots.end(), by_start);
    for (auto& [_, kids] : children) {
      std::sort(kids.begin(), kids.end(), by_start);
    }

    os << "trace " << trace_id << ": " << members.size() << " span"
       << (members.size() == 1 ? "" : "s") << "\n";
    // Explicit stack: traces can be deep when modules re-invoke.
    std::vector<std::pair<std::size_t, int>> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
      stack.emplace_back(*it, 1);
    }
    while (!stack.empty()) {
      auto [i, depth] = stack.back();
      stack.pop_back();
      const Span& span = all[i];
      for (int d = 0; d < depth; ++d) os << "  ";
      os << span.name;
      if (!span.detail.empty()) os << "(" << span.detail << ")";
      os << " [" << span.start << " .. " << span.end << "] "
         << span.duration() << "ns";
      if (!span.error.empty()) os << " !error: " << span.error;
      os << "\n";
      auto kids = children.find(span.span_id);
      if (kids != children.end()) {
        for (auto it = kids->second.rbegin(); it != kids->second.rend();
             ++it) {
          stack.emplace_back(*it, depth + 1);
        }
      }
    }
  }
}

// ---- SpanScope ----

namespace {
/// Innermost recording scope, pushed/popped in strict LIFO order even
/// across nested pumping. Per-thread: every simulation shard is its own
/// single-threaded world, and scopes must never leak across shards.
thread_local SpanScope* g_top = nullptr;
}  // namespace

SpanScope::SpanScope(const char* name, std::string_view detail) {
  if (g_top == nullptr) return;  // no trace in flight: free
  open(*g_top->active_.recorder, g_top->active_.ctx.trace_id,
       g_top->active_.ctx.span_id, g_top->active_.ctx.flags, name, detail);
}

SpanScope::SpanScope(TraceRecorder& recorder, const TraceContext& parent,
                     const char* name, std::string_view detail) {
  if (!recorder.enabled() || !parent.valid() || !parent.sampled()) return;
  open(recorder, parent.trace_id, parent.span_id, parent.flags, name,
       detail);
}

void SpanScope::open(TraceRecorder& recorder, TraceId trace_id,
                     SpanId parent, std::uint8_t flags, const char* name,
                     std::string_view detail) {
  recording_ = true;
  active_.recorder = &recorder;
  active_.ctx = TraceContext{trace_id, recorder.next_span_id(), flags};
  parent_id_ = parent;
  name_ = name;
  detail_.assign(detail);
  start_ = recorder.now();
  prev_ = g_top;
  g_top = this;
  // Exceptions thrown under this scope stamp its trace id (util cannot
  // depend on this library, so the slot lives next to maqs::Error).
  prev_error_id_ = trace_detail::active_trace_id();
  trace_detail::set_active_trace_id(trace_id);
}

SpanScope::~SpanScope() {
  if (!recording_) return;
  g_top = prev_;
  trace_detail::set_active_trace_id(prev_error_id_);
  active_.recorder->record(active_.ctx.trace_id, active_.ctx.span_id,
                           parent_id_, name_, std::move(detail_), start_,
                           active_.recorder->now(), std::move(error_));
}

const SpanScope::Active* SpanScope::active() noexcept {
  return g_top != nullptr ? &g_top->active_ : nullptr;
}

bool tracing_active() noexcept { return g_top != nullptr; }

TraceContext current_context() noexcept {
  const SpanScope::Active* act = SpanScope::active();
  return act != nullptr ? act->ctx : TraceContext{};
}

void note_error(std::string_view what) {
  if (g_top != nullptr) g_top->error_.assign(what);
}

void point(const char* name, std::string detail) {
  const SpanScope::Active* act = SpanScope::active();
  if (act == nullptr) return;
  const sim::TimePoint now = act->recorder->now();
  act->recorder->record_complete(act->ctx, name, std::move(detail), now,
                                 now);
}

void point_under(TraceRecorder& recorder, const TraceContext& parent,
                 const char* name, std::string detail) {
  if (!recorder.enabled() || !parent.valid() || !parent.sampled()) return;
  const sim::TimePoint now = recorder.now();
  recorder.record_complete(parent, name, std::move(detail), now, now);
}

}  // namespace maqs::trace

// Quickstart: the complete MAQS flow in one file.
//
//   1. qidlc compiled examples/hello.qidl into hello_gen.hpp (build step)
//   2. bring up a simulated network + two ORBs
//   3. activate a QoS-enabled servant (generated QoS skeleton, Fig. 2)
//   4. negotiate the Compression characteristic
//   5. invoke through the woven stub and watch the bytes shrink
#include <iostream>

#include "characteristics/compression.hpp"
#include "core/negotiation.hpp"
#include "hello_gen.hpp"
#include "net/network.hpp"

using namespace maqs;

namespace {

/// The application implementation: derives from the *generated* QoS
/// skeleton — Compression is already assigned by the generated ctor.
class GreeterImpl : public maqs_gen::hello::GreeterQosSkeleton {
 public:
  std::string greet(const std::string& name) override {
    return "Hello, " + name + "!";
  }
  std::vector<std::uint8_t> stream(
      const std::vector<std::uint8_t>& payload) override {
    return payload;  // echo
  }
};

}  // namespace

int main() {
  // --- infrastructure: event loop, network, two hosts, two ORBs ---
  sim::EventLoop loop;
  net::Network network(loop);
  network.set_default_link(net::LinkParams{
      .latency = 5 * sim::kMillisecond, .bandwidth_bps = 256'000.0});
  orb::Orb server(network, "server", 9000);
  orb::Orb client(network, "client", 9001);

  // --- server side: QoS transport, providers, negotiation service ---
  core::QosTransport server_transport(server);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());
  core::ResourceManager resources;
  resources.declare("cpu", 100.0);
  resources.declare("bandwidth", 1000.0);
  core::NegotiationService negotiation(server_transport, providers,
                                       resources);

  auto servant = std::make_shared<GreeterImpl>();
  orb::QosProfile profile;
  profile.characteristic = characteristics::compression_name();
  orb::ObjRef ref =
      server.adapter().activate("greeter-1", servant, {profile});
  std::cout << "server: activated Greeter as " << ref.repo_id << "\n";
  std::cout << "server: IOR carries QoS tag for '"
            << ref.qos[0].characteristic << "'\n";

  // --- client side: transport, negotiator, generated stub ---
  core::QosTransport client_transport(client);
  core::Negotiator negotiator(client_transport, providers);
  maqs_gen::hello::GreeterStub greeter(client, ref);

  std::cout << "client: greet() before negotiation -> \""
            << greeter.greet("world") << "\"\n";

  // Negotiate Compression at level 64.
  core::Agreement agreement = negotiator.negotiate(
      greeter, characteristics::compression_name(),
      {{"level", cdr::Any::from_long(64)}});
  std::cout << "client: negotiated agreement #" << agreement.id
            << " (algorithm=" << agreement.string_param("algorithm")
            << ", level=" << agreement.int_param("level") << ")\n";

  // Push a compressible payload through the woven path.
  std::vector<std::uint8_t> payload;
  while (payload.size() < 100'000) {
    for (char c : std::string("sensor-frame 0042 temperature=21.5C ")) {
      payload.push_back(static_cast<std::uint8_t>(c));
    }
  }
  network.reset_stats();
  const auto echoed = greeter.stream(payload);
  const std::uint64_t wire = network.bytes_between("client", "server");
  std::cout << "client: streamed " << payload.size()
            << " bytes, wire carried " << wire << " bytes ("
            << (100.0 * static_cast<double>(wire) /
                static_cast<double>(payload.size()))
            << "% of plaintext)\n";
  std::cout << "client: round-trip intact: "
            << (echoed == payload ? "yes" : "NO") << "\n";
  std::cout << "client: virtual time elapsed "
            << sim::to_millis(loop.now()) << " ms\n";
  return echoed == payload ? 0 : 1;
}

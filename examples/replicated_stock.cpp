// Replicated stock-quote service: fault tolerance through replica groups
// (the paper's flagship QoS characteristic, §3.1/§6).
//
// Three replicas hold the order book; the client's replication transport
// module multicasts every request to the group. Crashes are masked
// (k-availability), a recovering replica is re-initialized through the
// state-access aspect, and a byzantine replica is outvoted in voting
// mode.
#include <iostream>

#include "characteristics/replication.hpp"
#include "net/network.hpp"
#include "support_stock.hpp"

using namespace maqs;

int main() {
  sim::EventLoop loop;
  net::Network network(loop);
  network.set_default_link(net::LinkParams{
      .latency = 2 * sim::kMillisecond, .bandwidth_bps = 10e6});
  characteristics::register_replication_module();

  orb::Orb client(network, "trader", 1);
  core::QosTransport transport(client);
  characteristics::ReplicaGroup group(network, "grp-stock", "stock-svc");

  // --- bring up three replicas on independent hosts ---
  std::vector<std::unique_ptr<orb::Orb>> orbs;
  std::vector<std::shared_ptr<examples::StockImpl>> impls;
  for (int i = 0; i < 3; ++i) {
    auto orb = std::make_unique<orb::Orb>(network,
                                          "replica-" + std::to_string(i), 9);
    auto impl = std::make_shared<examples::StockImpl>();
    group.add_replica(*orb, impl);
    orbs.push_back(std::move(orb));
    impls.push_back(std::move(impl));
  }
  std::cout << "group: 3 replicas up, multicast group '" << group.group()
            << "'\n";

  // --- client wiring: failover mode ---
  transport.load_module(characteristics::replication_module_name())
      .command("configure", {cdr::Any::from_string(group.group()),
                             cdr::Any::from_string("failover"),
                             cdr::Any::from_longlong(1)});
  transport.assign(group.object_key(),
                   characteristics::replication_module_name());
  examples::StockStub stock(client, group.group_reference());

  stock.put_order("ACME", 100);
  loop.run_until_idle();  // writes fan out to all replicas
  std::cout << "trader: placed order ACME x100; position now "
            << stock.position("ACME") << "\n";

  // --- crash masking ---
  network.crash("replica-0");
  std::cout << "fault:  replica-0 crashed\n";
  stock.put_order("ACME", 50);
  loop.run_until_idle();
  std::cout << "trader: placed order ACME x50 despite the crash; position "
            << stock.position("ACME") << "\n";

  // --- recovery with state transfer (aspect integration, §3.2) ---
  network.restart("replica-0");
  auto recovered = std::make_shared<examples::StockImpl>();
  auto orb = std::make_unique<orb::Orb>(network, "replica-0", 10);
  group.remove_replica(*orbs[0]);
  group.add_replica(*orb, recovered);
  orbs.push_back(std::move(orb));
  std::cout << "group:  replica-0 rejoined; state transferred, position "
            << recovered->local_position("ACME") << "\n";

  // --- diversity via majority voting (reuses the same multicast, §6) ---
  impls[1]->corrupt = true;  // one replica starts lying
  transport.find_module(characteristics::replication_module_name())
      ->command("configure", {cdr::Any::from_string(group.group()),
                              cdr::Any::from_string("voting"),
                              cdr::Any::from_longlong(2)});
  std::cout << "fault:  replica-1 now returns corrupted results\n";
  const std::int32_t position = stock.position("ACME");
  std::cout << "trader: majority vote still yields the correct position "
            << position << "\n";
  std::cout << "done (virtual time " << sim::to_millis(loop.now())
            << " ms)\n";
  return position == 150 ? 0 : 1;
}

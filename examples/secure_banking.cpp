// Privacy through encryption (paper §6): a banking client talks to an
// account service through the encryption transport module.
//
// Demonstrates the "QoS to QoS" communication of §3.2: the DH key
// exchange and the on-the-fly key change both run as module commands over
// the plain GIOP path while encrypted traffic keeps flowing.
#include <iostream>

#include "characteristics/encryption.hpp"
#include "core/negotiation.hpp"
#include "net/network.hpp"
#include "support/qos_echo_example.hpp"
#include "support_stock.hpp"

using namespace maqs;

namespace {

/// Account service with the Encryption characteristic assigned.
class AccountImpl : public core::QosServantBase {
 public:
  AccountImpl() {
    assign_characteristic(characteristics::encryption_descriptor());
  }
  const std::string& repo_id() const override {
    static const std::string kId = "IDL:examples/Account:1.0";
    return kId;
  }

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "transfer") {
      const std::string to = args.read_string();
      const std::int64_t cents = args.read_i64();
      args.expect_end();
      balance_ -= cents;
      out.write_string("transferred " + std::to_string(cents) +
                       " cents to " + to);
    } else if (operation == "balance") {
      args.expect_end();
      out.write_i64(balance_);
    } else {
      throw orb::BadOperation("Account: unknown operation " + operation);
    }
  }

 private:
  std::int64_t balance_ = 100'000;
};

class AccountStub : public orb::StubBase {
 public:
  AccountStub(orb::Orb& orb, orb::ObjRef ref)
      : orb::StubBase(orb, std::move(ref)) {}

  std::string transfer(const std::string& to, std::int64_t cents) const {
    cdr::Encoder args;
    args.write_string(to);
    args.write_i64(cents);
    cdr::Decoder result(invoke_operation("transfer", args.take()));
    std::string out = result.read_string();
    result.expect_end();
    return out;
  }
  std::int64_t balance() const {
    cdr::Decoder result(invoke_operation("balance", {}));
    const std::int64_t out = result.read_i64();
    result.expect_end();
    return out;
  }
};

}  // namespace

int main() {
  sim::EventLoop loop;
  net::Network network(loop);
  orb::Orb bank(network, "bank", 443);
  orb::Orb customer(network, "customer", 5000);
  core::QosTransport bank_transport(bank);
  core::QosTransport customer_transport(customer);

  core::ProviderRegistry providers;
  providers.add(characteristics::make_encryption_provider());
  core::ResourceManager resources;
  resources.declare("cpu", 100.0);
  core::NegotiationService negotiation(bank_transport, providers, resources);
  core::Negotiator negotiator(customer_transport, providers);

  orb::QosProfile profile;
  profile.characteristic = characteristics::encryption_name();
  orb::ObjRef ref =
      bank.adapter().activate("account-4711", std::make_shared<AccountImpl>(),
                              {profile});
  AccountStub account(customer, ref);

  // Negotiation triggers the DH handshake (client_setup).
  core::Agreement agreement = negotiator.negotiate(
      account, characteristics::encryption_name(), {});
  auto& module = dynamic_cast<characteristics::EncryptionModule&>(
      *customer_transport.find_module(
          characteristics::encryption_module_name()));
  std::cout << "customer: Encryption negotiated (agreement #" << agreement.id
            << "), DH key epoch " << module.current_epoch() << "\n";

  std::cout << "customer: balance = " << account.balance() << " cents\n";
  std::cout << "customer: " << account.transfer("DE99 1234", 2'500) << "\n";

  // On-the-fly key change under traffic (paper §3.2).
  for (std::int64_t epoch = 2; epoch <= 4; ++epoch) {
    characteristics::encryption_rotate_key(customer, customer_transport, ref,
                                           epoch, 0xFEED + epoch);
    std::cout << "customer: rotated to key epoch " << epoch
              << "; transfer still works: "
              << account.transfer("DE99 1234", 100) << "\n";
  }
  std::cout << "customer: final balance = " << account.balance()
            << " cents\n";

  // Show what an eavesdropper sees: seal a probe and print the hex.
  orb::RequestMessage probe;
  probe.request_id = 999;
  probe.body = util::to_bytes("PIN 1234");
  module.transform_request(probe);
  std::cout << "wire view of \"PIN 1234\": "
            << util::to_hex(probe.body).substr(0, 48) << "...\n";
  return 0;
}

// The full infrastructure-service stack of §2.2 in one scenario:
// trading, negotiation (with client preference hierarchies), monitoring
// via the woven path, and accounting.
//
//   1. two providers export QoS-enabled offers to a trader
//   2. a client discovers candidates by characteristic
//   3. a preference hierarchy (gold/silver/bronze) negotiates the best
//      admissible level against each candidate, picking the highest
//      utility ("client preferences have to be incorporated in the
//      negotiation process", paper §6)
//   4. usage is metered and priced per agreement
#include <iostream>

#include "characteristics/compression.hpp"
#include "core/accounting.hpp"
#include "core/catalog_doc.hpp"
#include "core/preference.hpp"
#include "core/trader.hpp"
#include "net/network.hpp"
#include "support/qos_echo_example.hpp"

using namespace maqs;

namespace {

struct Provider {
  std::unique_ptr<orb::Orb> orb;
  std::unique_ptr<core::QosTransport> transport;
  std::unique_ptr<core::ResourceManager> resources;
  std::unique_ptr<core::NegotiationService> negotiation;
  orb::ObjRef ref;
};

Provider make_provider(net::Network& network, const std::string& host,
                       double cpu_capacity,
                       const core::ProviderRegistry& providers) {
  Provider p;
  p.orb = std::make_unique<orb::Orb>(network, host, 9000);
  p.transport = std::make_unique<core::QosTransport>(*p.orb);
  p.resources = std::make_unique<core::ResourceManager>();
  p.resources->declare("cpu", cpu_capacity);
  p.resources->declare("bandwidth", 1000.0);
  p.negotiation = std::make_unique<core::NegotiationService>(
      *p.transport, providers, *p.resources);
  auto servant = std::make_shared<examples::TelemetryImpl>();
  servant->archive.assign(20'000, 0x51);
  orb::QosProfile profile;
  profile.characteristic = characteristics::compression_name();
  p.ref = p.orb->adapter().activate("feed", servant, {profile});
  return p;
}

}  // namespace

int main() {
  sim::EventLoop loop;
  net::Network network(loop);
  core::ProviderRegistry providers;
  providers.add(characteristics::make_compression_provider());

  // --- the marketplace: a trader on its own host ---
  orb::Orb market(network, "market", 7000);
  core::Trader trader;
  market.adapter().activate(core::TraderServant::object_key(),
                            std::make_shared<core::TraderServant>(trader));

  // --- two providers with different capacity export offers ---
  Provider big = make_provider(network, "provider-big", 200.0, providers);
  Provider small = make_provider(network, "provider-small", 20.0, providers);
  core::TraderClient big_exporter(*big.orb, market.endpoint());
  core::TraderClient small_exporter(*small.orb, market.endpoint());
  big_exporter.export_offer({big.ref, {}, {{"tier", "premium"}}});
  small_exporter.export_offer({small.ref, {}, {{"tier", "budget"}}});
  std::cout << "market: 2 offers exported\n";

  // --- the client discovers and negotiates by preference ---
  orb::Orb client(network, "client", 5000);
  core::QosTransport client_transport(client);
  core::Negotiator negotiator(client_transport, providers);
  core::TraderClient discovery(client, market.endpoint());

  const auto candidates =
      discovery.query(characteristics::compression_name());
  std::cout << "client: trader returned " << candidates.size()
            << " candidates for Compression\n";

  core::PreferenceHierarchy hierarchy;
  core::ContractProposal gold;
  gold.label = "gold";
  gold.utility = 1.0;
  gold.params = {{"level", cdr::Any::from_long(128)}};
  gold.bounds.bounds["level"] = {.min = 100, .max = std::nullopt};
  hierarchy.add(gold);
  core::ContractProposal silver;
  silver.label = "silver";
  silver.utility = 0.5;
  silver.params = {{"level", cdr::Any::from_long(16)}};
  silver.bounds.bounds["level"] = {.min = 8, .max = std::nullopt};
  hierarchy.add(silver);

  // Negotiate the hierarchy against every candidate; keep the best.
  std::optional<core::PreferredAgreement> best;
  std::unique_ptr<examples::TelemetryStub> best_stub;
  for (const orb::ObjRef& candidate : candidates) {
    auto stub = std::make_unique<examples::TelemetryStub>(client, candidate);
    try {
      core::PreferredAgreement result = core::negotiate_preferred(
          negotiator, *stub, characteristics::compression_name(), hierarchy);
      std::cout << "client: " << candidate.endpoint.node << " admits '"
                << result.label << "' (level "
                << result.agreement.int_param("level") << ")\n";
      if (!best || result.utility > best->utility) {
        if (best) negotiator.terminate(*best_stub, best->agreement);
        best = std::move(result);
        best_stub = std::move(stub);
      } else {
        negotiator.terminate(*stub, result.agreement);
      }
    } catch (const core::NegotiationFailed& e) {
      std::cout << "client: " << candidate.endpoint.node
                << " rejected every level\n";
    }
  }
  std::cout << "client: selected '" << best->label << "' utility "
            << best->utility << "\n";

  // --- metered usage under the chosen agreement ---
  core::AccountingService accounting(loop);
  accounting.open(best->agreement);
  for (int i = 0; i < 20; ++i) {
    const auto archive = best_stub->fetch_archive();
    accounting.charge(best->agreement.id, archive.size());
    loop.run_for(100 * sim::kMillisecond);
  }
  accounting.close(best->agreement.id);
  const core::UsageRecord* usage = accounting.usage(best->agreement.id);
  std::cout << "accounting: " << usage->requests << " requests, "
            << usage->bytes << " bytes, invoice "
            << accounting.invoice(best->agreement.id,
                                  core::linear_tariff(0.01, 2.0))
            << " credits\n";

  // --- the catalog (paper §6) ---
  const std::string catalog = core::catalog_markdown(providers);
  std::cout << "catalog preview:\n"
            << catalog.substr(0, catalog.find('\n', 80)) << "...\n";
  return best->label == "gold" ? 0 : 1;
}

// Generated-style Telemetry interface for the bandwidth example:
//
//   interface Telemetry {
//     sequence<octet> fetch_archive();
//     double reading(in string channel);
//   };
//   bind Telemetry : Compression, Actuality;
#pragma once

#include <string>

#include "characteristics/actuality.hpp"
#include "characteristics/compression.hpp"
#include "core/qos_skeleton.hpp"
#include "orb/stub.hpp"

namespace maqs::examples {

inline const std::string kTelemetryRepoId = "IDL:examples/Telemetry:1.0";

class TelemetryStub : public orb::StubBase {
 public:
  TelemetryStub(orb::Orb& orb, orb::ObjRef ref)
      : orb::StubBase(orb, std::move(ref)) {}

  util::Bytes fetch_archive() const {
    cdr::Decoder result(invoke_operation("fetch_archive", {}));
    util::Bytes out = result.read_bytes();
    result.expect_end();
    return out;
  }

  double reading(const std::string& channel) const {
    cdr::Encoder args;
    args.write_string(channel);
    cdr::Decoder result(invoke_operation("reading", args.take()));
    const double out = result.read_f64();
    result.expect_end();
    return out;
  }
};

class TelemetryImpl : public core::QosServantBase {
 public:
  TelemetryImpl() {
    assign_characteristic(characteristics::compression_descriptor());
    assign_characteristic(characteristics::actuality_descriptor());
  }

  const std::string& repo_id() const override { return kTelemetryRepoId; }

  util::Bytes archive;
  double current_reading = 21.5;

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "fetch_archive") {
      args.expect_end();
      out.write_bytes(archive);
    } else if (operation == "reading") {
      (void)args.read_string();
      args.expect_end();
      out.write_f64(current_reading);
    } else {
      throw orb::BadOperation("Telemetry: unknown operation " + operation);
    }
  }
};

}  // namespace maqs::examples

// Generated-style stub/skeleton pair for the examples' Stock interface:
//
//   interface Stock {
//     void put_order(in string symbol, in long qty);
//     long position(in string symbol);
//   };
//   bind Stock : Replication;
//
// StockImpl exposes the state-access aspect so replica groups can
// initialize late joiners (paper §3.1).
#pragma once

#include <map>
#include <string>

#include "characteristics/replication.hpp"
#include "core/qos_skeleton.hpp"
#include "orb/stub.hpp"

namespace maqs::examples {

inline const std::string kStockRepoId = "IDL:examples/Stock:1.0";

class StockStub : public orb::StubBase {
 public:
  StockStub(orb::Orb& orb, orb::ObjRef ref)
      : orb::StubBase(orb, std::move(ref)) {}

  void put_order(const std::string& symbol, std::int32_t qty) const {
    cdr::Encoder args;
    args.write_string(symbol);
    args.write_i32(qty);
    invoke_operation("put_order", args.take());
  }

  std::int32_t position(const std::string& symbol) const {
    cdr::Encoder args;
    args.write_string(symbol);
    cdr::Decoder result(invoke_operation("position", args.take()));
    const std::int32_t out = result.read_i32();
    result.expect_end();
    return out;
  }
};

class StockImpl : public core::QosServantBase, public core::StateAccess {
 public:
  StockImpl() {
    assign_characteristic(characteristics::replication_descriptor());
  }

  const std::string& repo_id() const override { return kStockRepoId; }

  /// Wrong-answer fault injection for the voting demo.
  bool corrupt = false;

  std::int32_t local_position(const std::string& symbol) const {
    auto it = positions_.find(symbol);
    return it != positions_.end() ? it->second : 0;
  }

  // ---- state-access aspect ----
  core::StateAccess* state_access() override { return this; }
  util::Bytes get_state() override {
    cdr::Encoder enc;
    enc.write_u32(static_cast<std::uint32_t>(positions_.size()));
    for (const auto& [symbol, qty] : positions_) {
      enc.write_string(symbol);
      enc.write_i32(qty);
    }
    return enc.take();
  }
  void set_state(util::BytesView state) override {
    cdr::Decoder dec(state);
    positions_.clear();
    const std::uint32_t n = dec.read_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string symbol = dec.read_string();
      positions_[symbol] = dec.read_i32();
    }
  }

 protected:
  void dispatch_app(const std::string& operation, cdr::Decoder& args,
                    cdr::Encoder& out, orb::ServerContext& ctx) override {
    (void)ctx;
    if (operation == "put_order") {
      const std::string symbol = args.read_string();
      const std::int32_t qty = args.read_i32();
      args.expect_end();
      positions_[symbol] += qty;
    } else if (operation == "position") {
      const std::string symbol = args.read_string();
      args.expect_end();
      std::int32_t value = local_position(symbol);
      if (corrupt) value += 999;
      out.write_i32(value);
    } else {
      throw orb::BadOperation("Stock: unknown operation " + operation);
    }
  }

 private:
  std::map<std::string, std::int32_t> positions_;
};

}  // namespace maqs::examples
